//! Deterministic fault injection for chaos testing.
//!
//! Production code sprinkles named *fault sites* through its fragile paths —
//! `faults::should_fire("store.read.corrupt")` just before trusting bytes
//! read from disk, `faults::should_fire("grid.claim.crash")` just after
//! acquiring a claim marker, and so on. With no configuration the whole
//! layer is inert: every site check is a single relaxed atomic load that the
//! branch predictor learns immediately, so the hooks cost nothing on the
//! paths that matter and never perturb simulated results.
//!
//! Faults are switched on by the [`FAULTS_ENV`] (`WLCRC_FAULTS`) environment
//! variable or programmatically via [`configure`]. The spec grammar is a
//! `;`-separated list of clauses:
//!
//! ```text
//! WLCRC_FAULTS="seed=42;grid.claim.crash=@2;store.read.corrupt=0.25"
//! ```
//!
//! * `seed=N` — the injection seed (default 0). Decisions are a pure
//!   function of `(seed, site name, per-site hit index)`, so a fixed spec
//!   reproduces the *same* fault schedule on every run — chaos tests are
//!   deterministic, not flaky.
//! * `site=RATE` — the site fires with probability `RATE` (`0.0..=1.0`) on
//!   each hit, decided by the seeded hash above (no wall-clock randomness).
//! * `site=@N` — the site fires exactly once, on its `N`-th hit (1-based).
//!   This is the precise form chaos tests use to kill a worker on a chosen
//!   claim or tear a chosen write.
//!
//! Sites are plain dotted strings owned by their subsystem (the convention
//! is `<subsystem>.<operation>.<failure>`); the registry is open — this
//! crate validates the spec, not the site names. [`fired_count`] lets tests
//! assert a fault actually triggered, so a chaos run that silently injected
//! nothing cannot pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable holding the fault spec; unset means no faults.
pub const FAULTS_ENV: &str = "WLCRC_FAULTS";

/// How one site decides whether a given hit fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Fire with this probability on every hit, decided by the seeded hash.
    Rate(f64),
    /// Fire exactly once, on the n-th hit (1-based).
    Nth(u64),
}

/// A parsed fault spec: the seed plus one trigger per site.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    sites: Vec<(String, Trigger)>,
}

impl FaultPlan {
    /// Parses the [`FAULTS_ENV`] grammar. An empty or all-whitespace spec is
    /// a valid plan with no sites (faults stay off).
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let Some((site, value)) = clause.split_once('=') else {
                return Err(FaultSpecError::new(clause, "expected site=value"));
            };
            let (site, value) = (site.trim(), value.trim());
            if site == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|_| FaultSpecError::new(clause, "seed expects an integer"))?;
                continue;
            }
            let trigger = if let Some(nth) = value.strip_prefix('@') {
                let nth: u64 = nth
                    .parse()
                    .map_err(|_| FaultSpecError::new(clause, "@N expects an integer"))?;
                if nth == 0 {
                    return Err(FaultSpecError::new(clause, "hit indices are 1-based"));
                }
                Trigger::Nth(nth)
            } else {
                let rate: f64 = value
                    .parse()
                    .map_err(|_| FaultSpecError::new(clause, "rate expects a number or @N"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(FaultSpecError::new(clause, "rate must be within 0.0..=1.0"));
                }
                Trigger::Rate(rate)
            };
            plan.sites.push((site.to_string(), trigger));
        }
        Ok(plan)
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

/// A malformed [`FAULTS_ENV`] clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    clause: String,
    reason: &'static str,
}

impl FaultSpecError {
    fn new(clause: &str, reason: &'static str) -> FaultSpecError {
        FaultSpecError { clause: clause.to_string(), reason }
    }
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault clause {:?}: {}", self.clause, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

/// Per-process injector state behind the fast-path flag.
#[derive(Debug, Default)]
struct Injector {
    plan: FaultPlan,
    /// Hits observed per site (every `should_fire` call counts one).
    hits: HashMap<String, u64>,
    /// Hits that actually fired per site.
    fired: HashMap<String, u64>,
}

/// Fast-path switch: `false` means no plan is loaded and every site check
/// returns immediately.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// One-time env initialisation marker plus the injector itself.
static INIT: OnceLock<()> = OnceLock::new();
static INJECTOR: OnceLock<Mutex<Injector>> = OnceLock::new();

fn injector() -> &'static Mutex<Injector> {
    INJECTOR.get_or_init(|| Mutex::new(Injector::default()))
}

/// Loads [`FAULTS_ENV`] exactly once per process. A malformed spec disables
/// injection loudly on stderr rather than silently running half a chaos
/// plan.
fn init_from_env() {
    INIT.get_or_init(|| {
        let Ok(spec) = std::env::var(FAULTS_ENV) else {
            return;
        };
        match FaultPlan::parse(&spec) {
            Ok(plan) => install(plan),
            Err(err) => eprintln!("wlcrc_faults: ignoring ${FAULTS_ENV}: {err}"),
        }
    });
}

/// Installs a plan, resetting all hit counters.
fn install(plan: FaultPlan) {
    let active = !plan.is_empty();
    let mut guard = match injector().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    *guard = Injector { plan, hits: HashMap::new(), fired: HashMap::new() };
    ACTIVE.store(active, Ordering::Release);
}

/// Replaces the process-wide fault plan (tests; takes precedence over the
/// environment). Counters reset.
pub fn configure(spec: &str) -> Result<(), FaultSpecError> {
    INIT.get_or_init(|| {});
    install(FaultPlan::parse(spec)?);
    Ok(())
}

/// Disables all fault injection for the rest of the process.
pub fn clear() {
    INIT.get_or_init(|| {});
    install(FaultPlan::default());
}

/// `true` when a non-empty fault plan is loaded.
pub fn active() -> bool {
    init_from_env();
    ACTIVE.load(Ordering::Acquire)
}

/// Registers one hit at `site` and decides — deterministically, from the
/// seed, the site name and the hit index alone — whether the fault fires.
/// With no plan loaded this is one atomic load and `false`.
pub fn should_fire(site: &str) -> bool {
    if !active() {
        return false;
    }
    let mut guard = match injector().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let hit = {
        let slot = guard.hits.entry(site.to_string()).or_insert(0);
        *slot += 1;
        *slot
    };
    let seed = guard.plan.seed;
    let Some((_, trigger)) = guard.plan.sites.iter().find(|(name, _)| name == site) else {
        return false;
    };
    let fire = match *trigger {
        Trigger::Nth(n) => hit == n,
        Trigger::Rate(rate) => unit_from_hash(decision_hash(seed, site, hit)) < rate,
    };
    if fire {
        *guard.fired.entry(site.to_string()).or_insert(0) += 1;
        drop(guard);
        // Mirror the fire into the process-wide metrics registry so chaos
        // runs can watch injected faults on the same scrape as everything
        // else (`storectl stats`, the serve metrics endpoint).
        wlcrc_obs::registry()
            .counter(&format!("wlcrc_faults_fired_total{{site=\"{site}\"}}"))
            .inc();
    }
    fire
}

/// How many times `site` has actually fired in this process. Chaos tests use
/// this to assert the schedule injected what it promised.
pub fn fired_count(site: &str) -> u64 {
    init_from_env();
    let guard = match injector().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.fired.get(site).copied().unwrap_or(0)
}

/// How many times `site` has been *checked* in this process.
pub fn hit_count(site: &str) -> u64 {
    init_from_env();
    let guard = match injector().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.hits.get(site).copied().unwrap_or(0)
}

/// If `site` fires, deterministically corrupts one byte of `bytes` (position
/// and mask derived from the same seeded hash) and reports `true`. Empty
/// buffers cannot be corrupted and never fire.
pub fn corrupt_byte(site: &str, bytes: &mut [u8]) -> bool {
    if bytes.is_empty() || !should_fire(site) {
        return false;
    }
    let h = decision_hash(plan_seed(), site, hit_count(site));
    let index = (h >> 8) as usize % bytes.len();
    // Guarantee a real change: xor with a non-zero mask.
    let mask = (h as u8) | 1;
    bytes[index] ^= mask;
    true
}

fn plan_seed() -> u64 {
    let guard = match injector().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.plan.seed
}

/// FNV-1a over the site name, mixed with the seed and hit index through a
/// splitmix64 finaliser — the same construction the engine uses for cell
/// seeds, so decisions are stable across platforms and runs.
fn decision_hash(seed: u64, site: &str, hit: u64) -> u64 {
    let mut name_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in site.as_bytes() {
        name_hash ^= u64::from(*byte);
        name_hash = name_hash.wrapping_mul(0x100_0000_01b3);
    }
    let mut x = seed ^ name_hash ^ hit.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to `[0, 1)` with 53 bits of precision.
fn unit_from_hash(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The injector is process-global, so the tests in this module share it;
    /// they serialise on a lock and restore the disabled state afterwards.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_by_default_and_after_clear() {
        let _guard = exclusive();
        clear();
        assert!(!active());
        assert!(!should_fire("store.read.corrupt"));
        let mut bytes = vec![1, 2, 3];
        assert!(!corrupt_byte("store.read.corrupt", &mut bytes));
        assert_eq!(bytes, vec![1, 2, 3]);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _guard = exclusive();
        configure("seed=7;grid.claim.crash=@3").unwrap();
        let fired: Vec<bool> = (0..6).map(|_| should_fire("grid.claim.crash")).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(fired_count("grid.claim.crash"), 1);
        assert_eq!(hit_count("grid.claim.crash"), 6);
        clear();
    }

    #[test]
    fn rate_triggers_are_deterministic_per_seed() {
        let _guard = exclusive();
        configure("seed=42;serve.client.flaky=0.5").unwrap();
        let first: Vec<bool> = (0..64).map(|_| should_fire("serve.client.flaky")).collect();
        configure("seed=42;serve.client.flaky=0.5").unwrap();
        let second: Vec<bool> = (0..64).map(|_| should_fire("serve.client.flaky")).collect();
        assert_eq!(first, second, "same seed, same schedule");
        assert!(first.iter().any(|f| *f), "rate 0.5 fires somewhere in 64 hits");
        assert!(first.iter().any(|f| !*f), "rate 0.5 skips somewhere in 64 hits");

        configure("seed=43;serve.client.flaky=0.5").unwrap();
        let reseeded: Vec<bool> = (0..64).map(|_| should_fire("serve.client.flaky")).collect();
        assert_ne!(first, reseeded, "a different seed reshuffles the schedule");
        clear();
    }

    #[test]
    fn rate_bounds_are_exact() {
        let _guard = exclusive();
        configure("always=1.0;never=0.0").unwrap();
        // 1.0 compares `< 1.0` over [0,1), so it fires on every hit.
        assert!((0..32).all(|_| should_fire("always")));
        assert!((0..32).all(|_| !should_fire("never")));
        clear();
    }

    #[test]
    fn unknown_sites_never_fire_but_still_count_hits() {
        let _guard = exclusive();
        configure("seed=1;known=1.0").unwrap();
        assert!(!should_fire("unknown.site"));
        assert_eq!(hit_count("unknown.site"), 1);
        assert_eq!(fired_count("unknown.site"), 0);
        clear();
    }

    #[test]
    fn corrupt_byte_changes_exactly_one_byte() {
        let _guard = exclusive();
        configure("seed=9;store.read.corrupt=@1").unwrap();
        let original = vec![0u8; 32];
        let mut bytes = original.clone();
        assert!(corrupt_byte("store.read.corrupt", &mut bytes));
        let diffs = bytes.iter().zip(&original).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
        // The trigger was @1, so a second call leaves the buffer alone.
        let mut again = original.clone();
        assert!(!corrupt_byte("store.read.corrupt", &mut again));
        assert_eq!(again, original);
        clear();
    }

    #[test]
    fn fired_sites_surface_in_the_metrics_registry() {
        let _guard = exclusive();
        configure("seed=7;obs.test.registry=@1").unwrap();
        // The site name is unique to this test, so the registry counter
        // moves only under the module lock held above.
        let name = "wlcrc_faults_fired_total{site=\"obs.test.registry\"}";
        let before = wlcrc_obs::registry().counter(name).get();
        assert!(should_fire("obs.test.registry"));
        assert!(!should_fire("obs.test.registry"), "@1 fires exactly once");
        assert_eq!(wlcrc_obs::registry().counter(name).get(), before + 1);
        let rendered = wlcrc_obs::registry().render();
        assert!(rendered.contains(name), "missing {name:?} in:\n{rendered}");
        clear();
    }

    #[test]
    fn spec_errors_are_loud_and_precise() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ;; ").unwrap().is_empty());
        assert!(FaultPlan::parse("seed=3").unwrap().is_empty());
        assert!(FaultPlan::parse("a.b=0.5;c=@2").is_ok());
        for bad in ["nonsense", "site=", "site=2.0", "site=-0.1", "site=@0", "seed=x", "site=@x"] {
            assert!(FaultPlan::parse(bad).is_err(), "spec {bad:?} must be rejected");
        }
    }
}
