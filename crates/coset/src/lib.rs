//! Coset-coding schemes for MLC PCM write-energy reduction.
//!
//! This crate implements every encoding scheme the paper compares against, on
//! top of the device model in `wlcrc-pcm`:
//!
//! * [`candidate::CosetCandidate`] — symbol-to-state mappings, including the
//!   four hand-picked candidates of Table I (`C1..C4`) and the six candidates
//!   of the prior 6cosets scheme.
//! * [`ncosets::NCosetsCodec`] — the generic "choose the cheapest candidate
//!   per data block" codec, parameterised by candidate set and block
//!   granularity (8 to 512 bits); this yields `3cosets`, `4cosets` and
//!   `6cosets` at any granularity.
//! * [`restricted::RestrictedCosetCodec`] — Section V's restricted coset
//!   coding: all blocks of a line (or word) must draw their candidate from
//!   one of two groups, `{C1, C2}` or `{C1, C3}`, halving the per-block
//!   auxiliary information.
//! * [`fnw::FnwCodec`] — Flip-N-Write adapted to MLC PCM.
//! * [`flipmin::FlipMinCodec`] — FlipMin with sixteen 512-bit coset masks
//!   derived from the dual of a (72, 64) Hamming code.
//! * [`din::DinCodec`] — the DIN scheme: FPC/BDI compression, a 3-to-4-bit
//!   expansion that avoids high-energy states, and a 20-bit BCH(t = 2) code.
//!
//! All schemes implement [`wlcrc_pcm::codec::LineCodec`], so the simulator in
//! `wlcrc-memsim` can evaluate them interchangeably.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidate;
pub mod cost;
pub mod din;
pub mod flipmin;
pub mod fnw;
pub mod granularity;
pub mod ncosets;
pub mod restricted;

pub use candidate::{CandidateSet, CosetCandidate};
pub use din::DinCodec;
pub use flipmin::FlipMinCodec;
pub use fnw::FnwCodec;
pub use granularity::Granularity;
pub use ncosets::NCosetsCodec;
pub use restricted::RestrictedCosetCodec;
