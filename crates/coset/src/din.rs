//! The DIN comparison scheme: compression + 3-to-4-bit expansion + BCH.
//!
//! DIN (originally proposed to mitigate write disturbance) compresses a
//! 512-bit line with FPC/BDI; when the compressed payload fits in 369 bits it
//! expands every 3 data bits into a 4-bit code word chosen to avoid the
//! high-energy (disturbance-prone) states, and protects the result with a
//! 20-bit BCH code that can correct two write-disturbance errors. Lines that
//! do not compress far enough are written unencoded. One auxiliary flag
//! symbol per line distinguishes the two formats.

use wlcrc_compress::{Bdi, Fpc};
use wlcrc_ecc::{Bch, BitBuf, PackedBch};
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::energy::EnergyModel;
use wlcrc_pcm::kernel::{self, TransitionTable, PLANE_WORDS};
use wlcrc_pcm::line::MemoryLine;
use wlcrc_pcm::mapping::SymbolMapping;
use wlcrc_pcm::physical::{CellClass, PhysicalLine};
use wlcrc_pcm::state::CellState;
use wlcrc_pcm::{LINE_BITS, LINE_CELLS, LINE_WORDS};

/// Maximum compressed payload (including the compressor-select bit) that can
/// be expanded 3-to-4 and still fit, with the BCH parity, in a 512-bit line.
pub const COMPRESSION_THRESHOLD_BITS: usize = 369;

/// Bits available for the expanded payload: 512 − 20 BCH parity bits.
const EXPANDED_BITS: usize = LINE_BITS - 20;

/// The DIN codec.
#[derive(Debug, Clone)]
pub struct DinCodec {
    fpc: Fpc,
    bdi: Bdi,
    bch: Bch,
    /// Word-parallel parity/syndrome tables for the fixed 492-bit payload.
    packed: PackedBch,
    mapping: SymbolMapping,
    /// Target-plane select masks of the fixed mapping. DIN's encoding never
    /// depends on the energy model (it picks code words by content, not
    /// cost), so the table is built once at construction; only its
    /// mapping-derived masks are consumed.
    table: TransitionTable,
}

impl DinCodec {
    /// Creates a DIN codec with the paper's parameters (FPC+BDI, 369-bit
    /// threshold, BCH with 20 parity bits).
    pub fn new() -> DinCodec {
        let bch = Bch::din_default();
        let packed = bch.packed(EXPANDED_BITS);
        let mapping = SymbolMapping::default_mapping();
        let table = TransitionTable::new(&mapping, &EnergyModel::paper_default());
        DinCodec { fpc: Fpc::new(), bdi: Bdi::new(), bch, packed, mapping, table }
    }

    /// `true` when the line compresses far enough to be DIN-encoded.
    pub fn is_encodable(&self, line: &MemoryLine) -> bool {
        self.compressed_payload(line).is_some()
    }

    /// The raw compressed stream (without the compressor-select bit) and
    /// which compressor produced it (`true` = BDI), if the line compresses
    /// to the 369-bit threshold.
    fn compressed_payload(&self, line: &MemoryLine) -> Option<(bool, BitBuf)> {
        // Prefer FPC (self-terminating, always decodable), fall back to BDI.
        let fpc_stream = self.fpc.encode_stream(line);
        if fpc_stream.len() < COMPRESSION_THRESHOLD_BITS {
            return Some((false, fpc_stream));
        }
        let bdi_stream = self.bdi.encode_stream(line)?;
        if bdi_stream.len() < COMPRESSION_THRESHOLD_BITS {
            Some((true, bdi_stream))
        } else {
            None
        }
    }

    /// The compressed bit stream (with a leading compressor-select bit), if
    /// the line compresses to the 369-bit threshold. Used by the scalar
    /// oracle path.
    fn compressed_stream(&self, line: &MemoryLine) -> Option<BitBuf> {
        let (bdi, payload) = self.compressed_payload(line)?;
        let mut out = BitBuf::with_capacity(payload.len() + 1);
        out.push(bdi);
        out.extend_from(&payload);
        Some(out)
    }

    /// The eight 4-bit code words of the 3-to-4 expansion: pairs of symbols
    /// drawn from {00, 10, 11} with at most one 11, listed from cheapest to
    /// most expensive.
    const CODEWORDS: [u8; 8] = [
        0b0000, // 00 00
        0b0010, // 00 10
        0b1000, // 10 00
        0b1010, // 10 10
        0b0011, // 00 11
        0b1100, // 11 00
        0b1011, // 10 11
        0b1110, // 11 10
    ];

    /// Precomputed inverse of [`Self::CODEWORDS`], indexed by the 4-bit code
    /// word: the decode hot path does one table load instead of a linear
    /// `iter().position()` scan. Unknown code words decode to 0, like the
    /// scan's `unwrap_or(0)` did.
    const CODEWORD_INDEX: [u8; 16] = {
        let mut table = [0u8; 16];
        let mut i = 0;
        while i < DinCodec::CODEWORDS.len() {
            table[DinCodec::CODEWORDS[i] as usize] = i as u8;
            i += 1;
        }
        table
    };

    /// Table-driven 3-to-4 expansion of a whole 12-bit chunk: four input
    /// groups expand to four code-word nibbles in one load. Group `g` (bits
    /// `3g..3g+3` of the index) lands in output bits `4g..4g+4`, matching
    /// the LSB-first order of the scalar expansion loop.
    const EXPAND12: [u16; 4096] = {
        let mut table = [0u16; 4096];
        let mut v = 0;
        while v < 4096 {
            let mut out = 0u16;
            let mut g = 0;
            while g < 4 {
                out |= (DinCodec::CODEWORDS[(v >> (3 * g)) & 0b111] as u16) << (4 * g);
                g += 1;
            }
            table[v] = out;
            v += 1;
        }
        table
    };

    /// Table-driven 4-to-3 contraction of a whole byte (two code words): the
    /// low nibble's 3 data bits land in output bits `0..3`, the high
    /// nibble's in bits `3..6`.
    const CONTRACT8: [u8; 256] = {
        let mut table = [0u8; 256];
        let mut b = 0;
        while b < 256 {
            table[b] =
                DinCodec::CODEWORD_INDEX[b & 0b1111] | (DinCodec::CODEWORD_INDEX[b >> 4] << 3);
            b += 1;
        }
        table
    };

    /// Expands 3 data bits into a 4-bit code word that avoids the
    /// highest-energy symbol (`01` → S4) entirely and uses at most one `11`
    /// (S3) symbol per pair of cells.
    fn expand3to4(bits3: u8) -> u8 {
        DinCodec::CODEWORDS[(bits3 & 0b111) as usize]
    }

    /// Inverse of [`DinCodec::expand3to4`]. Unknown code words decode to 0.
    fn contract4to3(bits4: u8) -> u8 {
        DinCodec::CODEWORD_INDEX[(bits4 & 0b1111) as usize]
    }

    fn flag_cell(&self) -> usize {
        LINE_CELLS
    }

    /// Bit-parallel encode of a compressed payload: prepends the
    /// compressor-select bit, runs the 3-to-4 expansion a u64 chunk at a
    /// time through [`Self::EXPAND12`], and folds in the word-parallel BCH
    /// parity. Returns the full 512-bit stored content as a line.
    fn expand_words(&self, bdi: bool, payload: &BitBuf) -> MemoryLine {
        // Selector-prepended stream, assembled in fixed words: the payload
        // words shifted left one bit with carry, the selector at bit 0. The
        // payload is at most 368 bits (6 words), so the carries stay in
        // bounds.
        let mut stream = [0u64; LINE_WORDS];
        stream[0] = u64::from(bdi);
        for (i, &w) in payload.words().iter().enumerate() {
            stream[i] |= w << 1;
            stream[i + 1] |= w >> 63;
        }
        let stream_len = payload.len() + 1;

        let mut full = [0u64; LINE_WORDS];
        let mut pos = 0usize;
        let mut opos = 0usize;
        while pos + 12 <= stream_len {
            let v = read_bits(&stream, pos, 12) as usize;
            push_bits(&mut full, opos, u64::from(DinCodec::EXPAND12[v]), 16);
            pos += 12;
            opos += 16;
        }
        // Tail: the same take-up-to-3 loop as the scalar path, so partial
        // final groups expand identically.
        while pos < stream_len {
            let take = (stream_len - pos).min(3);
            let v = read_bits(&stream, pos, take) as u8;
            pos += take;
            push_bits(&mut full, opos, u64::from(DinCodec::expand3to4(v)), 4);
            opos += 4;
        }
        debug_assert!(opos <= EXPANDED_BITS);
        // The expanded payload is 492 bits: the 20 parity bits occupy
        // exactly the top 20 bits of word 7.
        let parity = self.packed.parity_words(&full);
        full[EXPANDED_BITS / 64] |= u64::from(parity) << (EXPANDED_BITS % 64);
        MemoryLine::from_words(full)
    }

    /// Scalar reference encoder: the original per-bit implementation, kept
    /// callable as the oracle the `kernel_equivalence` proptests pin the
    /// bit-parallel [`LineCodec::encode`] against.
    pub fn encode_scalar(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        _energy: &EnergyModel,
    ) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        out.set_class(self.flag_cell(), CellClass::Aux);

        if let Some(stream) = self.compressed_stream(data) {
            // 3-to-4 expansion of the compressed payload.
            let mut expanded = BitBuf::with_capacity(EXPANDED_BITS);
            let mut pos = 0usize;
            while pos < stream.len() {
                let take = (stream.len() - pos).min(3);
                let v = stream.read_u64(pos, take) as u8;
                pos += take;
                expanded.push_u64(u64::from(DinCodec::expand3to4(v)), 4);
            }
            // Pad the expanded payload to its fixed length, then add BCH parity.
            while expanded.len() < EXPANDED_BITS {
                expanded.push(false);
            }
            let parity = self.bch.parity(&expanded);
            let mut full = expanded;
            full.extend_from(&parity);
            debug_assert_eq!(full.len(), LINE_BITS);
            let mut stored_bits = MemoryLine::ZERO;
            for i in 0..LINE_BITS {
                stored_bits.set_bit(i, full.get(i));
            }
            for cell in 0..LINE_CELLS {
                out.set_state(cell, self.mapping.state_of(stored_bits.symbol(cell)));
            }
            // Compressed lines are flagged with the lowest-energy state.
            out.set_state(self.flag_cell(), CellState::S1);
        } else {
            for cell in 0..LINE_CELLS {
                out.set_state(cell, self.mapping.state_of(data.symbol(cell)));
            }
            out.set_state(self.flag_cell(), CellState::S2);
        }
        out
    }

    /// Scalar reference decoder matching [`DinCodec::encode_scalar`], kept
    /// as the oracle for the bit-parallel [`LineCodec::decode`].
    pub fn decode_scalar(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        let mut bits = MemoryLine::ZERO;
        for cell in 0..LINE_CELLS {
            bits.set_symbol(cell, self.mapping.symbol_of(stored.state(cell)));
        }
        if stored.state(self.flag_cell()) != CellState::S1 {
            return bits;
        }
        // BCH-correct the expanded payload, then contract 4-to-3 and
        // decompress.
        let mut received = BitBuf::with_capacity(LINE_BITS);
        for i in 0..LINE_BITS {
            received.push(bits.bit(i));
        }
        let corrected = self.bch.decode(&received).unwrap_or_else(|_| {
            // Uncorrectable: fall back to the raw payload bits.
            received.iter().take(EXPANDED_BITS).collect()
        });
        let mut stream = BitBuf::with_capacity(COMPRESSION_THRESHOLD_BITS + 3);
        let mut i = 0usize;
        while i + 4 <= corrected.len() {
            let code = corrected.read_u64(i, 4) as u8;
            stream.push_u64(u64::from(DinCodec::contract4to3(code)), 3);
            i += 4;
        }
        if stream.is_empty() {
            return MemoryLine::ZERO;
        }
        let selector_bdi = stream.get(0);
        let payload = stream.slice_from(1);
        if selector_bdi {
            self.bdi.decode_stream(&payload)
        } else {
            self.fpc.decode_stream(&payload)
        }
    }
}

/// Reads `nbits` (≤ 12) bits starting at bit `pos` from a fixed word buffer,
/// LSB-first like [`BitBuf::read_u64`].
#[inline]
fn read_bits(words: &[u64; LINE_WORDS], pos: usize, nbits: usize) -> u64 {
    let (w, off) = (pos / 64, pos % 64);
    let mut v = words[w] >> off;
    if off + nbits > 64 {
        v |= words[w + 1] << (64 - off);
    }
    v & ((1u64 << nbits) - 1)
}

/// ORs `nbits` (≤ 16) bits of `value` into a fixed word buffer starting at
/// bit `pos`; the destination bits must currently be zero.
#[inline]
fn push_bits(words: &mut [u64; LINE_WORDS], pos: usize, value: u64, nbits: usize) {
    let (w, off) = (pos / 64, pos % 64);
    words[w] |= value << off;
    if off + nbits > 64 {
        words[w + 1] |= value >> (64 - off);
    }
}

impl Default for DinCodec {
    fn default() -> DinCodec {
        DinCodec::new()
    }
}

impl LineCodec for DinCodec {
    fn name(&self) -> &str {
        "DIN"
    }

    fn encoded_cells(&self) -> usize {
        LINE_CELLS + 1
    }

    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, _energy: &EnergyModel) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        out.set_class(self.flag_cell(), CellClass::Aux);

        // Compressed lines are flagged with the lowest-energy state.
        let (stored_bits, flag) = match self.compressed_payload(data) {
            Some((bdi, payload)) => (self.expand_words(bdi, &payload), CellState::S1),
            None => (*data, CellState::S2),
        };
        let planes = stored_bits.symbol_planes();
        let mut plane0 = [0u64; PLANE_WORDS];
        let mut plane1 = [0u64; PLANE_WORDS];
        for w in 0..PLANE_WORDS {
            let (t0, t1) = self.table.target_planes(&planes, w);
            plane0[w] = t0;
            plane1[w] = t1;
        }
        kernel::write_states_from_planes(&mut out, LINE_CELLS, &plane0, &plane1);
        out.set_state(self.flag_cell(), flag);
        out
    }

    fn decode(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        let states = stored.state_planes();
        let (p0, p1) = kernel::symbol_planes_from_states(&states, self.mapping.symbols_per_state());
        let bits = kernel::line_from_planes(&p0, &p1);
        if stored.state(self.flag_cell()) != CellState::S1 {
            return bits;
        }
        // BCH-check the expanded payload word-parallel; only lines with
        // non-zero syndromes (disturbed cells) pay the scalar corrector.
        let recv = *bits.words();
        let corrected: [u64; LINE_WORDS] = if self.packed.syndromes(&recv) == [0; 4] {
            // Already a codeword: the message is its first 492 bits.
            let mut msg = recv;
            msg[EXPANDED_BITS / 64] &= (1u64 << (EXPANDED_BITS % 64)) - 1;
            msg
        } else {
            let received = BitBuf::from_words(recv.to_vec(), LINE_BITS);
            let corrected_buf = self.bch.decode(&received).unwrap_or_else(|_| {
                // Uncorrectable: fall back to the raw payload bits.
                received.iter().take(EXPANDED_BITS).collect()
            });
            let mut msg = [0u64; LINE_WORDS];
            for (slot, &w) in msg.iter_mut().zip(corrected_buf.words()) {
                *slot = w;
            }
            msg
        };
        // 4-to-3 contraction, a byte (two code words) per load; 492 bits
        // leave one final lone code word after the byte loop.
        let mut stream = [0u64; LINE_WORDS];
        let mut opos = 0usize;
        let mut i = 0usize;
        while i + 8 <= EXPANDED_BITS {
            let b = read_bits(&corrected, i, 8) as usize;
            push_bits(&mut stream, opos, u64::from(DinCodec::CONTRACT8[b]), 6);
            i += 8;
            opos += 6;
        }
        while i + 4 <= EXPANDED_BITS {
            let code = read_bits(&corrected, i, 4) as u8;
            push_bits(&mut stream, opos, u64::from(DinCodec::contract4to3(code)), 3);
            i += 4;
            opos += 3;
        }
        let selector_bdi = stream[0] & 1 == 1;
        let mut payload_words = vec![0u64; (opos - 1).div_ceil(64)];
        for (w, slot) in payload_words.iter_mut().enumerate() {
            *slot = (stream[w] >> 1) | (stream[w + 1] << 63);
        }
        let payload = BitBuf::from_words(payload_words, opos - 1);
        if selector_bdi {
            self.bdi.decode_stream(&payload)
        } else {
            self.fpc.decode_stream(&payload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wlcrc_pcm::state::Symbol;

    fn compressible_line(rng: &mut StdRng) -> MemoryLine {
        let mut line = MemoryLine::ZERO;
        for i in 0..8 {
            line.set_word(i, u64::from(rng.gen::<u16>()));
        }
        line
    }

    #[test]
    fn expansion_is_invertible() {
        for v in 0..8u8 {
            assert_eq!(DinCodec::contract4to3(DinCodec::expand3to4(v)), v);
        }
    }

    #[test]
    fn expansion_avoids_high_energy_symbols() {
        let default = SymbolMapping::default_mapping();
        for v in 0..8u8 {
            let code = DinCodec::expand3to4(v);
            let sym_lo = Symbol::new(code & 0b11);
            let sym_hi = Symbol::new((code >> 2) & 0b11);
            for s in [sym_lo, sym_hi] {
                assert_ne!(default.state_of(s), CellState::S4, "codeword {code:04b}");
            }
            let s3_count =
                [sym_lo, sym_hi].iter().filter(|s| default.state_of(**s) == CellState::S3).count();
            assert!(s3_count <= 1, "codeword {code:04b}");
        }
    }

    #[test]
    fn compressible_lines_round_trip() {
        let codec = DinCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let data = compressible_line(&mut rng);
            assert!(codec.is_encodable(&data));
            let enc = codec.encode(&data, &codec.initial_line(), &energy);
            assert_eq!(enc.state(256), CellState::S1, "compressed flag");
            assert_eq!(codec.decode(&enc), data);
        }
    }

    #[test]
    fn incompressible_lines_round_trip_unencoded() {
        let codec = DinCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let mut words = [0u64; 8];
            for w in &mut words {
                *w = rng.gen();
            }
            let data = MemoryLine::from_words(words);
            assert!(!codec.is_encodable(&data));
            let enc = codec.encode(&data, &codec.initial_line(), &energy);
            assert_eq!(enc.state(256), CellState::S2, "uncompressed flag");
            assert_eq!(codec.decode(&enc), data);
        }
    }

    #[test]
    fn bch_protects_against_two_flipped_cells() {
        // Flip two stored bits of a compressed line; decode must still
        // recover the original data thanks to the BCH code.
        let codec = DinCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(9);
        let data = compressible_line(&mut rng);
        let mut enc = codec.encode(&data, &codec.initial_line(), &energy);
        // Corrupt two data cells by toggling their stored bit content.
        for cell in [10usize, 200] {
            let sym = SymbolMapping::default_mapping().symbol_of(enc.state(cell));
            let flipped = Symbol::new(sym.value() ^ 0b01);
            enc.set_state(cell, SymbolMapping::default_mapping().state_of(flipped));
        }
        assert_eq!(codec.decode(&enc), data);
    }

    #[test]
    fn kernel_encode_matches_scalar_encode() {
        let codec = DinCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(21);
        for round in 0..60 {
            // Alternate compressible and incompressible content so both the
            // expanded and the passthrough paths are pinned.
            let data = if round % 3 == 0 {
                let mut words = [0u64; 8];
                for w in &mut words {
                    *w = rng.gen::<u64>() | 0x8000_0000_0000_0000;
                }
                MemoryLine::from_words(words)
            } else {
                compressible_line(&mut rng)
            };
            let old = codec.initial_line();
            let kernel_enc = codec.encode(&data, &old, &energy);
            let scalar_enc = codec.encode_scalar(&data, &old, &energy);
            assert_eq!(kernel_enc, scalar_enc, "round {round}");
            assert_eq!(codec.decode(&kernel_enc), codec.decode_scalar(&scalar_enc));
            assert_eq!(codec.decode(&kernel_enc), data);
        }
    }

    #[test]
    fn kernel_decode_matches_scalar_decode_on_disturbed_lines() {
        // Flip stored bits (0, 1, 2 and 3 cells) so the zero-syndrome fast
        // path, the corrector and the uncorrectable fallback all stay
        // byte-identical to the scalar decoder.
        let codec = DinCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(23);
        for flips in 0..4usize {
            for _ in 0..20 {
                let data = compressible_line(&mut rng);
                let mut enc = codec.encode(&data, &codec.initial_line(), &energy);
                for _ in 0..flips {
                    let cell = rng.gen_range(0..LINE_CELLS);
                    let sym = SymbolMapping::default_mapping().symbol_of(enc.state(cell));
                    let flipped = Symbol::new(sym.value() ^ 0b01);
                    enc.set_state(cell, SymbolMapping::default_mapping().state_of(flipped));
                }
                assert_eq!(codec.decode(&enc), codec.decode_scalar(&enc), "flips {flips}");
            }
        }
    }

    #[test]
    fn coverage_is_partial_like_the_paper() {
        // Roughly 30% of real-workload-like lines should be encodable; here we
        // just check that neither everything nor nothing is covered when the
        // content mixes compressible and incompressible lines.
        let codec = DinCodec::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut covered = 0;
        let total = 100;
        for i in 0..total {
            let line = if i % 2 == 0 {
                compressible_line(&mut rng)
            } else {
                let mut words = [0u64; 8];
                for w in &mut words {
                    *w = rng.gen::<u64>() | 0x8000_0000_0000_0000;
                }
                MemoryLine::from_words(words)
            };
            if codec.is_encodable(&line) {
                covered += 1;
            }
        }
        assert!(covered > 25 && covered < 75, "covered = {covered}");
    }
}
