//! The DIN comparison scheme: compression + 3-to-4-bit expansion + BCH.
//!
//! DIN (originally proposed to mitigate write disturbance) compresses a
//! 512-bit line with FPC/BDI; when the compressed payload fits in 369 bits it
//! expands every 3 data bits into a 4-bit code word chosen to avoid the
//! high-energy (disturbance-prone) states, and protects the result with a
//! 20-bit BCH code that can correct two write-disturbance errors. Lines that
//! do not compress far enough are written unencoded. One auxiliary flag
//! symbol per line distinguishes the two formats.

use wlcrc_compress::{Bdi, Fpc};
use wlcrc_ecc::{Bch, BitBuf};
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::energy::EnergyModel;
use wlcrc_pcm::line::MemoryLine;
use wlcrc_pcm::mapping::SymbolMapping;
use wlcrc_pcm::physical::{CellClass, PhysicalLine};
use wlcrc_pcm::state::CellState;
use wlcrc_pcm::{LINE_BITS, LINE_CELLS};

/// Maximum compressed payload (including the compressor-select bit) that can
/// be expanded 3-to-4 and still fit, with the BCH parity, in a 512-bit line.
pub const COMPRESSION_THRESHOLD_BITS: usize = 369;

/// Bits available for the expanded payload: 512 − 20 BCH parity bits.
const EXPANDED_BITS: usize = LINE_BITS - 20;

/// The DIN codec.
#[derive(Debug, Clone)]
pub struct DinCodec {
    fpc: Fpc,
    bdi: Bdi,
    bch: Bch,
    mapping: SymbolMapping,
}

impl DinCodec {
    /// Creates a DIN codec with the paper's parameters (FPC+BDI, 369-bit
    /// threshold, BCH with 20 parity bits).
    pub fn new() -> DinCodec {
        DinCodec {
            fpc: Fpc::new(),
            bdi: Bdi::new(),
            bch: Bch::din_default(),
            mapping: SymbolMapping::default_mapping(),
        }
    }

    /// `true` when the line compresses far enough to be DIN-encoded.
    pub fn is_encodable(&self, line: &MemoryLine) -> bool {
        self.compressed_stream(line).is_some()
    }

    /// The compressed bit stream (with a leading compressor-select bit), if
    /// the line compresses to the 369-bit threshold.
    fn compressed_stream(&self, line: &MemoryLine) -> Option<BitBuf> {
        // Prefer FPC (self-terminating, always decodable), fall back to BDI.
        let fpc_stream = {
            let s = self.fpc.encode_stream(line);
            if s.len() < COMPRESSION_THRESHOLD_BITS {
                Some(s)
            } else {
                None
            }
        };
        if let Some(s) = fpc_stream {
            let mut out = BitBuf::with_capacity(s.len() + 1);
            out.push(false);
            out.extend_from(&s);
            return Some(out);
        }
        let bdi_stream = self.bdi.encode_stream(line)?;
        if bdi_stream.len() < COMPRESSION_THRESHOLD_BITS {
            let mut out = BitBuf::with_capacity(bdi_stream.len() + 1);
            out.push(true);
            out.extend_from(&bdi_stream);
            Some(out)
        } else {
            None
        }
    }

    /// The eight 4-bit code words of the 3-to-4 expansion: pairs of symbols
    /// drawn from {00, 10, 11} with at most one 11, listed from cheapest to
    /// most expensive.
    const CODEWORDS: [u8; 8] = [
        0b0000, // 00 00
        0b0010, // 00 10
        0b1000, // 10 00
        0b1010, // 10 10
        0b0011, // 00 11
        0b1100, // 11 00
        0b1011, // 10 11
        0b1110, // 11 10
    ];

    /// Precomputed inverse of [`Self::CODEWORDS`], indexed by the 4-bit code
    /// word: the decode hot path does one table load instead of a linear
    /// `iter().position()` scan. Unknown code words decode to 0, like the
    /// scan's `unwrap_or(0)` did.
    const CODEWORD_INDEX: [u8; 16] = {
        let mut table = [0u8; 16];
        let mut i = 0;
        while i < DinCodec::CODEWORDS.len() {
            table[DinCodec::CODEWORDS[i] as usize] = i as u8;
            i += 1;
        }
        table
    };

    /// Expands 3 data bits into a 4-bit code word that avoids the
    /// highest-energy symbol (`01` → S4) entirely and uses at most one `11`
    /// (S3) symbol per pair of cells.
    fn expand3to4(bits3: u8) -> u8 {
        DinCodec::CODEWORDS[(bits3 & 0b111) as usize]
    }

    /// Inverse of [`DinCodec::expand3to4`]. Unknown code words decode to 0.
    fn contract4to3(bits4: u8) -> u8 {
        DinCodec::CODEWORD_INDEX[(bits4 & 0b1111) as usize]
    }

    fn flag_cell(&self) -> usize {
        LINE_CELLS
    }
}

impl Default for DinCodec {
    fn default() -> DinCodec {
        DinCodec::new()
    }
}

impl LineCodec for DinCodec {
    fn name(&self) -> &str {
        "DIN"
    }

    fn encoded_cells(&self) -> usize {
        LINE_CELLS + 1
    }

    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, _energy: &EnergyModel) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        out.set_class(self.flag_cell(), CellClass::Aux);

        if let Some(stream) = self.compressed_stream(data) {
            // 3-to-4 expansion of the compressed payload.
            let mut expanded = BitBuf::with_capacity(EXPANDED_BITS);
            let mut pos = 0usize;
            while pos < stream.len() {
                let take = (stream.len() - pos).min(3);
                let v = stream.read_u64(pos, take) as u8;
                pos += take;
                expanded.push_u64(u64::from(DinCodec::expand3to4(v)), 4);
            }
            // Pad the expanded payload to its fixed length, then add BCH parity.
            while expanded.len() < EXPANDED_BITS {
                expanded.push(false);
            }
            let parity = self.bch.parity(&expanded);
            let mut full = expanded;
            full.extend_from(&parity);
            debug_assert_eq!(full.len(), LINE_BITS);
            let mut stored_bits = MemoryLine::ZERO;
            for i in 0..LINE_BITS {
                stored_bits.set_bit(i, full.get(i));
            }
            for cell in 0..LINE_CELLS {
                out.set_state(cell, self.mapping.state_of(stored_bits.symbol(cell)));
            }
            // Compressed lines are flagged with the lowest-energy state.
            out.set_state(self.flag_cell(), CellState::S1);
        } else {
            for cell in 0..LINE_CELLS {
                out.set_state(cell, self.mapping.state_of(data.symbol(cell)));
            }
            out.set_state(self.flag_cell(), CellState::S2);
        }
        out
    }

    fn decode(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        let mut bits = MemoryLine::ZERO;
        for cell in 0..LINE_CELLS {
            bits.set_symbol(cell, self.mapping.symbol_of(stored.state(cell)));
        }
        if stored.state(self.flag_cell()) != CellState::S1 {
            return bits;
        }
        // BCH-correct the expanded payload, then contract 4-to-3 and
        // decompress.
        let mut received = BitBuf::with_capacity(LINE_BITS);
        for i in 0..LINE_BITS {
            received.push(bits.bit(i));
        }
        let corrected = self.bch.decode(&received).unwrap_or_else(|_| {
            // Uncorrectable: fall back to the raw payload bits.
            received.iter().take(EXPANDED_BITS).collect()
        });
        let mut stream = BitBuf::with_capacity(COMPRESSION_THRESHOLD_BITS + 3);
        let mut i = 0usize;
        while i + 4 <= corrected.len() {
            let code = corrected.read_u64(i, 4) as u8;
            stream.push_u64(u64::from(DinCodec::contract4to3(code)), 3);
            i += 4;
        }
        if stream.is_empty() {
            return MemoryLine::ZERO;
        }
        let selector_bdi = stream.get(0);
        let payload = stream.slice_from(1);
        if selector_bdi {
            self.bdi.decode_stream(&payload)
        } else {
            self.fpc.decode_stream(&payload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wlcrc_pcm::state::Symbol;

    fn compressible_line(rng: &mut StdRng) -> MemoryLine {
        let mut line = MemoryLine::ZERO;
        for i in 0..8 {
            line.set_word(i, u64::from(rng.gen::<u16>()));
        }
        line
    }

    #[test]
    fn expansion_is_invertible() {
        for v in 0..8u8 {
            assert_eq!(DinCodec::contract4to3(DinCodec::expand3to4(v)), v);
        }
    }

    #[test]
    fn expansion_avoids_high_energy_symbols() {
        let default = SymbolMapping::default_mapping();
        for v in 0..8u8 {
            let code = DinCodec::expand3to4(v);
            let sym_lo = Symbol::new(code & 0b11);
            let sym_hi = Symbol::new((code >> 2) & 0b11);
            for s in [sym_lo, sym_hi] {
                assert_ne!(default.state_of(s), CellState::S4, "codeword {code:04b}");
            }
            let s3_count =
                [sym_lo, sym_hi].iter().filter(|s| default.state_of(**s) == CellState::S3).count();
            assert!(s3_count <= 1, "codeword {code:04b}");
        }
    }

    #[test]
    fn compressible_lines_round_trip() {
        let codec = DinCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let data = compressible_line(&mut rng);
            assert!(codec.is_encodable(&data));
            let enc = codec.encode(&data, &codec.initial_line(), &energy);
            assert_eq!(enc.state(256), CellState::S1, "compressed flag");
            assert_eq!(codec.decode(&enc), data);
        }
    }

    #[test]
    fn incompressible_lines_round_trip_unencoded() {
        let codec = DinCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let mut words = [0u64; 8];
            for w in &mut words {
                *w = rng.gen();
            }
            let data = MemoryLine::from_words(words);
            assert!(!codec.is_encodable(&data));
            let enc = codec.encode(&data, &codec.initial_line(), &energy);
            assert_eq!(enc.state(256), CellState::S2, "uncompressed flag");
            assert_eq!(codec.decode(&enc), data);
        }
    }

    #[test]
    fn bch_protects_against_two_flipped_cells() {
        // Flip two stored bits of a compressed line; decode must still
        // recover the original data thanks to the BCH code.
        let codec = DinCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(9);
        let data = compressible_line(&mut rng);
        let mut enc = codec.encode(&data, &codec.initial_line(), &energy);
        // Corrupt two data cells by toggling their stored bit content.
        for cell in [10usize, 200] {
            let sym = SymbolMapping::default_mapping().symbol_of(enc.state(cell));
            let flipped = Symbol::new(sym.value() ^ 0b01);
            enc.set_state(cell, SymbolMapping::default_mapping().state_of(flipped));
        }
        assert_eq!(codec.decode(&enc), data);
    }

    #[test]
    fn coverage_is_partial_like_the_paper() {
        // Roughly 30% of real-workload-like lines should be encodable; here we
        // just check that neither everything nor nothing is covered when the
        // content mixes compressible and incompressible lines.
        let codec = DinCodec::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut covered = 0;
        let total = 100;
        for i in 0..total {
            let line = if i % 2 == 0 {
                compressible_line(&mut rng)
            } else {
                let mut words = [0u64; 8];
                for w in &mut words {
                    *w = rng.gen::<u64>() | 0x8000_0000_0000_0000;
                }
                MemoryLine::from_words(words)
            };
            if codec.is_encodable(&line) {
                covered += 1;
            }
        }
        assert!(covered > 25 && covered < 75, "covered = {covered}");
    }
}
