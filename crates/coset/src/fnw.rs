//! Flip-N-Write (FNW) adapted to MLC PCM.
//!
//! FNW stores either a data block or its bitwise complement, whichever incurs
//! the smaller differential-write cost, and records the choice in a single
//! auxiliary bit per block. Following the paper's ISO-overhead comparison,
//! the line is partitioned into 128-bit blocks (four per line), so the scheme
//! uses four auxiliary bits — two auxiliary symbols — per 512-bit line, the
//! same overhead as FlipMin and 6cosets.

use crate::granularity::Granularity;
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::energy::EnergyModel;
use wlcrc_pcm::kernel::{self, TransitionTable};
use wlcrc_pcm::line::MemoryLine;
use wlcrc_pcm::mapping::SymbolMapping;
use wlcrc_pcm::physical::{CellClass, PhysicalLine};
use wlcrc_pcm::state::{CellState, Symbol};
use wlcrc_pcm::LINE_CELLS;

/// The Flip-N-Write codec.
#[derive(Debug, Clone)]
pub struct FnwCodec {
    granularity: Granularity,
    mapping: SymbolMapping,
    name: String,
}

impl FnwCodec {
    /// Creates an FNW codec flipping blocks of the given granularity.
    ///
    /// # Panics
    ///
    /// Panics if the granularity is finer than 8 bits: the per-write flip
    /// decisions are kept in a `u64` mask (one bit per block), which covers
    /// the paper's whole 8..512-bit sweep but not more than 64 blocks.
    pub fn new(granularity: Granularity) -> FnwCodec {
        assert!(
            granularity.blocks_per_line() <= 64,
            "FnwCodec supports at most 64 blocks per line (granularity >= 8 bits)"
        );
        FnwCodec {
            granularity,
            mapping: SymbolMapping::default_mapping(),
            name: format!("FNW-{}", granularity.bits()),
        }
    }

    /// The configuration used in the paper's evaluation: 128-bit blocks.
    pub fn paper_default() -> FnwCodec {
        FnwCodec::new(Granularity::new(128))
    }

    /// The block granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of auxiliary cells appended to the line.
    pub fn aux_cells(&self) -> usize {
        self.granularity.blocks_per_line().div_ceil(2)
    }

    fn flip_cost(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        cells: std::ops::Range<usize>,
        flipped: bool,
        energy: &EnergyModel,
    ) -> f64 {
        let mut cost = 0.0;
        for cell in cells {
            let mut symbol = data.symbol(cell);
            if flipped {
                symbol = Symbol::new(!symbol.value() & 0b11);
            }
            let target = self.mapping.state_of(symbol);
            cost += energy.transition_energy_pj(old.state(cell), target);
        }
        cost
    }

    /// The two transition tables of the scheme: the plain mapping, and the
    /// mapping composed with the symbol complement (what a flipped block
    /// stores).
    fn tables(&self, energy: &EnergyModel) -> [TransitionTable; 2] {
        let keep = TransitionTable::new(&self.mapping, energy);
        let mut flipped_states = [CellState::S1; 4];
        for (v, slot) in flipped_states.iter_mut().enumerate() {
            *slot = self.mapping.state_of(Symbol::new(!(v as u8) & 0b11));
        }
        [keep, TransitionTable::from_states(flipped_states, energy)]
    }

    /// Shared encode body; `use_kernel` switches the per-block flip costs
    /// between the bit-parallel kernel and the scalar [`Self::flip_cost`].
    fn encode_impl(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        energy: &EnergyModel,
        use_kernel: bool,
    ) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let blocks = self.granularity.blocks_per_line();
        debug_assert!(blocks <= 64, "flip mask is a u64");
        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        for cell in LINE_CELLS..self.encoded_cells() {
            out.set_class(cell, CellClass::Aux);
        }
        let tables = self.tables(energy);
        let kernel_ctx = use_kernel.then(|| (data.symbol_planes(), old.state_planes()));
        let mut flips = 0u64;
        for block in 0..blocks {
            let cells = self.granularity.block_cells(block);
            let (keep, inverted) = match &kernel_ctx {
                Some((planes, stored)) => (
                    kernel::block_cost(planes, stored, cells.clone(), &tables[0]),
                    kernel::block_cost(planes, stored, cells.clone(), &tables[1]),
                ),
                None => (
                    self.flip_cost(data, old, cells.clone(), false, energy),
                    self.flip_cost(data, old, cells.clone(), true, energy),
                ),
            };
            let flip = inverted < keep;
            if flip {
                flips |= 1 << block;
            }
            kernel::write_block(data, &mut out, cells, &tables[usize::from(flip)]);
        }
        // Pack flip bits, two per auxiliary cell, through the default mapping.
        for i in 0..self.aux_cells() {
            let msb = (flips >> (2 * i)) & 1 == 1;
            let lsb = 2 * i + 1 < blocks && (flips >> (2 * i + 1)) & 1 == 1;
            out.set_state(LINE_CELLS + i, self.mapping.state_of(Symbol::from_bits(msb, lsb)));
        }
        out
    }

    /// The scalar reference encoder (see [`crate::cost`]); kept callable for
    /// the equivalence tests and the perf snapshot.
    #[doc(hidden)]
    pub fn encode_scalar(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        energy: &EnergyModel,
    ) -> PhysicalLine {
        self.encode_impl(data, old, energy, false)
    }
}

impl LineCodec for FnwCodec {
    fn name(&self) -> &str {
        &self.name
    }

    fn encoded_cells(&self) -> usize {
        LINE_CELLS + self.aux_cells()
    }

    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, energy: &EnergyModel) -> PhysicalLine {
        self.encode_impl(data, old, energy, true)
    }

    fn decode(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        let blocks = self.granularity.blocks_per_line();
        let mut flips = vec![false; blocks];
        for (i, chunk) in flips.chunks_mut(2).enumerate() {
            let symbol = self.mapping.symbol_of(stored.state(LINE_CELLS + i));
            chunk[0] = symbol.msb();
            if chunk.len() > 1 {
                chunk[1] = symbol.lsb();
            }
        }
        let mut data = MemoryLine::ZERO;
        for (block, flip) in flips.iter().enumerate() {
            for cell in self.granularity.block_cells(block) {
                let mut symbol = self.mapping.symbol_of(stored.state(cell));
                if *flip {
                    symbol = Symbol::new(!symbol.value() & 0b11);
                }
                data.set_symbol(cell, symbol);
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wlcrc_pcm::codec::RawCodec;
    use wlcrc_pcm::write::differential_write;

    fn random_line(rng: &mut StdRng) -> MemoryLine {
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = rng.gen();
        }
        MemoryLine::from_words(words)
    }

    #[test]
    fn paper_configuration_uses_two_aux_symbols() {
        let codec = FnwCodec::paper_default();
        assert_eq!(codec.aux_cells(), 2);
        assert_eq!(codec.encoded_cells(), 258);
    }

    #[test]
    fn round_trip() {
        let energy = EnergyModel::paper_default();
        let codec = FnwCodec::paper_default();
        let mut rng = StdRng::seed_from_u64(8);
        let mut old = codec.initial_line();
        for _ in 0..50 {
            let data = random_line(&mut rng);
            let enc = codec.encode(&data, &old, &energy);
            assert_eq!(codec.decode(&enc), data);
            old = enc;
        }
    }

    #[test]
    fn flipping_helps_on_inverted_rewrites() {
        // Rewriting a line with its own complement is the best case for FNW:
        // the flipped encoding leaves every data cell untouched.
        let energy = EnergyModel::paper_default();
        let codec = FnwCodec::paper_default();
        let raw = RawCodec::new();
        let mut rng = StdRng::seed_from_u64(15);
        let original = random_line(&mut rng);
        let complemented = original.complement();

        let old_fnw = codec.encode(&original, &codec.initial_line(), &energy);
        let new_fnw = codec.encode(&complemented, &old_fnw, &energy);
        let fnw_cost = differential_write(&old_fnw, &new_fnw, &energy).data_energy_pj;

        let old_raw = raw.encode(&original, &raw.initial_line(), &energy);
        let new_raw = raw.encode(&complemented, &old_raw, &energy);
        let raw_cost = differential_write(&old_raw, &new_raw, &energy).data_energy_pj;

        assert_eq!(fnw_cost, 0.0);
        assert!(raw_cost > 0.0);
    }

    #[test]
    fn kernel_encode_matches_scalar_encode() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(51);
        for g in [16usize, 64, 128, 512] {
            let codec = FnwCodec::new(Granularity::new(g));
            let mut old = codec.initial_line();
            for _ in 0..10 {
                let data = random_line(&mut rng);
                let kernel = codec.encode(&data, &old, &energy);
                assert_eq!(kernel, codec.encode_scalar(&data, &old, &energy), "g={g}");
                old = kernel;
            }
        }
    }

    #[test]
    fn fnw_never_worse_than_not_flipping() {
        // Against the same stored content, the flip decision can only lower
        // the data-cell write energy compared to writing the data unflipped.
        let energy = EnergyModel::paper_default();
        let codec = FnwCodec::paper_default();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..30 {
            let a = random_line(&mut rng);
            let b = random_line(&mut rng);
            let old = codec.encode(&a, &codec.initial_line(), &energy);
            let new = codec.encode(&b, &old, &energy);
            let chosen = differential_write(&old, &new, &energy).data_energy_pj;
            let unflipped: f64 = (0..4)
                .map(|blk| {
                    codec.flip_cost(&b, &old, codec.granularity().block_cells(blk), false, &energy)
                })
                .sum();
            assert!(chosen <= unflipped + 1e-9);
        }
    }
}
