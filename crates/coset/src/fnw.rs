//! Flip-N-Write (FNW) adapted to MLC PCM.
//!
//! FNW stores either a data block or its bitwise complement, whichever incurs
//! the smaller differential-write cost, and records the choice in a single
//! auxiliary bit per block. Following the paper's ISO-overhead comparison,
//! the line is partitioned into 128-bit blocks (four per line), so the scheme
//! uses four auxiliary bits — two auxiliary symbols — per 512-bit line, the
//! same overhead as FlipMin and 6cosets.

use crate::granularity::Granularity;
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::energy::EnergyModel;
use wlcrc_pcm::kernel::{self, StatePlanes, SymbolPlanes, TransitionTable, PLANE_WORDS};
use wlcrc_pcm::line::MemoryLine;
use wlcrc_pcm::mapping::SymbolMapping;
use wlcrc_pcm::physical::{CellClass, PhysicalLine};
use wlcrc_pcm::state::{CellState, Symbol};
use wlcrc_pcm::LINE_CELLS;

/// The Flip-N-Write codec.
#[derive(Debug, Clone)]
pub struct FnwCodec {
    granularity: Granularity,
    mapping: SymbolMapping,
    name: String,
}

impl FnwCodec {
    /// Creates an FNW codec flipping blocks of the given granularity.
    ///
    /// # Panics
    ///
    /// Panics if the granularity is finer than 8 bits: the per-write flip
    /// decisions are kept in a `u64` mask (one bit per block), which covers
    /// the paper's whole 8..512-bit sweep but not more than 64 blocks.
    pub fn new(granularity: Granularity) -> FnwCodec {
        assert!(
            granularity.blocks_per_line() <= 64,
            "FnwCodec supports at most 64 blocks per line (granularity >= 8 bits)"
        );
        FnwCodec {
            granularity,
            mapping: SymbolMapping::default_mapping(),
            name: format!("FNW-{}", granularity.bits()),
        }
    }

    /// The configuration used in the paper's evaluation: 128-bit blocks.
    pub fn paper_default() -> FnwCodec {
        FnwCodec::new(Granularity::new(128))
    }

    /// The block granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of auxiliary cells appended to the line.
    pub fn aux_cells(&self) -> usize {
        self.granularity.blocks_per_line().div_ceil(2)
    }

    fn flip_cost(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        cells: std::ops::Range<usize>,
        flipped: bool,
        energy: &EnergyModel,
    ) -> f64 {
        let mut cost = 0.0;
        for cell in cells {
            let mut symbol = data.symbol(cell);
            if flipped {
                symbol = Symbol::new(!symbol.value() & 0b11);
            }
            let target = self.mapping.state_of(symbol);
            cost += energy.transition_energy_pj(old.state(cell), target);
        }
        cost
    }

    /// The two transition tables of the scheme: the plain mapping, and the
    /// mapping composed with the symbol complement (what a flipped block
    /// stores).
    fn tables(&self, energy: &EnergyModel) -> [TransitionTable; 2] {
        let keep = TransitionTable::new(&self.mapping, energy);
        let mut flipped_states = [CellState::S1; 4];
        for (v, slot) in flipped_states.iter_mut().enumerate() {
            *slot = self.mapping.state_of(Symbol::new(!(v as u8) & 0b11));
        }
        [keep, TransitionTable::from_states(flipped_states, energy)]
    }

    /// Packs the per-block flip decisions into the auxiliary cells, two
    /// flip bits per aux symbol through the default mapping.
    fn write_aux(&self, out: &mut PhysicalLine, flips: u64, blocks: usize) {
        for i in 0..self.aux_cells() {
            let msb = (flips >> (2 * i)) & 1 == 1;
            let lsb = 2 * i + 1 < blocks && (flips >> (2 * i + 1)) & 1 == 1;
            out.set_state(LINE_CELLS + i, self.mapping.state_of(Symbol::from_bits(msb, lsb)));
        }
    }

    /// Bit-parallel encode body against prebuilt plane views and transition
    /// tables; [`LineCodec::encode_batch`] builds the tables once per batch.
    fn encode_kernel(
        &self,
        planes: &SymbolPlanes,
        stored: &StatePlanes,
        tables: &[TransitionTable; 2],
    ) -> PhysicalLine {
        let blocks = self.granularity.blocks_per_line();
        debug_assert!(blocks <= 64, "flip mask is a u64");
        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        for cell in LINE_CELLS..self.encoded_cells() {
            out.set_class(cell, CellClass::Aux);
        }
        let mut flips = 0u64;
        // Per-cell select mask of the flipped blocks, one bit per cell.
        let mut flip_mask = [0u64; PLANE_WORDS];
        for block in 0..blocks {
            let cells = self.granularity.block_cells(block);
            let keep = kernel::block_cost(planes, stored, cells.clone(), &tables[0]);
            let inverted = kernel::block_cost(planes, stored, cells.clone(), &tables[1]);
            if inverted < keep {
                flips |= 1 << block;
                set_cell_range(&mut flip_mask, cells);
            }
        }
        // Plane-assembled write: select each word's target planes between
        // the keep and the flipped table, then scatter once. This also
        // installs the new line's StatePlanes cache, so the next write
        // against it skips the per-cell plane rebuild.
        let mut out0 = [0u64; PLANE_WORDS];
        let mut out1 = [0u64; PLANE_WORDS];
        for w in 0..PLANE_WORDS {
            let (k0, k1) = tables[0].target_planes(planes, w);
            let (f0, f1) = tables[1].target_planes(planes, w);
            let fm = flip_mask[w];
            out0[w] = (k0 & !fm) | (f0 & fm);
            out1[w] = (k1 & !fm) | (f1 & fm);
        }
        kernel::write_states_from_planes(&mut out, LINE_CELLS, &out0, &out1);
        self.write_aux(&mut out, flips, blocks);
        out
    }

    /// The scalar reference encoder (see [`crate::cost`]); kept callable for
    /// the equivalence tests and the perf snapshot.
    #[doc(hidden)]
    pub fn encode_scalar(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        energy: &EnergyModel,
    ) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let blocks = self.granularity.blocks_per_line();
        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        for cell in LINE_CELLS..self.encoded_cells() {
            out.set_class(cell, CellClass::Aux);
        }
        let tables = self.tables(energy);
        let mut flips = 0u64;
        for block in 0..blocks {
            let cells = self.granularity.block_cells(block);
            let keep = self.flip_cost(data, old, cells.clone(), false, energy);
            let inverted = self.flip_cost(data, old, cells.clone(), true, energy);
            let flip = inverted < keep;
            if flip {
                flips |= 1 << block;
            }
            kernel::write_block(data, &mut out, cells, &tables[usize::from(flip)]);
        }
        self.write_aux(&mut out, flips, blocks);
        out
    }
}

/// Sets one bit per cell of `cells` in a per-cell plane-word mask.
fn set_cell_range(mask: &mut [u64; PLANE_WORDS], cells: std::ops::Range<usize>) {
    let (mut c, end) = (cells.start, cells.end);
    while c < end {
        let (w, off) = (c / 64, c % 64);
        let n = (64 - off).min(end - c);
        mask[w] |= (u64::MAX >> (64 - n)) << off;
        c += n;
    }
}

/// Sets line bits `start..end` in a fixed word buffer.
fn set_bit_range(words: &mut [u64; wlcrc_pcm::LINE_WORDS], start: usize, end: usize) {
    let mut b = start;
    while b < end {
        let (w, off) = (b / 64, b % 64);
        let n = (64 - off).min(end - b);
        words[w] |= (u64::MAX >> (64 - n)) << off;
        b += n;
    }
}

impl LineCodec for FnwCodec {
    fn name(&self) -> &str {
        &self.name
    }

    fn encoded_cells(&self) -> usize {
        LINE_CELLS + self.aux_cells()
    }

    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, energy: &EnergyModel) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let tables = self.tables(energy);
        self.encode_kernel(&data.symbol_planes(), &old.state_planes(), &tables)
    }

    fn encode_batch(
        &self,
        jobs: &[(&MemoryLine, &PhysicalLine)],
        energy: &EnergyModel,
    ) -> Vec<PhysicalLine> {
        let tables = self.tables(energy);
        kernel::encode_batch(jobs, |planes, stored, _data, old| {
            assert_eq!(old.len(), self.encoded_cells());
            self.encode_kernel(planes, stored, &tables)
        })
    }

    fn decode(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        let blocks = self.granularity.blocks_per_line();
        // Bit-parallel inverse mapping of the data cells; the warm plane
        // cache installed by the encode side makes this a handful of word
        // shuffles on lines that live across writes.
        let states = stored.state_planes();
        let (p0, p1) = kernel::symbol_planes_from_states(&states, self.mapping.symbols_per_state());
        let encoded = kernel::line_from_planes(&p0, &p1);
        // A flipped block stores the symbol complement, so un-flipping is an
        // XOR with all-ones over the block's bits.
        let mut flip_bits = [0u64; wlcrc_pcm::LINE_WORDS];
        for i in 0..self.aux_cells() {
            let symbol = self.mapping.symbol_of(stored.state(LINE_CELLS + i));
            for (bit, flagged) in [(2 * i, symbol.msb()), (2 * i + 1, symbol.lsb())] {
                if flagged && bit < blocks {
                    let cells = self.granularity.block_cells(bit);
                    set_bit_range(&mut flip_bits, 2 * cells.start, 2 * cells.end);
                }
            }
        }
        encoded.xor(&MemoryLine::from_words(flip_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wlcrc_pcm::codec::RawCodec;
    use wlcrc_pcm::write::differential_write;

    fn random_line(rng: &mut StdRng) -> MemoryLine {
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = rng.gen();
        }
        MemoryLine::from_words(words)
    }

    #[test]
    fn paper_configuration_uses_two_aux_symbols() {
        let codec = FnwCodec::paper_default();
        assert_eq!(codec.aux_cells(), 2);
        assert_eq!(codec.encoded_cells(), 258);
    }

    #[test]
    fn round_trip() {
        let energy = EnergyModel::paper_default();
        let codec = FnwCodec::paper_default();
        let mut rng = StdRng::seed_from_u64(8);
        let mut old = codec.initial_line();
        for _ in 0..50 {
            let data = random_line(&mut rng);
            let enc = codec.encode(&data, &old, &energy);
            assert_eq!(codec.decode(&enc), data);
            old = enc;
        }
    }

    #[test]
    fn flipping_helps_on_inverted_rewrites() {
        // Rewriting a line with its own complement is the best case for FNW:
        // the flipped encoding leaves every data cell untouched.
        let energy = EnergyModel::paper_default();
        let codec = FnwCodec::paper_default();
        let raw = RawCodec::new();
        let mut rng = StdRng::seed_from_u64(15);
        let original = random_line(&mut rng);
        let complemented = original.complement();

        let old_fnw = codec.encode(&original, &codec.initial_line(), &energy);
        let new_fnw = codec.encode(&complemented, &old_fnw, &energy);
        let fnw_cost = differential_write(&old_fnw, &new_fnw, &energy).data_energy_pj;

        let old_raw = raw.encode(&original, &raw.initial_line(), &energy);
        let new_raw = raw.encode(&complemented, &old_raw, &energy);
        let raw_cost = differential_write(&old_raw, &new_raw, &energy).data_energy_pj;

        assert_eq!(fnw_cost, 0.0);
        assert!(raw_cost > 0.0);
    }

    #[test]
    fn kernel_encode_matches_scalar_encode() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(51);
        for g in [16usize, 64, 128, 512] {
            let codec = FnwCodec::new(Granularity::new(g));
            let mut old = codec.initial_line();
            for _ in 0..10 {
                let data = random_line(&mut rng);
                let kernel = codec.encode(&data, &old, &energy);
                assert_eq!(kernel, codec.encode_scalar(&data, &old, &energy), "g={g}");
                old = kernel;
            }
        }
    }

    #[test]
    fn fnw_never_worse_than_not_flipping() {
        // Against the same stored content, the flip decision can only lower
        // the data-cell write energy compared to writing the data unflipped.
        let energy = EnergyModel::paper_default();
        let codec = FnwCodec::paper_default();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..30 {
            let a = random_line(&mut rng);
            let b = random_line(&mut rng);
            let old = codec.encode(&a, &codec.initial_line(), &energy);
            let new = codec.encode(&b, &old, &energy);
            let chosen = differential_write(&old, &new, &energy).data_energy_pj;
            let unflipped: f64 = (0..4)
                .map(|blk| {
                    codec.flip_cost(&b, &old, codec.granularity().block_cells(blk), false, &energy)
                })
                .sum();
            assert!(chosen <= unflipped + 1e-9);
        }
    }
}
