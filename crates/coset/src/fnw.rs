//! Flip-N-Write (FNW) adapted to MLC PCM.
//!
//! FNW stores either a data block or its bitwise complement, whichever incurs
//! the smaller differential-write cost, and records the choice in a single
//! auxiliary bit per block. Following the paper's ISO-overhead comparison,
//! the line is partitioned into 128-bit blocks (four per line), so the scheme
//! uses four auxiliary bits — two auxiliary symbols — per 512-bit line, the
//! same overhead as FlipMin and 6cosets.

use crate::granularity::Granularity;
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::energy::EnergyModel;
use wlcrc_pcm::line::MemoryLine;
use wlcrc_pcm::mapping::SymbolMapping;
use wlcrc_pcm::physical::{CellClass, PhysicalLine};
use wlcrc_pcm::state::Symbol;
use wlcrc_pcm::LINE_CELLS;

/// The Flip-N-Write codec.
#[derive(Debug, Clone)]
pub struct FnwCodec {
    granularity: Granularity,
    mapping: SymbolMapping,
    name: String,
}

impl FnwCodec {
    /// Creates an FNW codec flipping blocks of the given granularity.
    pub fn new(granularity: Granularity) -> FnwCodec {
        FnwCodec {
            granularity,
            mapping: SymbolMapping::default_mapping(),
            name: format!("FNW-{}", granularity.bits()),
        }
    }

    /// The configuration used in the paper's evaluation: 128-bit blocks.
    pub fn paper_default() -> FnwCodec {
        FnwCodec::new(Granularity::new(128))
    }

    /// The block granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of auxiliary cells appended to the line.
    pub fn aux_cells(&self) -> usize {
        self.granularity.blocks_per_line().div_ceil(2)
    }

    fn flip_cost(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        cells: std::ops::Range<usize>,
        flipped: bool,
        energy: &EnergyModel,
    ) -> f64 {
        let mut cost = 0.0;
        for cell in cells {
            let mut symbol = data.symbol(cell);
            if flipped {
                symbol = Symbol::new(!symbol.value() & 0b11);
            }
            let target = self.mapping.state_of(symbol);
            cost += energy.transition_energy_pj(old.state(cell), target);
        }
        cost
    }
}

impl LineCodec for FnwCodec {
    fn name(&self) -> &str {
        &self.name
    }

    fn encoded_cells(&self) -> usize {
        LINE_CELLS + self.aux_cells()
    }

    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, energy: &EnergyModel) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let blocks = self.granularity.blocks_per_line();
        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        for cell in LINE_CELLS..self.encoded_cells() {
            out.set_class(cell, CellClass::Aux);
        }
        let mut flips = vec![false; blocks];
        for (block, flip) in flips.iter_mut().enumerate() {
            let cells = self.granularity.block_cells(block);
            let keep = self.flip_cost(data, old, cells.clone(), false, energy);
            let inverted = self.flip_cost(data, old, cells.clone(), true, energy);
            *flip = inverted < keep;
            for cell in cells {
                let mut symbol = data.symbol(cell);
                if *flip {
                    symbol = Symbol::new(!symbol.value() & 0b11);
                }
                out.set_state(cell, self.mapping.state_of(symbol));
            }
        }
        // Pack flip bits, two per auxiliary cell, through the default mapping.
        for (i, pair) in flips.chunks(2).enumerate() {
            let msb = pair.first().copied().unwrap_or(false);
            let lsb = pair.get(1).copied().unwrap_or(false);
            out.set_state(LINE_CELLS + i, self.mapping.state_of(Symbol::from_bits(msb, lsb)));
        }
        out
    }

    fn decode(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        let blocks = self.granularity.blocks_per_line();
        let mut flips = vec![false; blocks];
        for (i, chunk) in flips.chunks_mut(2).enumerate() {
            let symbol = self.mapping.symbol_of(stored.state(LINE_CELLS + i));
            chunk[0] = symbol.msb();
            if chunk.len() > 1 {
                chunk[1] = symbol.lsb();
            }
        }
        let mut data = MemoryLine::ZERO;
        for (block, flip) in flips.iter().enumerate() {
            for cell in self.granularity.block_cells(block) {
                let mut symbol = self.mapping.symbol_of(stored.state(cell));
                if *flip {
                    symbol = Symbol::new(!symbol.value() & 0b11);
                }
                data.set_symbol(cell, symbol);
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wlcrc_pcm::codec::RawCodec;
    use wlcrc_pcm::write::differential_write;

    fn random_line(rng: &mut StdRng) -> MemoryLine {
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = rng.gen();
        }
        MemoryLine::from_words(words)
    }

    #[test]
    fn paper_configuration_uses_two_aux_symbols() {
        let codec = FnwCodec::paper_default();
        assert_eq!(codec.aux_cells(), 2);
        assert_eq!(codec.encoded_cells(), 258);
    }

    #[test]
    fn round_trip() {
        let energy = EnergyModel::paper_default();
        let codec = FnwCodec::paper_default();
        let mut rng = StdRng::seed_from_u64(8);
        let mut old = codec.initial_line();
        for _ in 0..50 {
            let data = random_line(&mut rng);
            let enc = codec.encode(&data, &old, &energy);
            assert_eq!(codec.decode(&enc), data);
            old = enc;
        }
    }

    #[test]
    fn flipping_helps_on_inverted_rewrites() {
        // Rewriting a line with its own complement is the best case for FNW:
        // the flipped encoding leaves every data cell untouched.
        let energy = EnergyModel::paper_default();
        let codec = FnwCodec::paper_default();
        let raw = RawCodec::new();
        let mut rng = StdRng::seed_from_u64(15);
        let original = random_line(&mut rng);
        let complemented = original.complement();

        let old_fnw = codec.encode(&original, &codec.initial_line(), &energy);
        let new_fnw = codec.encode(&complemented, &old_fnw, &energy);
        let fnw_cost = differential_write(&old_fnw, &new_fnw, &energy).data_energy_pj;

        let old_raw = raw.encode(&original, &raw.initial_line(), &energy);
        let new_raw = raw.encode(&complemented, &old_raw, &energy);
        let raw_cost = differential_write(&old_raw, &new_raw, &energy).data_energy_pj;

        assert_eq!(fnw_cost, 0.0);
        assert!(raw_cost > 0.0);
    }

    #[test]
    fn fnw_never_worse_than_not_flipping() {
        // Against the same stored content, the flip decision can only lower
        // the data-cell write energy compared to writing the data unflipped.
        let energy = EnergyModel::paper_default();
        let codec = FnwCodec::paper_default();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..30 {
            let a = random_line(&mut rng);
            let b = random_line(&mut rng);
            let old = codec.encode(&a, &codec.initial_line(), &energy);
            let new = codec.encode(&b, &old, &energy);
            let chosen = differential_write(&old, &new, &energy).data_energy_pj;
            let unflipped: f64 = (0..4)
                .map(|blk| {
                    codec.flip_cost(&b, &old, codec.granularity().block_cells(blk), false, &energy)
                })
                .sum();
            assert!(chosen <= unflipped + 1e-9);
        }
    }
}
