//! Restricted coset coding (Section V of the paper), applied at line level.
//!
//! Instead of letting every block choose freely among `C1`, `C2` and `C3`,
//! the line first commits to one of two *groups* — `{C1, C2}` or `{C1, C3}` —
//! and every block then picks the cheaper of the two candidates in that
//! group. This needs one global auxiliary bit per line plus one bit per
//! block, instead of two bits per block for the unrestricted 3cosets.
//!
//! (The WLC-integrated version, which applies the restriction per 64-bit word
//! and stores the auxiliary bits in reclaimed cells, lives in the `wlcrc`
//! crate; this codec is the stand-alone `3-r-cosets` variant evaluated in
//! Figure 5.)
//!
//! The encoder evaluates candidates with the bit-parallel kernel
//! ([`wlcrc_pcm::kernel`]) and keeps all per-write scratch — candidate costs,
//! block choices and the auxiliary bit vector — in fixed-size stack storage
//! (a `u64` choice mask and a packed `u128` bit vector), so a write allocates
//! nothing beyond the returned line.

use crate::candidate::{c1, c2, c3, CosetCandidate};
use crate::cost::{block_cost, read_block, write_block};
use crate::granularity::Granularity;
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::energy::EnergyModel;
use wlcrc_pcm::kernel::{self, TransitionTable, PLANE_WORDS};
use wlcrc_pcm::line::MemoryLine;
use wlcrc_pcm::mapping::SymbolMapping;
use wlcrc_pcm::physical::{CellClass, PhysicalLine};
use wlcrc_pcm::state::Symbol;
use wlcrc_pcm::LINE_CELLS;

/// Most blocks any granularity produces (8-bit blocks → 64 per line).
const MAX_BLOCKS: usize = 64;

/// The auxiliary bit vector of one line — the group bit followed by one bit
/// per block — packed into a `u128` (at most 1 + 64 = 65 bits).
///
/// Bit `i` of `bits` is auxiliary bit `i`; reads past `len` yield `false`,
/// mirroring the zero padding of the final half-filled cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AuxBits {
    bits: u128,
    len: usize,
}

impl AuxBits {
    fn new(group_b: bool, choices: u64, blocks: usize) -> AuxBits {
        AuxBits { bits: u128::from(group_b) | (u128::from(choices) << 1), len: 1 + blocks }
    }

    #[inline]
    fn get(self, index: usize) -> bool {
        index < self.len && (self.bits >> index) & 1 == 1
    }
}

/// The stand-alone restricted coset codec (`3-r-cosets`).
#[derive(Debug, Clone)]
pub struct RestrictedCosetCodec {
    granularity: Granularity,
    base: CosetCandidate,
    alt_a: CosetCandidate,
    alt_b: CosetCandidate,
    aux_mapping: SymbolMapping,
    name: String,
}

impl RestrictedCosetCodec {
    /// Creates the restricted codec at the given granularity, using the
    /// paper's groups `{C1, C2}` and `{C1, C3}`.
    ///
    /// # Panics
    ///
    /// Panics if the granularity is finer than 8 bits: per-write scratch
    /// (block costs, the `u64` choice mask, the `u128` auxiliary bit vector)
    /// is sized for the paper's 8..512-bit sweep, at most 64 blocks per line.
    pub fn new(granularity: Granularity) -> RestrictedCosetCodec {
        assert!(
            granularity.blocks_per_line() <= MAX_BLOCKS,
            "RestrictedCosetCodec supports at most {MAX_BLOCKS} blocks per line (granularity >= 8 bits)"
        );
        RestrictedCosetCodec {
            granularity,
            base: c1(),
            alt_a: c2(),
            alt_b: c3(),
            aux_mapping: SymbolMapping::default_mapping(),
            name: format!("3-r-cosets-{}", granularity.bits()),
        }
    }

    /// The block granularity of this codec.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of auxiliary bits per line: one global group bit plus one bit
    /// per block.
    pub fn aux_bits(&self) -> usize {
        1 + self.granularity.blocks_per_line()
    }

    /// Number of auxiliary cells appended to the line (two bits per cell,
    /// rounded up).
    pub fn aux_cells(&self) -> usize {
        self.aux_bits().div_ceil(2)
    }

    fn group_candidates(&self, group_b: bool) -> (&CosetCandidate, &CosetCandidate) {
        if group_b {
            (&self.base, &self.alt_b)
        } else {
            (&self.base, &self.alt_a)
        }
    }

    /// Packs the auxiliary bits (group bit first, then per-block bits) into
    /// aux cells through the default mapping, so that the frequent case
    /// (candidate `C1`, bit 0) stays in the cheapest state.
    fn write_aux_bits(&self, out: &mut PhysicalLine, bits: AuxBits) {
        for i in 0..self.aux_cells() {
            // Bit order within the symbol: the first bit of the pair is the MSB.
            let symbol = Symbol::from_bits(bits.get(2 * i), bits.get(2 * i + 1));
            out.set_state(LINE_CELLS + i, self.aux_mapping.state_of(symbol));
        }
    }

    /// Differential-write cost of storing the given auxiliary bits over the
    /// currently stored auxiliary cells.
    fn aux_cost(&self, old: &PhysicalLine, bits: AuxBits, energy: &EnergyModel) -> f64 {
        let mut cost = 0.0;
        for i in 0..self.aux_cells() {
            cost += self.aux_cell_cost(old, bits, i, energy);
        }
        cost
    }

    /// The contribution of auxiliary cell `cell` to [`Self::aux_cost`].
    fn aux_cell_cost(
        &self,
        old: &PhysicalLine,
        bits: AuxBits,
        cell: usize,
        energy: &EnergyModel,
    ) -> f64 {
        let target = self
            .aux_mapping
            .state_of(Symbol::from_bits(bits.get(2 * cell), bits.get(2 * cell + 1)));
        energy.transition_energy_pj(old.state(LINE_CELLS + cell), target)
    }

    fn read_aux_bits(&self, stored: &PhysicalLine) -> AuxBits {
        let mut bits = 0u128;
        for i in 0..self.aux_cells() {
            let symbol = self.aux_mapping.symbol_of(stored.state(LINE_CELLS + i));
            bits |= u128::from(symbol.msb()) << (2 * i);
            bits |= u128::from(symbol.lsb()) << (2 * i + 1);
        }
        AuxBits { bits, len: self.aux_bits() }
    }

    /// Shared encode body; `use_kernel` switches the per-block candidate
    /// costs between the bit-parallel kernel and the scalar reference in
    /// [`crate::cost`]. Both sides run the identical selection logic, so the
    /// outputs are byte-identical (exactly so for integer-valued energies).
    fn encode_impl(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        energy: &EnergyModel,
        use_kernel: bool,
    ) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let blocks = self.granularity.blocks_per_line();
        debug_assert!(blocks <= MAX_BLOCKS);

        // Every candidate's cost for every block, computed once up front
        // (C1 is shared by both groups, so this also halves the scalar work
        // the old implementation spent re-evaluating it per group). The
        // kernel sweep additionally captures each candidate's target planes
        // so the final write is assembled from masks.
        let mut cost_base = [0.0f64; MAX_BLOCKS];
        let mut cost_alt = [[0.0f64; MAX_BLOCKS]; 2];
        let mut targets = [([0u64; PLANE_WORDS], [0u64; PLANE_WORDS]); 3];
        if use_kernel {
            let planes = data.symbol_planes();
            let stored = old.state_planes();
            let tables = [
                TransitionTable::new(&self.base.mapping(), energy),
                TransitionTable::new(&self.alt_a.mapping(), energy),
                TransitionTable::new(&self.alt_b.mapping(), energy),
            ];
            let cells_per_block = self.granularity.cells();
            kernel::block_costs_uniform_with_targets(
                &planes,
                &stored,
                cells_per_block,
                blocks,
                &tables[0],
                &mut cost_base,
                &mut targets[0],
            );
            kernel::block_costs_uniform_with_targets(
                &planes,
                &stored,
                cells_per_block,
                blocks,
                &tables[1],
                &mut cost_alt[0],
                &mut targets[1],
            );
            kernel::block_costs_uniform_with_targets(
                &planes,
                &stored,
                cells_per_block,
                blocks,
                &tables[2],
                &mut cost_alt[1],
                &mut targets[2],
            );
        } else {
            for block in 0..blocks {
                let cells = self.granularity.block_cells(block);
                cost_base[block] = block_cost(data, old, cells.clone(), &self.base, energy);
                cost_alt[0][block] = block_cost(data, old, cells.clone(), &self.alt_a, energy);
                cost_alt[1][block] = block_cost(data, old, cells, &self.alt_b, energy);
            }
        }

        // Evaluate both groups: for each, every block takes the cheaper of
        // the two candidates in the group (steps 1-3 of Section V). The group
        // decision also accounts for the cost of rewriting the auxiliary
        // cells, which keeps the selection stable across consecutive writes.
        let mut group_cost = [0.0f64; 2];
        let mut group_choice = [0u64; 2];
        for g in 0..2 {
            for block in 0..blocks {
                if cost_alt[g][block] < cost_base[block] {
                    group_choice[g] |= 1 << block;
                    group_cost[g] += cost_alt[g][block];
                } else {
                    group_cost[g] += cost_base[block];
                }
            }
            group_cost[g] +=
                self.aux_cost(old, AuxBits::new(g == 1, group_choice[g], blocks), energy);
        }
        let group_b = group_cost[1] < group_cost[0];
        let alt_costs = &cost_alt[usize::from(group_b)];
        let mut choices = group_choice[usize::from(group_b)];

        // Refinement: a block only switches away from C1 when the data saving
        // exceeds the cost of rewriting the auxiliary cell that records the
        // switch (two block bits share one cell, so the cost is evaluated on
        // the full auxiliary bit vector). Flipping block `b`'s bit only
        // changes auxiliary cell `(1 + b) / 2`, so the full-vector cost is
        // maintained incrementally: for integer-valued energies the running
        // total is exactly the fresh sum the scalar formulation computes.
        let mut current_aux = self.aux_cost(old, AuxBits::new(group_b, choices, blocks), energy);
        for block in 0..blocks {
            let aux_cell = block.div_ceil(2);
            let current_flag = (choices >> block) & 1 == 1;
            let current_cell =
                self.aux_cell_cost(old, AuxBits::new(group_b, choices, blocks), aux_cell, energy);
            let mut best_flag = current_flag;
            let mut best_total = f64::INFINITY;
            let mut best_aux = current_aux;
            for flag in [false, true] {
                let trial = if flag { choices | 1 << block } else { choices & !(1 << block) };
                let trial_aux = current_aux - current_cell
                    + self.aux_cell_cost(
                        old,
                        AuxBits::new(group_b, trial, blocks),
                        aux_cell,
                        energy,
                    );
                let total = if flag { alt_costs[block] } else { cost_base[block] } + trial_aux;
                if total < best_total {
                    best_total = total;
                    best_flag = flag;
                    best_aux = trial_aux;
                }
            }
            if best_flag {
                choices |= 1 << block;
            } else {
                choices &= !(1 << block);
            }
            current_aux = best_aux;
        }

        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        for cell in LINE_CELLS..self.encoded_cells() {
            out.set_class(cell, CellClass::Aux);
        }
        if use_kernel && self.granularity.cells() < 64 {
            // Assemble the chosen blocks' target planes and scatter once.
            let cells_per_block = self.granularity.cells();
            let blocks_per_word = 64 / cells_per_block;
            let block_mask = (1u64 << cells_per_block) - 1;
            let alt_idx = if group_b { 2 } else { 1 };
            let mut out0 = [0u64; PLANE_WORDS];
            let mut out1 = [0u64; PLANE_WORDS];
            for block in 0..blocks {
                let idx = if (choices >> block) & 1 == 1 { alt_idx } else { 0 };
                let w = block / blocks_per_word;
                let mask = block_mask << ((block % blocks_per_word) * cells_per_block);
                out0[w] |= targets[idx].0[w] & mask;
                out1[w] |= targets[idx].1[w] & mask;
            }
            kernel::write_states_from_planes(&mut out, LINE_CELLS, &out0, &out1);
        } else {
            let (base, alt) = self.group_candidates(group_b);
            for block in 0..blocks {
                let cells = self.granularity.block_cells(block);
                let candidate = if (choices >> block) & 1 == 1 { alt } else { base };
                write_block(data, &mut out, cells, candidate);
            }
        }
        self.write_aux_bits(&mut out, AuxBits::new(group_b, choices, blocks));
        out
    }

    /// The scalar reference encoder (see [`crate::cost`]); kept callable for
    /// the equivalence tests and the perf snapshot.
    #[doc(hidden)]
    pub fn encode_scalar(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        energy: &EnergyModel,
    ) -> PhysicalLine {
        self.encode_impl(data, old, energy, false)
    }
}

impl LineCodec for RestrictedCosetCodec {
    fn name(&self) -> &str {
        &self.name
    }

    fn encoded_cells(&self) -> usize {
        LINE_CELLS + self.aux_cells()
    }

    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, energy: &EnergyModel) -> PhysicalLine {
        self.encode_impl(data, old, energy, true)
    }

    fn decode(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        let bits = self.read_aux_bits(stored);
        let group_b = bits.get(0);
        let (base, alt) = self.group_candidates(group_b);
        let mut data = MemoryLine::ZERO;
        for block in 0..self.granularity.blocks_per_line() {
            let cells = self.granularity.block_cells(block);
            let candidate = if bits.get(1 + block) { alt } else { base };
            read_block(stored, &mut data, cells, candidate);
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ncosets::NCosetsCodec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wlcrc_pcm::write::differential_write;

    fn random_line(rng: &mut StdRng) -> MemoryLine {
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = rng.gen();
        }
        MemoryLine::from_words(words)
    }

    #[test]
    fn aux_bit_budget_matches_paper() {
        // 16-bit granularity: 32 blocks -> 33 aux bits -> 17 symbols.
        let codec = RestrictedCosetCodec::new(Granularity::new(16));
        assert_eq!(codec.aux_bits(), 33);
        assert_eq!(codec.aux_cells(), 17);
        assert_eq!(codec.encoded_cells(), 256 + 17);
    }

    #[test]
    fn round_trip_at_all_granularities() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(21);
        for g in [8usize, 16, 32, 64, 128] {
            let codec = RestrictedCosetCodec::new(Granularity::new(g));
            let mut old = codec.initial_line();
            for _ in 0..20 {
                let data = random_line(&mut rng);
                let enc = codec.encode(&data, &old, &energy);
                assert_eq!(codec.decode(&enc), data, "granularity {g}");
                old = enc;
            }
        }
    }

    #[test]
    fn kernel_encode_matches_scalar_encode() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(77);
        for g in [8usize, 16, 64, 256, 512] {
            let codec = RestrictedCosetCodec::new(Granularity::new(g));
            let mut old = codec.initial_line();
            for _ in 0..10 {
                let data = random_line(&mut rng);
                let kernel = codec.encode(&data, &old, &energy);
                let scalar = codec.encode_scalar(&data, &old, &energy);
                assert_eq!(kernel, scalar, "granularity {g}");
                old = kernel;
            }
        }
    }

    #[test]
    fn round_trip_on_biased_data() {
        let energy = EnergyModel::paper_default();
        let codec = RestrictedCosetCodec::new(Granularity::new(16));
        for data in [
            MemoryLine::ZERO,
            MemoryLine::ZERO.complement(),
            MemoryLine::from_words([u64::MAX, 0, u64::MAX, 0, 1, 2, 3, 4]),
        ] {
            let enc = codec.encode(&data, &codec.initial_line(), &energy);
            assert_eq!(codec.decode(&enc), data);
        }
    }

    #[test]
    fn restricted_uses_fewer_aux_cells_than_unrestricted() {
        let g = Granularity::new(16);
        let restricted = RestrictedCosetCodec::new(g);
        let unrestricted = NCosetsCodec::three_cosets(g);
        assert!(restricted.encoded_cells() < unrestricted.encoded_cells());
    }

    #[test]
    fn restricted_data_energy_close_to_three_cosets() {
        // Restricting the candidate choice should only slightly increase the
        // data-block energy (the point of Figure 5).
        let energy = EnergyModel::paper_default();
        let g = Granularity::new(16);
        let restricted = RestrictedCosetCodec::new(g);
        let unrestricted = NCosetsCodec::three_cosets(g);
        let mut rng = StdRng::seed_from_u64(5);
        let mut restricted_cost = 0.0;
        let mut unrestricted_cost = 0.0;
        for _ in 0..100 {
            let old_data = random_line(&mut rng);
            let new_data = random_line(&mut rng);
            let old_r = restricted.encode(&old_data, &restricted.initial_line(), &energy);
            let old_u = unrestricted.encode(&old_data, &unrestricted.initial_line(), &energy);
            let new_r = restricted.encode(&new_data, &old_r, &energy);
            let new_u = unrestricted.encode(&new_data, &old_u, &energy);
            restricted_cost += differential_write(&old_r, &new_r, &energy).data_energy_pj;
            unrestricted_cost += differential_write(&old_u, &new_u, &energy).data_energy_pj;
        }
        assert!(restricted_cost >= unrestricted_cost);
        assert!(
            restricted_cost <= unrestricted_cost * 1.15,
            "restriction should cost at most a few percent (restricted {restricted_cost}, unrestricted {unrestricted_cost})"
        );
    }

    #[test]
    fn group_bit_zero_when_groups_tie() {
        // All-zero data: both groups cost the same (C1 is in both), so the
        // encoder must keep the group bit at 0 (the cheaper aux state).
        let energy = EnergyModel::paper_default();
        let codec = RestrictedCosetCodec::new(Granularity::new(16));
        let enc = codec.encode(&MemoryLine::ZERO, &codec.initial_line(), &energy);
        let bits = codec.read_aux_bits(&enc);
        assert!(!bits.get(0));
        assert!((1..codec.aux_bits()).all(|i| !bits.get(i)));
    }
}
