//! Restricted coset coding (Section V of the paper), applied at line level.
//!
//! Instead of letting every block choose freely among `C1`, `C2` and `C3`,
//! the line first commits to one of two *groups* — `{C1, C2}` or `{C1, C3}` —
//! and every block then picks the cheaper of the two candidates in that
//! group. This needs one global auxiliary bit per line plus one bit per
//! block, instead of two bits per block for the unrestricted 3cosets.
//!
//! (The WLC-integrated version, which applies the restriction per 64-bit word
//! and stores the auxiliary bits in reclaimed cells, lives in the `wlcrc`
//! crate; this codec is the stand-alone `3-r-cosets` variant evaluated in
//! Figure 5.)

use crate::candidate::{c1, c2, c3, CosetCandidate};
use crate::cost::{block_cost, read_block, write_block};
use crate::granularity::Granularity;
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::energy::EnergyModel;
use wlcrc_pcm::line::MemoryLine;
use wlcrc_pcm::mapping::SymbolMapping;
use wlcrc_pcm::physical::{CellClass, PhysicalLine};
use wlcrc_pcm::state::Symbol;
use wlcrc_pcm::LINE_CELLS;

/// The stand-alone restricted coset codec (`3-r-cosets`).
#[derive(Debug, Clone)]
pub struct RestrictedCosetCodec {
    granularity: Granularity,
    base: CosetCandidate,
    alt_a: CosetCandidate,
    alt_b: CosetCandidate,
    aux_mapping: SymbolMapping,
    name: String,
}

impl RestrictedCosetCodec {
    /// Creates the restricted codec at the given granularity, using the
    /// paper's groups `{C1, C2}` and `{C1, C3}`.
    pub fn new(granularity: Granularity) -> RestrictedCosetCodec {
        RestrictedCosetCodec {
            granularity,
            base: c1(),
            alt_a: c2(),
            alt_b: c3(),
            aux_mapping: SymbolMapping::default_mapping(),
            name: format!("3-r-cosets-{}", granularity.bits()),
        }
    }

    /// The block granularity of this codec.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of auxiliary bits per line: one global group bit plus one bit
    /// per block.
    pub fn aux_bits(&self) -> usize {
        1 + self.granularity.blocks_per_line()
    }

    /// Number of auxiliary cells appended to the line (two bits per cell,
    /// rounded up).
    pub fn aux_cells(&self) -> usize {
        self.aux_bits().div_ceil(2)
    }

    fn group_candidates(&self, group_b: bool) -> (&CosetCandidate, &CosetCandidate) {
        if group_b {
            (&self.base, &self.alt_b)
        } else {
            (&self.base, &self.alt_a)
        }
    }

    /// Packs the auxiliary bits (group bit first, then per-block bits) into
    /// aux cells through the default mapping, so that the frequent case
    /// (candidate `C1`, bit 0) stays in the cheapest state.
    fn write_aux_bits(&self, out: &mut PhysicalLine, bits: &[bool]) {
        for (i, pair) in bits.chunks(2).enumerate() {
            let msb = pair.first().copied().unwrap_or(false);
            let lsb = pair.get(1).copied().unwrap_or(false);
            // Bit order within the symbol: first bit is the MSB.
            let symbol = Symbol::from_bits(msb, lsb);
            out.set_state(LINE_CELLS + i, self.aux_mapping.state_of(symbol));
        }
    }

    /// Differential-write cost of storing the given auxiliary bits over the
    /// currently stored auxiliary cells.
    fn aux_cost(&self, old: &PhysicalLine, bits: &[bool], energy: &EnergyModel) -> f64 {
        let mut cost = 0.0;
        for (i, pair) in bits.chunks(2).enumerate() {
            let msb = pair.first().copied().unwrap_or(false);
            let lsb = pair.get(1).copied().unwrap_or(false);
            let target = self.aux_mapping.state_of(Symbol::from_bits(msb, lsb));
            cost += energy.transition_energy_pj(old.state(LINE_CELLS + i), target);
        }
        cost
    }

    fn read_aux_bits(&self, stored: &PhysicalLine) -> Vec<bool> {
        let mut bits = Vec::with_capacity(self.aux_bits());
        for i in 0..self.aux_cells() {
            let symbol = self.aux_mapping.symbol_of(stored.state(LINE_CELLS + i));
            bits.push(symbol.msb());
            bits.push(symbol.lsb());
        }
        bits.truncate(self.aux_bits());
        bits
    }
}

impl LineCodec for RestrictedCosetCodec {
    fn name(&self) -> &str {
        &self.name
    }

    fn encoded_cells(&self) -> usize {
        LINE_CELLS + self.aux_cells()
    }

    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, energy: &EnergyModel) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let blocks = self.granularity.blocks_per_line();

        // Evaluate both groups: for each, every block takes the cheaper of
        // the two candidates in the group (steps 1-3 of Section V). The group
        // decision also accounts for the cost of rewriting the auxiliary
        // cells, which keeps the selection stable across consecutive writes.
        let mut group_cost = [0.0f64; 2];
        let mut group_choice = [vec![false; blocks], vec![false; blocks]];
        for (g, choices) in group_choice.iter_mut().enumerate() {
            let (base, alt) = self.group_candidates(g == 1);
            for (block, choice) in choices.iter_mut().enumerate() {
                let cells = self.granularity.block_cells(block);
                let cost_base = block_cost(data, old, cells.clone(), base, energy);
                let cost_alt = block_cost(data, old, cells, alt, energy);
                if cost_alt < cost_base {
                    *choice = true;
                    group_cost[g] += cost_alt;
                } else {
                    group_cost[g] += cost_base;
                }
            }
            let mut aux_bits = Vec::with_capacity(self.aux_bits());
            aux_bits.push(g == 1);
            aux_bits.extend(choices.iter().copied());
            group_cost[g] += self.aux_cost(old, &aux_bits, energy);
        }
        let group_b = group_cost[1] < group_cost[0];
        let mut choices = group_choice[usize::from(group_b)].clone();
        let (base, alt) = self.group_candidates(group_b);

        // Refinement: a block only switches away from C1 when the data saving
        // exceeds the cost of rewriting the auxiliary cell that records the
        // switch (two block bits share one cell, so the cost is evaluated on
        // the full auxiliary bit vector).
        for block in 0..blocks {
            let cells = self.granularity.block_cells(block);
            let cost_base = block_cost(data, old, cells.clone(), base, energy);
            let cost_alt = block_cost(data, old, cells, alt, energy);
            let mut best_flag = choices[block];
            let mut best_total = f64::INFINITY;
            for flag in [false, true] {
                let mut trial_bits = Vec::with_capacity(self.aux_bits());
                trial_bits.push(group_b);
                let mut trial_choices = choices.clone();
                trial_choices[block] = flag;
                trial_bits.extend(trial_choices.iter().copied());
                let total = if flag { cost_alt } else { cost_base }
                    + self.aux_cost(old, &trial_bits, energy);
                if total < best_total {
                    best_total = total;
                    best_flag = flag;
                }
            }
            choices[block] = best_flag;
        }
        let choices = &choices;

        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        for cell in LINE_CELLS..self.encoded_cells() {
            out.set_class(cell, CellClass::Aux);
        }
        for (block, &choice) in choices.iter().enumerate().take(blocks) {
            let cells = self.granularity.block_cells(block);
            let candidate = if choice { alt } else { base };
            write_block(data, &mut out, cells, candidate);
        }
        let mut aux_bits = Vec::with_capacity(self.aux_bits());
        aux_bits.push(group_b);
        aux_bits.extend(choices.iter().copied());
        self.write_aux_bits(&mut out, &aux_bits);
        out
    }

    fn decode(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        let bits = self.read_aux_bits(stored);
        let group_b = bits[0];
        let (base, alt) = self.group_candidates(group_b);
        let mut data = MemoryLine::ZERO;
        for block in 0..self.granularity.blocks_per_line() {
            let cells = self.granularity.block_cells(block);
            let candidate = if bits[1 + block] { alt } else { base };
            read_block(stored, &mut data, cells, candidate);
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ncosets::NCosetsCodec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wlcrc_pcm::write::differential_write;

    fn random_line(rng: &mut StdRng) -> MemoryLine {
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = rng.gen();
        }
        MemoryLine::from_words(words)
    }

    #[test]
    fn aux_bit_budget_matches_paper() {
        // 16-bit granularity: 32 blocks -> 33 aux bits -> 17 symbols.
        let codec = RestrictedCosetCodec::new(Granularity::new(16));
        assert_eq!(codec.aux_bits(), 33);
        assert_eq!(codec.aux_cells(), 17);
        assert_eq!(codec.encoded_cells(), 256 + 17);
    }

    #[test]
    fn round_trip_at_all_granularities() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(21);
        for g in [8usize, 16, 32, 64, 128] {
            let codec = RestrictedCosetCodec::new(Granularity::new(g));
            let mut old = codec.initial_line();
            for _ in 0..20 {
                let data = random_line(&mut rng);
                let enc = codec.encode(&data, &old, &energy);
                assert_eq!(codec.decode(&enc), data, "granularity {g}");
                old = enc;
            }
        }
    }

    #[test]
    fn round_trip_on_biased_data() {
        let energy = EnergyModel::paper_default();
        let codec = RestrictedCosetCodec::new(Granularity::new(16));
        for data in [
            MemoryLine::ZERO,
            MemoryLine::ZERO.complement(),
            MemoryLine::from_words([u64::MAX, 0, u64::MAX, 0, 1, 2, 3, 4]),
        ] {
            let enc = codec.encode(&data, &codec.initial_line(), &energy);
            assert_eq!(codec.decode(&enc), data);
        }
    }

    #[test]
    fn restricted_uses_fewer_aux_cells_than_unrestricted() {
        let g = Granularity::new(16);
        let restricted = RestrictedCosetCodec::new(g);
        let unrestricted = NCosetsCodec::three_cosets(g);
        assert!(restricted.encoded_cells() < unrestricted.encoded_cells());
    }

    #[test]
    fn restricted_data_energy_close_to_three_cosets() {
        // Restricting the candidate choice should only slightly increase the
        // data-block energy (the point of Figure 5).
        let energy = EnergyModel::paper_default();
        let g = Granularity::new(16);
        let restricted = RestrictedCosetCodec::new(g);
        let unrestricted = NCosetsCodec::three_cosets(g);
        let mut rng = StdRng::seed_from_u64(5);
        let mut restricted_cost = 0.0;
        let mut unrestricted_cost = 0.0;
        for _ in 0..100 {
            let old_data = random_line(&mut rng);
            let new_data = random_line(&mut rng);
            let old_r = restricted.encode(&old_data, &restricted.initial_line(), &energy);
            let old_u = unrestricted.encode(&old_data, &unrestricted.initial_line(), &energy);
            let new_r = restricted.encode(&new_data, &old_r, &energy);
            let new_u = unrestricted.encode(&new_data, &old_u, &energy);
            restricted_cost += differential_write(&old_r, &new_r, &energy).data_energy_pj;
            unrestricted_cost += differential_write(&old_u, &new_u, &energy).data_energy_pj;
        }
        assert!(restricted_cost >= unrestricted_cost);
        assert!(
            restricted_cost <= unrestricted_cost * 1.15,
            "restriction should cost at most a few percent (restricted {restricted_cost}, unrestricted {unrestricted_cost})"
        );
    }

    #[test]
    fn group_bit_zero_when_groups_tie() {
        // All-zero data: both groups cost the same (C1 is in both), so the
        // encoder must keep the group bit at 0 (the cheaper aux state).
        let energy = EnergyModel::paper_default();
        let codec = RestrictedCosetCodec::new(Granularity::new(16));
        let enc = codec.encode(&MemoryLine::ZERO, &codec.initial_line(), &energy);
        let bits = codec.read_aux_bits(&enc);
        assert!(!bits[0]);
        assert!(bits[1..].iter().all(|b| !b));
    }
}
