//! Data-block granularity of an encoding.

use std::fmt;
use wlcrc_pcm::LINE_BITS;

/// The size, in bits, of the data blocks that are encoded independently.
///
/// The paper sweeps granularity between 8 and 512 bits; a granularity must be
/// an even divisor of the 512-bit line so that blocks align with cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Granularity(usize);

impl Granularity {
    /// The granularities studied by the paper.
    pub const SWEEP: [Granularity; 7] = [
        Granularity(8),
        Granularity(16),
        Granularity(32),
        Granularity(64),
        Granularity(128),
        Granularity(256),
        Granularity(512),
    ];

    /// Creates a granularity of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is odd, zero, or does not divide 512.
    pub fn new(bits: usize) -> Granularity {
        assert!(
            bits > 0 && bits.is_multiple_of(2),
            "granularity must be a positive even number of bits"
        );
        assert!(LINE_BITS.is_multiple_of(bits), "granularity must divide the 512-bit line");
        Granularity(bits)
    }

    /// The block size in bits.
    pub fn bits(self) -> usize {
        self.0
    }

    /// The block size in cells (2 bits per cell).
    pub fn cells(self) -> usize {
        self.0 / 2
    }

    /// Number of blocks in a 512-bit line.
    pub fn blocks_per_line(self) -> usize {
        LINE_BITS / self.0
    }

    /// Number of blocks in one 64-bit word (zero if the granularity is
    /// coarser than a word).
    pub fn blocks_per_word(self) -> usize {
        if self.0 <= 64 {
            64 / self.0
        } else {
            0
        }
    }

    /// The range of cell indices of block `block` within the line.
    ///
    /// # Panics
    ///
    /// Panics if `block >= blocks_per_line()`.
    pub fn block_cells(self, block: usize) -> std::ops::Range<usize> {
        assert!(block < self.blocks_per_line(), "block index out of range");
        let cells = self.cells();
        block * cells..(block + 1) * cells
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.0)
    }
}

impl From<Granularity> for usize {
    fn from(g: Granularity) -> usize {
        g.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_values_match_paper() {
        let bits: Vec<usize> = Granularity::SWEEP.iter().map(|g| g.bits()).collect();
        assert_eq!(bits, vec![8, 16, 32, 64, 128, 256, 512]);
    }

    #[test]
    fn cells_and_blocks() {
        let g = Granularity::new(16);
        assert_eq!(g.cells(), 8);
        assert_eq!(g.blocks_per_line(), 32);
        assert_eq!(g.blocks_per_word(), 4);
        assert_eq!(g.block_cells(0), 0..8);
        assert_eq!(g.block_cells(31), 248..256);
    }

    #[test]
    fn coarse_granularity_has_no_word_blocks() {
        assert_eq!(Granularity::new(128).blocks_per_word(), 0);
        assert_eq!(Granularity::new(512).blocks_per_line(), 1);
    }

    #[test]
    #[should_panic]
    fn odd_granularity_is_rejected() {
        let _ = Granularity::new(7);
    }

    #[test]
    #[should_panic]
    fn non_divisor_granularity_is_rejected() {
        let _ = Granularity::new(96);
    }

    #[test]
    fn display_mentions_bits() {
        assert_eq!(Granularity::new(32).to_string(), "32-bit");
    }
}
