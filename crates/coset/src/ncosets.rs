//! The generic "n cosets" codec: each data block is independently encoded
//! with the cheapest candidate of a [`CandidateSet`], and the chosen candidate
//! is recorded in auxiliary cells appended to the line.
//!
//! Instantiated with the right candidate set and granularity this yields the
//! paper's `3cosets`, `4cosets` and `6cosets` schemes at any block size from
//! 8 to 512 bits.

use crate::candidate::CandidateSet;
use crate::cost::{block_cost, read_block, write_block};
use crate::granularity::Granularity;
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::energy::EnergyModel;
use wlcrc_pcm::line::MemoryLine;
use wlcrc_pcm::physical::{CellClass, PhysicalLine};
use wlcrc_pcm::state::CellState;
use wlcrc_pcm::LINE_CELLS;

/// The six cheapest two-cell state combinations, used by candidate sets that
/// need more than four selector values per block (i.e. 6cosets). Ordered by
/// total programming energy so that low indices are cheap to store.
const AUX_COMBOS: [(CellState, CellState); 6] = [
    (CellState::S1, CellState::S1),
    (CellState::S1, CellState::S2),
    (CellState::S2, CellState::S1),
    (CellState::S2, CellState::S2),
    (CellState::S1, CellState::S3),
    (CellState::S3, CellState::S1),
];

/// A coset codec that picks, for every data block, the candidate with the
/// minimum differential-write energy.
#[derive(Debug, Clone)]
pub struct NCosetsCodec {
    set: CandidateSet,
    granularity: Granularity,
    name: String,
}

impl NCosetsCodec {
    /// Creates a codec from a candidate set and block granularity.
    ///
    /// # Panics
    ///
    /// Panics if the candidate set needs more than two auxiliary cells per
    /// block (more than 16 candidates).
    pub fn new(set: CandidateSet, granularity: Granularity) -> NCosetsCodec {
        assert!(set.len() <= 16, "NCosetsCodec supports at most 16 candidates per block");
        if set.len() > 4 {
            assert!(
                set.len() <= AUX_COMBOS.len(),
                "candidate sets with more than 4 entries are limited to {} (the cheap aux combos)",
                AUX_COMBOS.len()
            );
        }
        let name = format!("{}-{}", set.name(), granularity.bits());
        NCosetsCodec { set, granularity, name }
    }

    /// The paper's `4cosets` scheme at the given granularity.
    pub fn four_cosets(granularity: Granularity) -> NCosetsCodec {
        NCosetsCodec::new(CandidateSet::four_cosets(), granularity)
    }

    /// The paper's `3cosets` scheme at the given granularity.
    pub fn three_cosets(granularity: Granularity) -> NCosetsCodec {
        NCosetsCodec::new(CandidateSet::three_cosets(), granularity)
    }

    /// The prior `6cosets` scheme at the given granularity.
    pub fn six_cosets(granularity: Granularity) -> NCosetsCodec {
        NCosetsCodec::new(CandidateSet::six_cosets(), granularity)
    }

    /// The candidate set used by this codec.
    pub fn candidate_set(&self) -> &CandidateSet {
        &self.set
    }

    /// The block granularity of this codec.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of auxiliary cells used per block.
    pub fn aux_cells_per_block(&self) -> usize {
        if self.set.len() <= 4 {
            1
        } else {
            2
        }
    }

    fn aux_cell_base(&self) -> usize {
        LINE_CELLS
    }

    fn write_selector(&self, out: &mut PhysicalLine, block: usize, index: usize) {
        let base = self.aux_cell_base() + block * self.aux_cells_per_block();
        if self.aux_cells_per_block() == 1 {
            out.set_state(base, CellState::from_index(index));
        } else {
            let (a, b) = AUX_COMBOS[index];
            out.set_state(base, a);
            out.set_state(base + 1, b);
        }
    }

    /// Differential-write cost of recording candidate `index` for `block`,
    /// given the currently stored auxiliary cells.
    fn selector_cost(
        &self,
        old: &PhysicalLine,
        block: usize,
        index: usize,
        energy: &EnergyModel,
    ) -> f64 {
        let base = self.aux_cell_base() + block * self.aux_cells_per_block();
        if self.aux_cells_per_block() == 1 {
            energy.transition_energy_pj(old.state(base), CellState::from_index(index))
        } else {
            let (a, b) = AUX_COMBOS[index];
            energy.transition_energy_pj(old.state(base), a)
                + energy.transition_energy_pj(old.state(base + 1), b)
        }
    }

    fn read_selector(&self, stored: &PhysicalLine, block: usize) -> usize {
        let base = self.aux_cell_base() + block * self.aux_cells_per_block();
        if self.aux_cells_per_block() == 1 {
            stored.state(base).index().min(self.set.len() - 1)
        } else {
            let pair = (stored.state(base), stored.state(base + 1));
            AUX_COMBOS.iter().position(|c| *c == pair).unwrap_or(0).min(self.set.len() - 1)
        }
    }
}

impl LineCodec for NCosetsCodec {
    fn name(&self) -> &str {
        &self.name
    }

    fn encoded_cells(&self) -> usize {
        LINE_CELLS + self.granularity.blocks_per_line() * self.aux_cells_per_block()
    }

    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, energy: &EnergyModel) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        for cell in LINE_CELLS..self.encoded_cells() {
            out.set_class(cell, CellClass::Aux);
        }
        for block in 0..self.granularity.blocks_per_line() {
            let cells = self.granularity.block_cells(block);
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for (idx, candidate) in self.set.candidates().iter().enumerate() {
                // The selection minimises the full differential-write cost:
                // the data block plus the auxiliary cells that record the
                // chosen candidate.
                let cost = block_cost(data, old, cells.clone(), candidate, energy)
                    + self.selector_cost(old, block, idx, energy);
                if cost < best_cost {
                    best_cost = cost;
                    best = idx;
                }
            }
            write_block(data, &mut out, cells, self.set.candidate(best));
            self.write_selector(&mut out, block, best);
        }
        out
    }

    fn decode(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        let mut data = MemoryLine::ZERO;
        for block in 0..self.granularity.blocks_per_line() {
            let index = self.read_selector(stored, block);
            let cells = self.granularity.block_cells(block);
            read_block(stored, &mut data, cells, self.set.candidate(index));
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wlcrc_pcm::write::differential_write;

    fn random_line(rng: &mut StdRng) -> MemoryLine {
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = rng.gen();
        }
        MemoryLine::from_words(words)
    }

    #[test]
    fn round_trip_all_sets_and_granularities() {
        let mut rng = StdRng::seed_from_u64(1);
        for set in
            [CandidateSet::three_cosets(), CandidateSet::four_cosets(), CandidateSet::six_cosets()]
        {
            for g in [8usize, 16, 32, 64, 128, 256, 512] {
                let codec = NCosetsCodec::new(set.clone(), Granularity::new(g));
                let old = codec.initial_line();
                for _ in 0..10 {
                    let data = random_line(&mut rng);
                    let enc = codec.encode(&data, &old, &EnergyModel::paper_default());
                    assert_eq!(enc.len(), codec.encoded_cells());
                    assert_eq!(codec.decode(&enc), data, "{} g={}", set.name(), g);
                }
            }
        }
    }

    #[test]
    fn aux_cell_counts_match_paper() {
        // 6cosets at 512-bit granularity: 2 aux symbols per line.
        let six = NCosetsCodec::six_cosets(Granularity::new(512));
        assert_eq!(six.encoded_cells() - 256, 2);
        // 4cosets at 512-bit: 1 aux symbol.
        let four = NCosetsCodec::four_cosets(Granularity::new(512));
        assert_eq!(four.encoded_cells() - 256, 1);
        // 16-bit granularity: 32 blocks -> 32 aux symbols for 4cosets,
        // 64 for 6cosets.
        assert_eq!(NCosetsCodec::four_cosets(Granularity::new(16)).encoded_cells() - 256, 32);
        assert_eq!(NCosetsCodec::six_cosets(Granularity::new(16)).encoded_cells() - 256, 64);
    }

    #[test]
    fn encoding_never_costs_more_than_default_mapping() {
        // The candidate sets all contain C1 (the default mapping) or an
        // equivalent low state assignment, so the chosen encoding's data cost
        // can never exceed encoding with C1 alone.
        let mut rng = StdRng::seed_from_u64(3);
        let energy = EnergyModel::paper_default();
        let codec = NCosetsCodec::four_cosets(Granularity::new(16));
        let raw = wlcrc_pcm::codec::RawCodec::new();
        for _ in 0..30 {
            let data = random_line(&mut rng);
            let old_data = random_line(&mut rng);
            // Build consistent "old" content for both codecs from old_data.
            let old_coset = codec.encode(&old_data, &codec.initial_line(), &energy);
            let old_raw = raw.encode(&old_data, &raw.initial_line(), &energy);
            let new_coset = codec.encode(&data, &old_coset, &energy);
            let new_raw = raw.encode(&data, &old_raw, &energy);
            let coset_cost = differential_write(&old_coset, &new_coset, &energy).data_energy_pj;
            let raw_cost = differential_write(&old_raw, &new_raw, &energy).data_energy_pj;
            assert!(
                coset_cost <= raw_cost + 1e-9,
                "coset data energy {coset_cost} should not exceed baseline {raw_cost}"
            );
        }
    }

    #[test]
    fn biased_data_prefers_low_energy_states() {
        // An all-ones line (symbol 11 everywhere) must end up mostly in the
        // low-energy states thanks to C2.
        let codec = NCosetsCodec::four_cosets(Granularity::new(32));
        let energy = EnergyModel::paper_default();
        let data = MemoryLine::ZERO.complement();
        let enc = codec.encode(&data, &codec.initial_line(), &energy);
        let low = enc.states().iter().take(LINE_CELLS).filter(|s| s.is_low_energy()).count();
        assert_eq!(low, LINE_CELLS);
    }

    #[test]
    fn finer_granularity_reduces_data_energy_on_random_data() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        let coarse = NCosetsCodec::six_cosets(Granularity::new(512));
        let fine = NCosetsCodec::six_cosets(Granularity::new(16));
        let mut coarse_cost = 0.0;
        let mut fine_cost = 0.0;
        for _ in 0..50 {
            let old = random_line(&mut rng);
            let new = random_line(&mut rng);
            let old_c = coarse.encode(&old, &coarse.initial_line(), &energy);
            let old_f = fine.encode(&old, &fine.initial_line(), &energy);
            let new_c = coarse.encode(&new, &old_c, &energy);
            let new_f = fine.encode(&new, &old_f, &energy);
            coarse_cost += differential_write(&old_c, &new_c, &energy).data_energy_pj;
            fine_cost += differential_write(&old_f, &new_f, &energy).data_energy_pj;
        }
        assert!(
            fine_cost < coarse_cost,
            "fine granularity should reduce data energy ({fine_cost} vs {coarse_cost})"
        );
    }
}
