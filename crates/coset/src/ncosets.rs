//! The generic "n cosets" codec: each data block is independently encoded
//! with the cheapest candidate of a [`CandidateSet`], and the chosen candidate
//! is recorded in auxiliary cells appended to the line.
//!
//! Instantiated with the right candidate set and granularity this yields the
//! paper's `3cosets`, `4cosets` and `6cosets` schemes at any block size from
//! 8 to 512 bits.

use crate::candidate::CandidateSet;
use crate::cost::{block_cost, write_block};
use crate::granularity::Granularity;
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::energy::EnergyModel;
use wlcrc_pcm::kernel::{self, StatePlanes, SymbolPlanes, TransitionTable, PLANE_WORDS};
use wlcrc_pcm::line::MemoryLine;
use wlcrc_pcm::physical::{CellClass, PhysicalLine};
use wlcrc_pcm::state::CellState;
use wlcrc_pcm::LINE_CELLS;

/// The six cheapest two-cell state combinations, used by candidate sets that
/// need more than four selector values per block (i.e. 6cosets). Ordered by
/// total programming energy so that low indices are cheap to store.
const AUX_COMBOS: [(CellState, CellState); 6] = [
    (CellState::S1, CellState::S1),
    (CellState::S1, CellState::S2),
    (CellState::S2, CellState::S1),
    (CellState::S2, CellState::S2),
    (CellState::S1, CellState::S3),
    (CellState::S3, CellState::S1),
];

/// Largest candidate set a codec can hold (bounded by [`AUX_COMBOS`]).
const MAX_CANDIDATES: usize = AUX_COMBOS.len();

/// Most blocks any granularity produces (8-bit blocks → 64 per line).
const MAX_LINE_BLOCKS: usize = 64;

/// Precomputed inverse of [`AUX_COMBOS`], indexed by
/// `first.index() * 4 + second.index()`; `NO_COMBO` marks state pairs that
/// are not a valid selector encoding (the decode path treats them as
/// candidate 0, like the old linear `iter().position()` scan did).
const NO_COMBO: u8 = u8::MAX;
const AUX_COMBO_INDEX: [u8; 16] = {
    let mut table = [NO_COMBO; 16];
    let mut i = 0;
    while i < AUX_COMBOS.len() {
        let (a, b) = AUX_COMBOS[i];
        table[a.index() * 4 + b.index()] = i as u8;
        i += 1;
    }
    table
};

/// A coset codec that picks, for every data block, the candidate with the
/// minimum differential-write energy.
#[derive(Debug, Clone)]
pub struct NCosetsCodec {
    set: CandidateSet,
    granularity: Granularity,
    name: String,
}

impl NCosetsCodec {
    /// Creates a codec from a candidate set and block granularity.
    ///
    /// # Panics
    ///
    /// Panics if the candidate set needs more than two auxiliary cells per
    /// block (more than 16 candidates).
    pub fn new(set: CandidateSet, granularity: Granularity) -> NCosetsCodec {
        assert!(set.len() <= 16, "NCosetsCodec supports at most 16 candidates per block");
        if set.len() > 4 {
            assert!(
                set.len() <= AUX_COMBOS.len(),
                "candidate sets with more than 4 entries are limited to {} (the cheap aux combos)",
                AUX_COMBOS.len()
            );
        }
        let name = format!("{}-{}", set.name(), granularity.bits());
        NCosetsCodec { set, granularity, name }
    }

    /// The paper's `4cosets` scheme at the given granularity.
    pub fn four_cosets(granularity: Granularity) -> NCosetsCodec {
        NCosetsCodec::new(CandidateSet::four_cosets(), granularity)
    }

    /// The paper's `3cosets` scheme at the given granularity.
    pub fn three_cosets(granularity: Granularity) -> NCosetsCodec {
        NCosetsCodec::new(CandidateSet::three_cosets(), granularity)
    }

    /// The prior `6cosets` scheme at the given granularity.
    pub fn six_cosets(granularity: Granularity) -> NCosetsCodec {
        NCosetsCodec::new(CandidateSet::six_cosets(), granularity)
    }

    /// The candidate set used by this codec.
    pub fn candidate_set(&self) -> &CandidateSet {
        &self.set
    }

    /// The block granularity of this codec.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of auxiliary cells used per block.
    pub fn aux_cells_per_block(&self) -> usize {
        if self.set.len() <= 4 {
            1
        } else {
            2
        }
    }

    fn aux_cell_base(&self) -> usize {
        LINE_CELLS
    }

    fn write_selector(&self, out: &mut PhysicalLine, block: usize, index: usize) {
        let base = self.aux_cell_base() + block * self.aux_cells_per_block();
        if self.aux_cells_per_block() == 1 {
            out.set_state(base, CellState::from_index(index));
        } else {
            let (a, b) = AUX_COMBOS[index];
            out.set_state(base, a);
            out.set_state(base + 1, b);
        }
    }

    /// Differential-write cost of recording candidate `index` for `block`,
    /// given the currently stored auxiliary cells.
    fn selector_cost(
        &self,
        old: &PhysicalLine,
        block: usize,
        index: usize,
        energy: &EnergyModel,
    ) -> f64 {
        let base = self.aux_cell_base() + block * self.aux_cells_per_block();
        if self.aux_cells_per_block() == 1 {
            energy.transition_energy_pj(old.state(base), CellState::from_index(index))
        } else {
            let (a, b) = AUX_COMBOS[index];
            energy.transition_energy_pj(old.state(base), a)
                + energy.transition_energy_pj(old.state(base + 1), b)
        }
    }

    fn read_selector(&self, stored: &PhysicalLine, block: usize) -> usize {
        let base = self.aux_cell_base() + block * self.aux_cells_per_block();
        if self.aux_cells_per_block() == 1 {
            stored.state(base).index().min(self.set.len() - 1)
        } else {
            let key = stored.state(base).index() * 4 + stored.state(base + 1).index();
            let index = AUX_COMBO_INDEX[key];
            let index = if index == NO_COMBO { 0 } else { index as usize };
            index.min(self.set.len() - 1)
        }
    }

    /// One transition table per candidate, on the stack (no heap allocation
    /// per write). Built once per encode — or once per *batch* by
    /// [`LineCodec::encode_batch`].
    fn build_tables(&self, energy: &EnergyModel) -> [TransitionTable; MAX_CANDIDATES] {
        let mut tables = [TransitionTable::placeholder(); MAX_CANDIDATES];
        for (table, candidate) in tables.iter_mut().zip(self.set.candidates()) {
            *table = TransitionTable::new(&candidate.mapping(), energy);
        }
        tables
    }

    /// Shared encode body. With `kernel_ctx` the per-candidate block costs
    /// run on the bit-parallel kernel: fine granularities (blocks smaller
    /// than a 64-cell plane word) precompute every candidate's per-block cost
    /// with the amortised word sweep ([`kernel::block_costs_uniform`]), while
    /// coarse blocks are evaluated per candidate with branch-and-bound (a
    /// candidate is abandoned as soon as its partial cost reaches the
    /// incumbent — it could no longer win the strict `<` comparison, so the
    /// winner is unchanged). Without `kernel_ctx` the costs come from the
    /// scalar reference in [`crate::cost`].
    fn encode_impl(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        energy: &EnergyModel,
        kernel_ctx: Option<(&SymbolPlanes, &StatePlanes, &[TransitionTable; MAX_CANDIDATES])>,
    ) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let blocks = self.granularity.blocks_per_line();
        let cells_per_block = self.granularity.cells();
        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        for cell in LINE_CELLS..self.encoded_cells() {
            out.set_class(cell, CellClass::Aux);
        }
        // Fine granularity: the fused kernel sweep evaluates every candidate
        // per block while the bucket masks are in registers — the selection
        // minimises the full differential-write cost (data block plus the
        // auxiliary cells recording the choice) exactly like the scalar loop
        // below — and assembles the winners' target planes, which are
        // scattered to cells in a single pass at the end.
        if let Some((planes, stored, tables)) = kernel_ctx {
            // Granularities finer than 8 bits (more than 64 blocks) exceed
            // the fixed-size scratch and take the generic per-block loop
            // below instead, which handles any block count.
            if cells_per_block < 64 && blocks <= MAX_LINE_BLOCKS {
                // Single-cell selectors (sets of ≤ 4 candidates) reduce to
                // "zero if the stored selector already says `idx`, else the
                // programming energy of the selector state".
                let one_aux_cell = self.aux_cells_per_block() == 1;
                let selector_write_pj: [f64; 4] =
                    std::array::from_fn(|idx| energy.write_energy_pj(CellState::from_index(idx)));
                let aux_base = self.aux_cell_base();
                let aux_states = &old.states()[aux_base..];
                let mut winners = [0u8; MAX_LINE_BLOCKS];
                let mut out0 = [0u64; PLANE_WORDS];
                let mut out1 = [0u64; PLANE_WORDS];
                // Integer-valued energies (the paper's tables) run the
                // selection entirely on u64 totals — exactly equal to the f64
                // totals, which represent the same integers.
                let all_int =
                    tables[..self.set.len()].iter().all(|t| t.integer_write_pj().is_some());
                if all_int {
                    let template: [u64; 8] =
                        std::array::from_fn(
                            |i| {
                                if i < 4 {
                                    selector_write_pj[i] as u64
                                } else {
                                    0
                                }
                            },
                        );
                    let mut selector_costs = [[0u64; 8]; MAX_LINE_BLOCKS];
                    for (block, row) in selector_costs.iter_mut().enumerate().take(blocks) {
                        if one_aux_cell {
                            *row = template;
                            let stored_selector = aux_states[block].index();
                            if stored_selector < self.set.len() {
                                row[stored_selector] = 0;
                            }
                        } else {
                            for (idx, slot) in row.iter_mut().enumerate().take(self.set.len()) {
                                *slot = self.selector_cost(old, block, idx, energy) as u64;
                            }
                        }
                    }
                    kernel::select_blocks_uniform_int(
                        planes,
                        stored,
                        cells_per_block,
                        blocks,
                        &tables[..self.set.len()],
                        &selector_costs,
                        &mut winners,
                        &mut out0,
                        &mut out1,
                    );
                } else {
                    let mut selector_costs = [[0.0f64; 8]; MAX_LINE_BLOCKS];
                    for (block, row) in selector_costs.iter_mut().enumerate().take(blocks) {
                        if one_aux_cell {
                            row[..4].copy_from_slice(&selector_write_pj);
                            let stored_selector = aux_states[block].index();
                            if stored_selector < self.set.len() {
                                row[stored_selector] = 0.0;
                            }
                        } else {
                            for (idx, slot) in row.iter_mut().enumerate().take(self.set.len()) {
                                *slot = self.selector_cost(old, block, idx, energy);
                            }
                        }
                    }
                    kernel::select_blocks_uniform(
                        planes,
                        stored,
                        cells_per_block,
                        blocks,
                        &tables[..self.set.len()],
                        &selector_costs,
                        &mut winners,
                        &mut out0,
                        &mut out1,
                    );
                }
                if one_aux_cell {
                    // One selector cell per block, in block order.
                    let aux_states = &mut out.states_mut()[LINE_CELLS..];
                    for (slot, &winner) in aux_states.iter_mut().zip(winners.iter().take(blocks)) {
                        *slot = CellState::ALL[(winner & 3) as usize];
                    }
                } else {
                    for (block, &winner) in winners.iter().enumerate().take(blocks) {
                        self.write_selector(&mut out, block, winner as usize);
                    }
                }
                kernel::write_states_from_planes(&mut out, LINE_CELLS, &out0, &out1);
                return out;
            }
        }
        for block in 0..blocks {
            let cells = self.granularity.block_cells(block);
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for (idx, candidate) in self.set.candidates().iter().enumerate() {
                // The selection minimises the full differential-write cost:
                // the data block plus the auxiliary cells that record the
                // chosen candidate.
                let selector = self.selector_cost(old, block, idx, energy);
                let cost = match kernel_ctx {
                    Some((planes, stored, tables)) => {
                        match kernel::block_cost_bounded(
                            planes,
                            stored,
                            cells.clone(),
                            &tables[idx],
                            selector,
                            best_cost,
                        ) {
                            Some(total) => total,
                            None => continue,
                        }
                    }
                    None => block_cost(data, old, cells.clone(), candidate, energy) + selector,
                };
                if cost < best_cost {
                    best_cost = cost;
                    best = idx;
                }
            }
            write_block(data, &mut out, cells, self.set.candidate(best));
            self.write_selector(&mut out, block, best);
        }
        out
    }

    /// The scalar reference encoder (identical selection logic driven by the
    /// per-cell cost routines in [`crate::cost`]). Kept callable so the
    /// equivalence tests and the perf snapshot can compare the kernel against
    /// the exact pre-kernel path.
    #[doc(hidden)]
    pub fn encode_scalar(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        energy: &EnergyModel,
    ) -> PhysicalLine {
        self.encode_impl(data, old, energy, None)
    }
}

impl LineCodec for NCosetsCodec {
    fn name(&self) -> &str {
        &self.name
    }

    fn encoded_cells(&self) -> usize {
        LINE_CELLS + self.granularity.blocks_per_line() * self.aux_cells_per_block()
    }

    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, energy: &EnergyModel) -> PhysicalLine {
        let tables = self.build_tables(energy);
        self.encode_impl(
            data,
            old,
            energy,
            Some((&data.symbol_planes(), &old.state_planes(), &tables)),
        )
    }

    fn encode_batch(
        &self,
        jobs: &[(&MemoryLine, &PhysicalLine)],
        energy: &EnergyModel,
    ) -> Vec<PhysicalLine> {
        let tables = self.build_tables(energy);
        kernel::encode_batch(jobs, |planes, stored, data, old| {
            self.encode_impl(data, old, energy, Some((planes, stored, &tables)))
        })
    }

    fn decode(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        // Bit-parallel inverse mapping: one plane transform per candidate
        // (at most six), then a per-block select of whichever candidate the
        // stored selector names. Byte-identical to the per-cell
        // [`read_block`] reference, which remains the oracle in tests.
        let states = stored.state_planes();
        let mut inverses = [([0u64; PLANE_WORDS], [0u64; PLANE_WORDS]); MAX_CANDIDATES];
        for (slot, candidate) in inverses.iter_mut().zip(self.set.candidates()) {
            *slot =
                kernel::symbol_planes_from_states(&states, candidate.mapping().symbols_per_state());
        }
        let mut p0 = [0u64; PLANE_WORDS];
        let mut p1 = [0u64; PLANE_WORDS];
        for block in 0..self.granularity.blocks_per_line() {
            let index = self.read_selector(stored, block);
            let (c0, c1) = &inverses[index];
            let cells = self.granularity.block_cells(block);
            let (mut c, end) = (cells.start, cells.end);
            while c < end {
                let (w, off) = (c / 64, c % 64);
                let n = (64 - off).min(end - c);
                let mask = (u64::MAX >> (64 - n)) << off;
                p0[w] |= c0[w] & mask;
                p1[w] |= c1[w] & mask;
                c += n;
            }
        }
        kernel::line_from_planes(&p0, &p1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::read_block;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wlcrc_pcm::write::differential_write;

    fn random_line(rng: &mut StdRng) -> MemoryLine {
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = rng.gen();
        }
        MemoryLine::from_words(words)
    }

    #[test]
    fn round_trip_all_sets_and_granularities() {
        let mut rng = StdRng::seed_from_u64(1);
        for set in
            [CandidateSet::three_cosets(), CandidateSet::four_cosets(), CandidateSet::six_cosets()]
        {
            for g in [8usize, 16, 32, 64, 128, 256, 512] {
                let codec = NCosetsCodec::new(set.clone(), Granularity::new(g));
                let old = codec.initial_line();
                for _ in 0..10 {
                    let data = random_line(&mut rng);
                    let enc = codec.encode(&data, &old, &EnergyModel::paper_default());
                    assert_eq!(enc.len(), codec.encoded_cells());
                    assert_eq!(codec.decode(&enc), data, "{} g={}", set.name(), g);
                }
            }
        }
    }

    #[test]
    fn aux_cell_counts_match_paper() {
        // 6cosets at 512-bit granularity: 2 aux symbols per line.
        let six = NCosetsCodec::six_cosets(Granularity::new(512));
        assert_eq!(six.encoded_cells() - 256, 2);
        // 4cosets at 512-bit: 1 aux symbol.
        let four = NCosetsCodec::four_cosets(Granularity::new(512));
        assert_eq!(four.encoded_cells() - 256, 1);
        // 16-bit granularity: 32 blocks -> 32 aux symbols for 4cosets,
        // 64 for 6cosets.
        assert_eq!(NCosetsCodec::four_cosets(Granularity::new(16)).encoded_cells() - 256, 32);
        assert_eq!(NCosetsCodec::six_cosets(Granularity::new(16)).encoded_cells() - 256, 64);
    }

    #[test]
    fn encoding_never_costs_more_than_default_mapping() {
        // The candidate sets all contain C1 (the default mapping) or an
        // equivalent low state assignment, so the chosen encoding's data cost
        // can never exceed encoding with C1 alone.
        let mut rng = StdRng::seed_from_u64(3);
        let energy = EnergyModel::paper_default();
        let codec = NCosetsCodec::four_cosets(Granularity::new(16));
        let raw = wlcrc_pcm::codec::RawCodec::new();
        for _ in 0..30 {
            let data = random_line(&mut rng);
            let old_data = random_line(&mut rng);
            // Build consistent "old" content for both codecs from old_data.
            let old_coset = codec.encode(&old_data, &codec.initial_line(), &energy);
            let old_raw = raw.encode(&old_data, &raw.initial_line(), &energy);
            let new_coset = codec.encode(&data, &old_coset, &energy);
            let new_raw = raw.encode(&data, &old_raw, &energy);
            let coset_cost = differential_write(&old_coset, &new_coset, &energy).data_energy_pj;
            let raw_cost = differential_write(&old_raw, &new_raw, &energy).data_energy_pj;
            assert!(
                coset_cost <= raw_cost + 1e-9,
                "coset data energy {coset_cost} should not exceed baseline {raw_cost}"
            );
        }
    }

    #[test]
    fn biased_data_prefers_low_energy_states() {
        // An all-ones line (symbol 11 everywhere) must end up mostly in the
        // low-energy states thanks to C2.
        let codec = NCosetsCodec::four_cosets(Granularity::new(32));
        let energy = EnergyModel::paper_default();
        let data = MemoryLine::ZERO.complement();
        let enc = codec.encode(&data, &codec.initial_line(), &energy);
        let low = enc.states().iter().take(LINE_CELLS).filter(|s| s.is_low_energy()).count();
        assert_eq!(low, LINE_CELLS);
    }

    #[test]
    fn aux_combo_inverse_table_matches_linear_scan() {
        for a in CellState::ALL {
            for b in CellState::ALL {
                let linear = AUX_COMBOS.iter().position(|c| *c == (a, b));
                let table = AUX_COMBO_INDEX[a.index() * 4 + b.index()];
                match linear {
                    Some(i) => assert_eq!(table as usize, i),
                    None => assert_eq!(table, NO_COMBO),
                }
            }
        }
    }

    #[test]
    fn kernel_encode_matches_scalar_encode() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(91);
        for set in
            [CandidateSet::three_cosets(), CandidateSet::four_cosets(), CandidateSet::six_cosets()]
        {
            for g in [8usize, 16, 64, 512] {
                let codec = NCosetsCodec::new(set.clone(), Granularity::new(g));
                let mut old = codec.initial_line();
                for _ in 0..8 {
                    let data = random_line(&mut rng);
                    let kernel = codec.encode(&data, &old, &energy);
                    let scalar = codec.encode_scalar(&data, &old, &energy);
                    assert_eq!(kernel, scalar, "{} g={}", set.name(), g);
                    old = kernel;
                }
            }
        }
    }

    #[test]
    fn kernel_decode_matches_scalar_read_blocks() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(93);
        for set in
            [CandidateSet::three_cosets(), CandidateSet::four_cosets(), CandidateSet::six_cosets()]
        {
            for g in [8usize, 16, 64, 512] {
                let codec = NCosetsCodec::new(set.clone(), Granularity::new(g));
                let mut old = codec.initial_line();
                for _ in 0..5 {
                    let data = random_line(&mut rng);
                    let enc = codec.encode(&data, &old, &energy);
                    let mut expected = MemoryLine::ZERO;
                    for block in 0..codec.granularity().blocks_per_line() {
                        let index = codec.read_selector(&enc, block);
                        let cells = codec.granularity().block_cells(block);
                        read_block(
                            &enc,
                            &mut expected,
                            cells,
                            codec.candidate_set().candidate(index),
                        );
                    }
                    assert_eq!(codec.decode(&enc), expected, "{} g={}", set.name(), g);
                    old = enc;
                }
            }
        }
    }

    #[test]
    fn batched_encode_matches_one_at_a_time() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(95);
        let codec = NCosetsCodec::six_cosets(Granularity::new(16));
        let lines: Vec<MemoryLine> = (0..12).map(|_| random_line(&mut rng)).collect();
        let olds: Vec<PhysicalLine> =
            lines.iter().map(|l| codec.encode(l, &codec.initial_line(), &energy)).collect();
        let jobs: Vec<(&MemoryLine, &PhysicalLine)> = lines.iter().zip(olds.iter().rev()).collect();
        let batched = codec.encode_batch(&jobs, &energy);
        assert_eq!(batched.len(), jobs.len());
        for ((data, old), enc) in jobs.iter().zip(&batched) {
            assert_eq!(*enc, codec.encode(data, old, &energy));
        }
    }

    #[test]
    fn finer_granularity_reduces_data_energy_on_random_data() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        let coarse = NCosetsCodec::six_cosets(Granularity::new(512));
        let fine = NCosetsCodec::six_cosets(Granularity::new(16));
        let mut coarse_cost = 0.0;
        let mut fine_cost = 0.0;
        for _ in 0..50 {
            let old = random_line(&mut rng);
            let new = random_line(&mut rng);
            let old_c = coarse.encode(&old, &coarse.initial_line(), &energy);
            let old_f = fine.encode(&old, &fine.initial_line(), &energy);
            let new_c = coarse.encode(&new, &old_c, &energy);
            let new_f = fine.encode(&new, &old_f, &energy);
            coarse_cost += differential_write(&old_c, &new_c, &energy).data_energy_pj;
            fine_cost += differential_write(&old_f, &new_f, &energy).data_energy_pj;
        }
        assert!(
            fine_cost < coarse_cost,
            "fine granularity should reduce data energy ({fine_cost} vs {coarse_cost})"
        );
    }
}
