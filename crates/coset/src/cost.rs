//! Differential-write cost evaluation shared by the coset codecs.
//!
//! The functions here are the **scalar reference implementations**: they walk
//! a block cell by cell exactly as the paper describes the hardware doing it.
//! The production `encode()` paths of every codec in this crate use the
//! bit-parallel kernel in [`wlcrc_pcm::kernel`] instead (transition LUTs +
//! plane popcounts) and are pinned byte-identical to these routines by the
//! `kernel_equivalence` test suite and by each codec's `encode_scalar`
//! oracle; with integer-valued energy tables (Table II and all Figure 14
//! configurations) the two are exact, not merely approximately equal.

use crate::candidate::CosetCandidate;
use std::ops::Range;
use wlcrc_pcm::energy::EnergyModel;
use wlcrc_pcm::line::MemoryLine;
use wlcrc_pcm::physical::PhysicalLine;

/// The differential-write energy (pJ) of encoding the data cells in `cells`
/// of `data` with `candidate`, given the currently stored states in `old`.
///
/// Cell index `i` of the data maps to cell index `i` of the stored line
/// (schemes that relocate data must do their own bookkeeping).
pub fn block_cost(
    data: &MemoryLine,
    old: &PhysicalLine,
    cells: Range<usize>,
    candidate: &CosetCandidate,
    energy: &EnergyModel,
) -> f64 {
    let mut cost = 0.0;
    for cell in cells {
        let target = candidate.state_of(data.symbol(cell));
        cost += energy.transition_energy_pj(old.state(cell), target);
    }
    cost
}

/// Like [`block_cost`] but counting the number of cells that would be
/// programmed instead of the energy (used by the multi-objective policy).
pub fn block_updated_cells(
    data: &MemoryLine,
    old: &PhysicalLine,
    cells: Range<usize>,
    candidate: &CosetCandidate,
) -> usize {
    let mut updated = 0;
    for cell in cells {
        let target = candidate.state_of(data.symbol(cell));
        if old.state(cell) != target {
            updated += 1;
        }
    }
    updated
}

/// Writes the encoding of the data cells in `cells` with `candidate` into
/// `out` (at the same cell indices).
pub fn write_block(
    data: &MemoryLine,
    out: &mut PhysicalLine,
    cells: Range<usize>,
    candidate: &CosetCandidate,
) {
    for cell in cells {
        out.set_state(cell, candidate.state_of(data.symbol(cell)));
    }
}

/// Decodes the stored states in `cells` with `candidate` back into `data`
/// (at the same cell indices).
pub fn read_block(
    stored: &PhysicalLine,
    data: &mut MemoryLine,
    cells: Range<usize>,
    candidate: &CosetCandidate,
) {
    for cell in cells {
        data.set_symbol(cell, candidate.symbol_of(stored.state(cell)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{c1, c2};
    use wlcrc_pcm::state::CellState;
    use wlcrc_pcm::LINE_CELLS;

    #[test]
    fn identical_content_costs_nothing() {
        let energy = EnergyModel::paper_default();
        let data = MemoryLine::ZERO;
        // Old line already stores all-zero data under C1 (all S1).
        let old = PhysicalLine::all_reset(LINE_CELLS);
        assert_eq!(block_cost(&data, &old, 0..LINE_CELLS, &c1(), &energy), 0.0);
        assert_eq!(block_updated_cells(&data, &old, 0..LINE_CELLS, &c1()), 0);
    }

    #[test]
    fn candidate_choice_changes_cost() {
        let energy = EnergyModel::paper_default();
        // A block of all-ones data over an all-S1 old line:
        // C1 maps 11 -> S3 (343 pJ per cell); C2 maps 11 -> S1 (0 pJ, unchanged).
        let data = MemoryLine::ZERO.complement();
        let old = PhysicalLine::all_reset(LINE_CELLS);
        let cost_c1 = block_cost(&data, &old, 0..8, &c1(), &energy);
        let cost_c2 = block_cost(&data, &old, 0..8, &c2(), &energy);
        assert_eq!(cost_c1, 8.0 * 343.0);
        assert_eq!(cost_c2, 0.0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let data = MemoryLine::from_words([0x0123_4567_89AB_CDEF; 8]);
        let mut stored = PhysicalLine::all_reset(LINE_CELLS);
        write_block(&data, &mut stored, 0..LINE_CELLS, &c2());
        let mut decoded = MemoryLine::ZERO;
        read_block(&stored, &mut decoded, 0..LINE_CELLS, &c2());
        assert_eq!(decoded, data);
    }

    #[test]
    fn updated_cells_matches_state_changes() {
        let data = MemoryLine::ZERO.complement();
        let mut old = PhysicalLine::all_reset(LINE_CELLS);
        for i in 0..4 {
            old.set_state(i, CellState::S3); // already stores 11 under C1
        }
        assert_eq!(block_updated_cells(&data, &old, 0..8, &c1()), 4);
    }
}
