//! Coset candidates: the symbol-to-state mappings a block may be encoded with.

use std::fmt;
use wlcrc_pcm::mapping::SymbolMapping;
use wlcrc_pcm::state::{CellState, Symbol};

/// One coset candidate: a named symbol-to-state mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CosetCandidate {
    /// Short name ("C1", "C2", ...).
    name: &'static str,
    mapping: SymbolMapping,
}

impl CosetCandidate {
    /// Creates a candidate from a name and mapping.
    pub const fn new(name: &'static str, mapping: SymbolMapping) -> CosetCandidate {
        CosetCandidate { name, mapping }
    }

    /// The candidate's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The candidate's symbol-to-state mapping.
    pub fn mapping(&self) -> SymbolMapping {
        self.mapping
    }

    /// The state that stores `symbol` under this candidate.
    #[inline]
    pub fn state_of(&self, symbol: Symbol) -> CellState {
        self.mapping.state_of(symbol)
    }

    /// The symbol stored in `state` under this candidate.
    #[inline]
    pub fn symbol_of(&self, state: CellState) -> Symbol {
        self.mapping.symbol_of(state)
    }
}

impl fmt::Display for CosetCandidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.mapping)
    }
}

/// Builds candidate `C1` of Table I: the default mapping
/// (`S1<-00, S2<-10, S3<-11, S4<-01`).
pub fn c1() -> CosetCandidate {
    CosetCandidate::new("C1", SymbolMapping::default_mapping())
}

/// Builds candidate `C2` of Table I (`S1<-11, S2<-00, S3<-10, S4<-01`),
/// which favours lines biased towards runs of 1's and 0's.
pub fn c2() -> CosetCandidate {
    CosetCandidate::new(
        "C2",
        SymbolMapping::from_symbols_per_state([
            Symbol::new(0b11),
            Symbol::new(0b00),
            Symbol::new(0b10),
            Symbol::new(0b01),
        ]),
    )
}

/// Builds candidate `C3` of Table I (`S1<-11, S2<-01, S3<-00, S4<-10`),
/// chosen so that together with `C1` every symbol can reach a low-energy state.
pub fn c3() -> CosetCandidate {
    CosetCandidate::new(
        "C3",
        SymbolMapping::from_symbols_per_state([
            Symbol::new(0b11),
            Symbol::new(0b01),
            Symbol::new(0b00),
            Symbol::new(0b10),
        ]),
    )
}

/// Builds candidate `C4` of Table I (`S1<-11, S2<-00, S3<-01, S4<-10`).
pub fn c4() -> CosetCandidate {
    CosetCandidate::new(
        "C4",
        SymbolMapping::from_symbols_per_state([
            Symbol::new(0b11),
            Symbol::new(0b00),
            Symbol::new(0b01),
            Symbol::new(0b10),
        ]),
    )
}

/// A named, ordered set of coset candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSet {
    name: &'static str,
    candidates: Vec<CosetCandidate>,
}

impl CandidateSet {
    /// Creates a candidate set.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or contains duplicate mappings.
    pub fn new(name: &'static str, candidates: Vec<CosetCandidate>) -> CandidateSet {
        assert!(!candidates.is_empty(), "candidate set cannot be empty");
        for i in 0..candidates.len() {
            for j in (i + 1)..candidates.len() {
                assert_ne!(
                    candidates[i].mapping(),
                    candidates[j].mapping(),
                    "candidate set contains duplicate mappings"
                );
            }
        }
        CandidateSet { name, candidates }
    }

    /// The paper's 4cosets set: `C1..C4` of Table I.
    pub fn four_cosets() -> CandidateSet {
        CandidateSet::new("4cosets", vec![c1(), c2(), c3(), c4()])
    }

    /// The paper's 3cosets set: `C1..C3` of Table I (used unrestricted, and as
    /// the candidate pool of the restricted coset coding).
    pub fn three_cosets() -> CandidateSet {
        CandidateSet::new("3cosets", vec![c1(), c2(), c3()])
    }

    /// The prior 6cosets scheme: the six mappings that place each possible
    /// pair of symbols into the two low-energy states `S1`/`S2`, keeping the
    /// relative default order within each pair.
    pub fn six_cosets() -> CandidateSet {
        let default = SymbolMapping::default_mapping();
        let mut candidates = Vec::with_capacity(6);
        let names = ["P1", "P2", "P3", "P4", "P5", "P6"];
        let mut idx = 0;
        for a in 0..4u8 {
            for b in (a + 1)..4u8 {
                let low = [Symbol::new(a), Symbol::new(b)];
                let high: Vec<Symbol> =
                    Symbol::ALL.into_iter().filter(|s| s.value() != a && s.value() != b).collect();
                // Keep the default-relative order within each pair so the
                // encoding stays as close as possible to the original data.
                let ordered = |pair: &[Symbol]| -> (Symbol, Symbol) {
                    let (x, y) = (pair[0], pair[1]);
                    if default.state_of(x) <= default.state_of(y) {
                        (x, y)
                    } else {
                        (y, x)
                    }
                };
                let (l1, l2) = ordered(&low);
                let (h1, h2) = ordered(&high);
                let mapping = SymbolMapping::from_symbols_per_state([l1, l2, h1, h2]);
                candidates.push(CosetCandidate::new(names[idx], mapping));
                idx += 1;
            }
        }
        CandidateSet::new("6cosets", candidates)
    }

    /// The set's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of candidates in the set.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// `true` if the set is empty (never the case for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The candidates, in order.
    pub fn candidates(&self) -> &[CosetCandidate] {
        &self.candidates
    }

    /// Candidate at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn candidate(&self, index: usize) -> &CosetCandidate {
        &self.candidates[index]
    }

    /// Number of auxiliary bits needed to identify a candidate of this set.
    pub fn selector_bits(&self) -> usize {
        (usize::BITS - (self.candidates.len() - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_candidate_mappings() {
        // Row-by-row check of Table I.
        let table = [
            // (state, C1, C2, C3, C4) symbol values
            (CellState::S1, 0b00, 0b11, 0b11, 0b11),
            (CellState::S2, 0b10, 0b00, 0b01, 0b00),
            (CellState::S3, 0b11, 0b10, 0b00, 0b01),
            (CellState::S4, 0b01, 0b01, 0b10, 0b10),
        ];
        let cands = [c1(), c2(), c3(), c4()];
        for (state, v1, v2, v3, v4) in table {
            let expect = [v1, v2, v3, v4];
            for (cand, val) in cands.iter().zip(expect) {
                assert_eq!(cand.symbol_of(state), Symbol::new(val), "{} at {}", cand.name(), state);
            }
        }
    }

    #[test]
    fn c1_combined_with_c3_covers_all_symbols_with_low_states() {
        // Every symbol maps to a low-energy state in C1 or in C3.
        for s in Symbol::ALL {
            let low_in_c1 = c1().state_of(s).is_low_energy();
            let low_in_c3 = c3().state_of(s).is_low_energy();
            assert!(low_in_c1 || low_in_c3, "symbol {s}");
        }
    }

    #[test]
    fn four_cosets_has_four_distinct_candidates() {
        let set = CandidateSet::four_cosets();
        assert_eq!(set.len(), 4);
        assert_eq!(set.selector_bits(), 2);
        assert_eq!(set.candidate(0).name(), "C1");
    }

    #[test]
    fn three_cosets_selector_still_needs_two_bits() {
        let set = CandidateSet::three_cosets();
        assert_eq!(set.len(), 3);
        assert_eq!(set.selector_bits(), 2);
    }

    #[test]
    fn six_cosets_put_every_symbol_pair_in_low_states() {
        let set = CandidateSet::six_cosets();
        assert_eq!(set.len(), 6);
        assert_eq!(set.selector_bits(), 3);
        // For every pair of symbols there must be a candidate mapping both to
        // low-energy states.
        for a in 0..4u8 {
            for b in (a + 1)..4u8 {
                let found = set.candidates().iter().any(|c| {
                    c.state_of(Symbol::new(a)).is_low_energy()
                        && c.state_of(Symbol::new(b)).is_low_energy()
                });
                assert!(found, "no candidate favours pair ({a:02b}, {b:02b})");
            }
        }
    }

    #[test]
    fn six_cosets_contains_the_default_mapping() {
        let set = CandidateSet::six_cosets();
        assert!(set.candidates().iter().any(|c| c.mapping() == SymbolMapping::default_mapping()));
    }

    #[test]
    #[should_panic]
    fn duplicate_candidates_are_rejected() {
        let _ = CandidateSet::new("dup", vec![c1(), c1()]);
    }

    #[test]
    fn display_includes_name() {
        assert!(c2().to_string().starts_with("C2"));
    }
}
