//! FlipMin: coset coding with XOR-mask candidates derived from the dual of a
//! (72, 64) Hamming code.
//!
//! FlipMin maps the data line one-to-one into a coset of candidate code words
//! (here: the line XORed with one of sixteen fixed 512-bit masks) and writes
//! the candidate that minimises the differential-write cost. The index of the
//! chosen candidate is stored in two auxiliary symbols (four bits), matching
//! the overhead used by the paper's ISO-overhead comparison. Because the
//! masks are essentially random vectors, FlipMin is most effective on random
//! data and much less so on biased, real-workload data.

use wlcrc_ecc::coset_masks;
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::energy::EnergyModel;
use wlcrc_pcm::kernel::{self, StatePlanes, SymbolPlanes, TransitionTable, PLANE_WORDS};
use wlcrc_pcm::line::MemoryLine;
use wlcrc_pcm::mapping::SymbolMapping;
use wlcrc_pcm::physical::{CellClass, PhysicalLine};
use wlcrc_pcm::state::Symbol;
use wlcrc_pcm::LINE_CELLS;

/// Number of coset candidates (XOR masks).
const CANDIDATES: usize = 16;
/// Auxiliary cells used to record the chosen candidate (4 bits).
const AUX_CELLS: usize = 2;

/// The FlipMin codec.
#[derive(Debug, Clone)]
pub struct FlipMinCodec {
    masks: Vec<MemoryLine>,
    /// The plane view of every mask, precomputed once: a candidate's symbol
    /// planes are `data_planes XOR mask_planes`, so the per-write search
    /// never materialises the XORed lines.
    mask_planes: Vec<SymbolPlanes>,
    mapping: SymbolMapping,
}

impl FlipMinCodec {
    /// Creates a FlipMin codec with the default deterministic mask set.
    pub fn new() -> FlipMinCodec {
        FlipMinCodec::with_seed(0x0F1B_A5ED)
    }

    /// Creates a FlipMin codec whose masks are generated from `seed`.
    pub fn with_seed(seed: u64) -> FlipMinCodec {
        let masks: Vec<MemoryLine> =
            coset_masks(CANDIDATES, seed).into_iter().map(MemoryLine::from_words).collect();
        let mask_planes = masks.iter().map(SymbolPlanes::new).collect();
        FlipMinCodec { masks, mask_planes, mapping: SymbolMapping::default_mapping() }
    }

    /// The sixteen XOR-mask candidates.
    pub fn masks(&self) -> &[MemoryLine] {
        &self.masks
    }

    fn cost_of(&self, candidate: &MemoryLine, old: &PhysicalLine, energy: &EnergyModel) -> f64 {
        let mut cost = 0.0;
        for cell in 0..LINE_CELLS {
            let target = self.mapping.state_of(candidate.symbol(cell));
            cost += energy.transition_energy_pj(old.state(cell), target);
        }
        cost
    }

    /// Bit-parallel encode body against prebuilt plane views and the
    /// mapping's transition table; [`LineCodec::encode_batch`] builds the
    /// table once per batch.
    fn encode_kernel(
        &self,
        planes: &SymbolPlanes,
        stored: &StatePlanes,
        table: &TransitionTable,
    ) -> PhysicalLine {
        let mut best_index = 0usize;
        let mut best_cost = f64::INFINITY;
        for (i, mask_planes) in self.mask_planes.iter().enumerate() {
            let candidate = planes.xor(mask_planes);
            if let Some(cost) =
                kernel::block_cost_bounded(&candidate, stored, 0..LINE_CELLS, table, 0.0, best_cost)
            {
                best_cost = cost;
                best_index = i;
            }
        }
        self.write_chosen(&planes.xor(&self.mask_planes[best_index]), best_index, table)
    }

    /// Plane-assembled write of the winning candidate: the target planes are
    /// scattered in one pass, which also installs the new line's
    /// `StatePlanes` cache for the next write against it.
    fn write_chosen(
        &self,
        candidate: &SymbolPlanes,
        best_index: usize,
        table: &TransitionTable,
    ) -> PhysicalLine {
        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        let mut out0 = [0u64; PLANE_WORDS];
        let mut out1 = [0u64; PLANE_WORDS];
        for w in 0..PLANE_WORDS {
            let (t0, t1) = table.target_planes(candidate, w);
            out0[w] = t0;
            out1[w] = t1;
        }
        kernel::write_states_from_planes(&mut out, LINE_CELLS, &out0, &out1);
        // The 4-bit candidate index is stored in two auxiliary cells.
        for (i, shift) in [(0usize, 0u32), (1, 2)] {
            let bits = ((best_index >> shift) & 0b11) as u8;
            out.set_state(LINE_CELLS + i, self.mapping.state_of(Symbol::new(bits)));
            out.set_class(LINE_CELLS + i, CellClass::Aux);
        }
        out
    }

    /// The scalar reference encoder (see [`crate::cost`]); kept callable for
    /// the equivalence tests and the perf snapshot.
    #[doc(hidden)]
    pub fn encode_scalar(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        energy: &EnergyModel,
    ) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let mut best_index = 0usize;
        let mut best_cost = f64::INFINITY;
        for (i, mask) in self.masks.iter().enumerate() {
            let candidate = data.xor(mask);
            let cost = self.cost_of(&candidate, old, energy);
            if cost < best_cost {
                best_cost = cost;
                best_index = i;
            }
        }
        let best_line = data.xor(&self.masks[best_index]);
        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        for cell in 0..LINE_CELLS {
            out.set_state(cell, self.mapping.state_of(best_line.symbol(cell)));
        }
        for (i, shift) in [(0usize, 0u32), (1, 2)] {
            let bits = ((best_index >> shift) & 0b11) as u8;
            out.set_state(LINE_CELLS + i, self.mapping.state_of(Symbol::new(bits)));
            out.set_class(LINE_CELLS + i, CellClass::Aux);
        }
        out
    }
}

impl Default for FlipMinCodec {
    fn default() -> FlipMinCodec {
        FlipMinCodec::new()
    }
}

impl LineCodec for FlipMinCodec {
    fn name(&self) -> &str {
        "FlipMin"
    }

    fn encoded_cells(&self) -> usize {
        LINE_CELLS + AUX_CELLS
    }

    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, energy: &EnergyModel) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let table = TransitionTable::new(&self.mapping, energy);
        self.encode_kernel(&data.symbol_planes(), &old.state_planes(), &table)
    }

    fn encode_batch(
        &self,
        jobs: &[(&MemoryLine, &PhysicalLine)],
        energy: &EnergyModel,
    ) -> Vec<PhysicalLine> {
        let table = TransitionTable::new(&self.mapping, energy);
        kernel::encode_batch(jobs, |planes, stored, _data, old| {
            assert_eq!(old.len(), self.encoded_cells());
            self.encode_kernel(planes, stored, &table)
        })
    }

    fn decode(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        let lo = self.mapping.symbol_of(stored.state(LINE_CELLS)).value() as usize;
        let hi = self.mapping.symbol_of(stored.state(LINE_CELLS + 1)).value() as usize;
        let index = (lo | (hi << 2)).min(CANDIDATES - 1);
        // Bit-parallel inverse mapping of the data cells (warm on lines the
        // plane-assembled encode produced), then one XOR to strip the mask.
        let states = stored.state_planes();
        let (p0, p1) = kernel::symbol_planes_from_states(&states, self.mapping.symbols_per_state());
        kernel::line_from_planes(&p0, &p1).xor(&self.masks[index])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wlcrc_pcm::write::differential_write;

    fn random_line(rng: &mut StdRng) -> MemoryLine {
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = rng.gen();
        }
        MemoryLine::from_words(words)
    }

    #[test]
    fn sixteen_distinct_masks_with_identity_first() {
        let codec = FlipMinCodec::new();
        assert_eq!(codec.masks().len(), 16);
        assert_eq!(codec.masks()[0], MemoryLine::ZERO);
    }

    #[test]
    fn round_trip() {
        let codec = FlipMinCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut old = codec.initial_line();
        for _ in 0..50 {
            let data = random_line(&mut rng);
            let enc = codec.encode(&data, &old, &energy);
            assert_eq!(codec.decode(&enc), data);
            old = enc;
        }
    }

    #[test]
    fn never_worse_than_identity_candidate() {
        // The identity mask is always a candidate, so against the same stored
        // content the chosen encoding's data-cell energy can never exceed
        // writing the data unmasked.
        let codec = FlipMinCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..30 {
            let a = random_line(&mut rng);
            let b = random_line(&mut rng);
            let old = codec.encode(&a, &codec.initial_line(), &energy);
            let new = codec.encode(&b, &old, &energy);
            let chosen = differential_write(&old, &new, &energy).data_energy_pj;
            let identity = codec.cost_of(&b, &old, &energy);
            assert!(chosen <= identity + 1e-9);
        }
    }

    #[test]
    fn kernel_encode_matches_scalar_encode() {
        let codec = FlipMinCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(61);
        let mut old = codec.initial_line();
        for _ in 0..30 {
            let data = random_line(&mut rng);
            let kernel = codec.encode(&data, &old, &energy);
            assert_eq!(kernel, codec.encode_scalar(&data, &old, &energy));
            old = kernel;
        }
    }

    #[test]
    fn aux_overhead_is_two_symbols() {
        let codec = FlipMinCodec::new();
        let energy = EnergyModel::paper_default();
        let enc = codec.encode(&MemoryLine::ZERO, &codec.initial_line(), &energy);
        assert_eq!(enc.len(), 258);
        assert_eq!(enc.aux_cells(), 2);
    }

    #[test]
    fn different_seeds_give_different_masks() {
        let a = FlipMinCodec::with_seed(1);
        let b = FlipMinCodec::with_seed(2);
        assert_ne!(a.masks()[1], b.masks()[1]);
    }
}
