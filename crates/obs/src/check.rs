//! Trace-file validation: a minimal JSON parser plus the rules a
//! [`crate::trace`] output file must satisfy.
//!
//! The workspace has no JSON *parsing* dependency (the serde shim only
//! serializes), so this module carries its own ~150-line recursive-descent
//! parser — enough to load what the tracer writes and what Chrome/Perfetto
//! accept. The `tracecheck` binary and CI's `obs-smoke` job both go
//! through [`validate_trace`], so the writer and the checker cannot drift
//! apart.

use std::collections::HashMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => {
                members.iter().find(|(name, _)| name == key).map(|(_, value)| value)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(text) => Some(text),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(value) => Some(*value),
            _ => None,
        }
    }
}

/// Parse one complete JSON value from `text` (surrounding whitespace ok).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&byte) = bytes.get(*pos) {
        if matches!(byte, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&byte) = bytes.get(*pos) {
        if matches!(byte, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        } else {
            break;
        }
    }
    let slice = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    slice.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {slice:?} at {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pairs: a high surrogate must be followed
                        // by an escaped low surrogate.
                        let ch = if (0xd800..0xdc00).contains(&code) {
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let low = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                let combined =
                                    0x10000 + ((code - 0xd800) << 10) + (low.wrapping_sub(0xdc00));
                                char::from_u32(combined).unwrap_or('\u{fffd}')
                            } else {
                                '\u{fffd}'
                            }
                        } else {
                            char::from_u32(code).unwrap_or('\u{fffd}')
                        };
                        out.push(ch);
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(&byte) if byte < 0x20 => {
                return Err(format!("raw control byte in string at offset {pos}"));
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so this is safe
                // to do by char boundary).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let slice = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    let text = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
    u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape {text:?}"))
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

/// What [`validate_trace`] learned about a well-formed trace file.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Total trace events (complete spans + instants + begin/end pairs).
    pub events: usize,
    /// Complete (`ph:"X"`) spans.
    pub complete_spans: usize,
    /// Instant (`ph:"i"`/`"I"`) events.
    pub instants: usize,
    /// Matched begin/end (`ph:"B"`/`"E"`) pairs.
    pub matched_pairs: usize,
    /// Summed duration per span name, microseconds, sorted descending.
    pub dur_us_by_name: Vec<(String, f64)>,
}

impl TraceSummary {
    /// Total duration recorded for spans named `name`, in microseconds.
    pub fn dur_us(&self, name: &str) -> f64 {
        self.dur_us_by_name.iter().find(|(n, _)| n == name).map(|(_, dur)| *dur).unwrap_or(0.0)
    }
}

/// Validate a Chrome trace-event file as written by [`crate::trace`].
///
/// Every non-framing line (`[` / `]` framing lines and blank lines are
/// skipped, trailing commas stripped) must parse as a JSON object with
/// string `name`/`ph` and numeric `ts`/`pid`/`tid`; `ph:"X"` events need a
/// non-negative numeric `dur`, and `ph:"B"`/`"E"` events must nest
/// properly per `(pid, tid)` with matching names. Returns a summary with
/// per-name duration totals on success, the first violation otherwise.
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut durations: HashMap<String, f64> = HashMap::new();
    let mut stacks: HashMap<(u64, u64), Vec<String>> = HashMap::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw_line.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        let event =
            parse_json(line).map_err(|err| format!("line {lineno}: not valid JSON: {err}"))?;
        if !matches!(event, Json::Obj(_)) {
            return Err(format!("line {lineno}: trace event is not a JSON object"));
        }
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string \"name\""))?
            .to_string();
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string \"ph\""))?;
        for key in ["ts", "pid", "tid"] {
            event
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {lineno}: missing numeric {key:?}"))?;
        }
        let pid = event.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let tid = event.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        summary.events += 1;
        match ph {
            "X" => {
                let dur = event.get("dur").and_then(Json::as_f64).ok_or_else(|| {
                    format!("line {lineno}: complete event missing numeric \"dur\"")
                })?;
                if dur < 0.0 {
                    return Err(format!("line {lineno}: negative dur {dur}"));
                }
                summary.complete_spans += 1;
                *durations.entry(name).or_insert(0.0) += dur;
            }
            "B" => stacks.entry((pid, tid)).or_default().push(name),
            "E" => {
                let open = stacks.get_mut(&(pid, tid)).and_then(Vec::pop).ok_or_else(|| {
                    format!("line {lineno}: \"E\" with no open span on tid {tid}")
                })?;
                if open != name {
                    return Err(format!(
                        "line {lineno}: \"E\" for {name:?} but open span is {open:?}"
                    ));
                }
                summary.matched_pairs += 1;
            }
            "i" | "I" => summary.instants += 1,
            "M" => {} // metadata (process/thread names) — allowed, not counted
            other => return Err(format!("line {lineno}: unsupported phase {other:?}")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "unclosed span {:?} on pid {pid} tid {tid}",
                stack.last().expect("non-empty stack")
            ));
        }
    }
    summary.dur_us_by_name = durations.into_iter().collect();
    summary
        .dur_us_by_name
        .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_roundtrips_basic_values() {
        let parsed = parse_json(r#"{"a": [1, -2.5e1, "x×y\n"], "b": {"c": true, "d": null}}"#)
            .expect("parses");
        assert_eq!(
            parsed.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(-25.0), Json::Str("x×y\n".to_string()),])
        );
        assert_eq!(parsed.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("b").and_then(|b| b.get("d")), Some(&Json::Null));
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn validates_a_well_formed_trace() {
        let trace = concat!(
            "[\n",
            "{\"name\":\"engine.cell\",\"cat\":\"engine\",\"ph\":\"X\",\"ts\":10.0,\"pid\":1,\"tid\":2,\"dur\":5.5,\"args\":{\"depth\":0}},\n",
            "{\"name\":\"engine.cell\",\"cat\":\"engine\",\"ph\":\"X\",\"ts\":20.0,\"pid\":1,\"tid\":3,\"dur\":4.5},\n",
            "{\"name\":\"grid.claim\",\"ph\":\"B\",\"ts\":1.0,\"pid\":1,\"tid\":2},\n",
            "{\"name\":\"grid.claim\",\"ph\":\"E\",\"ts\":2.0,\"pid\":1,\"tid\":2},\n",
            "{\"name\":\"mark\",\"ph\":\"i\",\"ts\":3.0,\"pid\":1,\"tid\":2,\"s\":\"t\"},\n",
        );
        let summary = validate_trace(trace).expect("valid trace");
        assert_eq!(summary.events, 5);
        assert_eq!(summary.complete_spans, 2);
        assert_eq!(summary.matched_pairs, 1);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.dur_us("engine.cell"), 10.0);
    }

    #[test]
    fn rejects_malformed_traces() {
        let bad_json = "{\"name\":\"x\",\"ph\":\"X\",\"ts\":1,\"pid\":1,\"tid\":1,\"dur\":";
        assert!(validate_trace(bad_json).unwrap_err().contains("not valid JSON"));
        let no_dur = "{\"name\":\"x\",\"ph\":\"X\",\"ts\":1,\"pid\":1,\"tid\":1}";
        assert!(validate_trace(no_dur).unwrap_err().contains("dur"));
        let unmatched_end = "{\"name\":\"x\",\"ph\":\"E\",\"ts\":1,\"pid\":1,\"tid\":1}";
        assert!(validate_trace(unmatched_end).unwrap_err().contains("no open span"));
        let unclosed = "{\"name\":\"x\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":1}";
        assert!(validate_trace(unclosed).unwrap_err().contains("unclosed span"));
    }
}
