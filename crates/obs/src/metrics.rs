//! Lock-free metric primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! All three are plain atomics with `const fn new()` constructors, so they
//! can live in `static`s or inside long-lived structs without
//! initialization order games. The [`text`] submodule holds the Prometheus
//! text-format helpers that pin the exact bytes the serve scrape endpoint
//! has always emitted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log-spaced histogram buckets (one per power of two of
/// nanoseconds — 64 buckets cover the full `u64` range).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as IEEE-754 bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at `0.0`.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the gauge value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A duration histogram with fixed log-spaced (power-of-two nanosecond)
/// buckets and deterministic quantile extraction.
///
/// Observations are recorded lock-free; quantiles are read by walking the
/// cumulative bucket counts, so concurrent writers can at worst make a
/// quantile read slightly stale, never wrong. Quantile values are bucket
/// upper bounds capped at the true observed maximum — monotone in `q` and
/// never an over-estimate of the worst case.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record one observation of `ns` nanoseconds.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record one observation of an elapsed [`Duration`].
    #[inline]
    pub fn observe(&self, elapsed: Duration) {
        self.observe_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Largest single observation, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds; `0` when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(bucket.load(Ordering::Relaxed));
            if cumulative >= rank {
                return bucket_upper_ns(index).min(self.max_ns());
            }
        }
        self.max_ns()
    }

    /// The `q`-quantile converted to seconds (for `*_seconds` metrics).
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile_ns(q) as f64 / 1e9
    }
}

/// Bucket holding `ns`: index `i` covers `[2^i, 2^(i+1))` (index 0 also
/// holds zero).
fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (64 - ns.leading_zeros()) as usize - 1
    }
}

/// Inclusive upper bound of bucket `index`.
fn bucket_upper_ns(index: usize) -> u64 {
    if index >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (index + 1)) - 1
    }
}

/// Prometheus text-format rendering helpers.
///
/// These pin the exact line format the serve scrape has emitted since the
/// metrics endpoint was introduced: a `# TYPE` header per family, `u64`
/// values with `{}`, `f64` values with `{:?}` (shortest round-trip).
pub mod text {
    use std::fmt::Write;

    /// `# TYPE {name} counter` header plus one unlabelled sample line.
    pub fn counter(out: &mut String, name: &str, value: u64) {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
    }

    /// `# TYPE {name} gauge` header plus one `f64` sample line.
    pub fn gauge(out: &mut String, name: &str, value: f64) {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value:?}");
    }

    /// `# TYPE {name} gauge` header plus one integer sample line.
    pub fn gauge_int(out: &mut String, name: &str, value: u64) {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let counter = Counter::new();
        counter.inc();
        counter.add(41);
        assert_eq!(counter.get(), 42);
        let gauge = Gauge::new();
        assert_eq!(gauge.get(), 0.0);
        gauge.set(2.5);
        assert_eq!(gauge.get(), 2.5);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_ns(0), 1);
        assert_eq!(bucket_upper_ns(1), 3);
        assert_eq!(bucket_upper_ns(63), u64::MAX);
    }

    #[test]
    fn quantiles_are_monotone_and_capped_at_max() {
        let hist = Histogram::new();
        assert_eq!(hist.quantile_ns(0.5), 0);
        for ns in [10u64, 20, 30, 40, 1000] {
            hist.observe_ns(ns);
        }
        assert_eq!(hist.count(), 5);
        assert_eq!(hist.sum_ns(), 1100);
        assert_eq!(hist.max_ns(), 1000);
        let p50 = hist.quantile_ns(0.5);
        let p90 = hist.quantile_ns(0.9);
        let p99 = hist.quantile_ns(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // 1000 lands in [512, 1024); the bucket upper bound (1023) must be
        // capped at the true observed max.
        assert_eq!(p99, 1000);
        // p50 rank is the 3rd of 5 samples (30), bucket [16, 32) → 31.
        assert_eq!(p50, 31);
    }

    #[test]
    fn text_format_is_pinned() {
        let mut out = String::new();
        text::counter(&mut out, "x_total", 7);
        text::gauge(&mut out, "x_rate", 0.5);
        text::gauge_int(&mut out, "x_n", 3);
        assert_eq!(
            out,
            "# TYPE x_total counter\nx_total 7\n\
             # TYPE x_rate gauge\nx_rate 0.5\n\
             # TYPE x_n gauge\nx_n 3\n"
        );
    }
}
