//! Unified observability for the WLCRC stack: tracing + metrics.
//!
//! This crate is deliberately zero-dependency and follows the
//! `wlcrc_faults` discipline: with no configuration the whole layer is
//! inert, and every instrumentation site costs a single relaxed atomic
//! load that the branch predictor learns immediately. Nothing here may
//! perturb simulated results or the codec hot path.
//!
//! Two halves:
//!
//! * [`trace`] — RAII spans and instant events, written as Chrome
//!   trace-event JSONL when the [`trace::TRACE_ENV`] (`WLCRC_TRACE`)
//!   environment variable names an output file. The file loads directly
//!   in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev), so a
//!   whole `ExperimentPlan` run or gridrun worker becomes a flame chart.
//! * [`metrics`] + [`registry`] — lock-free [`Counter`] / [`Gauge`] /
//!   [`Histogram`] primitives (fixed log-spaced buckets, p50/p90/p99
//!   extraction) and a process-global named registry that renders in
//!   Prometheus text format. The serve scrape endpoint, the store's
//!   read/write latency accounting, and the fault injector's fired
//!   counters all publish through it.
//!
//! [`check`] holds a minimal JSON parser and a trace-file validator used
//! by the `tracecheck` binary and CI's `obs-smoke` job; it lives here so
//! the trace *writer* and *checker* can never drift apart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{registry, Registry};
pub use trace::{enabled, instant, span, span_with, Span, TRACE_ENV};
