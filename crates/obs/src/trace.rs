//! Env-gated Chrome trace-event tracing.
//!
//! Spans are RAII guards created with [`span`] (or [`span_with`] when a
//! dynamic label is worth the `format!` — the closure only runs while
//! tracing is on). Each guard records one *complete* (`ph:"X"`) Chrome
//! trace event when dropped; [`instant`] records a point-in-time event.
//! Nesting is tracked per thread with a thread-local span stack, so every
//! event also carries its stack depth and Perfetto reconstructs the flame
//! chart from timestamps alone.
//!
//! Output is one JSON object per line. The file opens with a bare `[` and
//! every event line ends with a comma — the Chrome trace-event JSON array
//! format explicitly permits an unclosed array, which is what makes
//! append-only crash-safe tracing possible. [`crate::check::validate_trace`]
//! understands the same framing.
//!
//! When `WLCRC_TRACE` is unset the entire module collapses to one relaxed
//! atomic load per call site and **zero allocations** (pinned by the
//! repo-level `obs_overhead` test).

use std::cell::RefCell;
use std::fs::File;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// Environment variable naming the trace output file.
///
/// `WLCRC_TRACE=/tmp/run.jsonl` switches tracing on for the whole
/// process; unset (or empty) leaves it off.
pub const TRACE_ENV: &str = "WLCRC_TRACE";

static INIT: Once = Once::new();
static ACTIVE: AtomicBool = AtomicBool::new(false);
static WRITER: OnceLock<Mutex<File>> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn init_from_env() {
    INIT.call_once(|| {
        let Ok(path) = std::env::var(TRACE_ENV) else { return };
        if path.is_empty() {
            return;
        }
        match File::create(&path) {
            Ok(mut file) => {
                // Chrome trace-event JSON array format; the array may stay
                // unclosed, so a crash mid-run still yields a loadable file.
                if file.write_all(b"[\n").is_err() {
                    return;
                }
                let _ = WRITER.set(Mutex::new(file));
                let _ = EPOCH.set(Instant::now());
                ACTIVE.store(true, Ordering::Relaxed);
            }
            Err(err) => {
                eprintln!("wlcrc-obs: cannot open {TRACE_ENV}={path:?}: {err}");
            }
        }
    });
}

/// Is tracing switched on for this process?
///
/// After the first call this is a single already-completed `Once` check
/// plus one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ACTIVE.load(Ordering::Relaxed)
}

fn now_us() -> f64 {
    match EPOCH.get() {
        Some(epoch) => epoch.elapsed().as_nanos() as f64 / 1000.0,
        None => 0.0,
    }
}

fn thread_id() -> u64 {
    TID.with(|tid| *tid)
}

/// RAII span guard: measures from construction to drop and emits one
/// complete (`ph:"X"`) trace event. Inert (and allocation-free) when
/// tracing is off.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    data: Option<SpanData>,
}

struct SpanData {
    name: &'static str,
    label: Option<String>,
    start_us: f64,
    depth: usize,
}

/// Open a span named `name`.
///
/// Span names are static dotted strings (`engine.cell`, `store.read`);
/// the segment before the first `.` becomes the Chrome trace *category*.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { data: None };
    }
    Span { data: Some(open_span(name, None)) }
}

/// Open a span with a dynamic label (e.g. `scheme×workload×seed`).
///
/// The label closure is only evaluated when tracing is on, so call sites
/// may `format!` freely without paying for it in production runs.
#[inline]
pub fn span_with(name: &'static str, label: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span { data: None };
    }
    Span { data: Some(open_span(name, Some(label()))) }
}

fn open_span(name: &'static str, label: Option<String>) -> SpanData {
    let depth = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        stack.len() - 1
    });
    SpanData { name, label, start_us: now_us(), depth }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else { return };
        let end_us = now_us();
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let mut line = String::with_capacity(160);
        event_prefix(&mut line, data.name, "X", data.start_us);
        line.push_str(&format!(",\"dur\":{:.3}", end_us - data.start_us));
        line.push_str(&format!(",\"args\":{{\"depth\":{}", data.depth));
        if let Some(label) = data.label {
            line.push_str(",\"label\":\"");
            escape_json_into(&mut line, &label);
            line.push('"');
        }
        line.push_str("}},\n");
        write_line(&line);
    }
}

/// Emit an instant (`ph:"i"`) event — a point marker on the timeline.
#[inline]
pub fn instant(name: &'static str) {
    if !enabled() {
        return;
    }
    let mut line = String::with_capacity(120);
    event_prefix(&mut line, name, "i", now_us());
    line.push_str(",\"s\":\"t\"},\n");
    write_line(&line);
}

fn event_prefix(line: &mut String, name: &'static str, ph: &str, ts_us: f64) {
    let cat = name.split('.').next().unwrap_or(name);
    line.push_str("{\"name\":\"");
    escape_json_into(line, name);
    line.push_str("\",\"cat\":\"");
    escape_json_into(line, cat);
    line.push_str(&format!(
        "\",\"ph\":\"{ph}\",\"ts\":{ts_us:.3},\"pid\":{},\"tid\":{}",
        std::process::id(),
        thread_id()
    ));
}

fn write_line(line: &str) {
    if let Some(writer) = WRITER.get() {
        if let Ok(mut file) = writer.lock() {
            let _ = file.write_all(line.as_bytes());
        }
    }
}

/// Escape `text` as the inside of a JSON string literal, appending to `out`.
pub(crate) fn escape_json_into(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        let mut out = String::new();
        escape_json_into(&mut out, "a\"b\\c\nd\te\u{1}f×");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001f×");
    }

    #[test]
    fn spans_are_inert_when_off() {
        if std::env::var_os(TRACE_ENV).is_some() {
            return; // tracing deliberately on for this process; nothing to pin
        }
        // With WLCRC_TRACE unset the guard must be a no-op shell: no panic,
        // no stack mutation, label closure skipped.
        let span = span("test.unit");
        assert!(span.data.is_none());
        drop(span);
        let span = span_with("test.unit", || unreachable!("label must not run when off"));
        assert!(span.data.is_none());
        drop(span);
        instant("test.instant");
        STACK.with(|stack| assert!(stack.borrow().is_empty()));
    }
}
