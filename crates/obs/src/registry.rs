//! Process-global named metric registry.
//!
//! Subsystems look metrics up by name once (typically behind a `LazyLock`)
//! and keep the returned `&'static` handle; all subsequent updates are
//! lock-free. Names may embed Prometheus labels — a counter registered as
//! `wlcrc_faults_fired_total{site="store.read.corrupt"}` is one *series*
//! of the `wlcrc_faults_fired_total` family, and [`Registry::render_into`]
//! groups series under a single `# TYPE` header per family.
//!
//! Histograms in the registry are duration-valued (nanoseconds in,
//! seconds out) — the convention is a `*_seconds` family name, rendered as
//! `p50`/`p90`/`p99` quantile gauges plus `_count` and `_max`.

use std::sync::Mutex;

use crate::metrics::{text, Counter, Gauge, Histogram};

/// A named collection of metric handles. Use the process-global
/// [`registry()`] unless a test needs isolation.
pub struct Registry {
    slots: Mutex<Vec<Slot>>,
}

struct Slot {
    name: String,
    handle: Handle,
}

#[derive(Clone, Copy)]
enum Handle {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: Registry = Registry::new();
    &REGISTRY
}

impl Registry {
    /// An empty registry (`const`, so it can back a `static`).
    pub const fn new() -> Self {
        Registry { slots: Mutex::new(Vec::new()) }
    }

    /// Find or create the counter registered under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> &'static Counter {
        self.lookup(
            name,
            || Handle::Counter(Box::leak(Box::new(Counter::new()))),
            |handle| match handle {
                Handle::Counter(counter) => Some(counter),
                _ => None,
            },
        )
    }

    /// Find or create the gauge registered under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        self.lookup(
            name,
            || Handle::Gauge(Box::leak(Box::new(Gauge::new()))),
            |handle| match handle {
                Handle::Gauge(gauge) => Some(gauge),
                _ => None,
            },
        )
    }

    /// Find or create the histogram registered under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        self.lookup(
            name,
            || Handle::Histogram(Box::leak(Box::new(Histogram::new()))),
            |handle| match handle {
                Handle::Histogram(histogram) => Some(histogram),
                _ => None,
            },
        )
    }

    fn lookup<T: ?Sized>(
        &self,
        name: &str,
        create: impl FnOnce() -> Handle,
        cast: impl Fn(Handle) -> Option<&'static T>,
    ) -> &'static T {
        let mut slots = self.slots.lock().expect("metric registry poisoned");
        if let Some(slot) = slots.iter().find(|slot| slot.name == name) {
            return cast(slot.handle)
                .unwrap_or_else(|| panic!("metric {name:?} registered as a different kind"));
        }
        let handle = create();
        slots.push(Slot { name: name.to_string(), handle });
        cast(handle).expect("freshly created handle has the requested kind")
    }

    /// Snapshot of every registered counter as `(name, value)`.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let slots = self.slots.lock().expect("metric registry poisoned");
        let mut out: Vec<(String, u64)> = slots
            .iter()
            .filter_map(|slot| match slot.handle {
                Handle::Counter(counter) => Some((slot.name.clone(), counter.get())),
                _ => None,
            })
            .collect();
        out.sort();
        out
    }

    /// Every registered histogram as `(name, handle)`, sorted by name.
    pub fn histograms(&self) -> Vec<(String, &'static Histogram)> {
        let slots = self.slots.lock().expect("metric registry poisoned");
        let mut out: Vec<(String, &'static Histogram)> = slots
            .iter()
            .filter_map(|slot| match slot.handle {
                Handle::Histogram(histogram) => Some((slot.name.clone(), histogram)),
                _ => None,
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Render every registered metric in Prometheus text format, appending
    /// to `out`. Families are sorted by name; labelled series within a
    /// family share one `# TYPE` header. Deterministic for a fixed set of
    /// registered names and values.
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write;
        let mut entries: Vec<(String, String, Handle)> = {
            let slots = self.slots.lock().expect("metric registry poisoned");
            slots
                .iter()
                .map(|slot| (family_of(&slot.name).to_string(), slot.name.clone(), slot.handle))
                .collect()
        };
        entries.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        let mut current_family: Option<(String, &'static str)> = None;
        for (family, name, handle) in entries {
            match handle {
                Handle::Histogram(histogram) => {
                    // Histograms are whole families on their own.
                    let _ = writeln!(out, "# TYPE {family} gauge");
                    for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                        let _ = writeln!(
                            out,
                            "{family}{{quantile=\"{label}\"}} {:?}",
                            histogram.quantile_seconds(q)
                        );
                    }
                    text::counter(out, &format!("{family}_count"), histogram.count());
                    text::gauge(out, &format!("{family}_max"), histogram.max_ns() as f64 / 1e9);
                    current_family = None;
                }
                Handle::Counter(counter) => {
                    emit_header(out, &mut current_family, &family, "counter");
                    let _ = writeln!(out, "{name} {}", counter.get());
                }
                Handle::Gauge(gauge) => {
                    emit_header(out, &mut current_family, &family, "gauge");
                    let _ = writeln!(out, "{name} {:?}", gauge.get());
                }
            }
        }
    }

    /// [`Registry::render_into`] as a fresh `String`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn emit_header(
    out: &mut String,
    current: &mut Option<(String, &'static str)>,
    family: &str,
    kind: &'static str,
) {
    use std::fmt::Write;
    let already = matches!(current, Some((f, k)) if f == family && *k == kind);
    if !already {
        let _ = writeln!(out, "# TYPE {family} {kind}");
        *current = Some((family.to_string(), kind));
    }
}

/// Family name: everything before the `{` that opens a label set.
fn family_of(name: &str) -> &str {
    match name.find('{') {
        Some(brace) => &name[..brace],
        None => name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_find_or_create() {
        let registry = Registry::new();
        let a = registry.counter("t_total");
        let b = registry.counter("t_total");
        a.inc();
        b.add(2);
        assert!(std::ptr::eq(a, b));
        assert_eq!(registry.counters(), vec![("t_total".to_string(), 3)]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("t_total");
        registry.gauge("t_total");
    }

    #[test]
    fn render_groups_labelled_series_under_one_header() {
        let registry = Registry::new();
        registry.counter("z_fired_total{site=\"b\"}").add(2);
        registry.counter("z_fired_total{site=\"a\"}").inc();
        registry.gauge("a_level").set(1.5);
        let text = registry.render();
        assert_eq!(
            text,
            "# TYPE a_level gauge\n\
             a_level 1.5\n\
             # TYPE z_fired_total counter\n\
             z_fired_total{site=\"a\"} 1\n\
             z_fired_total{site=\"b\"} 2\n"
        );
    }

    #[test]
    fn render_histogram_family() {
        let registry = Registry::new();
        let hist = registry.histogram("z_seconds");
        hist.observe_ns(2_000_000_000);
        let text = registry.render();
        assert!(text.starts_with("# TYPE z_seconds gauge\n"), "{text}");
        assert!(text.contains("z_seconds{quantile=\"0.5\"} 2.0\n"), "{text}");
        assert!(text.contains("# TYPE z_seconds_count counter\nz_seconds_count 1\n"), "{text}");
        assert!(text.contains("z_seconds_max 2.0\n"), "{text}");
    }
}
