//! Resilience of the serve path under injected faults: the connection cap
//! fails closed with `Busy`, deadline misses push sessions into degraded
//! mode, and a flaky client absorbed by [`RetryClient`] still produces
//! byte-identical statistics.
//!
//! Lives in its own integration-test binary because the `wlcrc_faults` plan
//! is process-global; every test here takes the lock (even fault-free ones,
//! so a concurrently configured plan cannot leak into them).

use std::sync::Mutex;
use std::time::Duration;
use wlcrc::schemes::SchemeId;
use wlcrc_memsim::{SimulationOptions, Simulator};
use wlcrc_pcm::config::PcmConfig;
use wlcrc_serve::{
    scrape_value, RetryClient, RetryPolicy, ServeClient, Server, ServerConfig, FAULT_CLIENT_FLAKY,
    FAULT_REQUEST_SLOW,
};
use wlcrc_trace::{Benchmark, TraceStream, WriteRecord};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn exclusive_faults() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn records_for(benchmark: Benchmark, seed: u64, count: usize) -> Vec<WriteRecord> {
    TraceStream::new(benchmark.profile(), seed, count).collect()
}

fn quick_policy(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(20),
        seed: 0xF00D,
    }
}

#[test]
fn connection_cap_refuses_with_busy_then_recovers() {
    let _guard = exclusive_faults();
    wlcrc_faults::clear();
    let server = Server::new(ServerConfig { max_connections: 1, ..ServerConfig::default() });
    let running = server.serve_tcp("127.0.0.1:0").expect("bind");
    let addr = running.local_addr().expect("tcp addr");

    // The first connection owns the only slot.
    let mut holder = ServeClient::connect(addr).expect("connect");
    holder.metrics_text().expect("holder is live");

    // A second client is refused with a single `Busy` frame; with one
    // attempt the refusal surfaces instead of being retried away.
    let mut refused = RetryClient::connect(addr.to_string(), quick_policy(1)).expect("tcp connect");
    assert!(refused.metrics_text().is_err(), "past the cap must not be served");

    let text = holder.metrics_text().expect("metrics");
    assert!(scrape_value(&text, "wlcrc_serve_connections_rejected_total").unwrap() >= 1.0);
    assert_eq!(scrape_value(&text, "wlcrc_serve_connections_active"), Some(1.0));

    // Once the slot frees up, a patient client's backoff-and-reconnect loop
    // gets through.
    drop(holder);
    let mut patient = RetryClient::connect(addr.to_string(), quick_policy(10)).expect("connect");
    let text = patient.metrics_text().expect("retries outlast the freed slot");
    assert_eq!(scrape_value(&text, "wlcrc_serve_connections_active"), Some(1.0));

    patient.shutdown().expect("shutdown");
    running.join();
}

#[test]
fn deadline_misses_degrade_the_session_but_keep_energy_exact() {
    let _guard = exclusive_faults();
    // Dispatch order on this connection: 1 = Open, 2 = Write (stalled by
    // the injected fault -> deadline miss -> session degraded), 3+ = the
    // rest. Workers are off so every record drains inline, after the
    // degrade, making the shed work deterministic.
    wlcrc_faults::configure(&format!("seed=5;{FAULT_REQUEST_SLOW}=@2")).unwrap();
    let server = Server::new(ServerConfig {
        workers: 0,
        request_deadline: Some(Duration::from_millis(1)),
        ..ServerConfig::default()
    });
    let running = server.serve_tcp("127.0.0.1:0").expect("bind");
    let addr = running.local_addr().expect("tcp addr");
    let mut client = ServeClient::connect(addr).expect("connect");

    let options = SimulationOptions { seed: 3, ..SimulationOptions::default() };
    let records = records_for(Benchmark::Gcc, 0xD1E5, 50);
    let session = client
        .open(SchemeId::Baseline.label(), "gcc", PcmConfig::table_ii(), options.clone())
        .expect("open");
    let report = client.write_all(session, &records).expect("write_all");
    assert_eq!(report.written, records.len() as u64);
    assert!(wlcrc_faults::fired_count(FAULT_REQUEST_SLOW) >= 1, "the stall was injected");
    wlcrc_faults::clear();

    // Stats drains the whole backlog inline — while still degraded — and
    // degraded mode exits once the backlog hits zero, so the snapshot
    // reports a recovered session whose drained records were shed.
    let (served, degraded) = client.stats(session).expect("stats");
    assert!(!degraded, "a fully drained session must have recovered");
    let text = client.metrics_text().expect("metrics");
    assert!(scrape_value(&text, "wlcrc_serve_deadline_misses_total").unwrap() >= 1.0);
    assert!(scrape_value(&text, "wlcrc_serve_degraded_entered_total").unwrap() >= 1.0);

    // Degraded mode sheds disturbance accounting but never perturbs the
    // RNG-free energy/endurance numbers.
    let direct = Simulator::with_config(PcmConfig::table_ii()).with_options(options).run(
        SchemeId::Baseline.build().as_ref(),
        TraceStream::new(Benchmark::Gcc.profile(), 0xD1E5, records.len()),
    );
    assert_eq!(served.writes, direct.writes);
    assert_eq!(served.data_energy_pj.to_bits(), direct.data_energy_pj.to_bits());
    assert_eq!(served.aux_energy_pj.to_bits(), direct.aux_energy_pj.to_bits());
    assert_eq!(served.data_cells_updated, direct.data_cells_updated);
    assert_eq!(served.expected_disturb_errors, 0.0, "disturbance accounting was shed");

    client.shutdown().expect("shutdown");
    running.join();
}

#[test]
fn flaky_client_retries_are_byte_identical_to_a_clean_run() {
    let _guard = exclusive_faults();
    // Every fifth-ish client call fails before sending; the retry loop must
    // absorb all of them without changing a single served bit.
    wlcrc_faults::configure(&format!("seed=11;{FAULT_CLIENT_FLAKY}=0.2")).unwrap();
    let server = Server::new(ServerConfig { workers: 2, ..ServerConfig::default() });
    let running = server.serve_tcp("127.0.0.1:0").expect("bind");
    let addr = running.local_addr().expect("tcp addr");

    let options = SimulationOptions { seed: 9, ..SimulationOptions::default() };
    let records = records_for(Benchmark::Mcf, 0xFA17, 200);
    let mut client = RetryClient::connect(addr.to_string(), quick_policy(8)).expect("connect");
    let session = client
        .open(SchemeId::Wlcrc16.label(), "mcf", PcmConfig::table_ii(), options.clone())
        .expect("open");
    // Small chunks -> many calls -> many chances for the fault to fire.
    for chunk in records.chunks(17) {
        let report = client.write_all(session, chunk).expect("write_all");
        assert_eq!(report.written, chunk.len() as u64, "no record may be dropped");
    }
    let (served, _) = client.stats(session).expect("stats");
    let (closed, _) = client.close(session).expect("close");
    let retries = client.retries();
    wlcrc_faults::clear();
    assert!(retries > 0, "the schedule must have injected at least one transient failure");

    let direct = Simulator::with_config(PcmConfig::table_ii()).with_options(options).run(
        SchemeId::Wlcrc16.build().as_ref(),
        TraceStream::new(Benchmark::Mcf.profile(), 0xFA17, records.len()),
    );
    let mut served_cell = served;
    served_cell.scheme = direct.scheme.clone();
    assert_eq!(served_cell, direct, "flaky-client stats diverged from the clean run");
    let mut closed_cell = closed;
    closed_cell.scheme = direct.scheme.clone();
    assert_eq!(closed_cell, direct, "close-time stats diverged");

    let mut closer = ServeClient::connect(addr).expect("connect");
    closer.shutdown().expect("shutdown");
    running.join();
}
