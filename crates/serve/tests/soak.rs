//! Soak test: sustained mixed traffic against a live `wlcrc-serve` instance.
//!
//! Pins the three service guarantees end to end over a real TCP socket:
//!
//! * **(a) byte-identity** — statistics served over the wire equal a direct
//!   [`Simulator`] run over the same records, bit for bit, despite chunked
//!   submission, interleaved sessions and background worker draining;
//! * **(b) bounded queues** — under deliberate overload the server answers
//!   `Busy` (backpressure observed), queue depth never exceeds the
//!   configured caps, and nothing is dropped silently (every record is
//!   eventually simulated exactly once);
//! * **(c) metrics reconcile** — the scrape's counters and per-session
//!   gauges agree with the sessions' own [`SchemeStats`].

use std::sync::atomic::{AtomicUsize, Ordering};
use wlcrc::schemes::SchemeId;
use wlcrc_memsim::{SimulationOptions, Simulator};
use wlcrc_pcm::config::PcmConfig;
use wlcrc_serve::{scrape_value, Response, ServeClient, Server, ServerConfig};
use wlcrc_trace::{Benchmark, TraceStream, WriteRecord};

fn records_for(benchmark: Benchmark, seed: u64, count: usize) -> Vec<WriteRecord> {
    TraceStream::new(benchmark.profile(), seed, count).collect()
}

/// A per-test scratch directory removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "wlcrc-soak-{}-{}-{}",
            std::process::id(),
            tag,
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn sustained_mixed_traffic_is_byte_identical_to_direct_simulation() {
    // Degradation disabled (threshold == cap): this test holds fidelity
    // constant and checks the wire path changes nothing.
    let server = Server::new(ServerConfig {
        workers: 2,
        session_queue_cap: 8192,
        degraded_threshold: 8192,
        ..ServerConfig::default()
    });
    let running = server.serve_tcp("127.0.0.1:0").expect("bind");
    let addr = running.local_addr().expect("tcp addr");

    // Three concurrent sessions with different schemes/workloads, fed in
    // interleaved odd-sized chunks from separate client connections.
    let cells = [
        (SchemeId::Wlcrc16, Benchmark::Gcc, 0xA1u64, 300usize),
        (SchemeId::Baseline, Benchmark::Mcf, 0xB2, 250),
        (SchemeId::CocFourCosets, Benchmark::Omnetpp, 0xC3, 200),
    ];
    let mut clients: Vec<_> =
        cells.iter().map(|_| ServeClient::connect(addr).expect("connect")).collect();
    let sessions: Vec<u64> = cells
        .iter()
        .zip(&mut clients)
        .map(|((scheme, benchmark, seed, _), client)| {
            let options = SimulationOptions { seed: *seed, ..SimulationOptions::default() };
            client
                .open(scheme.label(), benchmark.short_name(), PcmConfig::table_ii(), options)
                .expect("open")
        })
        .collect();
    let streams: Vec<Vec<WriteRecord>> = cells
        .iter()
        .map(|(_, benchmark, seed, count)| records_for(*benchmark, *seed ^ 0x5EED, *count))
        .collect();

    // Interleave: uneven chunk sizes, round-robin over the sessions.
    let mut offsets = vec![0usize; cells.len()];
    let chunk_sizes = [7usize, 31, 13, 64, 3, 101];
    let mut turn = 0;
    loop {
        let mut progressed = false;
        for (index, records) in streams.iter().enumerate() {
            let offset = offsets[index];
            if offset >= records.len() {
                continue;
            }
            let chunk = chunk_sizes[turn % chunk_sizes.len()].min(records.len() - offset);
            turn += 1;
            let report = clients[index]
                .write_all(sessions[index], &records[offset..offset + chunk])
                .expect("write_all");
            assert_eq!(report.written, chunk as u64, "no record may be dropped");
            offsets[index] = offset + chunk;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }

    for ((scheme, benchmark, seed, count), (client, session)) in
        cells.iter().zip(clients.iter_mut().zip(&sessions))
    {
        let (served, degraded) = client.stats(*session).expect("stats");
        assert!(!degraded, "fidelity test must never degrade");
        let direct = Simulator::with_config(PcmConfig::table_ii())
            .with_options(SimulationOptions { seed: *seed, ..SimulationOptions::default() })
            .run(
                scheme.build().as_ref(),
                TraceStream::new(benchmark.profile(), *seed ^ 0x5EED, *count),
            );
        // `scheme` differs: the direct run labels stats with the codec name;
        // compare everything else bit for bit.
        let mut served_cell = served.clone();
        served_cell.scheme = direct.scheme.clone();
        assert_eq!(served_cell, direct, "{} over the wire diverged", scheme.label());
        assert_eq!(served.data_energy_pj.to_bits(), direct.data_energy_pj.to_bits());
        assert_eq!(served.aux_energy_pj.to_bits(), direct.aux_energy_pj.to_bits());
        assert_eq!(
            served.expected_disturb_errors.to_bits(),
            direct.expected_disturb_errors.to_bits()
        );
        let (closed, store_hit) = client.close(*session).expect("close");
        let mut closed_cell = closed;
        closed_cell.scheme = direct.scheme.clone();
        assert_eq!(closed_cell, direct, "close-time stats diverged");
        assert_eq!(store_hit, None, "server runs store-less here");
    }

    running.shutdown();
    running.join();
}

#[test]
fn overload_is_bounded_backpressured_and_lossless() {
    // No background workers: queues drain only on Flush/Stats/Close, so the
    // overload below is deterministic.
    let config = ServerConfig {
        workers: 0,
        lane_capacity: 8,
        session_queue_cap: 64,
        degraded_threshold: 16,
        ..ServerConfig::default()
    };
    let server = Server::new(config.clone());
    let running = server.serve_tcp("127.0.0.1:0").expect("bind");
    let addr = running.local_addr().expect("tcp addr");
    let mut client = ServeClient::connect(addr).expect("connect");
    let session = client
        .open(
            SchemeId::Baseline.label(),
            "hotbank",
            PcmConfig::table_ii(),
            SimulationOptions { seed: 1, ..SimulationOptions::default() },
        )
        .expect("open");

    // Every record rewrites the same line, so they all land in ONE bank
    // lane of capacity 8 — the worst-case skew for queueing.
    let hot: Vec<WriteRecord> = (0..100u64)
        .map(|i| {
            WriteRecord::new(
                0,
                wlcrc_pcm::line::MemoryLine::from_words([i; 8]),
                wlcrc_pcm::line::MemoryLine::from_words([i + 1; 8]),
            )
        })
        .collect();

    // A raw oversized write must be partially accepted: exactly the lane
    // capacity, Busy for the rest, nothing dropped.
    let response = client.write(session, &hot).expect("write");
    let Response::Busy { accepted, queued } = response else {
        panic!("expected Busy under overload, got {response:?}");
    };
    assert_eq!(accepted, config.lane_capacity as u64, "exactly one full lane fits");
    assert_eq!(queued, config.lane_capacity as u64, "backlog equals the accepted records");
    assert!(queued <= config.session_queue_cap as u64, "bounded queue depth");

    // Delivering the remainder through the retry loop observes more
    // backpressure but loses nothing.
    let report = client.write_all(session, &hot[accepted as usize..]).expect("write_all");
    assert_eq!(report.written, hot.len() as u64 - accepted, "lossless delivery");
    assert!(report.busy_responses > 0, "backpressure must be observed");
    assert!(
        report.max_queued <= config.session_queue_cap as u64,
        "queue depth stayed bounded: {}",
        report.max_queued
    );

    let writes = client.flush(session).expect("flush");
    assert_eq!(writes, hot.len() as u64, "every accepted record simulated exactly once");
    let (stats, _) = client.stats(session).expect("stats");
    assert_eq!(stats.writes, hot.len() as u64);

    // The scrape shows the backpressure and degradation counters.
    let text = client.metrics_text().expect("metrics");
    assert!(scrape_value(&text, "wlcrc_serve_busy_responses_total").unwrap() >= 1.0);
    assert_eq!(scrape_value(&text, "wlcrc_serve_lane_capacity"), Some(8.0));
    // 8 accepted into a lane is below the 16-record degraded threshold, so
    // this workload never degraded — and the counter proves it.
    assert_eq!(scrape_value(&text, "wlcrc_serve_degraded_entered_total"), Some(0.0));

    running.shutdown();
    running.join();
}

#[test]
fn metrics_reconcile_with_scheme_stats_and_store_hit_rate() {
    let scratch = Scratch::new("store");
    let server = Server::new(ServerConfig {
        workers: 1,
        store: Some(scratch.0.clone()),
        ..ServerConfig::default()
    });
    let running = server.serve_tcp("127.0.0.1:0").expect("bind");
    let addr = running.local_addr().expect("tcp addr");
    let mut client = ServeClient::connect(addr).expect("connect");
    let records = records_for(Benchmark::Gcc, 0xFEED, 120);
    let options = SimulationOptions { seed: 5, ..SimulationOptions::default() };

    let run_once = |client: &mut ServeClient<std::net::TcpStream>| {
        let session = client
            .open(SchemeId::Wlcrc16.label(), "gcc", PcmConfig::table_ii(), options.clone())
            .expect("open");
        client.write_all(session, &records).expect("write_all");
        (session, client.flush(session).expect("flush"))
    };

    // First pass: hold the session open and reconcile the scrape against
    // its own statistics before closing.
    let (session, writes) = run_once(&mut client);
    assert_eq!(writes, records.len() as u64);
    let (stats, _) = client.stats(session).expect("stats");
    let text = client.metrics_text().expect("metrics");
    assert_eq!(
        scrape_value(&text, "wlcrc_serve_writes_simulated_total"),
        Some(stats.writes as f64),
        "simulated counter must equal the session's writes"
    );
    assert_eq!(
        scrape_value(&text, "wlcrc_serve_writes_accepted_total"),
        Some(records.len() as f64)
    );
    assert!(text.contains(&format!(
        "wlcrc_serve_energy_pj_per_write{{session=\"{session}\",scheme=\"WLCRC-16\"}} {:?}",
        stats.mean_energy_pj()
    )));
    assert!(text.contains(&format!(
        "wlcrc_serve_write_imbalance{{session=\"{session}\",scheme=\"WLCRC-16\"}} {:?}",
        stats.write_imbalance()
    )));
    assert!(text.contains(&format!(
        "wlcrc_serve_queue_depth{{session=\"{session}\",scheme=\"WLCRC-16\"}} 0"
    )));
    let (first_close, first_hit) = client.close(session).expect("close");
    assert_eq!(first_hit, Some(false), "cold store must miss");
    assert_eq!(first_close, stats);

    // Second identical pass: served stats identical, and the close is now a
    // store hit, which the hit-rate gauge reflects.
    let (session, _) = run_once(&mut client);
    let (second_close, second_hit) = client.close(session).expect("close");
    assert_eq!(second_hit, Some(true), "warm store must hit");
    assert_eq!(second_close, first_close, "cached close must be byte-identical");
    let text = client.metrics_text().expect("metrics");
    assert_eq!(scrape_value(&text, "wlcrc_serve_store_hits_total"), Some(1.0));
    assert_eq!(scrape_value(&text, "wlcrc_serve_store_misses_total"), Some(1.0));
    assert_eq!(scrape_value(&text, "wlcrc_serve_store_hit_rate"), Some(0.5));

    running.shutdown();
    running.join();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let server = Server::new(ServerConfig::default());
    let running = server.serve_tcp("127.0.0.1:0").expect("bind");
    let addr = running.local_addr().expect("tcp addr");
    let mut client = ServeClient::connect(addr).expect("connect");

    // Unknown session and unknown scheme come back as remote errors on a
    // connection that stays usable.
    assert!(client.flush(999).is_err());
    assert!(client
        .open("NoSuchScheme", "w", PcmConfig::table_ii(), SimulationOptions::default())
        .is_err());
    let session = client
        .open(SchemeId::Baseline.label(), "w", PcmConfig::table_ii(), SimulationOptions::default())
        .expect("the connection survived the errors");
    let (stats, _) = client.stats(session).expect("stats");
    assert_eq!(stats.writes, 0);

    running.shutdown();
    running.join();
}
