//! Property coverage for the frame decoder: arbitrary, truncated and
//! oversized byte streams must never panic the server — every failure
//! surfaces as a typed [`ServeError`] (I/O, wire or protocol), and only a
//! clean EOF at a frame boundary reads as `Ok(None)`.

use proptest::prelude::*;
use wlcrc_serve::protocol::{read_frame, write_frame};
use wlcrc_serve::{Request, ServeError, MAX_FRAME_BYTES, PROTOCOL_VERSION};

/// The decoder's only allowed failure modes.
fn is_typed_failure(err: &ServeError) -> bool {
    matches!(err, ServeError::Io(_) | ServeError::Wire(_) | ServeError::Protocol(_))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        match read_frame(&mut &bytes[..]) {
            Ok(_) => {}
            Err(err) => prop_assert!(is_typed_failure(&err), "untyped failure: {err}"),
        }
    }

    #[test]
    fn truncated_frames_fail_typed(session in any::<u64>(), cut in 0usize..64) {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Request::Flush { session }.to_value()).unwrap();
        let cut = cut.min(bytes.len());
        match read_frame(&mut &bytes[..cut]) {
            // Fewer than 4 header bytes is indistinguishable from a peer
            // hanging up between frames: a clean EOF.
            Ok(None) => prop_assert!(cut < 4, "EOF from a complete header at cut {cut}"),
            Ok(Some(_)) => prop_assert_eq!(cut, bytes.len()),
            Err(err) => prop_assert!(is_typed_failure(&err), "untyped failure: {err}"),
        }
    }

    #[test]
    fn oversized_announcements_are_rejected_before_allocation(
        extra in 1u32..1024,
        junk in any::<u8>(),
    ) {
        let length = (MAX_FRAME_BYTES as u32).saturating_add(extra);
        let mut bytes = length.to_le_bytes().to_vec();
        bytes.push(junk);
        prop_assert!(matches!(read_frame(&mut &bytes[..]), Err(ServeError::Protocol(_))));
    }

    #[test]
    fn garbled_payloads_fail_typed_and_request_parsing_never_panics(
        payload in prop::collection::vec(any::<u8>(), 1..256),
    ) {
        let length = (payload.len() + 1) as u32;
        let mut bytes = length.to_le_bytes().to_vec();
        bytes.push(PROTOCOL_VERSION);
        bytes.extend_from_slice(&payload);
        match read_frame(&mut &bytes[..]) {
            // A random payload that decodes as a value must still go
            // through request dispatch without panicking.
            Ok(Some(value)) => drop(Request::from_value(&value)),
            Ok(None) => prop_assert!(false, "a complete frame is not an EOF"),
            Err(err) => prop_assert!(is_typed_failure(&err), "untyped failure: {err}"),
        }
    }
}
