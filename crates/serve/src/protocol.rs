//! The framed wire protocol between `wlcrc-serve` and its clients.
//!
//! Every message is one **frame**:
//!
//! ```text
//! +----------------+---------+---------------------------+
//! | length: u32 LE | version | wire::encode(Value) bytes |
//! +----------------+---------+---------------------------+
//! ```
//!
//! `length` counts the version byte plus the payload, `version` is
//! [`PROTOCOL_VERSION`], and the payload is one [`serde::Value`] tree in the
//! store's tagged wire encoding ([`wlcrc_store::wire`]) — the same
//! corruption-tolerant, bit-exact-`f64` format the result store persists, so
//! statistics travel over the socket byte-identically to how they land on
//! disk. Requests and responses are `Value::Record`s dispatched by record
//! name; unknown names are a protocol error, which keeps the format open to
//! extension without a version bump.
//!
//! Frames are capped at [`MAX_FRAME_BYTES`]; a peer announcing a larger
//! frame is rejected before any allocation, mirroring the wire decoder's
//! own corruption tolerance.

use crate::error::ServeError;
use serde::{Serialize, Value};
use std::io::{Read, Write};
use wlcrc_memsim::{SchemeStats, SimulationOptions};
use wlcrc_pcm::config::PcmConfig;
use wlcrc_store::wire;
use wlcrc_trace::WriteRecord;

/// Version byte carried by every frame; bump on incompatible changes to the
/// request/response schema (adding new record names does not require one).
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on one frame's encoded size (version byte + payload).
/// Generous for real batches — a `WriteRecord` encodes in ~170 bytes, so a
/// 4 MiB frame holds >20k records — while bounding what a malicious or
/// corrupt peer can make the server allocate.
pub const MAX_FRAME_BYTES: usize = 4 << 20;

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens a session: a live simulator owning one codec instance.
    Open {
        /// Scheme label from the standard registry (e.g. `"WLCRC-16"`).
        scheme: String,
        /// Workload label stamped into the session's statistics.
        workload: String,
        /// Device/organisation configuration of the simulated memory.
        config: PcmConfig,
        /// Simulation options; `options.seed` drives the per-bank RNG
        /// streams exactly as in a batch run.
        options: SimulationOptions,
    },
    /// Appends write records to a session's bank queues. May be partially
    /// accepted — see [`Response::Busy`].
    Write {
        /// Session to write into.
        session: u64,
        /// Records, in stream order.
        records: Vec<WriteRecord>,
    },
    /// Blocks until everything queued so far is simulated.
    Flush {
        /// Session to drain.
        session: u64,
    },
    /// Snapshots the session's aggregated statistics (drains queues first so
    /// the snapshot covers every accepted record).
    Stats {
        /// Session to snapshot.
        session: u64,
    },
    /// Drains, returns final statistics and discards the session.
    Close {
        /// Session to close.
        session: u64,
    },
    /// Renders the server-wide metrics as plain scrape text.
    Metrics,
    /// Asks the server to stop accepting connections and exit its serve
    /// loop once in-flight connections finish.
    Shutdown,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The session was opened under this id.
    Opened {
        /// Identifier for all subsequent requests on this session.
        session: u64,
    },
    /// All records of the `Write` were accepted.
    Accepted {
        /// Number of records accepted (the full batch).
        accepted: u64,
        /// Session queue depth after accepting, in records.
        queued: u64,
    },
    /// Backpressure: only a prefix of the batch fit in the bank queues.
    /// Nothing is dropped — the client owns records `accepted..` and must
    /// resubmit them after the server drains.
    Busy {
        /// Number of records accepted before a full lane was hit.
        accepted: u64,
        /// Session queue depth, in records.
        queued: u64,
    },
    /// The flush completed; every accepted record is now simulated.
    Flushed {
        /// Total records simulated by this session so far.
        writes: u64,
    },
    /// Statistics snapshot.
    Stats {
        /// Aggregated statistics over every record simulated so far —
        /// byte-identical to a direct batch run over the same records.
        stats: SchemeStats,
        /// Whether the session is currently in degraded mode.
        degraded: bool,
    },
    /// Final statistics; the session id is now invalid.
    Closed {
        /// Final aggregated statistics.
        stats: SchemeStats,
        /// `Some(true)` if a result store served this session's final stats
        /// from a previous run, `Some(false)` on a store miss, `None` when
        /// the server runs store-less.
        store_hit: Option<bool>,
    },
    /// Plain-text metrics in Prometheus exposition style.
    MetricsText {
        /// The scrape body.
        text: String,
    },
    /// The request failed; the session (if any) is unchanged.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Acknowledges `Shutdown`.
    ShuttingDown,
}

impl Request {
    /// Encodes the request as a wire value.
    pub fn to_value(&self) -> Value {
        match self {
            Request::Open { scheme, workload, config, options } => Value::record(
                "Open",
                vec![
                    ("scheme", scheme.to_value()),
                    ("workload", workload.to_value()),
                    ("config", config.to_value()),
                    ("options", options.to_value()),
                ],
            ),
            Request::Write { session, records } => Value::record(
                "Write",
                vec![("session", session.to_value()), ("records", records.to_value())],
            ),
            Request::Flush { session } => {
                Value::record("Flush", vec![("session", session.to_value())])
            }
            Request::Stats { session } => {
                Value::record("Stats", vec![("session", session.to_value())])
            }
            Request::Close { session } => {
                Value::record("Close", vec![("session", session.to_value())])
            }
            Request::Metrics => Value::record("Metrics", vec![]),
            Request::Shutdown => Value::record("Shutdown", vec![]),
        }
    }

    /// Decodes a request from a wire value, dispatching on the record name.
    pub fn from_value(value: &Value) -> Result<Request, ServeError> {
        let Value::Record { name, .. } = value else {
            return Err(ServeError::Protocol(format!(
                "request must be a record, got {}",
                value.kind()
            )));
        };
        let request = match name.as_str() {
            "Open" => {
                let fields = value.as_record("Open")?;
                Request::Open {
                    scheme: fields.field("scheme")?,
                    workload: fields.field("workload")?,
                    config: fields.field("config")?,
                    options: fields.field("options")?,
                }
            }
            "Write" => {
                let fields = value.as_record("Write")?;
                Request::Write {
                    session: fields.field("session")?,
                    records: fields.field("records")?,
                }
            }
            "Flush" => Request::Flush { session: value.as_record("Flush")?.field("session")? },
            "Stats" => Request::Stats { session: value.as_record("Stats")?.field("session")? },
            "Close" => Request::Close { session: value.as_record("Close")?.field("session")? },
            "Metrics" => Request::Metrics,
            "Shutdown" => Request::Shutdown,
            other => return Err(ServeError::Protocol(format!("unknown request {other:?}"))),
        };
        Ok(request)
    }
}

impl Response {
    /// Encodes the response as a wire value.
    pub fn to_value(&self) -> Value {
        match self {
            Response::Opened { session } => {
                Value::record("Opened", vec![("session", session.to_value())])
            }
            Response::Accepted { accepted, queued } => Value::record(
                "Accepted",
                vec![("accepted", accepted.to_value()), ("queued", queued.to_value())],
            ),
            Response::Busy { accepted, queued } => Value::record(
                "Busy",
                vec![("accepted", accepted.to_value()), ("queued", queued.to_value())],
            ),
            Response::Flushed { writes } => {
                Value::record("Flushed", vec![("writes", writes.to_value())])
            }
            Response::Stats { stats, degraded } => Value::record(
                "Stats",
                vec![("stats", stats.to_value()), ("degraded", degraded.to_value())],
            ),
            Response::Closed { stats, store_hit } => Value::record(
                "Closed",
                vec![("stats", stats.to_value()), ("store_hit", store_hit.to_value())],
            ),
            Response::MetricsText { text } => {
                Value::record("MetricsText", vec![("text", text.to_value())])
            }
            Response::Error { message } => {
                Value::record("Error", vec![("message", message.to_value())])
            }
            Response::ShuttingDown => Value::record("ShuttingDown", vec![]),
        }
    }

    /// Decodes a response from a wire value, dispatching on the record name.
    pub fn from_value(value: &Value) -> Result<Response, ServeError> {
        let Value::Record { name, .. } = value else {
            return Err(ServeError::Protocol(format!(
                "response must be a record, got {}",
                value.kind()
            )));
        };
        let response = match name.as_str() {
            "Opened" => Response::Opened { session: value.as_record("Opened")?.field("session")? },
            "Accepted" => {
                let fields = value.as_record("Accepted")?;
                Response::Accepted {
                    accepted: fields.field("accepted")?,
                    queued: fields.field("queued")?,
                }
            }
            "Busy" => {
                let fields = value.as_record("Busy")?;
                Response::Busy {
                    accepted: fields.field("accepted")?,
                    queued: fields.field("queued")?,
                }
            }
            "Flushed" => Response::Flushed { writes: value.as_record("Flushed")?.field("writes")? },
            "Stats" => {
                let fields = value.as_record("Stats")?;
                Response::Stats {
                    stats: fields.field("stats")?,
                    degraded: fields.field("degraded")?,
                }
            }
            "Closed" => {
                let fields = value.as_record("Closed")?;
                Response::Closed {
                    stats: fields.field("stats")?,
                    store_hit: fields.field("store_hit")?,
                }
            }
            "MetricsText" => {
                Response::MetricsText { text: value.as_record("MetricsText")?.field("text")? }
            }
            "Error" => Response::Error { message: value.as_record("Error")?.field("message")? },
            "ShuttingDown" => Response::ShuttingDown,
            other => return Err(ServeError::Protocol(format!("unknown response {other:?}"))),
        };
        Ok(response)
    }
}

/// Writes one frame carrying `value` to `writer`.
pub fn write_frame(writer: &mut impl Write, value: &Value) -> Result<(), ServeError> {
    let payload = wire::encode(value);
    let length = payload.len() + 1;
    if length > MAX_FRAME_BYTES {
        return Err(ServeError::Protocol(format!("frame of {length} bytes exceeds cap")));
    }
    writer.write_all(&(length as u32).to_le_bytes())?;
    writer.write_all(&[PROTOCOL_VERSION])?;
    writer.write_all(&payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame from `reader`; `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between messages).
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Value>, ServeError> {
    let mut header = [0u8; 4];
    match reader.read_exact(&mut header) {
        Ok(()) => {}
        Err(err) if err.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(err) => return Err(err.into()),
    }
    let length = u32::from_le_bytes(header) as usize;
    if length == 0 {
        return Err(ServeError::Protocol("zero-length frame".to_string()));
    }
    if length > MAX_FRAME_BYTES {
        return Err(ServeError::Protocol(format!("frame of {length} bytes exceeds cap")));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    if body[0] != PROTOCOL_VERSION {
        return Err(ServeError::Protocol(format!(
            "protocol version {} (this build speaks {PROTOCOL_VERSION})",
            body[0]
        )));
    }
    Ok(Some(wire::decode(&body[1..])?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlcrc_pcm::line::MemoryLine;

    fn roundtrip_request(request: Request) {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &request.to_value()).unwrap();
        let value = read_frame(&mut &buffer[..]).unwrap().expect("one frame");
        assert_eq!(Request::from_value(&value).unwrap(), request);
    }

    fn roundtrip_response(response: Response) {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &response.to_value()).unwrap();
        let value = read_frame(&mut &buffer[..]).unwrap().expect("one frame");
        assert_eq!(Response::from_value(&value).unwrap(), response);
    }

    #[test]
    fn requests_round_trip_through_frames() {
        roundtrip_request(Request::Open {
            scheme: "WLCRC-16".to_string(),
            workload: "gcc".to_string(),
            config: PcmConfig::table_ii(),
            options: SimulationOptions { seed: 7, ..SimulationOptions::default() },
        });
        roundtrip_request(Request::Write {
            session: 3,
            records: vec![WriteRecord::new(
                64,
                MemoryLine::from_words([1; 8]),
                MemoryLine::from_words([2; 8]),
            )],
        });
        roundtrip_request(Request::Flush { session: 3 });
        roundtrip_request(Request::Stats { session: 3 });
        roundtrip_request(Request::Close { session: 3 });
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip_through_frames() {
        roundtrip_response(Response::Opened { session: 9 });
        roundtrip_response(Response::Accepted { accepted: 128, queued: 640 });
        roundtrip_response(Response::Busy { accepted: 17, queued: 4096 });
        roundtrip_response(Response::Flushed { writes: 10_000 });
        let mut stats = SchemeStats::new("WLCRC-16", "gcc");
        stats.writes = 5;
        stats.data_energy_pj = 0.1 + 0.2; // a non-representable sum must survive bit-exactly
        roundtrip_response(Response::Stats { stats: stats.clone(), degraded: true });
        roundtrip_response(Response::Closed { stats, store_hit: Some(false) });
        roundtrip_response(Response::MetricsText { text: "wlcrc_serve_sessions 1\n".to_string() });
        roundtrip_response(Response::Error { message: "no".to_string() });
        roundtrip_response(Response::ShuttingDown);
    }

    #[test]
    fn oversized_and_garbled_frames_are_rejected() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert!(matches!(read_frame(&mut &buffer[..]), Err(ServeError::Protocol(_))));

        let mut wrong_version = Vec::new();
        write_frame(&mut wrong_version, &Request::Metrics.to_value()).unwrap();
        wrong_version[4] = PROTOCOL_VERSION + 1;
        assert!(matches!(read_frame(&mut &wrong_version[..]), Err(ServeError::Protocol(_))));

        // Truncated mid-payload: an I/O error, not a panic or hang.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, &Request::Metrics.to_value()).unwrap();
        truncated.truncate(truncated.len() - 1);
        assert!(matches!(read_frame(&mut &truncated[..]), Err(ServeError::Io(_))));
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
    }
}
