//! Server-wide counters and the plain-text scrape rendering.
//!
//! Counters are lock-free atomics bumped on the request path; gauges that
//! need session state (queue depths, energy per write, imbalance) are
//! sampled at scrape time by the server, which owns the session table. The
//! exposition format is Prometheus text style — `# TYPE` lines followed by
//! `name{labels} value` — flat enough to be diffed by the CI smoke job and
//! parsed by the soak test without a real Prometheus client.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic counters shared by every connection handler and worker.
#[derive(Debug)]
pub struct ServeCounters {
    /// Process-relative start time, the basis for `writes_per_sec`.
    start: Instant,
    /// Total protocol requests handled (any kind, including errors).
    pub requests_total: AtomicU64,
    /// Records accepted into bank queues.
    pub writes_accepted_total: AtomicU64,
    /// Records actually simulated (drained from queues).
    pub writes_simulated_total: AtomicU64,
    /// `Busy` responses sent (backpressure events).
    pub busy_responses_total: AtomicU64,
    /// Sessions that entered degraded mode (cumulative).
    pub degraded_entered_total: AtomicU64,
    /// Requests whose handling overran the configured deadline.
    pub deadline_misses_total: AtomicU64,
    /// Connections refused at the accept loop because the cap was reached.
    pub connections_rejected_total: AtomicU64,
    /// Result-store hits at session close.
    pub store_hits_total: AtomicU64,
    /// Result-store misses at session close.
    pub store_misses_total: AtomicU64,
}

impl Default for ServeCounters {
    fn default() -> ServeCounters {
        ServeCounters {
            start: Instant::now(),
            requests_total: AtomicU64::new(0),
            writes_accepted_total: AtomicU64::new(0),
            writes_simulated_total: AtomicU64::new(0),
            busy_responses_total: AtomicU64::new(0),
            degraded_entered_total: AtomicU64::new(0),
            deadline_misses_total: AtomicU64::new(0),
            connections_rejected_total: AtomicU64::new(0),
            store_hits_total: AtomicU64::new(0),
            store_misses_total: AtomicU64::new(0),
        }
    }
}

impl ServeCounters {
    /// Seconds since the server started.
    pub fn uptime_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Simulated writes per second over the whole uptime.
    pub fn writes_per_sec(&self) -> f64 {
        let uptime = self.uptime_seconds();
        if uptime <= 0.0 {
            0.0
        } else {
            self.writes_simulated_total.load(Ordering::Relaxed) as f64 / uptime
        }
    }

    /// Store hit fraction over closes so far (0.0 when store-less or before
    /// the first close).
    pub fn store_hit_rate(&self) -> f64 {
        let hits = self.store_hits_total.load(Ordering::Relaxed) as f64;
        let total = hits + self.store_misses_total.load(Ordering::Relaxed) as f64;
        if total <= 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

/// One gauge sampled from a live session at scrape time.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSample {
    /// The session id, used as the `session` label.
    pub session: u64,
    /// Scheme label the session encodes with.
    pub scheme: String,
    /// Records currently queued (all bank lanes).
    pub queue_depth: u64,
    /// Mean write energy over everything simulated so far (pJ).
    pub energy_pj_per_write: f64,
    /// Max/min per-bank write ratio ([`wlcrc_memsim::SchemeStats::write_imbalance`]).
    pub write_imbalance: f64,
    /// Whether the session is currently shedding optional work.
    pub degraded: bool,
}

/// Renders the scrape body from the counters plus per-session samples and
/// the live connection count.
pub fn render(
    counters: &ServeCounters,
    sessions: &[SessionSample],
    lane_capacity: usize,
    connections_active: usize,
) -> String {
    let mut out = String::with_capacity(1024);
    let counter = |out: &mut String, name: &str, value: u64| {
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    };
    let gauge = |out: &mut String, name: &str, value: f64| {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value:?}\n"));
    };
    gauge(&mut out, "wlcrc_serve_uptime_seconds", counters.uptime_seconds());
    out.push_str(&format!(
        "# TYPE wlcrc_serve_sessions gauge\nwlcrc_serve_sessions {}\n",
        sessions.len()
    ));
    counter(
        &mut out,
        "wlcrc_serve_requests_total",
        counters.requests_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "wlcrc_serve_writes_accepted_total",
        counters.writes_accepted_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "wlcrc_serve_writes_simulated_total",
        counters.writes_simulated_total.load(Ordering::Relaxed),
    );
    gauge(&mut out, "wlcrc_serve_writes_per_sec", counters.writes_per_sec());
    counter(
        &mut out,
        "wlcrc_serve_busy_responses_total",
        counters.busy_responses_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "wlcrc_serve_degraded_entered_total",
        counters.degraded_entered_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "wlcrc_serve_deadline_misses_total",
        counters.deadline_misses_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "wlcrc_serve_connections_rejected_total",
        counters.connections_rejected_total.load(Ordering::Relaxed),
    );
    out.push_str(&format!(
        "# TYPE wlcrc_serve_connections_active gauge\n\
         wlcrc_serve_connections_active {connections_active}\n"
    ));
    out.push_str(&format!(
        "# TYPE wlcrc_serve_lane_capacity gauge\nwlcrc_serve_lane_capacity {lane_capacity}\n"
    ));
    counter(
        &mut out,
        "wlcrc_serve_store_hits_total",
        counters.store_hits_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "wlcrc_serve_store_misses_total",
        counters.store_misses_total.load(Ordering::Relaxed),
    );
    gauge(&mut out, "wlcrc_serve_store_hit_rate", counters.store_hit_rate());
    let degraded = sessions.iter().filter(|s| s.degraded).count();
    out.push_str(&format!(
        "# TYPE wlcrc_serve_degraded_sessions gauge\nwlcrc_serve_degraded_sessions {degraded}\n"
    ));
    out.push_str("# TYPE wlcrc_serve_queue_depth gauge\n");
    for sample in sessions {
        out.push_str(&format!(
            "wlcrc_serve_queue_depth{{session=\"{}\",scheme=\"{}\"}} {}\n",
            sample.session, sample.scheme, sample.queue_depth
        ));
    }
    out.push_str("# TYPE wlcrc_serve_energy_pj_per_write gauge\n");
    for sample in sessions {
        out.push_str(&format!(
            "wlcrc_serve_energy_pj_per_write{{session=\"{}\",scheme=\"{}\"}} {:?}\n",
            sample.session, sample.scheme, sample.energy_pj_per_write
        ));
    }
    out.push_str("# TYPE wlcrc_serve_write_imbalance gauge\n");
    for sample in sessions {
        out.push_str(&format!(
            "wlcrc_serve_write_imbalance{{session=\"{}\",scheme=\"{}\"}} {:?}\n",
            sample.session, sample.scheme, sample.write_imbalance
        ));
    }
    out
}

/// Extracts the value of an unlabelled metric from a scrape body — the tiny
/// parser the soak test and `serve-replay` reconcile counters with.
pub fn scrape_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.trim_start();
        if rest.is_empty() || line.starts_with('#') {
            return None;
        }
        rest.parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_every_advertised_metric() {
        let counters = ServeCounters::default();
        counters.writes_simulated_total.store(42, Ordering::Relaxed);
        let sessions = vec![SessionSample {
            session: 1,
            scheme: "WLCRC-16".to_string(),
            queue_depth: 7,
            energy_pj_per_write: 123.25,
            write_imbalance: 1.5,
            degraded: true,
        }];
        let text = render(&counters, &sessions, 256, 3);
        for name in [
            "wlcrc_serve_uptime_seconds",
            "wlcrc_serve_sessions 1",
            "wlcrc_serve_requests_total",
            "wlcrc_serve_writes_accepted_total",
            "wlcrc_serve_writes_simulated_total 42",
            "wlcrc_serve_writes_per_sec",
            "wlcrc_serve_busy_responses_total",
            "wlcrc_serve_deadline_misses_total",
            "wlcrc_serve_connections_rejected_total",
            "wlcrc_serve_connections_active 3",
            "wlcrc_serve_lane_capacity 256",
            "wlcrc_serve_store_hit_rate",
            "wlcrc_serve_degraded_sessions 1",
            "wlcrc_serve_queue_depth{session=\"1\",scheme=\"WLCRC-16\"} 7",
            "wlcrc_serve_energy_pj_per_write{session=\"1\",scheme=\"WLCRC-16\"} 123.25",
            "wlcrc_serve_write_imbalance{session=\"1\",scheme=\"WLCRC-16\"} 1.5",
        ] {
            assert!(text.contains(name), "missing {name:?} in:\n{text}");
        }
    }

    #[test]
    fn scrape_value_reads_back_counters() {
        let counters = ServeCounters::default();
        counters.writes_simulated_total.store(9, Ordering::Relaxed);
        let text = render(&counters, &[], 64, 0);
        assert_eq!(scrape_value(&text, "wlcrc_serve_writes_simulated_total"), Some(9.0));
        assert_eq!(scrape_value(&text, "wlcrc_serve_lane_capacity"), Some(64.0));
        assert_eq!(scrape_value(&text, "no_such_metric"), None);
    }
}
