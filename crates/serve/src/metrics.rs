//! Server-wide counters and the plain-text scrape rendering.
//!
//! Counters are lock-free `wlcrc_obs` metrics bumped on the request path;
//! gauges that need session state (queue depths, energy per write,
//! imbalance) are sampled at scrape time by the server, which owns the
//! session table. The exposition format is Prometheus text style — `# TYPE`
//! lines followed by `name{labels} value` — flat enough to be diffed by the
//! CI smoke job and parsed by the soak test without a real Prometheus
//! client.
//!
//! The scrape body is rendered in three byte-stable parts:
//!
//! 1. the historical `wlcrc_serve_*` counters and gauges, byte-identical
//!    to the pre-registry rendering (pinned by the golden test below);
//! 2. the `wlcrc_serve_request_seconds` block — p50/p90/p99 quantile
//!    gauges, count, and max from the per-request latency histogram (the
//!    measurement behind the ROADMAP's serve SLO targets);
//! 3. whatever else the process registered in the global `wlcrc_obs`
//!    registry — `wlcrc_store_*` I/O counters and latency histograms when
//!    a result store is attached, `wlcrc_faults_fired_total{site=...}`
//!    during chaos runs.

use std::time::Instant;

use wlcrc_obs::metrics::text;
use wlcrc_obs::{Counter, Histogram};

/// Monotonic counters shared by every connection handler and worker.
#[derive(Debug)]
pub struct ServeCounters {
    /// Process-relative start time, the basis for `writes_per_sec`.
    start: Instant,
    /// Total protocol requests handled (any kind, including errors).
    pub requests_total: Counter,
    /// Records accepted into bank queues.
    pub writes_accepted_total: Counter,
    /// Records actually simulated (drained from queues).
    pub writes_simulated_total: Counter,
    /// `Busy` responses sent (backpressure events).
    pub busy_responses_total: Counter,
    /// Sessions that entered degraded mode (cumulative).
    pub degraded_entered_total: Counter,
    /// Requests whose handling overran the configured deadline.
    pub deadline_misses_total: Counter,
    /// Connections refused at the accept loop because the cap was reached.
    pub connections_rejected_total: Counter,
    /// Result-store hits at session close.
    pub store_hits_total: Counter,
    /// Result-store misses at session close.
    pub store_misses_total: Counter,
    /// Wall-clock latency of each dispatched request.
    pub request_seconds: Histogram,
}

impl Default for ServeCounters {
    fn default() -> ServeCounters {
        ServeCounters {
            start: Instant::now(),
            requests_total: Counter::new(),
            writes_accepted_total: Counter::new(),
            writes_simulated_total: Counter::new(),
            busy_responses_total: Counter::new(),
            degraded_entered_total: Counter::new(),
            deadline_misses_total: Counter::new(),
            connections_rejected_total: Counter::new(),
            store_hits_total: Counter::new(),
            store_misses_total: Counter::new(),
            request_seconds: Histogram::new(),
        }
    }
}

impl ServeCounters {
    /// Seconds since the server started.
    pub fn uptime_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Simulated writes per second over the whole uptime.
    pub fn writes_per_sec(&self) -> f64 {
        let uptime = self.uptime_seconds();
        if uptime <= 0.0 {
            0.0
        } else {
            self.writes_simulated_total.get() as f64 / uptime
        }
    }

    /// Store hit fraction over closes so far (0.0 when store-less or before
    /// the first close).
    pub fn store_hit_rate(&self) -> f64 {
        let hits = self.store_hits_total.get() as f64;
        let total = hits + self.store_misses_total.get() as f64;
        if total <= 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

/// One gauge sampled from a live session at scrape time.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSample {
    /// The session id, used as the `session` label.
    pub session: u64,
    /// Scheme label the session encodes with.
    pub scheme: String,
    /// Records currently queued (all bank lanes).
    pub queue_depth: u64,
    /// Mean write energy over everything simulated so far (pJ).
    pub energy_pj_per_write: f64,
    /// Max/min per-bank write ratio ([`wlcrc_memsim::SchemeStats::write_imbalance`]).
    pub write_imbalance: f64,
    /// Whether the session is currently shedding optional work.
    pub degraded: bool,
}

/// Renders the scrape body from the counters plus per-session samples and
/// the live connection count.
pub fn render(
    counters: &ServeCounters,
    sessions: &[SessionSample],
    lane_capacity: usize,
    connections_active: usize,
) -> String {
    let mut out = String::with_capacity(1024);
    text::gauge(&mut out, "wlcrc_serve_uptime_seconds", counters.uptime_seconds());
    text::gauge_int(&mut out, "wlcrc_serve_sessions", sessions.len() as u64);
    text::counter(&mut out, "wlcrc_serve_requests_total", counters.requests_total.get());
    text::counter(
        &mut out,
        "wlcrc_serve_writes_accepted_total",
        counters.writes_accepted_total.get(),
    );
    text::counter(
        &mut out,
        "wlcrc_serve_writes_simulated_total",
        counters.writes_simulated_total.get(),
    );
    text::gauge(&mut out, "wlcrc_serve_writes_per_sec", counters.writes_per_sec());
    text::counter(
        &mut out,
        "wlcrc_serve_busy_responses_total",
        counters.busy_responses_total.get(),
    );
    text::counter(
        &mut out,
        "wlcrc_serve_degraded_entered_total",
        counters.degraded_entered_total.get(),
    );
    text::counter(
        &mut out,
        "wlcrc_serve_deadline_misses_total",
        counters.deadline_misses_total.get(),
    );
    text::counter(
        &mut out,
        "wlcrc_serve_connections_rejected_total",
        counters.connections_rejected_total.get(),
    );
    text::gauge_int(&mut out, "wlcrc_serve_connections_active", connections_active as u64);
    text::gauge_int(&mut out, "wlcrc_serve_lane_capacity", lane_capacity as u64);
    text::counter(&mut out, "wlcrc_serve_store_hits_total", counters.store_hits_total.get());
    text::counter(&mut out, "wlcrc_serve_store_misses_total", counters.store_misses_total.get());
    text::gauge(&mut out, "wlcrc_serve_store_hit_rate", counters.store_hit_rate());
    let degraded = sessions.iter().filter(|s| s.degraded).count();
    text::gauge_int(&mut out, "wlcrc_serve_degraded_sessions", degraded as u64);
    out.push_str("# TYPE wlcrc_serve_queue_depth gauge\n");
    for sample in sessions {
        out.push_str(&format!(
            "wlcrc_serve_queue_depth{{session=\"{}\",scheme=\"{}\"}} {}\n",
            sample.session, sample.scheme, sample.queue_depth
        ));
    }
    out.push_str("# TYPE wlcrc_serve_energy_pj_per_write gauge\n");
    for sample in sessions {
        out.push_str(&format!(
            "wlcrc_serve_energy_pj_per_write{{session=\"{}\",scheme=\"{}\"}} {:?}\n",
            sample.session, sample.scheme, sample.energy_pj_per_write
        ));
    }
    out.push_str("# TYPE wlcrc_serve_write_imbalance gauge\n");
    for sample in sessions {
        out.push_str(&format!(
            "wlcrc_serve_write_imbalance{{session=\"{}\",scheme=\"{}\"}} {:?}\n",
            sample.session, sample.scheme, sample.write_imbalance
        ));
    }
    // Everything below is new with the obs registry; every pre-existing
    // metric above keeps its exact historical bytes and order.
    out.push_str("# TYPE wlcrc_serve_request_seconds gauge\n");
    for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
        out.push_str(&format!(
            "wlcrc_serve_request_seconds{{quantile=\"{label}\"}} {:?}\n",
            counters.request_seconds.quantile_seconds(q)
        ));
    }
    text::counter(&mut out, "wlcrc_serve_request_seconds_count", counters.request_seconds.count());
    text::gauge(
        &mut out,
        "wlcrc_serve_request_seconds_max",
        counters.request_seconds.max_ns() as f64 / 1e9,
    );
    wlcrc_obs::registry().render_into(&mut out);
    out
}

/// Extracts the value of a metric from a scrape body — the tiny parser the
/// soak test and `serve-replay` reconcile counters with.
///
/// `name` is the full series name: bare (`wlcrc_serve_sessions`) for
/// unlabelled metrics, labels included
/// (`wlcrc_serve_queue_depth{session="1",scheme="WLCRC-16"}`) for labelled
/// series.
pub fn scrape_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        // Comment/`# TYPE` lines are skipped before any prefix matching —
        // a name must never match into a header.
        if line.starts_with('#') {
            return None;
        }
        let rest = line.strip_prefix(name)?;
        // The series name must end exactly here: `foo` may not match
        // `foo_total` or the unlabelled prefix of `foo{...}`.
        if !rest.starts_with(char::is_whitespace) {
            return None;
        }
        rest.split_whitespace().next()?.parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_every_advertised_metric() {
        let counters = ServeCounters::default();
        counters.writes_simulated_total.add(42);
        let sessions = vec![SessionSample {
            session: 1,
            scheme: "WLCRC-16".to_string(),
            queue_depth: 7,
            energy_pj_per_write: 123.25,
            write_imbalance: 1.5,
            degraded: true,
        }];
        let text = render(&counters, &sessions, 256, 3);
        for name in [
            "wlcrc_serve_uptime_seconds",
            "wlcrc_serve_sessions 1",
            "wlcrc_serve_requests_total",
            "wlcrc_serve_writes_accepted_total",
            "wlcrc_serve_writes_simulated_total 42",
            "wlcrc_serve_writes_per_sec",
            "wlcrc_serve_busy_responses_total",
            "wlcrc_serve_deadline_misses_total",
            "wlcrc_serve_connections_rejected_total",
            "wlcrc_serve_connections_active 3",
            "wlcrc_serve_lane_capacity 256",
            "wlcrc_serve_store_hit_rate",
            "wlcrc_serve_degraded_sessions 1",
            "wlcrc_serve_queue_depth{session=\"1\",scheme=\"WLCRC-16\"} 7",
            "wlcrc_serve_energy_pj_per_write{session=\"1\",scheme=\"WLCRC-16\"} 123.25",
            "wlcrc_serve_write_imbalance{session=\"1\",scheme=\"WLCRC-16\"} 1.5",
            "wlcrc_serve_request_seconds{quantile=\"0.5\"}",
            "wlcrc_serve_request_seconds{quantile=\"0.9\"}",
            "wlcrc_serve_request_seconds{quantile=\"0.99\"}",
            "wlcrc_serve_request_seconds_count",
            "wlcrc_serve_request_seconds_max",
        ] {
            assert!(text.contains(name), "missing {name:?} in:\n{text}");
        }
    }

    #[test]
    fn scrape_value_reads_back_counters() {
        let counters = ServeCounters::default();
        counters.writes_simulated_total.add(9);
        let text = render(&counters, &[], 64, 0);
        assert_eq!(scrape_value(&text, "wlcrc_serve_writes_simulated_total"), Some(9.0));
        assert_eq!(scrape_value(&text, "wlcrc_serve_lane_capacity"), Some(64.0));
        assert_eq!(scrape_value(&text, "no_such_metric"), None);
    }

    #[test]
    fn scrape_value_reads_labelled_series_and_skips_headers() {
        let counters = ServeCounters::default();
        let sessions = vec![
            SessionSample {
                session: 1,
                scheme: "WLCRC-16".to_string(),
                queue_depth: 7,
                energy_pj_per_write: 123.25,
                write_imbalance: 1.5,
                degraded: false,
            },
            SessionSample {
                session: 10,
                scheme: "Raw".to_string(),
                queue_depth: 3,
                energy_pj_per_write: 9.5,
                write_imbalance: 1.0,
                degraded: false,
            },
        ];
        let text = render(&counters, &sessions, 64, 0);
        assert_eq!(
            scrape_value(&text, "wlcrc_serve_queue_depth{session=\"1\",scheme=\"WLCRC-16\"}"),
            Some(7.0)
        );
        assert_eq!(
            scrape_value(&text, "wlcrc_serve_queue_depth{session=\"10\",scheme=\"Raw\"}"),
            Some(3.0)
        );
        assert_eq!(
            scrape_value(&text, "wlcrc_serve_energy_pj_per_write{session=\"10\",scheme=\"Raw\"}"),
            Some(9.5)
        );
        // A name must end where the series name ends: no header matches, no
        // prefix-of-longer-name matches, no bare-name match of a labelled
        // family.
        assert_eq!(scrape_value(&text, "wlcrc_serve_queue_depth"), None);
        assert_eq!(scrape_value(&text, "wlcrc_serve_store_hits"), None);
        assert_eq!(scrape_value("# TYPE x counter\n", "# TYPE x"), None);
    }

    #[test]
    fn request_latency_quantiles_surface_in_the_scrape() {
        let counters = ServeCounters::default();
        for ms in [1u64, 2, 3, 4, 200] {
            counters.request_seconds.observe(std::time::Duration::from_millis(ms));
        }
        let text = render(&counters, &[], 64, 0);
        assert_eq!(scrape_value(&text, "wlcrc_serve_request_seconds_count"), Some(5.0));
        let p50 = scrape_value(&text, "wlcrc_serve_request_seconds{quantile=\"0.5\"}").unwrap();
        let p99 = scrape_value(&text, "wlcrc_serve_request_seconds{quantile=\"0.99\"}").unwrap();
        let max = scrape_value(&text, "wlcrc_serve_request_seconds_max").unwrap();
        assert!((0.003..0.2).contains(&p50), "p50 {p50}");
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert!((max - 0.2).abs() < 1e-9, "max {max}");
        assert_eq!(p99, 0.2, "p99 capped at the observed max");
    }

    #[test]
    fn scrape_prefix_is_byte_identical_to_the_pre_registry_rendering() {
        // Golden pin: everything up to the request_seconds block must be
        // the exact bytes the scrape emitted before the obs registry
        // existed. The two time-dependent lines (uptime, writes/sec) are
        // spliced in from the actual rendering; everything else is literal.
        let counters = ServeCounters::default();
        counters.requests_total.add(5);
        counters.writes_accepted_total.add(100);
        counters.writes_simulated_total.add(90);
        counters.busy_responses_total.add(2);
        counters.degraded_entered_total.add(1);
        counters.deadline_misses_total.add(3);
        counters.connections_rejected_total.add(4);
        counters.store_hits_total.add(3);
        counters.store_misses_total.add(1);
        let sessions = vec![SessionSample {
            session: 2,
            scheme: "WLCRC-16".to_string(),
            queue_depth: 11,
            energy_pj_per_write: 55.5,
            write_imbalance: 2.25,
            degraded: true,
        }];
        let text = render(&counters, &sessions, 128, 6);
        let line = |prefix: &str| -> &str {
            text.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("no {prefix:?} line in:\n{text}"))
        };
        let expected_prefix = format!(
            "# TYPE wlcrc_serve_uptime_seconds gauge\n\
             {uptime}\n\
             # TYPE wlcrc_serve_sessions gauge\n\
             wlcrc_serve_sessions 1\n\
             # TYPE wlcrc_serve_requests_total counter\n\
             wlcrc_serve_requests_total 5\n\
             # TYPE wlcrc_serve_writes_accepted_total counter\n\
             wlcrc_serve_writes_accepted_total 100\n\
             # TYPE wlcrc_serve_writes_simulated_total counter\n\
             wlcrc_serve_writes_simulated_total 90\n\
             # TYPE wlcrc_serve_writes_per_sec gauge\n\
             {writes_per_sec}\n\
             # TYPE wlcrc_serve_busy_responses_total counter\n\
             wlcrc_serve_busy_responses_total 2\n\
             # TYPE wlcrc_serve_degraded_entered_total counter\n\
             wlcrc_serve_degraded_entered_total 1\n\
             # TYPE wlcrc_serve_deadline_misses_total counter\n\
             wlcrc_serve_deadline_misses_total 3\n\
             # TYPE wlcrc_serve_connections_rejected_total counter\n\
             wlcrc_serve_connections_rejected_total 4\n\
             # TYPE wlcrc_serve_connections_active gauge\n\
             wlcrc_serve_connections_active 6\n\
             # TYPE wlcrc_serve_lane_capacity gauge\n\
             wlcrc_serve_lane_capacity 128\n\
             # TYPE wlcrc_serve_store_hits_total counter\n\
             wlcrc_serve_store_hits_total 3\n\
             # TYPE wlcrc_serve_store_misses_total counter\n\
             wlcrc_serve_store_misses_total 1\n\
             # TYPE wlcrc_serve_store_hit_rate gauge\n\
             wlcrc_serve_store_hit_rate 0.75\n\
             # TYPE wlcrc_serve_degraded_sessions gauge\n\
             wlcrc_serve_degraded_sessions 1\n\
             # TYPE wlcrc_serve_queue_depth gauge\n\
             wlcrc_serve_queue_depth{{session=\"2\",scheme=\"WLCRC-16\"}} 11\n\
             # TYPE wlcrc_serve_energy_pj_per_write gauge\n\
             wlcrc_serve_energy_pj_per_write{{session=\"2\",scheme=\"WLCRC-16\"}} 55.5\n\
             # TYPE wlcrc_serve_write_imbalance gauge\n\
             wlcrc_serve_write_imbalance{{session=\"2\",scheme=\"WLCRC-16\"}} 2.25\n\
             # TYPE wlcrc_serve_request_seconds gauge\n",
            uptime = line("wlcrc_serve_uptime_seconds "),
            writes_per_sec = line("wlcrc_serve_writes_per_sec "),
        );
        assert!(
            text.starts_with(&expected_prefix),
            "scrape body diverged from the pre-registry golden.\nexpected prefix:\n\
             {expected_prefix}\nactual:\n{text}"
        );
    }
}
