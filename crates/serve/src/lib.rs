//! `wlcrc-serve`: a long-lived memory-service front-end over the simulator.
//!
//! Everything else in the reproduction is batch replay; this crate turns the
//! per-bank lane core ([`wlcrc_memsim::SimulatorSession`]) into a service:
//! **sessions** (a live simulator + codec behind a [`u64`] id) driven
//! through a small framed wire protocol ([`protocol`]) over blocking TCP or
//! Unix-domain sockets, with a worker pool draining bounded per-bank queues
//! in the background ([`server`]), explicit backpressure (`Busy`, never
//! unbounded growth, never a silent drop), graceful degradation under load,
//! and live plain-text metrics ([`metrics`]).
//!
//! The determinism contract of the batch engine carries over verbatim: the
//! statistics a session reports are **byte-identical** to running
//! [`wlcrc_memsim::Simulator`] directly over the same accepted records —
//! whatever the connection count, worker count, batch boundaries or
//! `Busy`/retry interleavings. The soak test pins this end to end over a
//! live socket.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::{RetryClient, RetryPolicy, ServeClient, WriteReport, FAULT_CLIENT_FLAKY};
pub use error::ServeError;
pub use metrics::scrape_value;
pub use protocol::{Request, Response, MAX_FRAME_BYTES, PROTOCOL_VERSION};
pub use server::{RunningServer, Server, ServerConfig, FAULT_REQUEST_SLOW};
