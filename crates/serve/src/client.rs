//! A minimal blocking client for the serve protocol, used by the soak test,
//! the `serve-replay` tool and in-process examples — plus the resilient
//! [`RetryClient`] wrapper that reconnects and retries transient failures
//! under a jittered-exponential [`RetryPolicy`].

use crate::error::ServeError;
use crate::protocol::{read_frame, write_frame, Request, Response};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;
use wlcrc_memsim::{SchemeStats, SimulationOptions};
use wlcrc_pcm::config::PcmConfig;
use wlcrc_trace::WriteRecord;

/// Fault site that fails a [`RetryClient`] call *before* the request is
/// sent (`wlcrc_faults`), surfacing as a transient connection error. Firing
/// pre-send keeps retries exactly-once safe, so chaos runs stay
/// byte-identical to clean ones.
pub const FAULT_CLIENT_FLAKY: &str = "serve.client.flaky";

/// Outcome of [`ServeClient::write_all`]: the records all landed, possibly
/// after observing backpressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReport {
    /// Records delivered (always the full batch on `Ok`).
    pub written: u64,
    /// `Busy` responses absorbed along the way — nonzero means the server
    /// exercised backpressure and this client resubmitted the remainder.
    pub busy_responses: u64,
    /// Highest session queue depth any response reported.
    pub max_queued: u64,
}

/// A connected client driving one request/response exchange at a time over
/// any bidirectional byte stream.
pub struct ServeClient<S: Read + Write> {
    stream: S,
}

impl ServeClient<TcpStream> {
    /// Connects over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient<TcpStream>, ServeError> {
        let stream = TcpStream::connect(addr)?;
        // Requests and responses strictly alternate, so Nagle's algorithm
        // would stall every exchange by a delayed-ACK interval.
        stream.set_nodelay(true)?;
        Ok(ServeClient::over(stream))
    }
}

#[cfg(unix)]
impl ServeClient<UnixStream> {
    /// Connects over a Unix-domain socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<ServeClient<UnixStream>, ServeError> {
        Ok(ServeClient::over(UnixStream::connect(path)?))
    }
}

impl<S: Read + Write> ServeClient<S> {
    /// Wraps an already-connected bidirectional stream.
    pub fn over(stream: S) -> ServeClient<S> {
        ServeClient { stream }
    }

    /// One request/response exchange. Protocol-level `Error` responses are
    /// surfaced as [`ServeError::Remote`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, &request.to_value())?;
        let value = read_frame(&mut self.stream)?
            .ok_or_else(|| ServeError::Protocol("server hung up mid-exchange".to_string()))?;
        match Response::from_value(&value)? {
            Response::Error { message } => Err(ServeError::Remote(message)),
            response => Ok(response),
        }
    }

    /// Opens a session; returns its id.
    pub fn open(
        &mut self,
        scheme: &str,
        workload: &str,
        config: PcmConfig,
        options: SimulationOptions,
    ) -> Result<u64, ServeError> {
        match self.call(&Request::Open {
            scheme: scheme.to_string(),
            workload: workload.to_string(),
            config,
            options,
        })? {
            Response::Opened { session } => Ok(session),
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Submits one batch without retrying: the raw `Accepted`/`Busy`
    /// outcome, for callers probing backpressure directly.
    pub fn write(&mut self, session: u64, records: &[WriteRecord]) -> Result<Response, ServeError> {
        self.call(&Request::Write { session, records: records.to_vec() })
    }

    /// Delivers *all* records, resubmitting whatever a `Busy` response left
    /// over (after a `Flush` to let the server drain). Chunks the batch so
    /// no frame exceeds the protocol cap.
    pub fn write_all(
        &mut self,
        session: u64,
        records: &[WriteRecord],
    ) -> Result<WriteReport, ServeError> {
        const CHUNK: usize = 4096;
        let mut report = WriteReport { written: 0, busy_responses: 0, max_queued: 0 };
        for chunk in records.chunks(CHUNK) {
            let mut rest = chunk;
            while !rest.is_empty() {
                match self.write(session, rest)? {
                    Response::Accepted { accepted, queued } => {
                        report.written += accepted;
                        report.max_queued = report.max_queued.max(queued);
                        rest = &rest[accepted as usize..];
                    }
                    Response::Busy { accepted, queued } => {
                        report.written += accepted;
                        report.busy_responses += 1;
                        report.max_queued = report.max_queued.max(queued);
                        rest = &rest[accepted as usize..];
                        // Nothing was dropped; give the server room.
                        self.flush(session)?;
                    }
                    other => return Err(unexpected("Accepted|Busy", &other)),
                }
            }
        }
        Ok(report)
    }

    /// Blocks until the session's backlog is fully simulated.
    pub fn flush(&mut self, session: u64) -> Result<u64, ServeError> {
        match self.call(&Request::Flush { session })? {
            Response::Flushed { writes } => Ok(writes),
            other => Err(unexpected("Flushed", &other)),
        }
    }

    /// Snapshots the session's statistics (drains first server-side).
    pub fn stats(&mut self, session: u64) -> Result<(SchemeStats, bool), ServeError> {
        match self.call(&Request::Stats { session })? {
            Response::Stats { stats, degraded } => Ok((stats, degraded)),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Closes the session, returning its final statistics and the store
    /// outcome (`None` when the server runs store-less).
    pub fn close(&mut self, session: u64) -> Result<(SchemeStats, Option<bool>), ServeError> {
        match self.call(&Request::Close { session })? {
            Response::Closed { stats, store_hit } => Ok((stats, store_hit)),
            other => Err(unexpected("Closed", &other)),
        }
    }

    /// Scrapes the plain-text metrics.
    pub fn metrics_text(&mut self) -> Result<String, ServeError> {
        match self.call(&Request::Metrics)? {
            Response::MetricsText { text } => Ok(text),
            other => Err(unexpected("MetricsText", &other)),
        }
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(expected: &str, got: &Response) -> ServeError {
    ServeError::Protocol(format!("expected {expected} response, got {got:?}"))
}

/// Backoff schedule for [`RetryClient`]: exponential doubling from
/// `base_delay`, capped at `max_delay`, scaled by a deterministic jitter
/// factor in `[0.5, 1.0)` derived from `(seed, attempt)` — so a fleet of
/// clients sharing a policy template but distinct seeds desynchronises
/// instead of thundering back in lockstep, while any single run replays
/// identically.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per call (the first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff pause.
    pub max_delay: Duration,
    /// Jitter stream selector.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
            seed: 0x776c_6372_6300,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let doubled = self.base_delay.saturating_mul(1u32 << attempt.min(16));
        let capped = doubled.min(self.max_delay);
        capped.mul_f64(0.5 + jitter_unit(self.seed, attempt) / 2.0)
    }
}

/// A unit-interval value that is a pure function of `(seed, attempt)`
/// (splitmix64 finalizer), so backoff schedules are reproducible.
fn jitter_unit(seed: u64, attempt: u32) -> f64 {
    let mut z = seed ^ (u64::from(attempt) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A reconnecting TCP client that absorbs transient failures under a
/// [`RetryPolicy`].
///
/// Retried failures are strictly **exactly-once safe**:
///
/// * the injected [`FAULT_CLIENT_FLAKY`] fault always fires *before* a
///   request is sent, so retrying it can never duplicate server-side work;
/// * genuine transport errors (connection reset, server hung up) are
///   retried only for requests whose replay cannot change any session's
///   statistics (`Open`, `Flush`, `Stats`, `Metrics` — at worst a lost
///   `Open` response leaks an empty, never-closed session). A `Write` or
///   `Close` interrupted mid-flight surfaces its error instead, because the
///   client cannot know whether the server applied it.
///
/// `Busy` answered to a non-`Write` request means the server refused the
/// connection at its cap; the client backs off, reconnects and retries.
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    client: Option<ServeClient<TcpStream>>,
    retries: u64,
    busy_waits: u64,
}

impl RetryClient {
    /// Connects to `addr`, retrying the initial connect under `policy`.
    pub fn connect(
        addr: impl Into<String>,
        policy: RetryPolicy,
    ) -> Result<RetryClient, ServeError> {
        let mut client =
            RetryClient { addr: addr.into(), policy, client: None, retries: 0, busy_waits: 0 };
        let mut attempt = 0u32;
        loop {
            match client.ensure_connected() {
                Ok(_) => return Ok(client),
                Err(err) => {
                    if attempt + 1 >= client.policy.max_attempts {
                        return Err(err);
                    }
                    client.retries += 1;
                    std::thread::sleep(client.policy.delay(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Transient failures absorbed so far (reconnects and injected faults).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Backoff pauses taken for `Busy` responses so far.
    pub fn busy_waits(&self) -> u64 {
        self.busy_waits
    }

    fn ensure_connected(&mut self) -> Result<&mut ServeClient<TcpStream>, ServeError> {
        if let Some(ref mut client) = self.client {
            return Ok(client);
        }
        let client = ServeClient::connect(&*self.addr)?;
        Ok(self.client.insert(client))
    }

    /// One exchange with retry: transient failures reconnect and resend
    /// under the policy (see the type docs for the exactly-once rules).
    pub fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        let mut attempt = 0u32;
        loop {
            let injected = wlcrc_faults::should_fire(FAULT_CLIENT_FLAKY);
            let outcome = if injected {
                self.client = None;
                Err(ServeError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "injected transient client fault",
                )))
            } else {
                let result = self.ensure_connected().and_then(|client| client.call(request));
                if matches!(result, Err(ServeError::Io(_) | ServeError::Protocol(_))) {
                    // The connection is in an unknown framing state; any
                    // retry must start from a fresh one.
                    self.client = None;
                }
                result
            };
            let out_of_attempts = attempt + 1 >= self.policy.max_attempts;
            match outcome {
                Ok(Response::Busy { .. })
                    if !matches!(request, Request::Write { .. }) && !out_of_attempts =>
                {
                    // Refused at the connection cap: back off and reconnect.
                    self.client = None;
                    self.busy_waits += 1;
                    std::thread::sleep(self.policy.delay(attempt));
                    attempt += 1;
                }
                Err(err)
                    if !out_of_attempts && (injected || transport_retryable(&err, request)) =>
                {
                    self.retries += 1;
                    std::thread::sleep(self.policy.delay(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Opens a session; returns its id.
    pub fn open(
        &mut self,
        scheme: &str,
        workload: &str,
        config: PcmConfig,
        options: SimulationOptions,
    ) -> Result<u64, ServeError> {
        match self.call(&Request::Open {
            scheme: scheme.to_string(),
            workload: workload.to_string(),
            config,
            options,
        })? {
            Response::Opened { session } => Ok(session),
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Delivers *all* records, absorbing transient client faults and
    /// backing off (jittered, exponential) on `Busy` backpressure.
    pub fn write_all(
        &mut self,
        session: u64,
        records: &[WriteRecord],
    ) -> Result<WriteReport, ServeError> {
        const CHUNK: usize = 4096;
        let mut report = WriteReport { written: 0, busy_responses: 0, max_queued: 0 };
        for chunk in records.chunks(CHUNK) {
            let mut rest = chunk;
            let mut busy_attempt = 0u32;
            while !rest.is_empty() {
                let request = Request::Write { session, records: rest.to_vec() };
                match self.call(&request)? {
                    Response::Accepted { accepted, queued } => {
                        report.written += accepted;
                        report.max_queued = report.max_queued.max(queued);
                        rest = &rest[accepted as usize..];
                        busy_attempt = 0;
                    }
                    Response::Busy { accepted, queued } => {
                        report.written += accepted;
                        report.busy_responses += 1;
                        report.max_queued = report.max_queued.max(queued);
                        rest = &rest[accepted as usize..];
                        // Nothing was dropped; pause (escalating while the
                        // server stays busy), let it drain, resubmit.
                        self.busy_waits += 1;
                        std::thread::sleep(self.policy.delay(busy_attempt));
                        busy_attempt = busy_attempt.saturating_add(1);
                        self.flush(session)?;
                    }
                    other => return Err(unexpected("Accepted|Busy", &other)),
                }
            }
        }
        Ok(report)
    }

    /// Blocks until the session's backlog is fully simulated.
    pub fn flush(&mut self, session: u64) -> Result<u64, ServeError> {
        match self.call(&Request::Flush { session })? {
            Response::Flushed { writes } => Ok(writes),
            other => Err(unexpected("Flushed", &other)),
        }
    }

    /// Snapshots the session's statistics (drains first server-side).
    pub fn stats(&mut self, session: u64) -> Result<(SchemeStats, bool), ServeError> {
        match self.call(&Request::Stats { session })? {
            Response::Stats { stats, degraded } => Ok((stats, degraded)),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Closes the session, returning its final statistics and store outcome.
    pub fn close(&mut self, session: u64) -> Result<(SchemeStats, Option<bool>), ServeError> {
        match self.call(&Request::Close { session })? {
            Response::Closed { stats, store_hit } => Ok((stats, store_hit)),
            other => Err(unexpected("Closed", &other)),
        }
    }

    /// Scrapes the plain-text metrics.
    pub fn metrics_text(&mut self) -> Result<String, ServeError> {
        match self.call(&Request::Metrics)? {
            Response::MetricsText { text } => Ok(text),
            other => Err(unexpected("MetricsText", &other)),
        }
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

/// Whether a genuine transport failure of `request` is safe to retry: the
/// connection died (I/O error or mid-exchange hang-up) *and* replaying the
/// request cannot change any session's recorded statistics.
fn transport_retryable(err: &ServeError, request: &Request) -> bool {
    let transport = match err {
        ServeError::Io(_) => true,
        ServeError::Protocol(message) => message.contains("hung up"),
        _ => false,
    };
    transport
        && matches!(
            request,
            Request::Open { .. } | Request::Flush { .. } | Request::Stats { .. } | Request::Metrics
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delays_are_deterministic_capped_and_jittered() {
        let policy = RetryPolicy::default();
        for attempt in 0..12 {
            let delay = policy.delay(attempt);
            assert_eq!(delay, policy.delay(attempt), "same attempt, same pause");
            assert!(delay <= policy.max_delay);
            assert!(delay >= policy.base_delay / 2, "jitter floor is half the exponential step");
        }
        // Different seeds desynchronise.
        let other = RetryPolicy { seed: 7, ..RetryPolicy::default() };
        assert_ne!(policy.delay(3), other.delay(3));
    }

    #[test]
    fn transport_errors_only_retry_statistics_safe_requests() {
        let io = || ServeError::Io(std::io::Error::new(std::io::ErrorKind::ConnectionReset, "x"));
        assert!(transport_retryable(&io(), &Request::Flush { session: 1 }));
        assert!(transport_retryable(&io(), &Request::Metrics));
        assert!(!transport_retryable(&io(), &Request::Write { session: 1, records: vec![] }));
        assert!(!transport_retryable(&io(), &Request::Close { session: 1 }));
        assert!(!transport_retryable(&ServeError::UnknownSession(1), &Request::Metrics));
    }
}
