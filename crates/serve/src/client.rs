//! A minimal blocking client for the serve protocol, used by the soak test,
//! the `serve-replay` tool and in-process examples.

use crate::error::ServeError;
use crate::protocol::{read_frame, write_frame, Request, Response};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use wlcrc_memsim::{SchemeStats, SimulationOptions};
use wlcrc_pcm::config::PcmConfig;
use wlcrc_trace::WriteRecord;

/// Outcome of [`ServeClient::write_all`]: the records all landed, possibly
/// after observing backpressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReport {
    /// Records delivered (always the full batch on `Ok`).
    pub written: u64,
    /// `Busy` responses absorbed along the way — nonzero means the server
    /// exercised backpressure and this client resubmitted the remainder.
    pub busy_responses: u64,
    /// Highest session queue depth any response reported.
    pub max_queued: u64,
}

/// A connected client driving one request/response exchange at a time over
/// any bidirectional byte stream.
pub struct ServeClient<S: Read + Write> {
    stream: S,
}

impl ServeClient<TcpStream> {
    /// Connects over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient<TcpStream>, ServeError> {
        let stream = TcpStream::connect(addr)?;
        // Requests and responses strictly alternate, so Nagle's algorithm
        // would stall every exchange by a delayed-ACK interval.
        stream.set_nodelay(true)?;
        Ok(ServeClient::over(stream))
    }
}

#[cfg(unix)]
impl ServeClient<UnixStream> {
    /// Connects over a Unix-domain socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<ServeClient<UnixStream>, ServeError> {
        Ok(ServeClient::over(UnixStream::connect(path)?))
    }
}

impl<S: Read + Write> ServeClient<S> {
    /// Wraps an already-connected bidirectional stream.
    pub fn over(stream: S) -> ServeClient<S> {
        ServeClient { stream }
    }

    /// One request/response exchange. Protocol-level `Error` responses are
    /// surfaced as [`ServeError::Remote`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, &request.to_value())?;
        let value = read_frame(&mut self.stream)?
            .ok_or_else(|| ServeError::Protocol("server hung up mid-exchange".to_string()))?;
        match Response::from_value(&value)? {
            Response::Error { message } => Err(ServeError::Remote(message)),
            response => Ok(response),
        }
    }

    /// Opens a session; returns its id.
    pub fn open(
        &mut self,
        scheme: &str,
        workload: &str,
        config: PcmConfig,
        options: SimulationOptions,
    ) -> Result<u64, ServeError> {
        match self.call(&Request::Open {
            scheme: scheme.to_string(),
            workload: workload.to_string(),
            config,
            options,
        })? {
            Response::Opened { session } => Ok(session),
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Submits one batch without retrying: the raw `Accepted`/`Busy`
    /// outcome, for callers probing backpressure directly.
    pub fn write(&mut self, session: u64, records: &[WriteRecord]) -> Result<Response, ServeError> {
        self.call(&Request::Write { session, records: records.to_vec() })
    }

    /// Delivers *all* records, resubmitting whatever a `Busy` response left
    /// over (after a `Flush` to let the server drain). Chunks the batch so
    /// no frame exceeds the protocol cap.
    pub fn write_all(
        &mut self,
        session: u64,
        records: &[WriteRecord],
    ) -> Result<WriteReport, ServeError> {
        const CHUNK: usize = 4096;
        let mut report = WriteReport { written: 0, busy_responses: 0, max_queued: 0 };
        for chunk in records.chunks(CHUNK) {
            let mut rest = chunk;
            while !rest.is_empty() {
                match self.write(session, rest)? {
                    Response::Accepted { accepted, queued } => {
                        report.written += accepted;
                        report.max_queued = report.max_queued.max(queued);
                        rest = &rest[accepted as usize..];
                    }
                    Response::Busy { accepted, queued } => {
                        report.written += accepted;
                        report.busy_responses += 1;
                        report.max_queued = report.max_queued.max(queued);
                        rest = &rest[accepted as usize..];
                        // Nothing was dropped; give the server room.
                        self.flush(session)?;
                    }
                    other => return Err(unexpected("Accepted|Busy", &other)),
                }
            }
        }
        Ok(report)
    }

    /// Blocks until the session's backlog is fully simulated.
    pub fn flush(&mut self, session: u64) -> Result<u64, ServeError> {
        match self.call(&Request::Flush { session })? {
            Response::Flushed { writes } => Ok(writes),
            other => Err(unexpected("Flushed", &other)),
        }
    }

    /// Snapshots the session's statistics (drains first server-side).
    pub fn stats(&mut self, session: u64) -> Result<(SchemeStats, bool), ServeError> {
        match self.call(&Request::Stats { session })? {
            Response::Stats { stats, degraded } => Ok((stats, degraded)),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Closes the session, returning its final statistics and the store
    /// outcome (`None` when the server runs store-less).
    pub fn close(&mut self, session: u64) -> Result<(SchemeStats, Option<bool>), ServeError> {
        match self.call(&Request::Close { session })? {
            Response::Closed { stats, store_hit } => Ok((stats, store_hit)),
            other => Err(unexpected("Closed", &other)),
        }
    }

    /// Scrapes the plain-text metrics.
    pub fn metrics_text(&mut self) -> Result<String, ServeError> {
        match self.call(&Request::Metrics)? {
            Response::MetricsText { text } => Ok(text),
            other => Err(unexpected("MetricsText", &other)),
        }
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(expected: &str, got: &Response) -> ServeError {
    ServeError::Protocol(format!("expected {expected} response, got {got:?}"))
}
