//! The service's error type.

use std::fmt;
use wlcrc_store::WireError;

/// Why a serve-layer operation failed.
///
/// Backpressure is deliberately **not** an error: an overloaded server
/// answers [`Response::Busy`](crate::protocol::Response::Busy) — a normal
/// protocol outcome carrying the number of records it did accept — so a
/// client can distinguish "slow down and resubmit" from "this request can
/// never succeed". `ServeError` covers the latter.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O error on the listener or a connection.
    Io(std::io::Error),
    /// A frame's payload could not be decoded as a wire value.
    Wire(WireError),
    /// A frame decoded but violated the protocol (unknown request name,
    /// missing field, bad version byte, oversized frame, ...).
    Protocol(String),
    /// A request referenced a session id the server does not hold.
    UnknownSession(u64),
    /// A session could not be opened (unknown scheme label, invalid
    /// configuration).
    Open(String),
    /// The peer answered a request with a protocol-level `Error` response;
    /// the payload is the server's message.
    Remote(String),
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(err) => write!(f, "serve i/o error: {err}"),
            ServeError::Wire(err) => write!(f, "serve frame payload: {err}"),
            ServeError::Protocol(msg) => write!(f, "serve protocol violation: {msg}"),
            ServeError::UnknownSession(id) => write!(f, "unknown session id {id}"),
            ServeError::Open(msg) => write!(f, "session open rejected: {msg}"),
            ServeError::Remote(msg) => write!(f, "server reported: {msg}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(err) => Some(err),
            ServeError::Wire(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(err: std::io::Error) -> ServeError {
        ServeError::Io(err)
    }
}

impl From<WireError> for ServeError {
    fn from(err: WireError) -> ServeError {
        ServeError::Wire(err)
    }
}

impl From<serde::de::Error> for ServeError {
    fn from(err: serde::de::Error) -> ServeError {
        ServeError::Protocol(err.message().to_string())
    }
}
