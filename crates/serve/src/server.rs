//! The blocking listener, worker pool, session table and request dispatch.
//!
//! ## Architecture
//!
//! Every connection gets a handler thread that reads frames, dispatches
//! [`Request`]s and writes [`Response`]s. A `Write` request only *enqueues*
//! records into the session's per-bank lanes (bounded [`VecDeque`]s mirroring
//! the simulator's bank partitioning) and wakes the worker pool; workers
//! drain dirty sessions in the background, lane by lane in ascending bank
//! order with per-lane FIFO preserved — exactly the order contract under
//! which [`SimulatorSession`] is byte-identical to a batch run. `Flush`,
//! `Stats` and `Close` drain inline before answering, so their snapshots
//! always cover every accepted record.
//!
//! ## Backpressure and degradation
//!
//! Queues never grow without bound. A `Write` that would overflow a bank
//! lane (or the session's total budget) is **partially accepted**: the
//! server answers [`Response::Busy`] carrying how many records it took, and
//! the client owns the rest — nothing is ever dropped silently. Before that
//! hard edge there is a soft one: when a session's backlog crosses
//! `degraded_threshold`, the session enters *degraded mode*, shedding
//! integrity verification and disturbance sampling (the two costs that do
//! not affect energy/endurance accounting) until its backlog fully drains.
//! The escalation is therefore: full fidelity → degraded (faster drain,
//! observable in `Stats` and metrics) → `Busy` (fail closed).

use crate::error::ServeError;
use crate::metrics::{render, ServeCounters, SessionSample};
use crate::protocol::{read_frame, write_frame, Request, Response};
use serde::{Serialize, Value};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wlcrc::schemes::SchemeId;
use wlcrc_memsim::cache::{codec_fingerprint, effective_salt};
use wlcrc_memsim::{SimulationOptions, Simulator, SimulatorSession};
use wlcrc_pcm::config::PcmConfig;
use wlcrc_store::{ResultStore, StableHasher};
use wlcrc_trace::WriteRecord;

/// Fault site that stalls request handling server-side (`wlcrc_faults`),
/// long enough to overrun any configured [`ServerConfig::request_deadline`]
/// — the chaos tests' way of exercising the deadline-miss → degraded path
/// deterministically.
pub const FAULT_REQUEST_SLOW: &str = "serve.request.slow";

/// Tuning knobs of a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bound on each per-bank lane queue, in records. A `Write` hitting a
    /// full lane is answered `Busy`.
    pub lane_capacity: usize,
    /// Bound on one session's total backlog across all lanes, in records.
    pub session_queue_cap: usize,
    /// Backlog (records) above which a session enters degraded mode; it
    /// exits when the backlog drains to zero. Set `>= session_queue_cap` to
    /// disable degradation entirely.
    pub degraded_threshold: usize,
    /// Background drain worker threads. `0` is allowed: queues then drain
    /// only inline on `Flush`/`Stats`/`Close`, which makes backpressure
    /// fully deterministic (useful for tests).
    pub workers: usize,
    /// Records a worker drains per session visit before re-queueing it, so
    /// one deep session cannot monopolise a session lock.
    pub drain_batch: usize,
    /// Bound on concurrently served connections. A connect past the cap is
    /// answered with a single `Busy { accepted: 0 }` frame and closed —
    /// fail-closed backpressure instead of an unbounded handler-thread herd.
    pub max_connections: usize,
    /// Soft per-request time budget. A request whose handling overruns it
    /// still completes and answers normally, but the miss is counted and the
    /// session it touched is pushed into degraded mode (shedding integrity
    /// verification and disturbance sampling) so the server catches back up.
    /// `None` disables deadline accounting.
    pub request_deadline: Option<Duration>,
    /// Optional persistent result store consulted/filled at session close.
    pub store: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            lane_capacity: 512,
            session_queue_cap: 4096,
            degraded_threshold: 3072,
            workers: 2,
            drain_batch: 1024,
            max_connections: 256,
            request_deadline: None,
            store: None,
        }
    }
}

/// One session's mutable state, guarded by its slot's mutex.
struct SessionInner {
    sim: SimulatorSession,
    /// Per-bank FIFO queues, indexed by flat bank index.
    queues: Vec<VecDeque<WriteRecord>>,
    /// Total queued records across all lanes.
    backlog: usize,
    /// Running digest of every accepted record, in accept order — the
    /// stream identity in the session's store key.
    digest: StableHasher,
    scheme: String,
    workload: String,
    config: PcmConfig,
    options: SimulationOptions,
}

struct SessionSlot {
    id: u64,
    inner: Mutex<SessionInner>,
}

struct Shared {
    config: ServerConfig,
    counters: ServeCounters,
    sessions: Mutex<HashMap<u64, Arc<SessionSlot>>>,
    next_session: AtomicU64,
    /// Session ids with a non-empty backlog, in wake order.
    dirty: Mutex<VecDeque<u64>>,
    dirty_wake: Condvar,
    shutdown: AtomicBool,
    /// Live connection handler count, governing the accept-loop cap.
    connections: AtomicUsize,
    store: Option<ResultStore>,
}

/// Locks `mutex`, recovering the data if a previous holder panicked. Every
/// structure guarded here stays structurally valid across a panic — the
/// worst case is a session whose `backlog` over-counts records a crashed
/// drain already popped, which only delays its `Busy` edge — so one
/// panicking handler thread must not poison-cascade the whole server.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A configured-but-not-yet-listening server.
pub struct Server {
    shared: Arc<Shared>,
}

/// A live server: listener thread + worker pool. Dropping the handle does
/// not stop the server; call [`RunningServer::shutdown`] (or send a
/// `Shutdown` request) and then [`RunningServer::join`].
pub struct RunningServer {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Creates a server with `config`. Opens the result store eagerly (a
    /// store directory that cannot be created degrades to read-only, exactly
    /// like the batch engine).
    pub fn new(config: ServerConfig) -> Server {
        let store = config.store.as_ref().map(|path| ResultStore::open_or_read_only(path, false));
        Server {
            shared: Arc::new(Shared {
                counters: ServeCounters::default(),
                sessions: Mutex::new(HashMap::new()),
                next_session: AtomicU64::new(1),
                dirty: Mutex::new(VecDeque::new()),
                dirty_wake: Condvar::new(),
                shutdown: AtomicBool::new(false),
                connections: AtomicUsize::new(0),
                store,
                config,
            }),
        }
    }

    /// Binds a TCP listener on `addr` (use port 0 for an ephemeral port),
    /// spawns the worker pool and the accept loop, and returns the running
    /// handle.
    pub fn serve_tcp(self, addr: impl ToSocketAddrs) -> Result<RunningServer, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let tcp_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let mut threads = spawn_workers(&self.shared);
        let shared = Arc::clone(&self.shared);
        threads.push(std::thread::spawn(move || accept_loop(shared, listener)));
        Ok(RunningServer { shared: self.shared, tcp_addr: Some(tcp_addr), threads })
    }

    /// Binds a Unix-domain socket at `path` (removing a stale socket file),
    /// spawns the worker pool and the accept loop.
    #[cfg(unix)]
    pub fn serve_unix(self, path: impl Into<PathBuf>) -> Result<RunningServer, ServeError> {
        let path = path.into();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let mut threads = spawn_workers(&self.shared);
        let shared = Arc::clone(&self.shared);
        threads.push(std::thread::spawn(move || accept_loop(shared, listener)));
        Ok(RunningServer { shared: self.shared, tcp_addr: None, threads })
    }
}

impl RunningServer {
    /// The bound TCP address (`None` for a Unix-socket server).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Asks the accept loop and workers to exit; idempotent, also triggered
    /// by a protocol `Shutdown` request.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.dirty_wake.notify_all();
    }

    /// Waits for the accept loop and worker pool to exit. Open connections
    /// are not force-closed; handlers exit at their next request boundary.
    pub fn join(self) {
        for thread in self.threads {
            let _ = thread.join();
        }
    }
}

fn spawn_workers(shared: &Arc<Shared>) -> Vec<JoinHandle<()>> {
    (0..shared.config.workers)
        .map(|_| {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect()
}

/// Pops dirty sessions and drains them in bounded batches until shutdown.
fn worker_loop(shared: &Shared) {
    loop {
        let id = {
            let mut dirty = lock_recover(&shared.dirty);
            loop {
                if let Some(id) = dirty.pop_front() {
                    break id;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                dirty = match shared.dirty_wake.wait_timeout(dirty, Duration::from_millis(50)) {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        let slot = lock_recover(&shared.sessions).get(&id).cloned();
        let Some(slot) = slot else { continue };
        let mut inner = lock_recover(&slot.inner);
        let drained = drain(&mut inner, shared, shared.config.drain_batch);
        let still_dirty = inner.backlog > 0;
        drop(inner);
        let _ = drained;
        if still_dirty {
            mark_dirty(shared, id);
        }
    }
}

/// Drains up to `limit` queued records (lane by lane, ascending bank order,
/// per-lane FIFO), returning how many were simulated. Exits degraded mode
/// when the backlog reaches zero.
fn drain(inner: &mut SessionInner, shared: &Shared, limit: usize) -> usize {
    let mut simulated = 0;
    let mut chunk: Vec<WriteRecord> = Vec::new();
    for bank in 0..inner.queues.len() {
        // Pop the lane's share of the budget as one contiguous chunk and
        // feed it through the session's batched write path, so the codec's
        // per-batch setup (transition tables, plane extraction) amortises
        // across the lane's queued records.
        let take = inner.queues[bank].len().min(limit - simulated);
        if take == 0 {
            continue;
        }
        chunk.clear();
        chunk.extend(inner.queues[bank].drain(..take));
        inner.sim.write_batch(&chunk);
        inner.backlog -= take;
        simulated += take;
        if simulated >= limit {
            break;
        }
    }
    shared.counters.writes_simulated_total.add(simulated as u64);
    if inner.backlog == 0 && inner.sim.degraded() {
        inner.sim.set_degraded(false);
    }
    simulated
}

fn mark_dirty(shared: &Shared, id: u64) {
    let mut dirty = lock_recover(&shared.dirty);
    if !dirty.contains(&id) {
        dirty.push_back(id);
    }
    drop(dirty);
    shared.dirty_wake.notify_one();
}

/// Abstraction over the two listener flavours for the shared accept loop.
trait Acceptor: Send + 'static {
    type Stream: Read + Write + Send + 'static;
    fn poll_accept(&self) -> std::io::Result<Option<Self::Stream>>;
}

impl Acceptor for TcpListener {
    type Stream = TcpStream;
    fn poll_accept(&self) -> std::io::Result<Option<TcpStream>> {
        match self.accept() {
            Ok((stream, _)) => {
                // The listener polls non-blocking; the per-connection handler
                // thread wants plain blocking reads. Nagle would add ~40 ms
                // to every request/response round trip on loopback, so turn
                // it off — frames are written in one syscall each.
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true)?;
                Ok(Some(stream))
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(err) => Err(err),
        }
    }
}

#[cfg(unix)]
impl Acceptor for UnixListener {
    type Stream = UnixStream;
    fn poll_accept(&self) -> std::io::Result<Option<UnixStream>> {
        match self.accept() {
            Ok((stream, _)) => Ok(Some(stream)),
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(err) => Err(err),
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: impl Acceptor) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.poll_accept() {
            Ok(Some(mut stream)) => {
                // Claim a connection slot before spawning; losing the race
                // (or being past the cap) answers one `Busy` frame and
                // closes, so an overloaded server fails closed instead of
                // accumulating handler threads without bound.
                let active = shared.connections.fetch_add(1, Ordering::SeqCst);
                if active >= shared.config.max_connections {
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                    shared.counters.connections_rejected_total.inc();
                    let refusal = Response::Busy { accepted: 0, queued: active as u64 };
                    let _ = write_frame(&mut stream, &refusal.to_value());
                    continue;
                }
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    handle_connection(&shared, stream);
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => break,
        }
    }
}

/// Reads frames until EOF/shutdown, answering each request. I/O or protocol
/// errors tear down only this connection; sessions survive (a client can
/// reconnect and keep using its ids).
fn handle_connection(shared: &Shared, mut stream: impl Read + Write) {
    loop {
        let value = match read_frame(&mut stream) {
            Ok(Some(value)) => value,
            Ok(None) | Err(_) => return,
        };
        shared.counters.requests_total.inc();
        let response = match Request::from_value(&value) {
            Ok(request) => dispatch(shared, request),
            Err(err) => Response::Error { message: err.to_string() },
        };
        if write_frame(&mut stream, &response.to_value()).is_err() {
            return;
        }
        if matches!(response, Response::ShuttingDown) {
            return;
        }
    }
}

fn dispatch(shared: &Shared, request: Request) -> Response {
    let session = request_session(&request);
    let started = Instant::now();
    if wlcrc_faults::should_fire(FAULT_REQUEST_SLOW) {
        // Oversleep any configured deadline so an injected stall reliably
        // lands on the miss path whatever the budget.
        let deadline = shared.config.request_deadline.unwrap_or(Duration::from_millis(15));
        std::thread::sleep(deadline + Duration::from_millis(5));
    }
    let response = match handle(shared, request) {
        Ok(response) => response,
        Err(err) => Response::Error { message: err.to_string() },
    };
    let elapsed = started.elapsed();
    shared.counters.request_seconds.observe(elapsed);
    if let Some(deadline) = shared.config.request_deadline {
        if elapsed > deadline {
            shared.counters.deadline_misses_total.inc();
            if let Some(id) = session {
                degrade_session(shared, id);
            }
        }
    }
    response
}

/// The session a request operates on, if any — the one a deadline miss on
/// that request pushes into degraded mode.
fn request_session(request: &Request) -> Option<u64> {
    match request {
        Request::Write { session, .. }
        | Request::Flush { session }
        | Request::Stats { session }
        | Request::Close { session } => Some(*session),
        Request::Open { .. } | Request::Metrics | Request::Shutdown => None,
    }
}

/// Marks `id` degraded (idempotently) because serving it overran the
/// request deadline: shedding verification and disturbance sampling lets an
/// overloaded server drain faster, at the accuracy cost documented on
/// [`SimulatorSession::set_degraded`].
fn degrade_session(shared: &Shared, id: u64) {
    let Some(slot) = lock_recover(&shared.sessions).get(&id).cloned() else { return };
    let mut inner = lock_recover(&slot.inner);
    if !inner.sim.degraded() {
        inner.sim.set_degraded(true);
        shared.counters.degraded_entered_total.inc();
    }
}

fn handle(shared: &Shared, request: Request) -> Result<Response, ServeError> {
    match request {
        Request::Open { scheme, workload, config, options } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Err(ServeError::ShuttingDown);
            }
            open_session(shared, scheme, workload, config, options)
        }
        Request::Write { session, records } => write_records(shared, session, &records),
        Request::Flush { session } => {
            let slot = lookup(shared, session)?;
            let mut inner = lock_recover(&slot.inner);
            drain(&mut inner, shared, usize::MAX);
            Ok(Response::Flushed { writes: inner.sim.writes() })
        }
        Request::Stats { session } => {
            let slot = lookup(shared, session)?;
            let mut inner = lock_recover(&slot.inner);
            drain(&mut inner, shared, usize::MAX);
            Ok(Response::Stats { stats: inner.sim.stats(), degraded: inner.sim.degraded() })
        }
        Request::Close { session } => close_session(shared, session),
        Request::Metrics => Ok(Response::MetricsText { text: metrics_text(shared) }),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.dirty_wake.notify_all();
            Ok(Response::ShuttingDown)
        }
    }
}

fn lookup(shared: &Shared, id: u64) -> Result<Arc<SessionSlot>, ServeError> {
    lock_recover(&shared.sessions).get(&id).cloned().ok_or(ServeError::UnknownSession(id))
}

fn open_session(
    shared: &Shared,
    scheme: String,
    workload: String,
    config: PcmConfig,
    options: SimulationOptions,
) -> Result<Response, ServeError> {
    let codec = SchemeId::ALL
        .iter()
        .find(|id| id.label() == scheme)
        .map(|id| id.build())
        .ok_or_else(|| ServeError::Open(format!("unknown scheme label {scheme:?}")))?;
    let sim = Simulator::with_config(config.clone())
        .with_options(options.clone())
        .session(codec, workload.clone());
    let mut queues = Vec::new();
    queues.resize_with(sim.total_banks(), VecDeque::new);
    let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let slot = Arc::new(SessionSlot {
        id,
        inner: Mutex::new(SessionInner {
            sim,
            queues,
            backlog: 0,
            digest: StableHasher::new(),
            scheme,
            workload,
            config,
            options,
        }),
    });
    lock_recover(&shared.sessions).insert(id, slot);
    Ok(Response::Opened { session: id })
}

fn write_records(
    shared: &Shared,
    session: u64,
    records: &[WriteRecord],
) -> Result<Response, ServeError> {
    let slot = lookup(shared, session)?;
    let mut inner = lock_recover(&slot.inner);
    let config = &shared.config;
    let mut accepted = 0u64;
    let mut busy = false;
    for record in records {
        if inner.backlog >= config.session_queue_cap {
            busy = true;
            break;
        }
        let bank = inner.sim.bank_index(record.address);
        if inner.queues[bank].len() >= config.lane_capacity {
            busy = true;
            break;
        }
        inner.digest.update_value(&record.to_value());
        inner.queues[bank].push_back(*record);
        inner.backlog += 1;
        accepted += 1;
    }
    if inner.backlog > config.degraded_threshold && !inner.sim.degraded() {
        inner.sim.set_degraded(true);
        shared.counters.degraded_entered_total.inc();
    }
    let queued = inner.backlog as u64;
    let backlog = inner.backlog;
    drop(inner);
    shared.counters.writes_accepted_total.add(accepted);
    if backlog > 0 {
        mark_dirty(shared, slot.id);
    }
    if busy {
        shared.counters.busy_responses_total.inc();
        Ok(Response::Busy { accepted, queued })
    } else {
        Ok(Response::Accepted { accepted, queued })
    }
}

fn close_session(shared: &Shared, session: u64) -> Result<Response, ServeError> {
    let slot = {
        let mut sessions = lock_recover(&shared.sessions);
        sessions.remove(&session).ok_or(ServeError::UnknownSession(session))?
    };
    let mut inner = lock_recover(&slot.inner);
    drain(&mut inner, shared, usize::MAX);
    let stats = inner.sim.stats();
    let store_hit = shared.store.as_ref().map(|store| {
        let key = session_key(&inner);
        let hit = store.get(&key).is_some_and(|cached| cached == stats.to_value());
        if hit {
            shared.counters.store_hits_total.inc();
        } else {
            shared.counters.store_misses_total.inc();
            let _ = store.put(&key, &stats.to_value());
        }
        hit
    });
    Ok(Response::Closed { stats, store_hit })
}

/// The store key of a finished session: everything its statistics are a
/// function of. Mirrors the batch engine's cell key, with the accepted
/// stream's digest standing in for the workload identity.
fn session_key(inner: &SessionInner) -> Value {
    Value::record(
        "ServeSessionKey",
        vec![
            ("salt", effective_salt().to_value()),
            ("scheme", inner.scheme.to_value()),
            (
                "codec",
                codec_fingerprint(inner.sim.codec(), &inner.config.energy).to_hex().to_value(),
            ),
            ("workload", inner.workload.to_value()),
            ("config", inner.config.to_value()),
            ("options", inner.options.to_value()),
            ("stream_digest", inner.digest.finish().to_hex().to_value()),
            ("writes", (inner.sim.writes() + inner.backlog as u64).to_value()),
        ],
    )
}

fn metrics_text(shared: &Shared) -> String {
    let slots: Vec<Arc<SessionSlot>> = lock_recover(&shared.sessions).values().cloned().collect();
    let mut samples: Vec<SessionSample> = slots
        .iter()
        .map(|slot| {
            let inner = lock_recover(&slot.inner);
            let stats = inner.sim.stats();
            SessionSample {
                session: slot.id,
                scheme: inner.scheme.clone(),
                queue_depth: inner.backlog as u64,
                energy_pj_per_write: stats.mean_energy_pj(),
                write_imbalance: stats.write_imbalance(),
                degraded: inner.sim.degraded(),
            }
        })
        .collect();
    samples.sort_by_key(|sample| sample.session);
    let connections = shared.connections.load(Ordering::SeqCst);
    render(&shared.counters, &samples, shared.config.lane_capacity, connections)
}
