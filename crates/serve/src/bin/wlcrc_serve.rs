//! `wlcrc-serve` — the long-lived memory-service daemon.
//!
//! ```text
//! wlcrc-serve [--listen ADDR] [--unix PATH] [--store DIR]
//!             [--workers N] [--lane-capacity N] [--session-queue-cap N]
//!             [--degraded-threshold N] [--max-connections N]
//!             [--request-deadline-ms N]
//! ```
//!
//! Binds a TCP listener (default `127.0.0.1:7711`; use port 0 for an
//! ephemeral port, printed on stdout) or a Unix-domain socket, then serves
//! until a client sends `Shutdown`. With `--store DIR`, closed sessions are
//! looked up in / written back to the persistent result store, surfacing
//! the cross-run hit rate in the metrics scrape.

use wlcrc_serve::{ServeError, Server, ServerConfig};

fn main() -> Result<(), ServeError> {
    let mut listen = "127.0.0.1:7711".to_string();
    let mut unix: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| ServeError::Protocol(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--listen" => listen = value("--listen")?,
            "--unix" => unix = Some(value("--unix")?),
            "--store" => config.store = Some(value("--store")?.into()),
            "--workers" => config.workers = parse(&value("--workers")?, "--workers")?,
            "--lane-capacity" => {
                config.lane_capacity = parse(&value("--lane-capacity")?, "--lane-capacity")?
            }
            "--session-queue-cap" => {
                config.session_queue_cap =
                    parse(&value("--session-queue-cap")?, "--session-queue-cap")?
            }
            "--degraded-threshold" => {
                config.degraded_threshold =
                    parse(&value("--degraded-threshold")?, "--degraded-threshold")?
            }
            "--max-connections" => {
                config.max_connections = parse(&value("--max-connections")?, "--max-connections")?
            }
            "--request-deadline-ms" => {
                let millis = parse(&value("--request-deadline-ms")?, "--request-deadline-ms")?;
                config.request_deadline = Some(std::time::Duration::from_millis(millis as u64));
            }
            "--help" | "-h" => {
                println!(
                    "usage: wlcrc-serve [--listen ADDR] [--unix PATH] [--store DIR] \
                     [--workers N] [--lane-capacity N] [--session-queue-cap N] \
                     [--degraded-threshold N] [--max-connections N] [--request-deadline-ms N]"
                );
                return Ok(());
            }
            other => return Err(ServeError::Protocol(format!("unknown flag {other:?}"))),
        }
    }
    let server = Server::new(config);
    let running = match unix {
        #[cfg(unix)]
        Some(path) => {
            let running = server.serve_unix(&path)?;
            println!("wlcrc-serve listening on unix socket {path}");
            running
        }
        #[cfg(not(unix))]
        Some(_) => {
            return Err(ServeError::Protocol("--unix needs a unix platform".to_string()));
        }
        None => {
            let running = server.serve_tcp(&listen)?;
            match running.local_addr() {
                Some(addr) => println!("wlcrc-serve listening on {addr}"),
                None => println!("wlcrc-serve listening on {listen}"),
            }
            running
        }
    };
    running.join();
    Ok(())
}

fn parse(text: &str, flag: &str) -> Result<usize, ServeError> {
    text.parse().map_err(|_| ServeError::Protocol(format!("{flag}: not a count: {text:?}")))
}
