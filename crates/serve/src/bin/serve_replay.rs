//! `serve-replay` — replays an experiment grid through a live `wlcrc-serve`
//! instance and diffs the aggregate statistics against the batch engine.
//!
//! ```text
//! serve-replay --addr HOST:PORT [--workloads gcc,lbm,mcf] [--lines N]
//!              [--seed N] [--scrape-out FILE] [--direct] [--shutdown]
//! ```
//!
//! For every (scheme, workload) cell of a fig08-shaped grid (the full
//! standard scheme registry over the chosen workloads), the tool opens a
//! session seeded exactly like the batch engine seeds that cell
//! ([`wlcrc_memsim::cell_seed`]), streams the cell's identical record stream
//! ([`wlcrc_memsim::workload_stream_seed`]) through the client, and closes.
//! With `--direct` it then runs the same grid in-process via
//! [`ExperimentPlan`] and requires **byte-identical** per-cell statistics —
//! the CI smoke gate that the service path cannot drift from the paper
//! pipeline. `--scrape-out` saves the final metrics scrape for artifact
//! upload; `--shutdown` stops the server afterwards.

use wlcrc::schemes::SchemeId;
use wlcrc_memsim::{
    cell_seed, scaled_workload_lines, workload_stream_seed, ExperimentPlan, SchemeStats,
    SimulationOptions,
};
use wlcrc_pcm::config::PcmConfig;
use wlcrc_serve::{ServeClient, ServeError};
use wlcrc_trace::{Benchmark, TraceStream, WorkloadProfile};

fn main() -> Result<(), ServeError> {
    let mut addr = "127.0.0.1:7711".to_string();
    let mut workload_names = "gcc,lbm,mcf,omne".to_string();
    let mut lines: usize = 150;
    let mut seed: u64 = 99;
    let mut scrape_out: Option<String> = None;
    let mut direct = false;
    let mut want_shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| ServeError::Protocol(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--workloads" => workload_names = value("--workloads")?,
            "--lines" => {
                lines = value("--lines")?
                    .parse()
                    .map_err(|_| ServeError::Protocol("--lines: not a count".to_string()))?
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| ServeError::Protocol("--seed: not a number".to_string()))?
            }
            "--scrape-out" => scrape_out = Some(value("--scrape-out")?),
            "--direct" => direct = true,
            "--shutdown" => want_shutdown = true,
            other => return Err(ServeError::Protocol(format!("unknown flag {other:?}"))),
        }
    }

    let profiles: Vec<WorkloadProfile> = workload_names
        .split(',')
        .map(|name| {
            Benchmark::ALL
                .iter()
                .find(|b| b.short_name() == name.trim() || b.profile().name == name.trim())
                .map(|b| b.profile())
                .ok_or_else(|| ServeError::Protocol(format!("unknown workload {name:?}")))
        })
        .collect::<Result<_, _>>()?;
    let max_intensity = profiles.iter().map(|p| p.write_intensity).fold(1.0f64, f64::max);

    let mut client = ServeClient::connect(&addr)?;
    // Each served cell keeps its registry label: session statistics name the
    // concrete codec (e.g. "FNW-128") while the direct plan below registers
    // schemes under their figure labels (e.g. "FNW").
    let mut served: Vec<(&'static str, SchemeStats)> = Vec::new();
    let mut total_busy = 0u64;
    for profile in &profiles {
        for id in SchemeId::ALL {
            let options = SimulationOptions {
                seed: cell_seed(seed, 0, id.label(), &profile.name),
                ..SimulationOptions::default()
            };
            let session = client.open(id.label(), &profile.name, PcmConfig::table_ii(), options)?;
            let stream_seed = workload_stream_seed(seed, &profile.name);
            let count = scaled_workload_lines(lines, profile, max_intensity);
            let records: Vec<_> = TraceStream::new(profile.clone(), stream_seed, count).collect();
            let report = client.write_all(session, &records)?;
            total_busy += report.busy_responses;
            let (stats, _store_hit) = client.close(session)?;
            served.push((id.label(), stats));
        }
    }
    let grid_writes: u64 = served.iter().map(|(_, s)| s.writes).sum();
    println!(
        "serve-replay: {} cells, {grid_writes} writes via {addr} ({total_busy} Busy responses)",
        served.len()
    );

    let scrape = client.metrics_text()?;
    if let Some(path) = scrape_out {
        std::fs::write(&path, &scrape)?;
        println!("serve-replay: metrics scrape saved to {path}");
    }

    if direct {
        let mut plan = ExperimentPlan::new()
            .store_enabled(false)
            .seed(seed)
            .lines_per_workload(lines)
            .workloads(profiles.iter().cloned());
        for (id, factory) in wlcrc::schemes::standard_factories() {
            plan = plan.scheme_factory(id.label(), factory);
        }
        let batch = plan.run();
        let mut mismatches = 0;
        for (label, stats) in &served {
            match batch.get(label, &stats.workload) {
                Some(direct_stats) => {
                    // Everything but the scheme name must be byte-identical.
                    let mut expected = direct_stats.clone();
                    expected.scheme = stats.scheme.clone();
                    if &expected != stats {
                        eprintln!("serve-replay: MISMATCH for ({label}, {})", stats.workload);
                        mismatches += 1;
                    }
                }
                None => {
                    eprintln!(
                        "serve-replay: cell ({label}, {}) missing from direct run",
                        stats.workload
                    );
                    mismatches += 1;
                }
            }
        }
        if mismatches > 0 {
            return Err(ServeError::Protocol(format!(
                "{mismatches} cells diverged from the direct ExperimentPlan run"
            )));
        }
        println!("serve-replay: all {} cells byte-identical to the direct run", served.len());
    }

    if want_shutdown {
        client.shutdown()?;
        println!("serve-replay: server shutdown requested");
    }
    Ok(())
}
