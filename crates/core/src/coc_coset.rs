//! The COC+4cosets comparison scheme.
//!
//! Instead of Word-Level Compression, this scheme uses a coverage-oriented
//! compressor (COC) to make room for the auxiliary bits. COC covers most
//! lines, but its variable-length repacking moves bits away from their
//! original positions, so consecutive writes of similar data no longer align
//! and differential write loses much of its benefit — which is exactly the
//! behaviour the paper observes for this scheme.
//!
//! Layout of a 512-bit line (plus one auxiliary flag cell):
//!
//! * flag `S1` — the COC payload fits in 448 bits: the packed payload occupies
//!   cells 0..223 and is 4cosets-encoded at 16-bit granularity, with the
//!   2-bit candidate selectors of the 28 blocks stored in cells 224..255.
//! * flag `S3` — the payload fits in 480 bits only: cells 0..239 are encoded
//!   at 32-bit granularity, selectors for the 15 blocks live in cells 240..255.
//! * flag `S2` — the line is stored unencoded.

use wlcrc_compress::Coc;
use wlcrc_coset::candidate::{CandidateSet, CosetCandidate};
use wlcrc_ecc::BitBuf;
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::energy::EnergyModel;
use wlcrc_pcm::kernel::{self, TransitionTable};
use wlcrc_pcm::line::MemoryLine;
use wlcrc_pcm::mapping::SymbolMapping;
use wlcrc_pcm::physical::{CellClass, PhysicalLine};
use wlcrc_pcm::state::CellState;
use wlcrc_pcm::LINE_CELLS;

/// The two encoded formats (besides the raw fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// 448-bit payload region, 16-bit blocks.
    Fine16,
    /// 480-bit payload region, 32-bit blocks.
    Coarse32,
    /// Uncompressed.
    Raw,
}

impl Format {
    fn payload_cells(self) -> usize {
        match self {
            Format::Fine16 => 224,
            Format::Coarse32 => 240,
            Format::Raw => LINE_CELLS,
        }
    }

    fn block_cells(self) -> usize {
        match self {
            Format::Fine16 => 8,
            Format::Coarse32 => 16,
            Format::Raw => LINE_CELLS,
        }
    }

    fn blocks(self) -> usize {
        self.payload_cells() / self.block_cells()
    }

    fn flag_state(self) -> CellState {
        match self {
            Format::Fine16 => CellState::S1,
            Format::Coarse32 => CellState::S3,
            Format::Raw => CellState::S2,
        }
    }
}

/// The COC+4cosets codec.
#[derive(Debug, Clone)]
pub struct CocCosetCodec {
    candidates: Vec<CosetCandidate>,
    mapping: SymbolMapping,
}

impl CocCosetCodec {
    /// Creates the codec with the Table I 4cosets candidates.
    pub fn new() -> CocCosetCodec {
        CocCosetCodec {
            candidates: CandidateSet::four_cosets().candidates().to_vec(),
            mapping: SymbolMapping::default_mapping(),
        }
    }

    fn choose_format(&self, line: &MemoryLine) -> Format {
        let packed = Coc::repack(line);
        if packed.len() <= 448 {
            Format::Fine16
        } else if packed.len() <= 480 {
            Format::Coarse32
        } else {
            Format::Raw
        }
    }

    fn flag_cell(&self) -> usize {
        LINE_CELLS
    }

    /// The packed COC payload as a zero-padded memory line: bit `i` of the
    /// repacked stream becomes line bit `i`, so cell `c` of the payload
    /// region holds the symbol the old `Vec<Symbol>` materialisation built.
    fn payload_line(&self, line: &MemoryLine) -> MemoryLine {
        let packed = Coc::repack(line);
        let mut payload = MemoryLine::ZERO;
        for (i, &w) in packed.words().iter().enumerate() {
            payload.set_word(i, w);
        }
        payload
    }

    /// Shared encode body; `use_kernel` switches the per-block candidate
    /// costs between the bit-parallel kernel (with branch-and-bound) and the
    /// scalar per-cell loop.
    fn encode_impl(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        energy: &EnergyModel,
        use_kernel: bool,
    ) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let format = self.choose_format(data);
        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        out.set_class(self.flag_cell(), CellClass::Aux);
        out.set_state(self.flag_cell(), format.flag_state());

        if format == Format::Raw {
            for cell in 0..LINE_CELLS {
                out.set_state(cell, self.mapping.state_of(data.symbol(cell)));
            }
            return out;
        }

        let payload = self.payload_line(data);
        let blocks = format.blocks();
        let block_cells = format.block_cells();
        let kernel_ctx = use_kernel.then(|| {
            let mut tables = [TransitionTable::placeholder(); 4];
            for (table, candidate) in tables.iter_mut().zip(&self.candidates) {
                *table = TransitionTable::new(&candidate.mapping(), energy);
            }
            (payload.symbol_planes(), old.state_planes(), tables)
        });
        for block in 0..blocks {
            let range = block * block_cells..(block + 1) * block_cells;
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for (idx, candidate) in self.candidates.iter().enumerate() {
                let cost = match &kernel_ctx {
                    Some((planes, stored, tables)) => {
                        // Blocks are at most 16 cells here, so a plain
                        // evaluation beats branch-and-bound's per-word check.
                        kernel::block_cost(planes, stored, range.clone(), &tables[idx])
                    }
                    None => {
                        let mut cost = 0.0;
                        for cell in range.clone() {
                            let target = candidate.state_of(payload.symbol(cell));
                            cost += energy.transition_energy_pj(old.state(cell), target);
                        }
                        cost
                    }
                };
                if cost < best_cost {
                    best_cost = cost;
                    best = idx;
                }
            }
            for cell in range {
                out.set_state(cell, self.candidates[best].state_of(payload.symbol(cell)));
            }
            // Selector cells occupy the freed space after the payload region.
            let cell = format.payload_cells() + block;
            out.set_state(cell, CellState::from_index(best));
            out.set_class(cell, CellClass::Aux);
        }
        // Any remaining freed cells stay in the RESET state and count as aux.
        for cell in (format.payload_cells() + blocks)..LINE_CELLS {
            out.set_class(cell, CellClass::Aux);
        }
        out
    }

    /// The scalar reference encoder (per-cell candidate costs); kept callable
    /// for the equivalence tests and the perf snapshot.
    #[doc(hidden)]
    pub fn encode_scalar(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        energy: &EnergyModel,
    ) -> PhysicalLine {
        self.encode_impl(data, old, energy, false)
    }
}

impl Default for CocCosetCodec {
    fn default() -> CocCosetCodec {
        CocCosetCodec::new()
    }
}

impl LineCodec for CocCosetCodec {
    fn name(&self) -> &str {
        "COC+4cosets"
    }

    fn encoded_cells(&self) -> usize {
        LINE_CELLS + 1
    }

    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, energy: &EnergyModel) -> PhysicalLine {
        self.encode_impl(data, old, energy, true)
    }

    fn decode(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        let format = match stored.state(self.flag_cell()) {
            CellState::S1 => Format::Fine16,
            CellState::S3 => Format::Coarse32,
            _ => Format::Raw,
        };
        if format == Format::Raw {
            let mut line = MemoryLine::ZERO;
            for cell in 0..LINE_CELLS {
                line.set_symbol(cell, self.mapping.symbol_of(stored.state(cell)));
            }
            return line;
        }
        let blocks = format.blocks();
        let block_cells = format.block_cells();
        let payload_bits = format.payload_cells() * 2;
        let mut words = vec![0u64; payload_bits.div_ceil(64)];
        for block in 0..blocks {
            let selector_cell = format.payload_cells() + block;
            let selector = stored.state(selector_cell).index().min(self.candidates.len() - 1);
            let candidate = &self.candidates[selector];
            for cell in block * block_cells..(block + 1) * block_cells {
                let symbol = candidate.symbol_of(stored.state(cell));
                let bit = 2 * cell;
                words[bit / 64] |=
                    (u64::from(symbol.lsb()) | (u64::from(symbol.msb()) << 1)) << (bit % 64);
            }
        }
        unpack_coc(&BitBuf::from_words(words, payload_bits))
    }
}

/// Parses the byte-truncation packing produced by [`Coc::repack`] back into a
/// memory line. The format is self-describing: a 4-bit kept-byte count per
/// word followed by the kept bytes, with the dropped bytes rebuilt by sign
/// extension.
fn unpack_coc(bits: &BitBuf) -> MemoryLine {
    let mut line = MemoryLine::ZERO;
    let mut pos = 0usize;
    for word in 0..8 {
        let mut keep = 0usize;
        for b in 0..4 {
            if bits.get_opt(pos + b).unwrap_or(false) {
                keep |= 1 << b;
            }
        }
        pos += 4;
        let keep = keep.clamp(1, 8);
        let mut bytes = [0u8; 8];
        for byte in bytes.iter_mut().take(keep) {
            let mut v = 0u8;
            for b in 0..8 {
                if bits.get_opt(pos + b).unwrap_or(false) {
                    v |= 1 << b;
                }
            }
            pos += 8;
            *byte = v;
        }
        // Sign-extend the dropped high-order bytes.
        let fill = if bytes[keep - 1] & 0x80 != 0 { 0xFF } else { 0x00 };
        for byte in bytes.iter_mut().skip(keep) {
            *byte = fill;
        }
        line.set_word(word, u64::from_le_bytes(bytes));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wlcrc_pcm::write::differential_write;

    fn structured_line(rng: &mut StdRng) -> MemoryLine {
        let mut line = MemoryLine::ZERO;
        for i in 0..8 {
            let w: u64 = match rng.gen_range(0..4) {
                0 => 0,
                1 => u64::from(rng.gen::<u16>()),
                2 => (-(i64::from(rng.gen::<u16>()))) as u64,
                _ => u64::from(rng.gen::<u32>()),
            };
            line.set_word(i, w);
        }
        line
    }

    #[test]
    fn compressible_lines_round_trip() {
        let codec = CocCosetCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(4);
        let mut old = codec.initial_line();
        for _ in 0..100 {
            let data = structured_line(&mut rng);
            let enc = codec.encode(&data, &old, &energy);
            assert_eq!(codec.decode(&enc), data);
            old = enc;
        }
    }

    #[test]
    fn incompressible_lines_round_trip_raw() {
        let codec = CocCosetCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let mut words = [0u64; 8];
            for w in &mut words {
                *w = rng.gen::<u64>() | 0x8000_0000_0000_0000;
            }
            // Ensure at least some words are truly incompressible by the
            // byte-truncation packer.
            let data = MemoryLine::from_words(words);
            let enc = codec.encode(&data, &codec.initial_line(), &energy);
            assert_eq!(codec.decode(&enc), data);
        }
    }

    #[test]
    fn kernel_encode_matches_scalar_encode() {
        let codec = CocCosetCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(31);
        let mut old = codec.initial_line();
        for _ in 0..50 {
            let data = structured_line(&mut rng);
            let kernel = codec.encode(&data, &old, &energy);
            assert_eq!(kernel, codec.encode_scalar(&data, &old, &energy));
            old = kernel;
        }
    }

    #[test]
    fn structured_lines_use_the_fine_format() {
        let codec = CocCosetCodec::new();
        let energy = EnergyModel::paper_default();
        let mut line = MemoryLine::ZERO;
        for i in 0..8 {
            line.set_word(i, i as u64 + 1);
        }
        let enc = codec.encode(&line, &codec.initial_line(), &energy);
        assert_eq!(enc.state(256), CellState::S1, "small data should use 16-bit blocks");
    }

    #[test]
    fn repacking_hurts_differential_locality_vs_wlcrc() {
        // Two similar consecutive writes where one value grows enough to
        // change its packed length: COC shifts every later bit, WLCRC keeps
        // bit positions stable, so WLCRC should update fewer cells.
        let coc = CocCosetCodec::new();
        let wlcrc = crate::WlcCosetCodec::wlcrc16();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut coc_updates = 0usize;
        let mut wlcrc_updates = 0usize;
        for _ in 0..100 {
            let old_data = structured_line(&mut rng);
            let mut new_data = old_data;
            // The updated value grows by a few bytes, changing its packed
            // length and shifting the COC layout of all following words.
            let idx = rng.gen_range(0..4);
            new_data.set_word(idx, old_data.word(idx).wrapping_add(0x0012_3456));
            let old_c = coc.encode(&old_data, &coc.initial_line(), &energy);
            let new_c = coc.encode(&new_data, &old_c, &energy);
            let old_w = wlcrc.encode(&old_data, &wlcrc.initial_line(), &energy);
            let new_w = wlcrc.encode(&new_data, &old_w, &energy);
            coc_updates += differential_write(&old_c, &new_c, &energy).total_cells_updated();
            wlcrc_updates += differential_write(&old_w, &new_w, &energy).total_cells_updated();
        }
        assert!(
            wlcrc_updates < coc_updates,
            "WLCRC should preserve locality better than COC ({wlcrc_updates} vs {coc_updates})"
        );
    }

    #[test]
    fn unpack_inverts_repack() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let line = structured_line(&mut rng);
            let packed = Coc::repack(&line);
            assert_eq!(unpack_coc(&packed), line);
        }
    }
}
