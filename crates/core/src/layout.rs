//! Per-word bit layout of the WLC-integrated codecs.
//!
//! When Word-Level Compression reclaims the top `r` bits of every 64-bit
//! word, those bit positions hold the auxiliary encoding information and the
//! remaining `64 − r` bits hold (encoded) data. Because MLC cells store two
//! bits each, the cell at the reclaimed/data boundary may be *mixed* when `r`
//! is odd: its high bit is auxiliary, its low bit is a pass-through data bit
//! that is stored unencoded.
//!
//! [`WordLayout`] captures this geometry for a given granularity and reclaim
//! count and is shared by the restricted (WLCRC) and unrestricted
//! (WLC+4cosets / WLC+3cosets) codecs.

use wlcrc_pcm::WORD_CELLS;

/// The geometry of one 64-bit word under a WLC-integrated encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordLayout {
    /// Data-block granularity in bits (8, 16, 32 or 64).
    pub granularity_bits: usize,
    /// Number of reclaimed (auxiliary) bits at the top of the word.
    pub reclaimed_bits: usize,
}

impl WordLayout {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if the granularity is not one of 8/16/32/64 or the reclaim
    /// count does not leave at least one whole data cell.
    pub fn new(granularity_bits: usize, reclaimed_bits: usize) -> WordLayout {
        assert!(
            matches!(granularity_bits, 8 | 16 | 32 | 64),
            "WLC-integrated encodings support 8/16/32/64-bit granularities"
        );
        assert!((1..=32).contains(&reclaimed_bits), "reclaimed bits must be in 1..=32");
        WordLayout { granularity_bits, reclaimed_bits }
    }

    /// Number of most-significant bits that must be identical for WLC to
    /// compress the word (one more than the reclaimed bits, so the dropped
    /// bits can be rebuilt by sign extension).
    pub fn wlc_k(&self) -> usize {
        self.reclaimed_bits + 1
    }

    /// Number of data bits kept in the word (`64 − reclaimed`).
    pub fn data_bits(&self) -> usize {
        64 - self.reclaimed_bits
    }

    /// Number of word cells that hold only (coset-encoded) data bits.
    pub fn full_data_cells(&self) -> usize {
        self.data_bits() / 2
    }

    /// `true` when one data bit shares the boundary cell with an auxiliary
    /// bit and is therefore stored unencoded (pass-through).
    pub fn has_pass_through_bit(&self) -> bool {
        self.data_bits() % 2 == 1
    }

    /// The word-relative bit index of the pass-through bit, if any.
    pub fn pass_through_bit(&self) -> Option<usize> {
        if self.has_pass_through_bit() {
            Some(self.data_bits() - 1)
        } else {
            None
        }
    }

    /// Number of word cells that contain at least one auxiliary bit.
    pub fn aux_cells(&self) -> usize {
        WORD_CELLS - self.full_data_cells()
    }

    /// Number of independently encoded data blocks in the word.
    pub fn blocks(&self) -> usize {
        self.full_data_cells().div_ceil(self.granularity_bits / 2)
    }

    /// The word-relative cell range of data block `block`; the last block may
    /// be shorter than the nominal granularity.
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.blocks()`.
    pub fn block_cells(&self, block: usize) -> std::ops::Range<usize> {
        assert!(block < self.blocks(), "block index out of range");
        let cells_per_block = self.granularity_bits / 2;
        let start = block * cells_per_block;
        let end = (start + cells_per_block).min(self.full_data_cells());
        start..end
    }

    /// Layout used by the paper's restricted coset coding (WLCRC) at the
    /// given granularity: one group bit plus one bit per block.
    ///
    /// # Panics
    ///
    /// Panics if the granularity is not 8, 16, 32 or 64 bits.
    pub fn restricted(granularity_bits: usize) -> WordLayout {
        let reclaimed = match granularity_bits {
            8 => 8,  // 1 group bit + 7 block bits
            16 => 5, // 1 group bit + 4 block bits
            32 => 3, // 1 group bit + 2 block bits
            64 => 2, // 2-bit candidate selector (identical to 3cosets)
            other => panic!("unsupported WLCRC granularity: {other}"),
        };
        WordLayout::new(granularity_bits, reclaimed)
    }

    /// Layout used by the unrestricted WLC+cosets schemes (two selector bits
    /// per block).
    ///
    /// # Panics
    ///
    /// Panics if the granularity is not 8, 16, 32 or 64 bits.
    pub fn unrestricted(granularity_bits: usize) -> WordLayout {
        let reclaimed = match granularity_bits {
            8 => 16,
            16 => 8,
            32 => 4,
            64 => 2,
            other => panic!("unsupported WLC+cosets granularity: {other}"),
        };
        WordLayout::new(granularity_bits, reclaimed)
    }

    /// Number of auxiliary bits the encoding actually needs (group/selector
    /// bits); always at most [`WordLayout::reclaimed_bits`].
    pub fn aux_bits_needed(&self, restricted: bool) -> usize {
        if restricted {
            if self.granularity_bits == 64 {
                2
            } else {
                1 + self.blocks()
            }
        } else {
            2 * self.blocks()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wlcrc16_layout_matches_paper() {
        let layout = WordLayout::restricted(16);
        assert_eq!(layout.reclaimed_bits, 5);
        assert_eq!(layout.wlc_k(), 6);
        assert_eq!(layout.data_bits(), 59);
        assert_eq!(layout.full_data_cells(), 29);
        assert!(layout.has_pass_through_bit());
        assert_eq!(layout.pass_through_bit(), Some(58));
        assert_eq!(layout.blocks(), 4);
        assert_eq!(layout.aux_cells(), 3);
        assert_eq!(layout.aux_bits_needed(true), 5);
        // The most-significant block is the short one (bits 48..57).
        assert_eq!(layout.block_cells(3), 24..29);
        assert_eq!(layout.block_cells(0), 0..8);
    }

    #[test]
    fn wlcrc_other_granularities() {
        let g8 = WordLayout::restricted(8);
        assert_eq!(g8.reclaimed_bits, 8);
        assert_eq!(g8.blocks(), 7);
        assert_eq!(g8.aux_bits_needed(true), 8);
        assert!(!g8.has_pass_through_bit());

        let g32 = WordLayout::restricted(32);
        assert_eq!(g32.reclaimed_bits, 3);
        assert_eq!(g32.blocks(), 2);
        assert_eq!(g32.aux_bits_needed(true), 3);
        assert!(g32.has_pass_through_bit());

        let g64 = WordLayout::restricted(64);
        assert_eq!(g64.reclaimed_bits, 2);
        assert_eq!(g64.blocks(), 1);
        assert_eq!(g64.aux_bits_needed(true), 2);
    }

    #[test]
    fn unrestricted_layouts_match_paper_reclaim_counts() {
        // "to use WLC with 4cosets at data block granularities of 8, 16, 32
        //  or 64 bits, WLC has to reclaim 16, 8, 4 and 2 bits per word"
        assert_eq!(WordLayout::unrestricted(8).reclaimed_bits, 16);
        assert_eq!(WordLayout::unrestricted(16).reclaimed_bits, 8);
        assert_eq!(WordLayout::unrestricted(32).reclaimed_bits, 4);
        assert_eq!(WordLayout::unrestricted(64).reclaimed_bits, 2);
    }

    #[test]
    fn aux_bits_fit_in_reclaimed_space() {
        for g in [8usize, 16, 32, 64] {
            let r = WordLayout::restricted(g);
            assert!(r.aux_bits_needed(true) <= r.reclaimed_bits, "restricted g={g}");
            let u = WordLayout::unrestricted(g);
            assert!(u.aux_bits_needed(false) <= u.reclaimed_bits, "unrestricted g={g}");
        }
    }

    #[test]
    fn block_cells_cover_all_full_data_cells() {
        for g in [8usize, 16, 32, 64] {
            for layout in [WordLayout::restricted(g), WordLayout::unrestricted(g)] {
                let mut covered = 0;
                for b in 0..layout.blocks() {
                    covered += layout.block_cells(b).len();
                }
                assert_eq!(covered, layout.full_data_cells());
            }
        }
    }

    #[test]
    #[should_panic]
    fn unsupported_granularity_is_rejected() {
        let _ = WordLayout::restricted(128);
    }
}
