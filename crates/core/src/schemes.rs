//! Registry of every scheme evaluated in the paper (Figure 8 onwards).

use crate::{CocCosetCodec, WlcCosetCodec};
use std::sync::Arc;
use wlcrc_coset::{DinCodec, FlipMinCodec, FnwCodec, Granularity, NCosetsCodec};
use wlcrc_pcm::codec::{LineCodec, RawCodec};

/// A shareable constructor for a [`LineCodec`].
///
/// The parallel experiment engine (`wlcrc_memsim`'s `ExperimentPlan`) hands a
/// factory to every worker thread so each worker owns its codec instance
/// instead of contending on a shared one; construction is cheap for every
/// scheme in this workspace.
pub type CodecFactory = Arc<dyn Fn() -> Box<dyn LineCodec> + Send + Sync>;

/// Identifier for the schemes compared in the paper's evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeId {
    /// Differential write only.
    Baseline,
    /// FlipMin with sixteen coset masks per line.
    FlipMin,
    /// Flip-N-Write on 128-bit blocks.
    Fnw,
    /// DIN (compression + 3-to-4-bit expansion + BCH).
    Din,
    /// The prior 6cosets scheme on whole 512-bit lines.
    SixCosets,
    /// COC compression with 4cosets encoding.
    CocFourCosets,
    /// WLC with unrestricted 4cosets at 32-bit blocks (its best point).
    WlcFourCosets,
    /// WLCRC at 16-bit blocks (the paper's proposal).
    Wlcrc16,
}

impl SchemeId {
    /// Every scheme, in the order the paper's figures list them.
    pub const ALL: [SchemeId; 8] = [
        SchemeId::Baseline,
        SchemeId::FlipMin,
        SchemeId::Fnw,
        SchemeId::Din,
        SchemeId::SixCosets,
        SchemeId::CocFourCosets,
        SchemeId::WlcFourCosets,
        SchemeId::Wlcrc16,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SchemeId::Baseline => "Baseline",
            SchemeId::FlipMin => "FlipMin",
            SchemeId::Fnw => "FNW",
            SchemeId::Din => "DIN",
            SchemeId::SixCosets => "6cosets",
            SchemeId::CocFourCosets => "COC+4cosets",
            SchemeId::WlcFourCosets => "WLC+4cosets",
            SchemeId::Wlcrc16 => "WLCRC-16",
        }
    }

    /// Builds the codec implementing this scheme with the paper's default
    /// parameters.
    pub fn build(self) -> Box<dyn LineCodec> {
        match self {
            SchemeId::Baseline => Box::new(RawCodec::new()),
            SchemeId::FlipMin => Box::new(FlipMinCodec::new()),
            SchemeId::Fnw => Box::new(FnwCodec::paper_default()),
            SchemeId::Din => Box::new(DinCodec::new()),
            SchemeId::SixCosets => Box::new(NCosetsCodec::six_cosets(Granularity::new(512))),
            SchemeId::CocFourCosets => Box::new(CocCosetCodec::new()),
            SchemeId::WlcFourCosets => Box::new(WlcCosetCodec::wlc_four_cosets(32)),
            SchemeId::Wlcrc16 => Box::new(WlcCosetCodec::wlcrc16()),
        }
    }

    /// A factory that builds this scheme on demand; workers of the parallel
    /// experiment engine call it once each so every thread owns its codec.
    pub fn factory(self) -> CodecFactory {
        Arc::new(move || self.build())
    }
}

/// Builds every scheme of the paper's main comparison, in figure order.
pub fn standard_schemes() -> Vec<(SchemeId, Box<dyn LineCodec>)> {
    SchemeId::ALL.iter().map(|id| (*id, id.build())).collect()
}

/// Factories for every scheme of the paper's main comparison, in figure
/// order. Unlike [`standard_schemes`], nothing is constructed up front: each
/// worker of an `ExperimentPlan` builds its own codec through
/// [`SchemeId::build`].
pub fn standard_factories() -> Vec<(SchemeId, CodecFactory)> {
    SchemeId::ALL.iter().map(|id| (*id, id.factory())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wlcrc_pcm::energy::EnergyModel;
    use wlcrc_pcm::line::MemoryLine;

    #[test]
    fn all_schemes_build_and_round_trip() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(77);
        for (id, codec) in standard_schemes() {
            let mut old = codec.initial_line();
            for round in 0..10 {
                let mut words = [0u64; 8];
                for w in &mut words {
                    *w = match rng.gen_range(0..3) {
                        0 => u64::from(rng.gen::<u16>()),
                        1 => rng.gen(),
                        _ => 0,
                    };
                }
                let data = MemoryLine::from_words(words);
                let enc = codec.encode(&data, &old, &energy);
                assert_eq!(enc.len(), codec.encoded_cells(), "{:?}", id);
                assert_eq!(codec.decode(&enc), data, "{:?} round {round}", id);
                old = enc;
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<&str> = SchemeId::ALL.iter().map(|s| s.label()).collect();
        for i in 0..labels.len() {
            for j in (i + 1)..labels.len() {
                assert_ne!(labels[i], labels[j]);
            }
        }
    }

    #[test]
    fn registry_order_matches_figures() {
        assert_eq!(SchemeId::ALL[0], SchemeId::Baseline);
        assert_eq!(SchemeId::ALL[7], SchemeId::Wlcrc16);
        assert_eq!(standard_schemes().len(), 8);
    }

    #[test]
    fn factories_build_the_same_codec_as_build() {
        for (id, factory) in standard_factories() {
            let from_factory = factory();
            let direct = id.build();
            assert_eq!(from_factory.name(), direct.name(), "{id:?}");
            assert_eq!(from_factory.encoded_cells(), direct.encoded_cells(), "{id:?}");
        }
    }

    #[test]
    fn factories_are_shareable_across_threads() {
        let (_, factory) = standard_factories().remove(7);
        let clone = Arc::clone(&factory);
        let name =
            std::thread::spawn(move || clone().name().to_string()).join().expect("factory thread");
        assert_eq!(name, factory().name());
    }
}
