//! The WLC-integrated coset codecs: WLCRC (restricted) and WLC+n-cosets
//! (unrestricted), Sections V and VI of the paper.

use crate::layout::WordLayout;
use wlcrc_coset::candidate::{c1, c2, c3, CandidateSet, CosetCandidate};
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::energy::EnergyModel;
use wlcrc_pcm::kernel::{self, StatePlanes, SymbolPlanes, TransitionTable};
use wlcrc_pcm::line::{word as wordutil, MemoryLine};
use wlcrc_pcm::mapping::SymbolMapping;
use wlcrc_pcm::physical::{CellClass, PhysicalLine};
use wlcrc_pcm::state::{CellState, Symbol};
use wlcrc_pcm::{LINE_CELLS, LINE_WORDS, WORD_CELLS};

/// Most data blocks a 64-bit word can hold (8-bit granularity).
const MAX_WORD_BLOCKS: usize = 8;
/// Most candidates a WLC-integrated codec can hold (unrestricted 4cosets).
const MAX_WORD_CANDIDATES: usize = 4;

/// Per-encode kernel context: the plane views of the data and stored line
/// plus one transition table per candidate, built once per write.
struct KernelCtx {
    planes: SymbolPlanes,
    stored: StatePlanes,
    tables: [TransitionTable; MAX_WORD_CANDIDATES],
}

/// How coset candidates may be combined within a 64-bit word.
#[derive(Debug, Clone)]
pub enum CosetPolicy {
    /// The paper's restricted coset coding: every block of the word picks its
    /// candidate from one of the two groups `{C1, C2}` or `{C1, C3}`,
    /// recorded with one group bit per word and one bit per block.
    Restricted,
    /// Unrestricted selection from the given candidate set (at most four
    /// candidates), recorded with two bits per block.
    Unrestricted(CandidateSet),
}

/// Configuration of the Section VIII-D multi-objective optimisation: when the
/// two restricted groups cost within `threshold` (relative) of each other,
/// the group is chosen by the number of updated cells instead of energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiObjectiveConfig {
    /// Relative energy-difference threshold (the paper evaluates `T = 1 %`).
    pub threshold: f64,
}

impl MultiObjectiveConfig {
    /// The configuration evaluated in the paper (`T = 1 %`).
    pub fn paper_default() -> MultiObjectiveConfig {
        MultiObjectiveConfig { threshold: 0.01 }
    }
}

/// The WLC-integrated coset codec.
///
/// * With [`CosetPolicy::Restricted`] this is **WLCRC** at 8/16/32/64-bit
///   granularity (the paper's default configuration is WLCRC-16).
/// * With [`CosetPolicy::Unrestricted`] and the 4cosets (or 3cosets) set this
///   is the **WLC+4cosets** / **WLC+3cosets** comparison scheme.
///
/// Lines whose words do not all pass the WLC test are stored unencoded; a
/// single auxiliary flag cell per line records which format was used.
#[derive(Debug, Clone)]
pub struct WlcCosetCodec {
    layout: WordLayout,
    restricted: bool,
    candidates: Vec<CosetCandidate>,
    multi_objective: Option<MultiObjectiveConfig>,
    aux_mapping: SymbolMapping,
    name: String,
}

impl WlcCosetCodec {
    /// Creates a WLC-integrated codec with the given granularity and policy.
    ///
    /// # Panics
    ///
    /// Panics if the granularity is not 8, 16, 32 or 64 bits, or if an
    /// unrestricted candidate set has more than four candidates.
    pub fn new(granularity_bits: usize, policy: CosetPolicy) -> WlcCosetCodec {
        match policy {
            CosetPolicy::Restricted => {
                let layout = WordLayout::restricted(granularity_bits);
                WlcCosetCodec {
                    layout,
                    restricted: true,
                    candidates: vec![c1(), c2(), c3()],
                    multi_objective: None,
                    aux_mapping: SymbolMapping::default_mapping(),
                    name: format!("WLCRC-{granularity_bits}"),
                }
            }
            CosetPolicy::Unrestricted(set) => {
                assert!(set.len() <= 4, "unrestricted WLC+cosets supports at most four candidates");
                let layout = WordLayout::unrestricted(granularity_bits);
                let name = format!("WLC+{}-{granularity_bits}", set.name());
                WlcCosetCodec {
                    layout,
                    restricted: false,
                    candidates: set.candidates().to_vec(),
                    multi_objective: None,
                    aux_mapping: SymbolMapping::default_mapping(),
                    name,
                }
            }
        }
    }

    /// The paper's default configuration: WLCRC at 16-bit granularity.
    pub fn wlcrc16() -> WlcCosetCodec {
        WlcCosetCodec::new(16, CosetPolicy::Restricted)
    }

    /// WLCRC at an arbitrary supported granularity.
    pub fn wlcrc(granularity_bits: usize) -> WlcCosetCodec {
        WlcCosetCodec::new(granularity_bits, CosetPolicy::Restricted)
    }

    /// WLC+4cosets at the given granularity (the paper's default for this
    /// scheme is 32-bit blocks).
    pub fn wlc_four_cosets(granularity_bits: usize) -> WlcCosetCodec {
        WlcCosetCodec::new(granularity_bits, CosetPolicy::Unrestricted(CandidateSet::four_cosets()))
    }

    /// WLC+3cosets at the given granularity.
    pub fn wlc_three_cosets(granularity_bits: usize) -> WlcCosetCodec {
        WlcCosetCodec::new(
            granularity_bits,
            CosetPolicy::Unrestricted(CandidateSet::three_cosets()),
        )
    }

    /// Enables the multi-objective group-selection policy (restricted codecs
    /// only; it has no effect on unrestricted codecs).
    pub fn with_multi_objective(mut self, config: MultiObjectiveConfig) -> WlcCosetCodec {
        self.multi_objective = Some(config);
        if self.restricted {
            self.name = format!("{}+MO", self.name);
        }
        self
    }

    /// The per-word layout of this codec.
    pub fn layout(&self) -> WordLayout {
        self.layout
    }

    /// `true` when this codec uses the restricted coset policy.
    pub fn is_restricted(&self) -> bool {
        self.restricted
    }

    /// `true` when `line` passes the WLC test for this codec's layout and can
    /// therefore be stored in the compressed, coset-encoded format.
    pub fn is_compressible(&self, line: &MemoryLine) -> bool {
        line.words().iter().all(|&w| wordutil::msbs_identical(w, self.layout.wlc_k()))
    }

    fn flag_cell(&self) -> usize {
        LINE_CELLS
    }

    /// Global cell index of word-relative cell `cell` in word `word`.
    fn global_cell(word: usize, cell: usize) -> usize {
        word * WORD_CELLS + cell
    }

    /// Differential-write cost of encoding block `cells` (word-relative, in
    /// word `word`) of `data` with `candidate` against the stored `old`.
    fn block_cost(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        word: usize,
        cells: std::ops::Range<usize>,
        candidate: &CosetCandidate,
        energy: &EnergyModel,
    ) -> (f64, usize) {
        let mut cost = 0.0;
        let mut updated = 0;
        for cell in cells {
            let global = Self::global_cell(word, cell);
            let target = candidate.state_of(data.symbol(global));
            if old.state(global) != target {
                cost += energy.write_energy_pj(target);
                updated += 1;
            }
        }
        (cost, updated)
    }

    /// Encodes the auxiliary/pass-through region of word `word` given the
    /// reclaimed bit values (bit `i` of `aux_bits` is reclaimed bit `i`),
    /// writing the cells through the default mapping.
    fn write_aux_region(
        &self,
        out: &mut PhysicalLine,
        data: &MemoryLine,
        word: usize,
        aux_bits: u64,
    ) {
        let fdc = self.layout.full_data_cells();
        let boundary_bit = self.layout.data_bits(); // first reclaimed bit
        for cell in fdc..WORD_CELLS {
            let bit_lo_index = 2 * cell;
            let bit_hi_index = 2 * cell + 1;
            let bit_value = |bit: usize| -> bool {
                if bit >= boundary_bit {
                    (aux_bits >> (bit - boundary_bit)) & 1 == 1
                } else {
                    // Pass-through data bit stored unencoded.
                    data.bit(word * 64 + bit)
                }
            };
            let symbol = Symbol::from_bits(bit_value(bit_hi_index), bit_value(bit_lo_index));
            let global = Self::global_cell(word, cell);
            out.set_state(global, self.aux_mapping.state_of(symbol));
            out.set_class(global, CellClass::Aux);
        }
    }

    /// Reads back the reclaimed bits (packed, bit `i` = reclaimed bit `i`)
    /// and the pass-through bit of word `word`.
    fn read_aux_region(&self, stored: &PhysicalLine, word: usize) -> (u64, Option<bool>) {
        let fdc = self.layout.full_data_cells();
        let boundary_bit = self.layout.data_bits();
        let mut aux_bits = 0u64;
        let mut pass_through = None;
        for cell in fdc..WORD_CELLS {
            let global = Self::global_cell(word, cell);
            let symbol = self.aux_mapping.symbol_of(stored.state(global));
            for (bit_index, value) in [(2 * cell, symbol.lsb()), (2 * cell + 1, symbol.msb())] {
                if bit_index >= boundary_bit {
                    aux_bits |= u64::from(value) << (bit_index - boundary_bit);
                } else {
                    pass_through = Some(value);
                }
            }
        }
        (aux_bits, pass_through)
    }

    /// Packs the per-word encoding decision into the reclaimed bits.
    ///
    /// Restricted (granularity < 64): the top reclaimed bit (word bit 63) is
    /// the group bit and block `j` occupies the bit just below the top,
    /// downwards. Restricted at 64-bit granularity and unrestricted codecs
    /// store plain candidate indices, two bits per block, from the top down.
    fn pack_aux_bits(&self, group_b: bool, choices: &[usize]) -> u64 {
        let r = self.layout.reclaimed_bits;
        let mut bits = 0u64;
        if self.restricted && self.layout.granularity_bits < 64 {
            bits |= u64::from(group_b) << (r - 1);
            for (j, &choice) in choices.iter().enumerate() {
                bits |= u64::from(choice != 0) << (r - 2 - j);
            }
        } else {
            for (j, &choice) in choices.iter().enumerate() {
                bits |= ((choice as u64 >> 1) & 1) << (r - 1 - 2 * j);
                bits |= (choice as u64 & 1) << (r - 2 - 2 * j);
            }
        }
        bits
    }

    /// Inverse of [`Self::pack_aux_bits`]: recovers the per-block candidate
    /// indices for decoding (only the first `layout.blocks()` entries are
    /// meaningful).
    fn unpack_candidates(&self, aux_bits: u64) -> [usize; MAX_WORD_BLOCKS] {
        let r = self.layout.reclaimed_bits;
        let blocks = self.layout.blocks();
        let mut out = [0usize; MAX_WORD_BLOCKS];
        if self.restricted && self.layout.granularity_bits < 64 {
            let group_b = (aux_bits >> (r - 1)) & 1 == 1;
            for (j, slot) in out.iter_mut().enumerate().take(blocks) {
                let picked_alt = (aux_bits >> (r - 2 - j)) & 1 == 1;
                *slot = if !picked_alt {
                    0 // C1
                } else if group_b {
                    2 // C3
                } else {
                    1 // C2
                };
            }
        } else {
            for (j, slot) in out.iter_mut().enumerate().take(blocks) {
                let hi = (aux_bits >> (r - 1 - 2 * j)) & 1;
                let lo = (aux_bits >> (r - 2 - 2 * j)) & 1;
                *slot = (((hi << 1) | lo) as usize).min(self.candidates.len() - 1);
            }
        }
        out
    }

    /// Differential-write cost of the word's auxiliary/pass-through region for
    /// a given assignment of the reclaimed bits.
    fn aux_region_cost(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        word: usize,
        aux_bits: u64,
        energy: &EnergyModel,
    ) -> f64 {
        let fdc = self.layout.full_data_cells();
        let boundary_bit = self.layout.data_bits();
        let mut cost = 0.0;
        for cell in fdc..WORD_CELLS {
            let bit_value = |bit: usize| -> bool {
                if bit >= boundary_bit {
                    (aux_bits >> (bit - boundary_bit)) & 1 == 1
                } else {
                    data.bit(word * 64 + bit)
                }
            };
            let symbol = Symbol::from_bits(bit_value(2 * cell + 1), bit_value(2 * cell));
            let target = self.aux_mapping.state_of(symbol);
            let global = Self::global_cell(word, cell);
            cost += energy.transition_energy_pj(old.state(global), target);
        }
        cost
    }

    /// Candidate resolved from a restricted (group, per-block) choice or an
    /// unrestricted selector index.
    fn resolve_candidate(&self, group_b: bool, choice: usize) -> &CosetCandidate {
        if self.restricted && self.layout.granularity_bits < 64 {
            match (choice, group_b) {
                (0, _) => &self.candidates[0],
                (_, false) => &self.candidates[1],
                (_, true) => &self.candidates[2],
            }
        } else {
            &self.candidates[choice]
        }
    }

    /// Candidate index (into `self.candidates`) of a restricted
    /// (group, per-block) choice or an unrestricted selector index.
    fn resolve_candidate_index(&self, group_b: bool, choice: usize) -> usize {
        if self.restricted && self.layout.granularity_bits < 64 {
            match (choice, group_b) {
                (0, _) => 0,
                (_, false) => 1,
                (_, true) => 2,
            }
        } else {
            choice
        }
    }

    /// Encodes one word of a compressible line.
    ///
    /// Candidate selection follows Algorithm 1 (data-block cost first), then
    /// accounts for the auxiliary-region write cost: the group is chosen on
    /// the full (data + aux) cost and a refinement pass keeps a block on the
    /// frequent candidate `C1` when switching away would cost more in
    /// auxiliary-cell writes than it saves in the data block. This is what
    /// keeps the auxiliary part in the low-energy states, as the paper notes
    /// in Section IX-A.
    ///
    /// Every candidate's (cost, updated-cells) pair is evaluated once per
    /// block up front — through the bit-parallel kernel when `kernel_ctx` is
    /// given, through the scalar [`Self::block_cost`] otherwise — and the
    /// selection then works purely on those stack-resident tables, so a word
    /// is encoded without any heap allocation.
    fn encode_word(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        out: &mut PhysicalLine,
        word: usize,
        energy: &EnergyModel,
        kernel_ctx: Option<&KernelCtx>,
    ) {
        let blocks = self.layout.blocks();
        debug_assert!(blocks <= MAX_WORD_BLOCKS);
        let ncand = self.candidates.len();
        let mut cost = [[0.0f64; MAX_WORD_BLOCKS]; MAX_WORD_CANDIDATES];
        let mut updated = [[0usize; MAX_WORD_BLOCKS]; MAX_WORD_CANDIDATES];
        for (idx, candidate) in self.candidates.iter().enumerate() {
            match kernel_ctx {
                Some(ctx) => {
                    // All of a word's blocks share one plane-word region, so
                    // the candidate's target planes are computed once.
                    let mut row = [(0.0f64, 0usize); MAX_WORD_BLOCKS];
                    let n = kernel::word_block_costs_updated(
                        &ctx.planes,
                        &ctx.stored,
                        &ctx.tables[idx],
                        word * WORD_CELLS,
                        self.layout.full_data_cells(),
                        self.layout.granularity_bits / 2,
                        &mut row,
                    );
                    debug_assert_eq!(n, blocks);
                    for (j, &(c, u)) in row.iter().enumerate().take(blocks) {
                        cost[idx][j] = c;
                        updated[idx][j] = u;
                    }
                }
                None => {
                    for j in 0..blocks {
                        let cells = self.layout.block_cells(j);
                        let (c, u) = self.block_cost(data, old, word, cells, candidate, energy);
                        cost[idx][j] = c;
                        updated[idx][j] = u;
                    }
                }
            }
        }

        let (group_b, mut choices) = if self.restricted && self.layout.granularity_bits < 64 {
            // Algorithm 1: evaluate both groups, pick the cheaper. Group 0's
            // alternative is C2 (candidate 1), group 1's is C3 (candidate 2).
            let mut totals = [0.0f64; 2];
            let mut updates = [0usize; 2];
            let mut per_group_choices = [[0usize; MAX_WORD_BLOCKS]; 2];
            for g in 0..2 {
                let alt = 1 + g;
                for j in 0..blocks {
                    if cost[alt][j] < cost[0][j] {
                        per_group_choices[g][j] = 1;
                        totals[g] += cost[alt][j];
                        updates[g] += updated[alt][j];
                    } else {
                        totals[g] += cost[0][j];
                        updates[g] += updated[0][j];
                    }
                }
                totals[g] += self.aux_region_cost(
                    data,
                    old,
                    word,
                    self.pack_aux_bits(g == 1, &per_group_choices[g][..blocks]),
                    energy,
                );
            }
            let mut pick_b = totals[1] < totals[0];
            if let Some(mo) = self.multi_objective {
                let max = totals[0].max(totals[1]).max(f64::EPSILON);
                if (totals[0] - totals[1]).abs() <= mo.threshold * max {
                    pick_b = updates[1] < updates[0];
                }
            }
            (pick_b, per_group_choices[usize::from(pick_b)])
        } else {
            // Unrestricted (or 64-bit restricted, which degenerates to
            // unrestricted 3cosets): best candidate per block by data cost.
            let mut choices = [0usize; MAX_WORD_BLOCKS];
            for (j, choice) in choices.iter_mut().enumerate().take(blocks) {
                let mut best = 0usize;
                let mut best_cost = f64::INFINITY;
                for (idx, per_block) in cost.iter().enumerate().take(ncand) {
                    if per_block[j] < best_cost {
                        best_cost = per_block[j];
                        best = idx;
                    }
                }
                *choice = best;
            }
            (false, choices)
        };

        // Refinement: revisit each block and keep/alter its candidate when the
        // auxiliary-cell cost of recording the switch outweighs the data
        // saving (or vice versa).
        let candidate_options =
            if self.restricted && self.layout.granularity_bits < 64 { 2 } else { ncand };
        for j in 0..blocks {
            let mut best_choice = choices[j];
            let mut best_total = f64::INFINITY;
            for option in 0..candidate_options {
                let mut trial = choices;
                trial[j] = option;
                let data_cost = cost[self.resolve_candidate_index(group_b, option)][j];
                let aux_cost = self.aux_region_cost(
                    data,
                    old,
                    word,
                    self.pack_aux_bits(group_b, &trial[..blocks]),
                    energy,
                );
                let total = data_cost + aux_cost;
                if total < best_total {
                    best_total = total;
                    best_choice = option;
                }
            }
            choices[j] = best_choice;
        }

        // Write the encoded data blocks.
        for (j, &choice) in choices.iter().enumerate().take(blocks) {
            let candidate = self.resolve_candidate(group_b, choice);
            for cell in self.layout.block_cells(j) {
                let global = Self::global_cell(word, cell);
                out.set_state(global, candidate.state_of(data.symbol(global)));
            }
        }
        let aux_bits = self.pack_aux_bits(group_b, &choices[..blocks]);
        self.write_aux_region(out, data, word, aux_bits);
    }

    /// Shared encode body; `use_kernel` switches the per-block candidate
    /// costs between the bit-parallel kernel and the scalar
    /// [`Self::block_cost`]. Selection logic is shared, so both sides produce
    /// byte-identical lines (exactly so for integer-valued energies).
    fn encode_impl(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        energy: &EnergyModel,
        use_kernel: bool,
    ) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let mut out = PhysicalLine::all_reset(self.encoded_cells());
        out.set_class(self.flag_cell(), CellClass::Aux);
        if self.is_compressible(data) {
            out.set_state(self.flag_cell(), CellState::S1);
            let kernel_ctx = use_kernel.then(|| {
                let mut tables = [TransitionTable::placeholder(); MAX_WORD_CANDIDATES];
                for (table, candidate) in tables.iter_mut().zip(&self.candidates) {
                    *table = TransitionTable::new(&candidate.mapping(), energy);
                }
                KernelCtx { planes: data.symbol_planes(), stored: old.state_planes(), tables }
            });
            for word in 0..LINE_WORDS {
                self.encode_word(data, old, &mut out, word, energy, kernel_ctx.as_ref());
            }
        } else {
            out.set_state(self.flag_cell(), CellState::S2);
            let default = SymbolMapping::default_mapping();
            for cell in 0..LINE_CELLS {
                out.set_state(cell, default.state_of(data.symbol(cell)));
            }
        }
        out
    }

    /// The scalar reference encoder (per-cell block costs); kept callable for
    /// the equivalence tests and the perf snapshot.
    #[doc(hidden)]
    pub fn encode_scalar(
        &self,
        data: &MemoryLine,
        old: &PhysicalLine,
        energy: &EnergyModel,
    ) -> PhysicalLine {
        self.encode_impl(data, old, energy, false)
    }

    fn decode_word(&self, stored: &PhysicalLine, word: usize) -> u64 {
        let (aux_bits, pass_through) = self.read_aux_region(stored, word);
        let candidates = self.unpack_candidates(aux_bits);
        let mut value = 0u64;
        for (j, &cand_idx) in candidates.iter().enumerate().take(self.layout.blocks()) {
            let candidate = &self.candidates[cand_idx];
            for cell in self.layout.block_cells(j) {
                let global = Self::global_cell(word, cell);
                let symbol = candidate.symbol_of(stored.state(global));
                value |= u64::from(symbol.value()) << (2 * cell);
            }
        }
        if let (Some(bit_index), Some(bit)) = (self.layout.pass_through_bit(), pass_through) {
            if bit {
                value |= 1 << bit_index;
            }
        }
        // Rebuild the reclaimed MSBs by sign extension from the top kept bit.
        wordutil::sign_extend_from(value, self.layout.data_bits() - 1)
    }
}

impl LineCodec for WlcCosetCodec {
    fn name(&self) -> &str {
        &self.name
    }

    fn encoded_cells(&self) -> usize {
        LINE_CELLS + 1
    }

    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, energy: &EnergyModel) -> PhysicalLine {
        self.encode_impl(data, old, energy, true)
    }

    fn decode(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        if stored.state(self.flag_cell()) != CellState::S1 {
            let default = SymbolMapping::default_mapping();
            let mut line = MemoryLine::ZERO;
            for cell in 0..LINE_CELLS {
                line.set_symbol(cell, default.symbol_of(stored.state(cell)));
            }
            return line;
        }
        let mut words = [0u64; LINE_WORDS];
        for (word, slot) in words.iter_mut().enumerate() {
            *slot = self.decode_word(stored, word);
        }
        MemoryLine::from_words(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wlcrc_pcm::write::differential_write;

    /// A line whose words all pass the WLC test for `k` MSBs.
    fn compressible_line(rng: &mut StdRng, k: usize) -> MemoryLine {
        let payload_bits = 64 - (k - 1);
        let mut words = [0u64; LINE_WORDS];
        for w in &mut words {
            let raw: u64 = rng.gen();
            *w = wordutil::sign_extend_from(raw & ((1 << payload_bits) - 1), payload_bits - 1);
        }
        MemoryLine::from_words(words)
    }

    fn random_line(rng: &mut StdRng) -> MemoryLine {
        let mut words = [0u64; LINE_WORDS];
        for w in &mut words {
            *w = rng.gen();
        }
        MemoryLine::from_words(words)
    }

    #[test]
    fn wlcrc16_round_trip_compressible() {
        let codec = WlcCosetCodec::wlcrc16();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut old = codec.initial_line();
        for _ in 0..100 {
            let data = compressible_line(&mut rng, codec.layout().wlc_k());
            assert!(codec.is_compressible(&data));
            let enc = codec.encode(&data, &old, &energy);
            assert_eq!(enc.state(256), CellState::S1);
            assert_eq!(codec.decode(&enc), data);
            old = enc;
        }
    }

    #[test]
    fn wlcrc16_round_trip_incompressible() {
        let codec = WlcCosetCodec::wlcrc16();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let data = random_line(&mut rng);
            if codec.is_compressible(&data) {
                continue;
            }
            let enc = codec.encode(&data, &codec.initial_line(), &energy);
            assert_eq!(enc.state(256), CellState::S2);
            assert_eq!(codec.decode(&enc), data);
        }
    }

    #[test]
    fn round_trip_all_granularities_and_policies() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(3);
        for g in [8usize, 16, 32, 64] {
            let codecs = [
                WlcCosetCodec::wlcrc(g),
                WlcCosetCodec::wlc_four_cosets(g),
                WlcCosetCodec::wlc_three_cosets(g),
            ];
            for codec in codecs {
                let mut old = codec.initial_line();
                for _ in 0..20 {
                    let data = compressible_line(&mut rng, codec.layout().wlc_k());
                    let enc = codec.encode(&data, &old, &energy);
                    assert_eq!(codec.decode(&enc), data, "{} g={}", codec.name(), g);
                    old = enc;
                }
                // Mixed / incompressible data must also round trip.
                for _ in 0..10 {
                    let data = random_line(&mut rng);
                    let enc = codec.encode(&data, &codec.initial_line(), &energy);
                    assert_eq!(codec.decode(&enc), data, "{} raw g={}", codec.name(), g);
                }
            }
        }
    }

    #[test]
    fn kernel_encode_matches_scalar_encode() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(41);
        for g in [8usize, 16, 32, 64] {
            let codecs = [
                WlcCosetCodec::wlcrc(g),
                WlcCosetCodec::wlcrc(g).with_multi_objective(MultiObjectiveConfig::paper_default()),
                WlcCosetCodec::wlc_four_cosets(g),
                WlcCosetCodec::wlc_three_cosets(g),
            ];
            for codec in codecs {
                let mut old = codec.initial_line();
                for _ in 0..10 {
                    let data = compressible_line(&mut rng, codec.layout().wlc_k());
                    let kernel = codec.encode(&data, &old, &energy);
                    let scalar = codec.encode_scalar(&data, &old, &energy);
                    assert_eq!(kernel, scalar, "{} g={}", codec.name(), g);
                    old = kernel;
                }
            }
        }
    }

    #[test]
    fn mixed_biased_values_round_trip() {
        let codec = WlcCosetCodec::wlcrc16();
        let energy = EnergyModel::paper_default();
        for data in [
            MemoryLine::ZERO,
            MemoryLine::ZERO.complement(),
            MemoryLine::from_words([0, u64::MAX, 1, (-5i64) as u64, 1 << 57, 42, 7, 0]),
            MemoryLine::from_words([(-1i64) as u64; 8]),
        ] {
            let enc = codec.encode(&data, &codec.initial_line(), &energy);
            assert_eq!(codec.decode(&enc), data);
        }
    }

    #[test]
    fn space_overhead_is_one_flag_cell() {
        let codec = WlcCosetCodec::wlcrc16();
        assert_eq!(codec.encoded_cells(), 257);
        // < 0.4 % overhead as claimed by the paper.
        let overhead = (codec.encoded_cells() - 256) as f64 / 256.0;
        assert!(overhead < 0.004);
    }

    #[test]
    fn wlcrc_beats_baseline_energy_on_biased_data() {
        let codec = WlcCosetCodec::wlcrc16();
        let raw = wlcrc_pcm::codec::RawCodec::new();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(9);
        let mut wlcrc_total = 0.0;
        let mut raw_total = 0.0;
        for _ in 0..200 {
            // Biased data: words full of 1s or small values, the common case.
            let mut words = [0u64; LINE_WORDS];
            for w in &mut words {
                *w = match rng.gen_range(0..4) {
                    0 => 0,
                    1 => u64::MAX,
                    2 => u64::from(rng.gen::<u16>()),
                    _ => (-(i64::from(rng.gen::<u16>()))) as u64,
                };
            }
            let new_data = MemoryLine::from_words(words);
            let old_data = random_line(&mut rng);
            let old_w = codec.encode(&old_data, &codec.initial_line(), &energy);
            let old_r = raw.encode(&old_data, &raw.initial_line(), &energy);
            let new_w = codec.encode(&new_data, &old_w, &energy);
            let new_r = raw.encode(&new_data, &old_r, &energy);
            wlcrc_total += differential_write(&old_w, &new_w, &energy).total_energy_pj();
            raw_total += differential_write(&old_r, &new_r, &energy).total_energy_pj();
        }
        assert!(
            wlcrc_total < raw_total * 0.8,
            "WLCRC should clearly beat the baseline on biased data ({wlcrc_total:.0} vs {raw_total:.0})"
        );
    }

    #[test]
    fn aux_cells_are_marked_for_compressible_lines() {
        let codec = WlcCosetCodec::wlcrc16();
        let energy = EnergyModel::paper_default();
        let enc = codec.encode(&MemoryLine::ZERO, &codec.initial_line(), &energy);
        // 3 aux cells per word + 1 flag cell.
        assert_eq!(enc.aux_cells(), 8 * 3 + 1);
    }

    #[test]
    fn multi_objective_reduces_updated_cells() {
        let energy = EnergyModel::paper_default();
        let plain = WlcCosetCodec::wlcrc16();
        let mo =
            WlcCosetCodec::wlcrc16().with_multi_objective(MultiObjectiveConfig::paper_default());
        assert!(mo.name().contains("+MO"));
        let mut rng = StdRng::seed_from_u64(17);
        let mut plain_cells = 0usize;
        let mut mo_cells = 0usize;
        let mut plain_energy = 0.0;
        let mut mo_energy = 0.0;
        for _ in 0..300 {
            let old_data = compressible_line(&mut rng, 6);
            let new_data = compressible_line(&mut rng, 6);
            let old_p = plain.encode(&old_data, &plain.initial_line(), &energy);
            let old_m = mo.encode(&old_data, &mo.initial_line(), &energy);
            let new_p = plain.encode(&new_data, &old_p, &energy);
            let new_m = mo.encode(&new_data, &old_m, &energy);
            let out_p = differential_write(&old_p, &new_p, &energy);
            let out_m = differential_write(&old_m, &new_m, &energy);
            plain_cells += out_p.total_cells_updated();
            mo_cells += out_m.total_cells_updated();
            plain_energy += out_p.total_energy_pj();
            mo_energy += out_m.total_energy_pj();
        }
        assert!(mo_cells <= plain_cells, "multi-objective should not update more cells");
        // Energy may increase, but only slightly (the paper reports ~1%).
        assert!(mo_energy <= plain_energy * 1.05);
    }

    #[test]
    fn decode_is_independent_of_old_content() {
        // Decoding must rely only on the stored cells, never on the encoder's
        // `old` argument.
        let codec = WlcCosetCodec::wlcrc16();
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(23);
        let data = compressible_line(&mut rng, 6);
        let old_a = codec.encode(&compressible_line(&mut rng, 6), &codec.initial_line(), &energy);
        let old_b = codec.encode(&random_line(&mut rng), &codec.initial_line(), &energy);
        let enc_a = codec.encode(&data, &old_a, &energy);
        let enc_b = codec.encode(&data, &old_b, &energy);
        assert_eq!(codec.decode(&enc_a), data);
        assert_eq!(codec.decode(&enc_b), data);
    }
}
