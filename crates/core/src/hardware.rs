//! Analytical hardware-overhead model for the WLCRC encoder/decoder.
//!
//! The paper reports area, delay and energy numbers for a Verilog
//! implementation synthesised with Synopsys Design Compiler on a 45 nm
//! FreePDK library. That toolchain is not available here, so this module
//! substitutes an *analytical* gate-level estimate of the same datapath:
//!
//! * the WLC compressibility check (eight 6-bit all-equal detectors),
//! * eight parallel word encoders, each evaluating three coset candidates for
//!   four 16-bit blocks (cost adders + comparators),
//! * the multiplexing/packing logic and the mirror-image decoder.
//!
//! Gate counts are converted to area/energy with typical 45 nm NAND2
//! equivalents, and delays follow the critical path (cost adder tree plus
//! comparison). The absolute values are estimates; the claim that survives —
//! and the one the paper actually relies on — is that the overhead is
//! negligible compared to the PCM array and to the cell-programming energy.

use serde::{Deserialize, Serialize};

/// Per-gate constants for a generic 45 nm standard-cell library.
mod gate {
    /// Area of a NAND2-equivalent gate in mm².
    pub const AREA_MM2: f64 = 1.06e-6;
    /// Switching energy of a NAND2-equivalent gate in pJ.
    pub const ENERGY_PJ: f64 = 2.0e-4;
    /// Propagation delay of a NAND2-equivalent gate in ns.
    pub const DELAY_NS: f64 = 0.02;
}

/// An area/delay/energy estimate for one hardware block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareEstimate {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Critical-path delay in ns.
    pub delay_ns: f64,
    /// Energy per operation in pJ.
    pub energy_pj: f64,
    /// NAND2-equivalent gate count.
    pub gate_count: f64,
}

impl HardwareEstimate {
    fn from_gates(gate_count: f64, levels: f64, activity: f64) -> HardwareEstimate {
        HardwareEstimate {
            area_mm2: gate_count * gate::AREA_MM2,
            delay_ns: levels * gate::DELAY_NS,
            energy_pj: gate_count * activity * gate::ENERGY_PJ,
            gate_count,
        }
    }

    /// Combines two blocks operating in sequence (areas and energies add,
    /// delays add).
    pub fn in_series(self, other: HardwareEstimate) -> HardwareEstimate {
        HardwareEstimate {
            area_mm2: self.area_mm2 + other.area_mm2,
            delay_ns: self.delay_ns + other.delay_ns,
            energy_pj: self.energy_pj + other.energy_pj,
            gate_count: self.gate_count + other.gate_count,
        }
    }

    /// Combines two blocks operating in parallel (areas and energies add,
    /// delay is the maximum).
    pub fn in_parallel(self, other: HardwareEstimate) -> HardwareEstimate {
        HardwareEstimate {
            area_mm2: self.area_mm2 + other.area_mm2,
            delay_ns: self.delay_ns.max(other.delay_ns),
            energy_pj: self.energy_pj + other.energy_pj,
            gate_count: self.gate_count + other.gate_count,
        }
    }
}

/// Analytical model of the WLCRC on-chip logic for a given granularity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareModel {
    /// Data-block granularity in bits.
    pub granularity_bits: usize,
    /// Number of coset candidates evaluated per block.
    pub candidates: usize,
    /// Number of parallel word encoders (eight for a 512-bit line).
    pub word_encoders: usize,
}

impl HardwareModel {
    /// The model for WLCRC-16 (three candidates, eight word encoders).
    pub fn wlcrc16() -> HardwareModel {
        HardwareModel { granularity_bits: 16, candidates: 3, word_encoders: 8 }
    }

    /// Estimate for the WLC compression/decompression logic alone.
    pub fn wlc_logic(&self) -> HardwareEstimate {
        // Per word: a k-bit all-equal detector (XOR tree + AND tree) plus the
        // sign-extension muxes for decompression.
        let per_word_gates = 6.0 * 4.0 + 5.0 * 3.0;
        HardwareEstimate::from_gates(per_word_gates * self.word_encoders as f64, 4.0, 0.3)
    }

    /// Estimate for one word encoder (cost evaluation + candidate selection).
    pub fn word_encoder(&self) -> HardwareEstimate {
        let cells_per_block = self.granularity_bits as f64 / 2.0;
        let blocks = (64.0 / self.granularity_bits as f64).max(1.0);
        // Per cell and candidate: symbol remap (4 gates), state compare
        // (3 gates), energy-cost add contribution (~12 gates of a small adder).
        let per_cell = 4.0 + 3.0 + 12.0;
        let cost_logic = per_cell * cells_per_block * blocks * self.candidates as f64;
        // Per block: comparator across candidates + mux (~40 gates).
        let select_logic = 40.0 * blocks;
        // Adder-tree depth dominates the critical path: log2(cells) levels of
        // ~3 gate delays each, plus the final comparison.
        let levels = 3.0 * (cells_per_block.log2().ceil() + 2.0) + 6.0;
        HardwareEstimate::from_gates(cost_logic + select_logic, levels, 0.25)
    }

    /// Estimate for one word decoder (selector decode + inverse mapping).
    pub fn word_decoder(&self) -> HardwareEstimate {
        let cells = 32.0;
        let per_cell = 4.0 + 2.0; // inverse remap + mux
        HardwareEstimate::from_gates(per_cell * cells, 5.0, 0.25)
    }

    /// Total estimate for the encoder path (WLC + eight parallel encoders),
    /// exercised on every memory write.
    pub fn encoder(&self) -> HardwareEstimate {
        let mut encoders = self.word_encoder();
        for _ in 1..self.word_encoders {
            encoders = encoders.in_parallel(self.word_encoder());
        }
        self.wlc_logic().in_series(encoders)
    }

    /// Total estimate for the decoder path, exercised on every memory read.
    pub fn decoder(&self) -> HardwareEstimate {
        let mut decoders = self.word_decoder();
        for _ in 1..self.word_encoders {
            decoders = decoders.in_parallel(self.word_decoder());
        }
        decoders.in_series(self.wlc_logic())
    }

    /// Combined estimate (encoder + decoder), comparable to the paper's
    /// "WLCRC modules" figure.
    pub fn total(&self) -> HardwareEstimate {
        self.encoder().in_parallel(self.decoder())
    }
}

impl Default for HardwareModel {
    fn default() -> HardwareModel {
        HardwareModel::wlcrc16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlcrc_pcm::energy::EnergyModel;
    use wlcrc_pcm::state::CellState;

    #[test]
    fn area_is_negligible_fraction_of_a_memory_die() {
        let total = HardwareModel::wlcrc16().total();
        // The paper reports ~0.05 mm²; our analytical estimate must stay in
        // the same order of magnitude and far below a memory die (~50 mm²).
        assert!(total.area_mm2 > 0.001 && total.area_mm2 < 0.5, "area {}", total.area_mm2);
    }

    #[test]
    fn encode_delay_exceeds_decode_delay() {
        let model = HardwareModel::wlcrc16();
        assert!(model.encoder().delay_ns > model.decoder().delay_ns);
        // Same order as the reported 2.63 ns / 0.89 ns.
        assert!(model.encoder().delay_ns < 10.0);
        assert!(model.decoder().delay_ns < 5.0);
    }

    #[test]
    fn logic_energy_is_negligible_vs_cell_programming() {
        let model = HardwareModel::wlcrc16();
        let per_write = model.encoder().energy_pj;
        let one_cell_program = EnergyModel::paper_default().write_energy_pj(CellState::S2);
        assert!(
            per_write < one_cell_program,
            "encoder energy {per_write} pJ should be below a single cell write"
        );
    }

    #[test]
    fn wlc_portion_is_tiny_compared_to_coset_logic() {
        let model = HardwareModel::wlcrc16();
        assert!(model.wlc_logic().area_mm2 < model.word_encoder().area_mm2);
    }

    #[test]
    fn series_and_parallel_composition() {
        let a = HardwareEstimate::from_gates(100.0, 5.0, 0.5);
        let b = HardwareEstimate::from_gates(200.0, 3.0, 0.5);
        let s = a.in_series(b);
        assert_eq!(s.gate_count, 300.0);
        assert!((s.delay_ns - 8.0 * 0.02).abs() < 1e-12);
        let p = a.in_parallel(b);
        assert_eq!(p.gate_count, 300.0);
        assert!((p.delay_ns - 5.0 * 0.02).abs() < 1e-12);
    }

    #[test]
    fn coarser_granularity_needs_less_logic() {
        let fine = HardwareModel { granularity_bits: 16, candidates: 3, word_encoders: 8 };
        let coarse = HardwareModel { granularity_bits: 64, candidates: 3, word_encoders: 8 };
        assert!(coarse.encoder().gate_count < fine.encoder().gate_count);
    }
}
