//! WLCRC: Word-Level Compression with Restricted Coset coding for MLC PCM.
//!
//! This crate implements the primary contribution of the paper
//! *"Enabling Fine-Grain Restricted Coset Coding Through Word-Level
//! Compression for PCM"* (HPCA 2018): an on-chip encoding pipeline that
//! reduces MLC PCM write energy by encoding data at fine (16-bit) block
//! granularity while hiding the auxiliary encoding bits inside space
//! reclaimed by Word-Level Compression.
//!
//! The main entry points are:
//!
//! * [`WlcCosetCodec`] — the unified WLC-integrated codec. Configured as
//!   *restricted* it is the paper's **WLCRC-8/16/32/64**; configured as
//!   *unrestricted* with the 4cosets or 3cosets candidate pool it is the
//!   **WLC+4cosets** / **WLC+3cosets** comparison scheme.
//! * [`CocCosetCodec`] — the **COC+4cosets** comparison scheme, which uses a
//!   coverage-oriented compressor instead of WLC and therefore loses the
//!   bit-position locality differential writes depend on.
//! * [`MultiObjectiveConfig`] — the Section VIII-D extension that trades a
//!   little energy for endurance when the two coset groups cost nearly the
//!   same.
//! * [`hardware::HardwareModel`] — an analytical substitute for the paper's
//!   Synopsys synthesis results (area / delay / energy of the WLCRC logic).
//! * [`schemes`] — a registry building every scheme of the paper's
//!   evaluation (Figure 8) behind the common
//!   [`wlcrc_pcm::codec::LineCodec`] interface.
//!
//! # Quick example
//!
//! ```
//! use wlcrc::WlcCosetCodec;
//! use wlcrc_pcm::prelude::*;
//!
//! let codec = WlcCosetCodec::wlcrc16();
//! let energy = EnergyModel::paper_default();
//! let old = codec.initial_line();
//! let data = MemoryLine::from_words([0x0000_0000_1234_5678; 8]);
//! let encoded = codec.encode(&data, &old, &energy);
//! assert_eq!(codec.decode(&encoded), data);
//! let outcome = differential_write(&old, &encoded, &energy);
//! println!("write energy: {:.1} pJ", outcome.total_energy_pj());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coc_coset;
pub mod hardware;
pub mod layout;
pub mod schemes;
pub mod wlc_coset;

/// Deterministic fault injection (re-exported from [`wlcrc_faults`]): named
/// fault sites threaded through the store, gridrun and serve paths, toggled
/// via `WLCRC_FAULTS` and inert otherwise. See the crate docs for the spec
/// grammar.
pub use wlcrc_faults as faults;

pub use coc_coset::CocCosetCodec;
pub use layout::WordLayout;
pub use wlc_coset::{CosetPolicy, MultiObjectiveConfig, WlcCosetCodec};
