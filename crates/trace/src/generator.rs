//! Synthetic trace generation from workload profiles.

use crate::profile::WorkloadProfile;
use crate::record::{Trace, WriteRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use wlcrc_pcm::line::MemoryLine;
use wlcrc_pcm::LINE_WORDS;

/// The content class a generated line belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineClass {
    Zero,
    SmallPositive,
    SmallNegative,
    Pointer,
    Float,
    Text,
    Random,
}

/// Generates write traces matching a [`WorkloadProfile`].
///
/// The generator maintains the current content of every line in the working
/// set; each generated [`WriteRecord`] therefore carries a consistent
/// `(old, new)` pair, exactly like the Simics traces the paper uses.
#[derive(Debug)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: StdRng,
    memory: HashMap<u64, MemoryLine>,
}

impl TraceGenerator {
    /// Creates a generator for `profile` seeded with `seed` (generation is
    /// fully deterministic for a given profile and seed).
    pub fn new(profile: WorkloadProfile, seed: u64) -> TraceGenerator {
        TraceGenerator { profile, rng: StdRng::seed_from_u64(seed), memory: HashMap::new() }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Generates the next write record.
    pub fn next_record(&mut self) -> WriteRecord {
        let slot = self.rng.gen_range(0..self.profile.working_set_lines) as u64;
        let address = slot * 64;
        let old = *self.memory.entry(address).or_insert_with_key(|_| MemoryLine::ZERO);
        // First touch: synthesise an initial value so the very first write is
        // not artificially cheap (old value all zero would be).
        let old = if old == MemoryLine::ZERO && !self.memory.contains_key(&(address | 1)) {
            let init = self.fresh_line();
            self.memory.insert(address | 1, MemoryLine::ZERO); // mark as initialised
            self.memory.insert(address, init);
            init
        } else {
            old
        };
        let new = if self.rng.gen::<f64>() < self.profile.rewrite_similarity {
            self.incremental_update(&old)
        } else {
            self.fresh_line()
        };
        self.memory.insert(address, new);
        WriteRecord::new(address, old, new)
    }

    /// Generates a complete trace of `count` records.
    ///
    /// Thin materialising adapter over [`TraceGenerator::into_stream`], kept
    /// for tests and small workloads; prefer the stream for anything large.
    pub fn generate(&mut self, count: usize) -> Trace {
        let mut trace = Trace::new(self.profile.name.clone());
        for _ in 0..count {
            trace.push(self.next_record());
        }
        trace
    }

    /// Converts the generator into a lazy bounded stream of `count` records,
    /// yielding exactly what [`TraceGenerator::generate`] would materialise.
    pub fn into_stream(self, count: usize) -> crate::source::TraceStream {
        crate::source::TraceStream::from_generator(self, count)
    }

    fn pick_class(&mut self) -> LineClass {
        let mix = self.profile.mix;
        let mut x: f64 = self.rng.gen::<f64>() * mix.total();
        for (class, p) in [
            (LineClass::Zero, mix.zero),
            (LineClass::SmallPositive, mix.small_positive),
            (LineClass::SmallNegative, mix.small_negative),
            (LineClass::Pointer, mix.pointer),
            (LineClass::Float, mix.float),
            (LineClass::Text, mix.text),
            (LineClass::Random, mix.random),
        ] {
            if x < p {
                return class;
            }
            x -= p;
        }
        LineClass::Random
    }

    fn fresh_line(&mut self) -> MemoryLine {
        // Roughly half of real memory lines are homogeneous arrays (one value
        // class across the line); the rest are heterogeneous records/structs
        // mixing pointers, integers of different widths and padding. The
        // heterogeneous lines are what makes fine-grain (per-block) coset
        // selection pay off over line-level selection. Profiles dominated by
        // random content (the synthetic "random workload") stay homogeneous.
        if self.profile.mix.random < 0.5 && self.rng.gen::<f64>() < 0.5 {
            self.mixed_line()
        } else {
            let class = self.pick_class();
            self.line_of_class(class)
        }
    }

    /// A heterogeneous (struct-like) line: every 64-bit field draws its own
    /// content class. Floating-point, text and random fields are excluded so
    /// that heterogeneity does not change the line-level WLC coverage.
    fn mixed_line(&mut self) -> MemoryLine {
        let mut words = [0u64; LINE_WORDS];
        for w in &mut words {
            let class = match self.pick_class() {
                LineClass::Float | LineClass::Text | LineClass::Random => LineClass::SmallPositive,
                other => other,
            };
            *w = self.word_of_class(class);
        }
        MemoryLine::from_words(words)
    }

    /// One 64-bit field of the given class (used for heterogeneous lines).
    fn word_of_class(&mut self, class: LineClass) -> u64 {
        match class {
            LineClass::Zero => 0,
            LineClass::SmallPositive => {
                if self.rng.gen::<f64>() < 0.6 {
                    let bits = *[8usize, 16, 24, 32].get(self.rng.gen_range(0..4)).unwrap();
                    let magnitude = self.rng.gen::<u64>() & ((1u64 << bits) - 1);
                    if self.rng.gen::<f64>() < 0.3 {
                        (magnitude as i64).wrapping_neg() as u64
                    } else {
                        magnitude
                    }
                } else {
                    let shift = self.rng.gen_range(42..=46);
                    let hi = u64::from(self.rng.gen::<u16>() & 0x0FFF) | 0x0800;
                    let lo = u64::from(self.rng.gen::<u16>() & 0x03FF);
                    (hi << shift) | lo
                }
            }
            LineClass::SmallNegative => {
                let bits = *[8usize, 16, 24].get(self.rng.gen_range(0..3)).unwrap();
                let mag = self.rng.gen::<u64>() & ((1u64 << bits) - 1);
                (mag as i64).wrapping_neg() as u64
            }
            LineClass::Pointer => {
                let base = if self.rng.gen::<bool>() {
                    0x0000_7F00_0000_0000u64 | (u64::from(self.rng.gen::<u32>()) << 8)
                } else {
                    0x0100_0000_0000_0000u64 | (u64::from(self.rng.gen::<u32>()) << 20)
                };
                base.wrapping_add(u64::from(self.rng.gen::<u16>()) * 8)
            }
            LineClass::Float => self.rng.gen::<f64>().to_bits(),
            LineClass::Text => {
                let mut bytes = [0u8; 8];
                for b in &mut bytes {
                    *b = self.rng.gen_range(0x20..0x7F);
                }
                u64::from_le_bytes(bytes)
            }
            LineClass::Random => self.rng.gen(),
        }
    }

    fn line_of_class(&mut self, class: LineClass) -> MemoryLine {
        let mut words = [0u64; LINE_WORDS];
        match class {
            LineClass::Zero => {}
            LineClass::SmallPositive => {
                // Width chosen per line. Real integer data is bimodal: loop
                // counters and indices are narrow (8-32 significant bits),
                // while file offsets, hashes, tagged pointers and fixed-point
                // values use most of the word below the sign-extension region
                // (40-58 bits). Wide lines still pass the WLC test for small
                // k but defeat FPC/BDI and WLC with k > 6, reproducing the
                // coverage drop of Figure 4.
                if self.rng.gen::<f64>() < 0.45 {
                    let bits = *[8usize, 16, 24, 32].get(self.rng.gen_range(0..4)).unwrap();
                    let mask = (1u64 << bits) - 1;
                    for w in &mut words {
                        // Occasional zero elements, as in real integer arrays,
                        // and a realistic share of negative values whose sign
                        // extension fills the upper bits with ones.
                        *w = if self.rng.gen::<f64>() < 0.3 {
                            0
                        } else {
                            let magnitude = self.rng.gen::<u64>() & mask;
                            if self.rng.gen::<f64>() < 0.3 {
                                (magnitude as i64).wrapping_neg() as u64
                            } else {
                                magnitude
                            }
                        };
                    }
                } else {
                    // Wide values (file offsets, tagged values, fixed-point):
                    // a dozen significant bits near the top of the usable
                    // range plus a small low-order component. The middle of
                    // the word is zero, so the content stays biased, but the
                    // high bits defeat FPC/BDI and WLC with k > 6.
                    let shift = self.rng.gen_range(42..=46);
                    for w in &mut words {
                        if self.rng.gen::<f64>() < 0.2 {
                            *w = 0;
                            continue;
                        }
                        let hi = u64::from(self.rng.gen::<u16>() & 0x0FFF) | 0x0800;
                        let lo = u64::from(self.rng.gen::<u16>() & 0x03FF);
                        *w = (hi << shift) | lo;
                    }
                }
            }
            LineClass::SmallNegative => {
                let bits = *[8usize, 16, 24].get(self.rng.gen_range(0..3)).unwrap();
                let mask = (1u64 << bits) - 1;
                for w in &mut words {
                    let mag = self.rng.gen::<u64>() & mask;
                    *w = (mag as i64).wrapping_neg() as u64;
                }
            }
            LineClass::Pointer => {
                // Nearby user-space pointers. Half the regions live in the
                // classic 47-bit heap (0x0000_7Fxx...), half in the extended
                // 57-bit VA space of five-level paging, whose addresses defeat
                // WLC once k exceeds 6.
                let base = if self.rng.gen::<bool>() {
                    0x0000_7F00_0000_0000u64 | (u64::from(self.rng.gen::<u32>()) << 8)
                } else {
                    0x0100_0000_0000_0000u64 | (u64::from(self.rng.gen::<u32>()) << 20)
                };
                for w in &mut words {
                    let near: u64 = u64::from(self.rng.gen::<u16>()) * 8;
                    *w = if self.rng.gen::<f64>() < 0.15 { 0 } else { base.wrapping_add(near) };
                }
            }
            LineClass::Float => {
                // Doubles in a narrow magnitude range, as in dense FP arrays.
                for w in &mut words {
                    let v: f64 = self.rng.gen::<f64>() * 1000.0 - 500.0;
                    *w = v.to_bits();
                }
            }
            LineClass::Text => {
                for w in &mut words {
                    let mut bytes = [0u8; 8];
                    for b in &mut bytes {
                        *b = self.rng.gen_range(0x20..0x7F);
                    }
                    *w = u64::from_le_bytes(bytes);
                }
            }
            LineClass::Random => {
                for w in &mut words {
                    *w = self.rng.gen();
                }
            }
        }
        MemoryLine::from_words(words)
    }

    fn incremental_update(&mut self, old: &MemoryLine) -> MemoryLine {
        let mut new = *old;
        let mut changed_any = false;
        for i in 0..LINE_WORDS {
            if self.rng.gen::<f64>() >= self.profile.word_modify_prob {
                continue;
            }
            changed_any = true;
            let w = old.word(i);
            // Preserve the word's general shape: small additive delta for
            // integer-looking words, low-byte churn otherwise.
            let updated = if w == 0 {
                u64::from(self.rng.gen::<u8>())
            } else if w < (1 << 32) {
                let delta = i64::from(self.rng.gen::<i8>());
                (w as i64).wrapping_add(delta).max(0) as u64
            } else {
                // In-place update of a larger value (offset advance, pointer
                // bump, counter increment): a small signed delta on the low
                // part, keeping the upper bytes and the overall bias intact.
                let delta = i64::from(self.rng.gen::<i16>() >> 4);
                w.wrapping_add(delta as u64)
            };
            new.set_word(i, updated);
        }
        if !changed_any {
            // Guarantee at least one modified word so the write is not a no-op.
            let i = self.rng.gen_range(0..LINE_WORDS);
            new.set_word(i, old.word(i) ^ u64::from(self.rng.gen::<u8>()) << 1 | 1);
        }
        new
    }
}

/// Generates `(old, new)` pairs of uniformly random 512-bit lines with no
/// temporal locality, used for the paper's "random workloads" experiments.
#[derive(Debug)]
pub struct RandomTraceGenerator {
    rng: StdRng,
}

impl RandomTraceGenerator {
    /// Creates a random-data generator with the given seed.
    pub fn new(seed: u64) -> RandomTraceGenerator {
        RandomTraceGenerator { rng: StdRng::seed_from_u64(seed) }
    }

    /// Generates one record: independent uniformly random old and new lines.
    pub fn next_record(&mut self) -> WriteRecord {
        let mut old = [0u64; LINE_WORDS];
        let mut new = [0u64; LINE_WORDS];
        for i in 0..LINE_WORDS {
            old[i] = self.rng.gen();
            new[i] = self.rng.gen();
        }
        WriteRecord::new(0, MemoryLine::from_words(old), MemoryLine::from_words(new))
    }

    /// Generates a trace of `count` random records.
    pub fn generate(&mut self, count: usize) -> Trace {
        let mut trace = Trace::new("random");
        for _ in 0..count {
            trace.push(self.next_record());
        }
        trace
    }

    /// Converts the generator into a lazy bounded stream of `count` records.
    pub fn into_stream(self, count: usize) -> crate::source::RandomTraceStream {
        crate::source::RandomTraceStream::from_generator(self, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Benchmark, WorkloadProfile};
    use wlcrc_compress_check::*;

    /// Minimal WLC-style compressibility check reimplemented locally so this
    /// crate does not depend on the compression crate (avoids a cycle).
    mod wlcrc_compress_check {
        use wlcrc_pcm::line::{word, MemoryLine};

        pub fn wlc_compressible(line: &MemoryLine, k: usize) -> bool {
            line.words().iter().all(|&w| word::msbs_identical(w, k))
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = Benchmark::Gcc.profile();
        let a = TraceGenerator::new(p.clone(), 42).generate(200);
        let b = TraceGenerator::new(p, 42).generate(200);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = Benchmark::Gcc.profile();
        let a = TraceGenerator::new(p.clone(), 1).generate(100);
        let b = TraceGenerator::new(p, 2).generate(100);
        assert_ne!(a, b);
    }

    #[test]
    fn old_value_tracks_previous_write() {
        let mut profile = Benchmark::Libquantum.profile();
        profile.working_set_lines = 4; // force frequent rewrites
        let mut generator = TraceGenerator::new(profile, 7);
        let trace = generator.generate(500);
        let mut shadow: HashMap<u64, MemoryLine> = HashMap::new();
        for rec in trace.iter() {
            if let Some(prev) = shadow.get(&rec.address) {
                assert_eq!(*prev, rec.old, "old value must equal the previously written value");
            }
            shadow.insert(rec.address, rec.new);
        }
    }

    #[test]
    fn biased_workloads_are_mostly_wlc_compressible() {
        let mut total = 0usize;
        let mut compressible = 0usize;
        for b in Benchmark::ALL {
            let mut generator = TraceGenerator::new(b.profile(), 11);
            let trace = generator.generate(400);
            for rec in trace.iter() {
                total += 1;
                if wlc_compressible(&rec.new, 6) {
                    compressible += 1;
                }
            }
        }
        let fraction = compressible as f64 / total as f64;
        assert!(
            fraction > 0.85,
            "average WLC(k=6) coverage should match the paper's >91% (got {fraction:.2})"
        );
    }

    #[test]
    fn random_workload_is_rarely_compressible() {
        let mut generator = RandomTraceGenerator::new(3);
        let trace = generator.generate(300);
        let compressible = trace.iter().filter(|r| wlc_compressible(&r.new, 6)).count();
        assert!(compressible < 5);
    }

    #[test]
    fn biased_workloads_have_symbol_bias() {
        // Symbols 00 and 11 must dominate over 01 and 10 on real workloads.
        let mut hist = [0usize; 4];
        for b in Benchmark::ALL {
            let mut generator = TraceGenerator::new(b.profile(), 5);
            for rec in generator.generate(200).iter() {
                let h = rec.new.symbol_histogram();
                for i in 0..4 {
                    hist[i] += h[i];
                }
            }
        }
        let biased = hist[0b00] + hist[0b11];
        let unbiased = hist[0b01] + hist[0b10];
        assert!(biased > 2 * unbiased, "00/11 should dominate (biased {biased} vs {unbiased})");
    }

    #[test]
    fn rewrites_preserve_locality() {
        let mut profile = Benchmark::Astar.profile();
        profile.working_set_lines = 8;
        let mut generator = TraceGenerator::new(profile, 9);
        let trace = generator.generate(800);
        // With strong locality most rewrites should change well under half
        // of the line's bits.
        let mean = trace.mean_changed_bits();
        assert!(mean < 200.0, "mean changed bits {mean}");
        assert!(mean > 0.0);
    }

    #[test]
    fn random_profile_generator_matches_random_class() {
        let p = WorkloadProfile::random_data(64);
        let mut generator = TraceGenerator::new(p, 13);
        let trace = generator.generate(100);
        let compressible = trace.iter().filter(|r| wlc_compressible(&r.new, 6)).count();
        assert!(compressible < 5);
    }
}
