//! Write records and traces.

use serde::{Deserialize, Serialize};
use wlcrc_pcm::line::MemoryLine;

/// One memory write transaction: the line address, the value to be stored and
/// the value being overwritten (required because every scheme is layered on
/// top of differential write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteRecord {
    /// Line-aligned physical address of the write.
    pub address: u64,
    /// The value previously stored at the address.
    pub old: MemoryLine,
    /// The value being written.
    pub new: MemoryLine,
}

impl WriteRecord {
    /// Creates a write record.
    pub fn new(address: u64, old: MemoryLine, new: MemoryLine) -> WriteRecord {
        WriteRecord { address, old, new }
    }

    /// Number of data bits that change in this write.
    pub fn changed_bits(&self) -> u32 {
        self.old.hamming_distance(&self.new)
    }
}

/// A sequence of write records produced by one workload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Name of the workload that produced the trace.
    pub workload: String,
    records: Vec<WriteRecord>,
}

impl Trace {
    /// Creates an empty trace for the named workload.
    pub fn new(workload: impl Into<String>) -> Trace {
        Trace { workload: workload.into(), records: Vec::new() }
    }

    /// Creates a trace from existing records.
    pub fn from_records(workload: impl Into<String>, records: Vec<WriteRecord>) -> Trace {
        Trace { workload: workload.into(), records }
    }

    /// Appends a record.
    pub fn push(&mut self, record: WriteRecord) {
        self.records.push(record);
    }

    /// Number of write records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records of the trace.
    pub fn records(&self) -> &[WriteRecord] {
        &self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> impl Iterator<Item = &WriteRecord> {
        self.records.iter()
    }

    /// A [`TraceSource`](crate::source::TraceSource) replaying this trace's
    /// records — the materialised adapter into the streaming pipeline.
    pub fn source(&self) -> crate::source::TraceRecords<'_> {
        crate::source::TraceRecords::new(self)
    }

    /// Average number of changed bits per write, a quick locality metric.
    pub fn mean_changed_bits(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let total: u64 = self.records.iter().map(|r| u64::from(r.changed_bits())).sum();
        total as f64 / self.records.len() as f64
    }
}

impl Extend<WriteRecord> for Trace {
    fn extend<T: IntoIterator<Item = WriteRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a WriteRecord;
    type IntoIter = std::slice::Iter<'a, WriteRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn changed_bits_counts_difference() {
        let old = MemoryLine::ZERO;
        let mut new = MemoryLine::ZERO;
        new.set_word(0, 0b1011);
        let rec = WriteRecord::new(0x40, old, new);
        assert_eq!(rec.changed_bits(), 3);
    }

    #[test]
    fn trace_accumulates_records() {
        let mut trace = Trace::new("test");
        assert!(trace.is_empty());
        trace.push(WriteRecord::new(0, MemoryLine::ZERO, MemoryLine::ZERO));
        trace.push(WriteRecord::new(64, MemoryLine::ZERO, MemoryLine::ZERO.complement()));
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.mean_changed_bits(), 256.0);
        assert_eq!(trace.iter().count(), 2);
    }

    #[test]
    fn empty_trace_mean_is_zero() {
        assert_eq!(Trace::new("x").mean_changed_bits(), 0.0);
    }
}
