//! Streaming trace sources.
//!
//! The materialise-then-run pipeline of the early releases built every trace
//! as a `Vec<WriteRecord>` before simulating it, so peak memory grew linearly
//! with trace length and a single huge workload could not be processed at
//! all. [`TraceSource`] replaces that: a trace is an *iterator* of
//! [`WriteRecord`]s labelled with the workload that produced it, generated
//! lazily one record at a time. [`Trace`] stays available as a thin
//! materialised adapter ([`Trace::source`]) for tests and back-compat.
//!
//! Three families of sources ship with the crate:
//!
//! * [`TraceStream`] / [`RandomTraceStream`] — lazy, bounded, deterministic
//!   streams over [`TraceGenerator`] / [`RandomTraceGenerator`]; they yield
//!   exactly the records `generate(count)` would have materialised, in the
//!   same order, for the same seed;
//! * [`Trace::source`] — replays an already-materialised trace;
//! * [`from_fn`] — adapts a closure into a bounded source, the building block
//!   for custom bounded-memory streams (replayed database logs, mmap'd trace
//!   files, procedurally generated stress workloads).

use crate::generator::{RandomTraceGenerator, TraceGenerator};
use crate::profile::WorkloadProfile;
use crate::record::{Trace, WriteRecord};

/// A stream of write records belonging to one workload.
///
/// A `TraceSource` is an `Iterator<Item = WriteRecord>` plus the name of the
/// workload that produced the records. Implementations are expected to be
/// *deterministic*: constructing the same source twice must yield the same
/// record sequence, because the experiment engine replays a source once per
/// bank-partition worker instead of buffering records for them.
pub trait TraceSource: Iterator<Item = WriteRecord> {
    /// Name of the workload producing this stream.
    fn workload(&self) -> &str;

    /// Number of records still to come, when known (used for diagnostics and
    /// pre-sizing only — correctness never depends on it).
    fn remaining_hint(&self) -> Option<usize> {
        None
    }

    /// Drains the stream into a materialised [`Trace`] (back-compat helper;
    /// prefer feeding the source to a simulator directly).
    fn collect_trace(mut self) -> Trace
    where
        Self: Sized,
    {
        let mut trace = Trace::new(self.workload().to_string());
        trace.extend(&mut self);
        trace
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn workload(&self) -> &str {
        (**self).workload()
    }

    fn remaining_hint(&self) -> Option<usize> {
        (**self).remaining_hint()
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn workload(&self) -> &str {
        (**self).workload()
    }

    fn remaining_hint(&self) -> Option<usize> {
        (**self).remaining_hint()
    }
}

/// Conversion into a [`TraceSource`], so simulator entry points accept both
/// streams and materialised `&Trace`s (mirroring `IntoIterator`).
pub trait IntoTraceSource {
    /// The source this value converts into.
    type Source: TraceSource;

    /// Performs the conversion.
    fn into_trace_source(self) -> Self::Source;
}

impl<S: TraceSource> IntoTraceSource for S {
    type Source = S;

    fn into_trace_source(self) -> S {
        self
    }
}

impl<'a> IntoTraceSource for &'a Trace {
    type Source = TraceRecords<'a>;

    fn into_trace_source(self) -> TraceRecords<'a> {
        self.source()
    }
}

/// Borrowing source over a materialised [`Trace`] (see [`Trace::source`]).
#[derive(Debug, Clone)]
pub struct TraceRecords<'a> {
    workload: &'a str,
    records: std::slice::Iter<'a, WriteRecord>,
}

impl<'a> TraceRecords<'a> {
    pub(crate) fn new(trace: &'a Trace) -> TraceRecords<'a> {
        TraceRecords { workload: &trace.workload, records: trace.records().iter() }
    }
}

impl Iterator for TraceRecords<'_> {
    type Item = WriteRecord;

    fn next(&mut self) -> Option<WriteRecord> {
        self.records.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.records.size_hint()
    }
}

impl TraceSource for TraceRecords<'_> {
    fn workload(&self) -> &str {
        self.workload
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.records.len())
    }
}

/// Lazy, bounded stream over a [`TraceGenerator`]: yields exactly the records
/// `TraceGenerator::generate(count)` would materialise, one at a time, in
/// O(working-set) memory instead of O(trace-length).
#[derive(Debug)]
pub struct TraceStream {
    generator: TraceGenerator,
    remaining: usize,
}

impl TraceStream {
    /// Creates a bounded stream for `profile`, seeded with `seed` (fully
    /// deterministic: same profile, seed and count → same records).
    pub fn new(profile: WorkloadProfile, seed: u64, count: usize) -> TraceStream {
        TraceGenerator::new(profile, seed).into_stream(count)
    }

    /// Wraps an existing generator into a bounded stream.
    pub(crate) fn from_generator(generator: TraceGenerator, count: usize) -> TraceStream {
        TraceStream { generator, remaining: count }
    }
}

impl Iterator for TraceStream {
    type Item = WriteRecord;

    fn next(&mut self) -> Option<WriteRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.generator.next_record())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl TraceSource for TraceStream {
    fn workload(&self) -> &str {
        &self.generator.profile().name
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// Lazy, bounded stream of uniformly random `(old, new)` line pairs (the
/// streaming form of [`RandomTraceGenerator::generate`]).
#[derive(Debug)]
pub struct RandomTraceStream {
    generator: RandomTraceGenerator,
    remaining: usize,
}

impl RandomTraceStream {
    /// Creates a bounded random-data stream with the given seed.
    pub fn new(seed: u64, count: usize) -> RandomTraceStream {
        RandomTraceGenerator::new(seed).into_stream(count)
    }

    pub(crate) fn from_generator(
        generator: RandomTraceGenerator,
        count: usize,
    ) -> RandomTraceStream {
        RandomTraceStream { generator, remaining: count }
    }
}

impl Iterator for RandomTraceStream {
    type Item = WriteRecord;

    fn next(&mut self) -> Option<WriteRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.generator.next_record())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl TraceSource for RandomTraceStream {
    fn workload(&self) -> &str {
        "random"
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// A bounded source that computes each record from its index via a closure —
/// the building block for custom bounded-memory streams (see [`from_fn`]).
pub struct FnTraceSource<F> {
    workload: String,
    next_index: u64,
    count: u64,
    f: F,
}

/// Builds a bounded [`TraceSource`] named `workload` that yields
/// `f(0), f(1), …, f(count - 1)`.
///
/// Peak memory is whatever `f` itself retains, so arbitrarily long traces can
/// be streamed without materialisation:
///
/// ```
/// use wlcrc_trace::{from_fn, TraceSource, WriteRecord};
/// use wlcrc_pcm::line::MemoryLine;
///
/// let mut source = from_fn("counter", 1_000_000, |i| {
///     let line = MemoryLine::from_words([i; 8]);
///     WriteRecord::new((i % 64) * 64, line, line)
/// });
/// assert_eq!(source.remaining_hint(), Some(1_000_000));
/// assert_eq!(source.next().unwrap().address, 0);
/// ```
pub fn from_fn<F>(workload: impl Into<String>, count: u64, f: F) -> FnTraceSource<F>
where
    F: FnMut(u64) -> WriteRecord,
{
    FnTraceSource { workload: workload.into(), next_index: 0, count, f }
}

impl<F: FnMut(u64) -> WriteRecord> Iterator for FnTraceSource<F> {
    type Item = WriteRecord;

    fn next(&mut self) -> Option<WriteRecord> {
        if self.next_index >= self.count {
            return None;
        }
        let record = (self.f)(self.next_index);
        self.next_index += 1;
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = usize::try_from(self.count - self.next_index).unwrap_or(usize::MAX);
        (left, Some(left))
    }
}

impl<F: FnMut(u64) -> WriteRecord> TraceSource for FnTraceSource<F> {
    fn workload(&self) -> &str {
        &self.workload
    }

    fn remaining_hint(&self) -> Option<usize> {
        usize::try_from(self.count - self.next_index).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;
    use wlcrc_pcm::line::MemoryLine;

    #[test]
    fn stream_matches_generate_for_every_standard_workload() {
        // The lazy stream must yield byte-identical records to the historical
        // materialising path, for every benchmark profile.
        for b in Benchmark::ALL {
            let materialised = TraceGenerator::new(b.profile(), 42).generate(120);
            let streamed = TraceStream::new(b.profile(), 42, 120).collect_trace();
            assert_eq!(materialised, streamed, "{b:?}");
        }
    }

    #[test]
    fn random_stream_matches_generate() {
        let materialised = RandomTraceGenerator::new(9).generate(80);
        let streamed = RandomTraceStream::new(9, 80).collect_trace();
        assert_eq!(materialised, streamed);
    }

    #[test]
    fn stream_is_bounded_and_reports_progress() {
        let mut stream = TraceStream::new(Benchmark::Gcc.profile(), 1, 3);
        assert_eq!(stream.workload(), "gcc");
        assert_eq!(stream.remaining_hint(), Some(3));
        assert_eq!(stream.size_hint(), (3, Some(3)));
        assert!(stream.next().is_some());
        assert_eq!(stream.remaining_hint(), Some(2));
        assert_eq!(stream.by_ref().count(), 2);
        assert_eq!(stream.next(), None);
        assert_eq!(stream.remaining_hint(), Some(0));
    }

    #[test]
    fn trace_source_adapter_replays_records() {
        let trace = TraceGenerator::new(Benchmark::Mcf.profile(), 5).generate(40);
        let replayed = trace.source().collect_trace();
        assert_eq!(trace, replayed);
        assert_eq!(trace.source().workload(), "mcf");
        assert_eq!(trace.source().remaining_hint(), Some(40));
    }

    #[test]
    fn from_fn_yields_count_records() {
        let mut calls = 0u64;
        let source = from_fn("synthetic", 10, |i| {
            calls += 1;
            WriteRecord::new(i * 64, MemoryLine::ZERO, MemoryLine::from_words([i; 8]))
        });
        let trace = source.collect_trace();
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.workload, "synthetic");
        assert_eq!(calls, 10);
        assert_eq!(trace.records()[3].address, 3 * 64);
    }

    #[test]
    fn boxed_and_borrowed_sources_still_expose_the_workload() {
        let mut boxed: Box<dyn TraceSource> =
            Box::new(TraceStream::new(Benchmark::Lbm.profile(), 2, 5));
        assert_eq!(boxed.workload(), "lbm");
        let by_ref = &mut boxed;
        assert_eq!(by_ref.workload(), "lbm");
        assert_eq!(by_ref.count(), 5);
    }
}
