//! Synthetic write traces for the WLCRC reproduction.
//!
//! The paper evaluates on memory write traces collected with Simics while
//! running twelve write-intensive SPEC CPU2006 benchmarks plus `canneal` from
//! PARSEC. Those traces are not redistributable, so this crate substitutes
//! *synthetic trace generators*: each benchmark is described by a
//! [`profile::WorkloadProfile`] that captures the statistics the encoding
//! schemes are sensitive to —
//!
//! * the mix of line content classes (zero lines, small signed integers,
//!   pointer arrays, doubles, ASCII text, random payloads), which determines
//!   symbol-frequency bias and Word-Level-Compression coverage;
//! * temporal locality (how similar a rewritten line is to the value it
//!   overwrites), which determines how effective differential writes are;
//! * memory intensity (relative number of line writes), which separates the
//!   high-memory-intensity (HMI) and low-memory-intensity (LMI) groups.
//!
//! [`generator::TraceGenerator`] turns a profile into a stream of
//! [`record::WriteRecord`]s carrying both the value to be written and the
//! value being overwritten, exactly the information the paper's traces store.
//!
//! Traces are consumed through the [`source::TraceSource`] streaming
//! abstraction: a bounded iterator of records labelled with its workload.
//! [`source::TraceStream`] generates records lazily in O(working-set) memory;
//! [`record::Trace`] remains as a thin materialised adapter
//! ([`record::Trace::source`]) for tests and small workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod generator;
pub mod profile;
pub mod record;
pub mod source;

pub use generator::{RandomTraceGenerator, TraceGenerator};
pub use profile::{Benchmark, IntensityClass, WorkloadProfile};
pub use record::{Trace, WriteRecord};
pub use source::{
    from_fn, FnTraceSource, IntoTraceSource, RandomTraceStream, TraceRecords, TraceSource,
    TraceStream,
};
