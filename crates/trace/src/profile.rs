//! Workload profiles describing the value statistics of each benchmark.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Memory-intensity group a benchmark belongs to in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntensityClass {
    /// High memory intensity (HMI).
    High,
    /// Low memory intensity (LMI).
    Low,
}

impl fmt::Display for IntensityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntensityClass::High => write!(f, "HMI"),
            IntensityClass::Low => write!(f, "LMI"),
        }
    }
}

/// The benchmarks evaluated by the paper: twelve write-intensive SPEC CPU2006
/// workloads plus `canneal` from PARSEC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Leslie3d,
    Milc,
    Wrf,
    Soplex,
    Zeusmp,
    Lbm,
    Gcc,
    Astar,
    Mcf,
    Canneal,
    Libquantum,
    Omnetpp,
}

impl Benchmark {
    /// All benchmarks in the order the paper's figures list them
    /// (HMI group first, then LMI group).
    pub const ALL: [Benchmark; 12] = [
        Benchmark::Leslie3d,
        Benchmark::Milc,
        Benchmark::Wrf,
        Benchmark::Soplex,
        Benchmark::Zeusmp,
        Benchmark::Lbm,
        Benchmark::Gcc,
        Benchmark::Astar,
        Benchmark::Mcf,
        Benchmark::Canneal,
        Benchmark::Libquantum,
        Benchmark::Omnetpp,
    ];

    /// The short name used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            Benchmark::Leslie3d => "lesl",
            Benchmark::Milc => "milc",
            Benchmark::Wrf => "wrf",
            Benchmark::Soplex => "sopl",
            Benchmark::Zeusmp => "zeus",
            Benchmark::Lbm => "lbm",
            Benchmark::Gcc => "gcc",
            Benchmark::Astar => "asta",
            Benchmark::Mcf => "mcf",
            Benchmark::Canneal => "cann",
            Benchmark::Libquantum => "libq",
            Benchmark::Omnetpp => "omne",
        }
    }

    /// The memory-intensity group of the benchmark.
    pub fn intensity(self) -> IntensityClass {
        match self {
            Benchmark::Leslie3d
            | Benchmark::Milc
            | Benchmark::Wrf
            | Benchmark::Soplex
            | Benchmark::Zeusmp
            | Benchmark::Lbm
            | Benchmark::Gcc => IntensityClass::High,
            _ => IntensityClass::Low,
        }
    }

    /// The synthetic profile standing in for this benchmark's trace.
    pub fn profile(self) -> WorkloadProfile {
        WorkloadProfile::for_benchmark(self)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Probabilities of the different line-content classes a workload writes.
///
/// Classes are chosen per line (not per word) because the content of a memory
/// line is strongly correlated: a line in the middle of a `double` array is
/// all doubles, a page of pointers is all pointers, and so on. The mix
/// controls symbol-frequency bias and WLC/FPC/BDI/COC coverage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineClassMix {
    /// Entirely zero lines.
    pub zero: f64,
    /// Small non-negative integers (fits in 8–32 bits).
    pub small_positive: f64,
    /// Small negative integers (sign-extended ones in the upper bits).
    pub small_negative: f64,
    /// Arrays of nearby 48-bit pointers.
    pub pointer: f64,
    /// IEEE-754 doubles with a common exponent range.
    pub float: f64,
    /// ASCII text.
    pub text: f64,
    /// Uniformly random payloads.
    pub random: f64,
}

impl LineClassMix {
    /// Sum of all class probabilities (should be ≈ 1).
    pub fn total(&self) -> f64 {
        self.zero
            + self.small_positive
            + self.small_negative
            + self.pointer
            + self.float
            + self.text
            + self.random
    }

    /// Checks that the mix forms a probability distribution.
    ///
    /// # Panics
    ///
    /// Panics if any probability is negative or the sum is not within 1e-6 of 1.
    pub fn validate(&self) {
        for (name, p) in [
            ("zero", self.zero),
            ("small_positive", self.small_positive),
            ("small_negative", self.small_negative),
            ("pointer", self.pointer),
            ("float", self.float),
            ("text", self.text),
            ("random", self.random),
        ] {
            assert!(p >= 0.0, "probability {name} must be non-negative");
        }
        assert!(
            (self.total() - 1.0).abs() < 1e-6,
            "line class mix must sum to 1 (got {})",
            self.total()
        );
    }
}

/// A complete synthetic workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Workload name used in reports.
    pub name: String,
    /// Memory-intensity group.
    pub intensity: IntensityClass,
    /// Relative number of line writes per unit of execution (used to scale
    /// per-workload totals; HMI benchmarks are 3–10× LMI ones).
    pub write_intensity: f64,
    /// Number of distinct line addresses in the working set.
    pub working_set_lines: usize,
    /// Probability that a rewrite of a line is an incremental update of its
    /// previous value rather than an unrelated new value.
    pub rewrite_similarity: f64,
    /// When performing an incremental update, probability that each 64-bit
    /// word of the line is modified.
    pub word_modify_prob: f64,
    /// Line content class mix.
    pub mix: LineClassMix,
}

impl WorkloadProfile {
    /// The profile of one of the paper's benchmarks.
    ///
    /// The mixes are calibrated so that the aggregate statistics match what
    /// the paper reports: WLC with k ≤ 6 covers >91 % of lines on average,
    /// FPC+BDI compresses ≈30 % of lines below 369 bits, `00`/`11` symbols
    /// dominate, and the HMI group writes several times more lines than LMI.
    pub fn for_benchmark(benchmark: Benchmark) -> WorkloadProfile {
        use Benchmark::*;
        let (write_intensity, working_set, similarity, word_mod, mix) = match benchmark {
            // Scientific FP codes: the write traffic is dominated by zeroed
            // regions, index/integer data and small-magnitude values, with a
            // modest fraction of raw double arrays; high intensity.
            Leslie3d => (
                10.0,
                4096,
                0.55,
                0.45,
                LineClassMix {
                    zero: 0.32,
                    small_positive: 0.36,
                    small_negative: 0.08,
                    pointer: 0.12,
                    float: 0.06,
                    text: 0.01,
                    random: 0.05,
                },
            ),
            Milc => (
                9.0,
                8192,
                0.50,
                0.50,
                LineClassMix {
                    zero: 0.30,
                    small_positive: 0.36,
                    small_negative: 0.07,
                    pointer: 0.12,
                    float: 0.08,
                    text: 0.01,
                    random: 0.06,
                },
            ),
            Wrf => (
                7.0,
                4096,
                0.60,
                0.40,
                LineClassMix {
                    zero: 0.38,
                    small_positive: 0.36,
                    small_negative: 0.06,
                    pointer: 0.10,
                    float: 0.05,
                    text: 0.02,
                    random: 0.03,
                },
            ),
            Soplex => (
                6.5,
                4096,
                0.60,
                0.35,
                LineClassMix {
                    zero: 0.33,
                    small_positive: 0.36,
                    small_negative: 0.08,
                    pointer: 0.14,
                    float: 0.04,
                    text: 0.02,
                    random: 0.03,
                },
            ),
            Zeusmp => (
                6.0,
                4096,
                0.62,
                0.35,
                LineClassMix {
                    zero: 0.38,
                    small_positive: 0.35,
                    small_negative: 0.07,
                    pointer: 0.11,
                    float: 0.04,
                    text: 0.02,
                    random: 0.03,
                },
            ),
            Lbm => (
                5.5,
                8192,
                0.45,
                0.55,
                LineClassMix {
                    zero: 0.28,
                    small_positive: 0.36,
                    small_negative: 0.08,
                    pointer: 0.10,
                    float: 0.10,
                    text: 0.02,
                    random: 0.06,
                },
            ),
            Gcc => (
                5.0,
                2048,
                0.65,
                0.30,
                LineClassMix {
                    zero: 0.36,
                    small_positive: 0.29,
                    small_negative: 0.08,
                    pointer: 0.20,
                    float: 0.02,
                    text: 0.03,
                    random: 0.02,
                },
            ),
            // LMI group.
            Astar => (
                2.0,
                2048,
                0.70,
                0.25,
                LineClassMix {
                    zero: 0.30,
                    small_positive: 0.35,
                    small_negative: 0.08,
                    pointer: 0.22,
                    float: 0.02,
                    text: 0.02,
                    random: 0.01,
                },
            ),
            Mcf => (
                2.5,
                4096,
                0.60,
                0.35,
                LineClassMix {
                    zero: 0.26,
                    small_positive: 0.33,
                    small_negative: 0.10,
                    pointer: 0.24,
                    float: 0.02,
                    text: 0.02,
                    random: 0.03,
                },
            ),
            Canneal => (
                2.2,
                8192,
                0.55,
                0.40,
                LineClassMix {
                    zero: 0.24,
                    small_positive: 0.32,
                    small_negative: 0.08,
                    pointer: 0.28,
                    float: 0.03,
                    text: 0.02,
                    random: 0.03,
                },
            ),
            Libquantum => (
                1.8,
                1024,
                0.75,
                0.20,
                LineClassMix {
                    zero: 0.40,
                    small_positive: 0.36,
                    small_negative: 0.06,
                    pointer: 0.10,
                    float: 0.04,
                    text: 0.02,
                    random: 0.02,
                },
            ),
            Omnetpp => (
                1.5,
                2048,
                0.68,
                0.28,
                LineClassMix {
                    zero: 0.31,
                    small_positive: 0.30,
                    small_negative: 0.08,
                    pointer: 0.24,
                    float: 0.02,
                    text: 0.03,
                    random: 0.02,
                },
            ),
        };
        let profile = WorkloadProfile {
            name: benchmark.short_name().to_string(),
            intensity: benchmark.intensity(),
            write_intensity,
            working_set_lines: working_set,
            rewrite_similarity: similarity,
            word_modify_prob: word_mod,
            mix,
        };
        profile.mix.validate();
        profile
    }

    /// A profile writing uniformly random data with no locality; used for the
    /// "random workloads" studies (Figures 1(a) and 2).
    pub fn random_data(working_set_lines: usize) -> WorkloadProfile {
        WorkloadProfile {
            name: "random".to_string(),
            intensity: IntensityClass::High,
            write_intensity: 1.0,
            working_set_lines,
            rewrite_similarity: 0.0,
            word_modify_prob: 1.0,
            mix: LineClassMix {
                zero: 0.0,
                small_positive: 0.0,
                small_negative: 0.0,
                pointer: 0.0,
                float: 0.0,
                text: 0.0,
                random: 1.0,
            },
        }
    }

    /// Profiles for all twelve benchmarks, in the paper's figure order.
    pub fn all_benchmarks() -> Vec<WorkloadProfile> {
        Benchmark::ALL.iter().map(|b| b.profile()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_profile_is_valid() {
        for b in Benchmark::ALL {
            let p = b.profile();
            p.mix.validate();
            assert!(p.write_intensity > 0.0);
            assert!(p.working_set_lines > 0);
            assert!((0.0..=1.0).contains(&p.rewrite_similarity));
            assert!((0.0..=1.0).contains(&p.word_modify_prob));
            assert_eq!(p.name, b.short_name());
        }
    }

    #[test]
    fn hmi_benchmarks_write_more_than_lmi() {
        let hmi_min = Benchmark::ALL
            .iter()
            .filter(|b| b.intensity() == IntensityClass::High)
            .map(|b| b.profile().write_intensity)
            .fold(f64::INFINITY, f64::min);
        let lmi_max = Benchmark::ALL
            .iter()
            .filter(|b| b.intensity() == IntensityClass::Low)
            .map(|b| b.profile().write_intensity)
            .fold(0.0, f64::max);
        assert!(hmi_min > lmi_max);
    }

    #[test]
    fn benchmark_groups_match_paper() {
        assert_eq!(Benchmark::Leslie3d.intensity(), IntensityClass::High);
        assert_eq!(Benchmark::Gcc.intensity(), IntensityClass::High);
        assert_eq!(Benchmark::Canneal.intensity(), IntensityClass::Low);
        assert_eq!(Benchmark::Omnetpp.intensity(), IntensityClass::Low);
        let hmi = Benchmark::ALL.iter().filter(|b| b.intensity() == IntensityClass::High).count();
        assert_eq!(hmi, 7);
    }

    #[test]
    fn random_profile_is_pure_random() {
        let p = WorkloadProfile::random_data(128);
        assert_eq!(p.mix.random, 1.0);
        assert_eq!(p.rewrite_similarity, 0.0);
        p.mix.validate();
    }

    #[test]
    #[should_panic]
    fn invalid_mix_is_rejected() {
        let mix = LineClassMix {
            zero: 0.9,
            small_positive: 0.9,
            small_negative: 0.0,
            pointer: 0.0,
            float: 0.0,
            text: 0.0,
            random: 0.0,
        };
        mix.validate();
    }

    #[test]
    fn display_names() {
        assert_eq!(Benchmark::Leslie3d.to_string(), "lesl");
        assert_eq!(IntensityClass::High.to_string(), "HMI");
    }
}
