//! Fingerprintable workload identity.
//!
//! The persistent result store (`wlcrc_store`) caches experiment cells by a
//! content fingerprint, and a cell's result depends on *exactly which write
//! records* its workload produces. This module gives every workload shape a
//! stable identity value:
//!
//! * a [`WorkloadProfile`] is identified by its full parameter set — two
//!   profiles with equal parameters generate equal traces for equal seeds,
//!   and any parameter tweak (a mix probability, the working-set size, ...)
//!   changes the identity and therefore the cache address;
//! * a materialised [`Trace`] is identified by a content digest streamed
//!   over its records (name, addresses, old/new line words), so a
//!   hand-built trace caches correctly without the store ever storing the
//!   trace itself.
//!
//! Custom [`TraceSource`](crate::source::TraceSource) streams built from
//! closures have no inspectable identity and are deliberately *not*
//! fingerprintable — the experiment engine bypasses the cache for them
//! rather than risking a false hit.

use crate::profile::WorkloadProfile;
use crate::record::Trace;
use serde::{Serialize, Value};
use wlcrc_store::{Fingerprint, StableHasher};

impl WorkloadProfile {
    /// The profile's self-describing identity value: every parameter that
    /// influences generated records, as serialized by the derive. Stored
    /// inside cache keys so `storectl inspect` shows the full profile.
    pub fn identity_value(&self) -> Value {
        self.to_value()
    }

    /// The profile's content fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of_value(&self.identity_value())
    }
}

impl Trace {
    /// A content digest over the trace's name and every record, streamed so
    /// a long trace is never materialised a second time. Two traces have
    /// equal digests exactly when they replay identically.
    pub fn content_fingerprint(&self) -> Fingerprint {
        let mut hasher = StableHasher::new();
        hasher.update(self.workload.as_bytes());
        // A separator no UTF-8 name can contain, so ("ab", 1 record) can
        // never collide with ("a", ...) prefix confusions.
        hasher.update(&[0xFF]);
        hasher.update(&(self.len() as u64).to_le_bytes());
        for record in self.iter() {
            hasher.update(&record.address.to_le_bytes());
            for word in record.old.words() {
                hasher.update(&word.to_le_bytes());
            }
            for word in record.new.words() {
                hasher.update(&word.to_le_bytes());
            }
        }
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;
    use crate::record::WriteRecord;
    use wlcrc_pcm::line::MemoryLine;

    #[test]
    fn profile_fingerprint_is_stable_and_parameter_sensitive() {
        let gcc = Benchmark::Gcc.profile();
        assert_eq!(gcc.fingerprint(), Benchmark::Gcc.profile().fingerprint());
        assert_ne!(gcc.fingerprint(), Benchmark::Mcf.profile().fingerprint());
        let mut tweaked = Benchmark::Gcc.profile();
        tweaked.working_set_lines += 1;
        assert_ne!(gcc.fingerprint(), tweaked.fingerprint());
        let mut biased = Benchmark::Gcc.profile();
        biased.mix.zero += 1e-9;
        biased.mix.random -= 1e-9;
        assert_ne!(gcc.fingerprint(), biased.fingerprint(), "mix probabilities are identity");
    }

    #[test]
    fn profile_identity_is_self_describing() {
        let value = Benchmark::Lbm.profile().identity_value();
        let record = value.as_record("WorkloadProfile").expect("profile record");
        assert_eq!(record.field::<String>("name").unwrap(), "lbm");
        assert!(record.raw("mix").is_some());
    }

    #[test]
    fn trace_digest_tracks_content() {
        let line = |w: u64| MemoryLine::from_words([w; 8]);
        let mut a = Trace::new("t");
        a.push(WriteRecord::new(0, line(1), line(2)));
        a.push(WriteRecord::new(64, line(2), line(3)));
        let mut same = Trace::new("t");
        same.push(WriteRecord::new(0, line(1), line(2)));
        same.push(WriteRecord::new(64, line(2), line(3)));
        assert_eq!(a.content_fingerprint(), same.content_fingerprint());

        let mut renamed = Trace::new("u");
        renamed.extend(a.iter().copied());
        assert_ne!(a.content_fingerprint(), renamed.content_fingerprint());

        let mut reordered = Trace::new("t");
        reordered.push(WriteRecord::new(64, line(2), line(3)));
        reordered.push(WriteRecord::new(0, line(1), line(2)));
        assert_ne!(a.content_fingerprint(), reordered.content_fingerprint());

        let mut retargeted = Trace::new("t");
        retargeted.push(WriteRecord::new(0, line(1), line(2)));
        retargeted.push(WriteRecord::new(128, line(2), line(3)));
        assert_ne!(a.content_fingerprint(), retargeted.content_fingerprint());

        let mut rewritten = Trace::new("t");
        rewritten.push(WriteRecord::new(0, line(1), line(2)));
        rewritten.push(WriteRecord::new(64, line(2), line(4)));
        assert_ne!(a.content_fingerprint(), rewritten.content_fingerprint());
    }

    #[test]
    fn empty_traces_differ_only_by_name() {
        assert_eq!(Trace::new("t").content_fingerprint(), Trace::new("t").content_fingerprint());
        assert_ne!(Trace::new("t").content_fingerprint(), Trace::new("u").content_fingerprint());
    }
}
