//! Arithmetic over the binary extension field GF(2^m).
//!
//! Implemented with log/antilog tables generated from a primitive polynomial,
//! which is all the BCH encoder/decoder needs.

use std::fmt;

/// Default primitive polynomials for GF(2^m), indexed by `m` (3..=13).
/// Each entry is the polynomial with the implicit leading `x^m` term included
/// as bit `m` (e.g. `x^10 + x^3 + 1` is `0b100_0000_1001`).
const PRIMITIVE_POLYS: [(usize, u32); 11] = [
    (3, 0b1011),
    (4, 0b1_0011),
    (5, 0b10_0101),
    (6, 0b100_0011),
    (7, 0b1000_1001),
    (8, 0b1_0001_1101),
    (9, 0b10_0001_0001),
    (10, 0b100_0000_1001),
    (11, 0b1000_0000_0101),
    (12, 0b1_0000_0101_0011),
    (13, 0b10_0000_0001_1011),
];

/// The finite field GF(2^m) with precomputed exponential and logarithm tables.
#[derive(Clone)]
pub struct GaloisField {
    m: usize,
    size: usize,
    exp: Vec<u32>,
    log: Vec<u32>,
}

impl GaloisField {
    /// Constructs GF(2^m) using a standard primitive polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not in `3..=13`.
    pub fn new(m: usize) -> GaloisField {
        let poly = PRIMITIVE_POLYS
            .iter()
            .find(|(deg, _)| *deg == m)
            .map(|(_, p)| *p)
            .unwrap_or_else(|| panic!("no primitive polynomial recorded for m = {m}"));
        GaloisField::with_polynomial(m, poly)
    }

    /// Constructs GF(2^m) from an explicit primitive polynomial (with the
    /// leading term included as bit `m`).
    ///
    /// # Panics
    ///
    /// Panics if `m` is not in `2..=16` or the polynomial does not generate
    /// the full multiplicative group (i.e. it is not primitive).
    pub fn with_polynomial(m: usize, poly: u32) -> GaloisField {
        assert!((2..=16).contains(&m), "field degree out of supported range");
        let size = 1usize << m;
        let mut exp = vec![0u32; 2 * size];
        let mut log = vec![0u32; size];
        let mut x = 1u32;
        for (i, slot) in exp.iter_mut().enumerate().take(size - 1) {
            *slot = x;
            assert!(!(x == 1 && i != 0), "polynomial {poly:#x} is not primitive for GF(2^{m})");
            log[x as usize] = i as u32;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        // Duplicate the table so that exp[i + (size-1)] == exp[i].
        for i in (size - 1)..(2 * size) {
            exp[i] = exp[i % (size - 1)];
        }
        GaloisField { m, size, exp, log }
    }

    /// The extension degree `m`.
    pub fn degree(&self) -> usize {
        self.m
    }

    /// The number of field elements, `2^m`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The order of the multiplicative group, `2^m - 1`.
    pub fn order(&self) -> usize {
        self.size - 1
    }

    /// `alpha^i`, where `alpha` is the primitive element.
    pub fn alpha_pow(&self, i: usize) -> u32 {
        self.exp[i % self.order()]
    }

    /// Discrete logarithm of a non-zero element.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0`.
    pub fn log(&self, x: u32) -> usize {
        assert!(x != 0, "log of zero is undefined");
        self.log[x as usize] as usize
    }

    /// Field addition (XOR).
    pub fn add(&self, a: u32, b: u32) -> u32 {
        a ^ b
    }

    /// Field multiplication.
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[(self.log[a as usize] + self.log[b as usize]) as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn inv(&self, a: u32) -> u32 {
        assert!(a != 0, "zero has no multiplicative inverse");
        self.exp[self.order() - self.log[a as usize] as usize]
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn div(&self, a: u32, b: u32) -> u32 {
        self.mul(a, self.inv(b))
    }

    /// `a^e` by repeated squaring in the exponent domain.
    pub fn pow(&self, a: u32, e: usize) -> u32 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let l = self.log[a as usize] as usize;
        self.exp[(l * e) % self.order()]
    }

    /// The minimal polynomial of `alpha^i` over GF(2), returned as a bit mask
    /// (bit `j` set means the coefficient of `x^j` is 1).
    pub fn minimal_polynomial(&self, i: usize) -> u64 {
        // Collect the conjugacy class {i, 2i, 4i, ...} mod (2^m - 1).
        let order = self.order();
        let mut class = Vec::new();
        let mut cur = i % order;
        loop {
            if class.contains(&cur) {
                break;
            }
            class.push(cur);
            cur = (cur * 2) % order;
        }
        // Multiply out (x - alpha^j) for every j in the class, over GF(2^m);
        // the result has coefficients in GF(2).
        let mut poly: Vec<u32> = vec![1]; // constant polynomial 1
        for &j in &class {
            let root = self.alpha_pow(j);
            // poly = poly * (x + root)
            let mut next = vec![0u32; poly.len() + 1];
            for (deg, &coeff) in poly.iter().enumerate() {
                next[deg + 1] ^= coeff; // x * coeff
                next[deg] ^= self.mul(coeff, root);
            }
            poly = next;
        }
        let mut mask = 0u64;
        for (deg, &coeff) in poly.iter().enumerate() {
            assert!(coeff <= 1, "minimal polynomial must have GF(2) coefficients");
            if coeff == 1 {
                mask |= 1 << deg;
            }
        }
        mask
    }
}

impl fmt::Debug for GaloisField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GaloisField(2^{})", self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_agrees_with_schoolbook_in_gf16() {
        let gf = GaloisField::new(4);
        // Schoolbook carry-less multiply reduced by x^4 + x + 1.
        fn slow_mul(mut a: u32, mut b: u32) -> u32 {
            let mut acc = 0u32;
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                a <<= 1;
                if a & 0x10 != 0 {
                    a ^= 0b1_0011;
                }
                b >>= 1;
            }
            acc
        }
        for a in 0..16u32 {
            for b in 0..16u32 {
                assert_eq!(gf.mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inverse_is_correct() {
        let gf = GaloisField::new(10);
        for a in 1..gf.size() as u32 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let gf = GaloisField::new(8);
        for a in [1u32, 2, 3, 87, 255] {
            let mut acc = 1u32;
            for e in 0..20usize {
                assert_eq!(gf.pow(a, e), acc);
                acc = gf.mul(acc, a);
            }
        }
    }

    #[test]
    fn alpha_generates_whole_group() {
        let gf = GaloisField::new(10);
        let mut seen = vec![false; gf.size()];
        for i in 0..gf.order() {
            let x = gf.alpha_pow(i);
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
        assert!(!seen[0]);
    }

    #[test]
    fn minimal_polynomial_of_alpha_is_the_primitive_polynomial() {
        let gf = GaloisField::new(10);
        assert_eq!(gf.minimal_polynomial(1), 0b100_0000_1001);
    }

    #[test]
    fn minimal_polynomial_divides_x_order_plus_one() {
        // alpha^3's minimal polynomial must have alpha^3 as a root.
        let gf = GaloisField::new(10);
        let m3 = gf.minimal_polynomial(3);
        let mut acc = 0u32;
        for deg in 0..64 {
            if (m3 >> deg) & 1 == 1 {
                acc ^= gf.pow(gf.alpha_pow(3), deg);
            }
        }
        assert_eq!(acc, 0);
    }

    #[test]
    #[should_panic]
    fn log_of_zero_panics() {
        let gf = GaloisField::new(4);
        let _ = gf.log(0);
    }
}
