//! The (72, 64) extended Hamming (SEC-DED) code and its dual, used by the
//! FlipMin scheme to derive coset candidates.

use crate::bits::BitVec;
use std::fmt;

/// Number of data bits protected by the code.
pub const DATA_BITS: usize = 64;
/// Number of check bits (7 Hamming bits + 1 overall parity bit).
pub const CHECK_BITS: usize = 8;
/// Total codeword length.
pub const CODE_BITS: usize = DATA_BITS + CHECK_BITS;

/// The (72, 64) extended Hamming code (single-error-correcting,
/// double-error-detecting).
///
/// Codewords are laid out as the 64 data bits followed by the 8 check bits.
/// The dual code of its generator matrix is the 8-dimensional code spanned by
/// the parity-check rows; [`Hamming7264::dual_basis`] exposes that basis,
/// which FlipMin combines into coset candidates.
#[derive(Clone)]
pub struct Hamming7264 {
    /// `parity_masks[j]` has a bit set for every data-bit position that
    /// participates in check bit `j` (for `j < 7`); index 7 is the overall
    /// parity over all data and check bits.
    parity_masks: [u64; CHECK_BITS],
}

/// The outcome of decoding a possibly corrupted codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HammingOutcome {
    /// The codeword was clean.
    Clean,
    /// A single error was corrected (at the given codeword bit position).
    Corrected(usize),
    /// A double error was detected but cannot be corrected.
    DoubleError,
}

impl Hamming7264 {
    /// Builds the standard (72, 64) SEC-DED code.
    pub fn new() -> Hamming7264 {
        // Assign each of the 64 data bits a distinct 7-bit syndrome value with
        // at least two bits set (values with a single bit set are reserved for
        // the check bits themselves). There are 120 such values in 0..128, so
        // taking the first 64 in increasing order is a valid assignment.
        let mut syndromes = Vec::with_capacity(DATA_BITS);
        let mut v = 3u32;
        while syndromes.len() < DATA_BITS {
            if v.count_ones() >= 2 {
                syndromes.push(v);
            }
            v += 1;
        }
        let mut parity_masks = [0u64; CHECK_BITS];
        for (data_bit, syn) in syndromes.iter().enumerate() {
            for (j, mask) in parity_masks.iter_mut().enumerate().take(7) {
                if (syn >> j) & 1 == 1 {
                    *mask |= 1 << data_bit;
                }
            }
        }
        // The overall parity covers every data bit (check bits are added in
        // during encode/decode).
        parity_masks[7] = u64::MAX;
        Hamming7264 { parity_masks }
    }

    /// Encodes 64 data bits into a 72-bit codeword (data bits first).
    pub fn encode(&self, data: u64) -> BitVec {
        let mut out = BitVec::from_u64(data, DATA_BITS);
        let mut check = [false; CHECK_BITS];
        for (slot, mask) in check.iter_mut().zip(self.parity_masks.iter().take(7)) {
            *slot = ((data & mask).count_ones() & 1) == 1;
        }
        let overall = (data.count_ones() as usize + check.iter().filter(|b| **b).count()) % 2 == 1;
        check[7] = overall;
        for c in check {
            out.push(c);
        }
        out
    }

    /// Decodes a 72-bit codeword, correcting a single error if present.
    /// Returns the corrected data together with the decoding outcome.
    ///
    /// # Panics
    ///
    /// Panics if `word.len() != 72`.
    pub fn decode(&self, word: &BitVec) -> (u64, HammingOutcome) {
        assert_eq!(word.len(), CODE_BITS, "a (72,64) codeword is 72 bits");
        let data = word.read_u64(0, DATA_BITS);
        let mut syndrome = 0u32;
        for j in 0..7 {
            let expected = ((data & self.parity_masks[j]).count_ones() & 1) == 1;
            let stored = word.get(DATA_BITS + j);
            if expected != stored {
                syndrome |= 1 << j;
            }
        }
        let ones = (0..CODE_BITS).filter(|&i| word.get(i)).count();
        let overall_parity_error = ones % 2 == 1;

        if syndrome == 0 && !overall_parity_error {
            return (data, HammingOutcome::Clean);
        }
        if !overall_parity_error {
            // Non-zero syndrome but even overall parity => two errors.
            return (data, HammingOutcome::DoubleError);
        }
        // Single error: locate it.
        if syndrome == 0 {
            // The overall parity bit itself flipped.
            return (data, HammingOutcome::Corrected(CODE_BITS - 1));
        }
        if syndrome.count_ones() == 1 {
            // One of the seven check bits flipped; data is intact.
            let check_idx = syndrome.trailing_zeros() as usize;
            return (data, HammingOutcome::Corrected(DATA_BITS + check_idx));
        }
        // A data bit flipped: find which data bit has this syndrome.
        for data_bit in 0..DATA_BITS {
            let mut s = 0u32;
            for j in 0..7 {
                if (self.parity_masks[j] >> data_bit) & 1 == 1 {
                    s |= 1 << j;
                }
            }
            if s == syndrome {
                return (data ^ (1 << data_bit), HammingOutcome::Corrected(data_bit));
            }
        }
        (data, HammingOutcome::DoubleError)
    }

    /// A basis of the dual code: the eight parity-check rows, expressed as
    /// 72-bit vectors (data-bit participation in the low 64 bits, the identity
    /// over the check bits in the high 8 bits).
    pub fn dual_basis(&self) -> Vec<u128> {
        let mut basis = Vec::with_capacity(CHECK_BITS);
        for j in 0..CHECK_BITS {
            let mut row = u128::from(self.parity_masks[j]);
            row |= 1u128 << (DATA_BITS + j);
            if j == 7 {
                // The overall parity row also covers the other check bits.
                for k in 0..7 {
                    row |= 1u128 << (DATA_BITS + k);
                }
            }
            basis.push(row);
        }
        basis
    }
}

impl Default for Hamming7264 {
    fn default() -> Hamming7264 {
        Hamming7264::new()
    }
}

impl fmt::Debug for Hamming7264 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hamming7264(SEC-DED)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn clean_round_trip() {
        let code = Hamming7264::new();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let data: u64 = rng.gen();
            let word = code.encode(data);
            assert_eq!(word.len(), CODE_BITS);
            let (decoded, outcome) = code.decode(&word);
            assert_eq!(decoded, data);
            assert_eq!(outcome, HammingOutcome::Clean);
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        let code = Hamming7264::new();
        let data = 0x0123_4567_89AB_CDEF_u64;
        let word = code.encode(data);
        for i in 0..CODE_BITS {
            let mut corrupted = word.clone();
            corrupted.set(i, !corrupted.get(i));
            let (decoded, outcome) = code.decode(&corrupted);
            assert_eq!(decoded, data, "error at bit {i}");
            assert!(matches!(outcome, HammingOutcome::Corrected(_)), "bit {i}");
        }
    }

    #[test]
    fn detects_double_errors() {
        let code = Hamming7264::new();
        let data = 0xDEAD_BEEF_CAFE_F00D_u64;
        let word = code.encode(data);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..100 {
            let i = rng.gen_range(0..CODE_BITS);
            let mut j = rng.gen_range(0..CODE_BITS);
            while j == i {
                j = rng.gen_range(0..CODE_BITS);
            }
            let mut corrupted = word.clone();
            corrupted.set(i, !corrupted.get(i));
            corrupted.set(j, !corrupted.get(j));
            let (_, outcome) = code.decode(&corrupted);
            assert_eq!(outcome, HammingOutcome::DoubleError, "errors at {i},{j}");
        }
    }

    #[test]
    fn dual_basis_is_orthogonal_to_codewords() {
        let code = Hamming7264::new();
        let basis = code.dual_basis();
        assert_eq!(basis.len(), CHECK_BITS);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let data: u64 = rng.gen();
            let word = code.encode(data);
            let mut word_bits = 0u128;
            for i in 0..CODE_BITS {
                if word.get(i) {
                    word_bits |= 1 << i;
                }
            }
            for (j, row) in basis.iter().enumerate() {
                assert_eq!((row & word_bits).count_ones() % 2, 0, "row {j} not orthogonal");
            }
        }
    }
}
