//! A simple dense bit vector used by the block-code implementations.

use std::fmt;

/// A growable, dense vector of bits.
///
/// Bit 0 is the first bit pushed. Used to carry code words of arbitrary
/// length (e.g. 369-bit compressed payloads, 512-bit lines, 20-bit BCH
/// remainders) between the compression and coding layers.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    bits: Vec<bool>,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> BitVec {
        BitVec { bits: Vec::new() }
    }

    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> BitVec {
        BitVec { bits: vec![false; len] }
    }

    /// Creates a bit vector from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> BitVec {
        BitVec { bits: bits.to_vec() }
    }

    /// Creates a bit vector from the low `len` bits of `value` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_u64(value: u64, len: usize) -> BitVec {
        assert!(len <= 64);
        BitVec { bits: (0..len).map(|i| (value >> i) & 1 == 1).collect() }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> bool {
        self.bits[index]
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set(&mut self, index: usize, value: bool) {
        self.bits[index] = value;
    }

    /// Appends a bit.
    pub fn push(&mut self, value: bool) {
        self.bits.push(value);
    }

    /// Appends the low `len` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn push_u64(&mut self, value: u64, len: usize) {
        assert!(len <= 64);
        for i in 0..len {
            self.bits.push((value >> i) & 1 == 1);
        }
    }

    /// Appends all bits of `other`.
    pub fn extend_from(&mut self, other: &BitVec) {
        self.bits.extend_from_slice(&other.bits);
    }

    /// Reads `len` bits starting at `start` into the low bits of a `u64`,
    /// LSB first.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `len > 64`.
    pub fn read_u64(&self, start: usize, len: usize) -> u64 {
        assert!(len <= 64);
        assert!(start + len <= self.bits.len());
        let mut out = 0u64;
        for i in 0..len {
            if self.bits[start + i] {
                out |= 1 << i;
            }
        }
        out
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// XORs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_with(&mut self, other: &BitVec) {
        assert_eq!(self.len(), other.len(), "xor requires equal lengths");
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a ^= b;
        }
    }

    /// Iterates over the bits, first bit first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// The underlying boolean slice.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len())?;
        for b in self.bits.iter().take(64) {
            write!(f, "{}", if *b { '1' } else { '0' })?;
        }
        if self.len() > 64 {
            write!(f, "...")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> BitVec {
        BitVec { bits: iter.into_iter().collect() }
    }
}

impl Extend<bool> for BitVec {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        self.bits.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip() {
        let v = BitVec::from_u64(0xDEAD_BEEF, 32);
        assert_eq!(v.len(), 32);
        assert_eq!(v.read_u64(0, 32), 0xDEAD_BEEF);
    }

    #[test]
    fn push_and_read_across_boundaries() {
        let mut v = BitVec::new();
        v.push_u64(0b101, 3);
        v.push_u64(0xFF, 8);
        assert_eq!(v.len(), 11);
        assert_eq!(v.read_u64(0, 3), 0b101);
        assert_eq!(v.read_u64(3, 8), 0xFF);
    }

    #[test]
    fn xor_is_involutive() {
        let a = BitVec::from_u64(0b1100, 4);
        let mut b = BitVec::from_u64(0b1010, 4);
        b.xor_with(&a);
        assert_eq!(b.read_u64(0, 4), 0b0110);
        b.xor_with(&a);
        assert_eq!(b.read_u64(0, 4), 0b1010);
    }

    #[test]
    fn count_ones_counts() {
        assert_eq!(BitVec::from_u64(0b1011, 4).count_ones(), 3);
        assert_eq!(BitVec::zeros(100).count_ones(), 0);
    }

    #[test]
    fn from_iter_and_extend() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.len(), 3);
        let mut w = BitVec::new();
        w.extend(v.iter());
        assert_eq!(w, v);
    }

    #[test]
    #[should_panic]
    fn xor_length_mismatch_panics() {
        let mut a = BitVec::zeros(3);
        a.xor_with(&BitVec::zeros(4));
    }
}
