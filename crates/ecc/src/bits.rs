//! A dense, u64-word-packed bit buffer shared by the block codes and the
//! compression layers.

use std::fmt;

/// A growable, dense vector of bits backed by packed 64-bit words.
///
/// Bit 0 is the first bit pushed; bit `i` lives in word `i / 64` at position
/// `i % 64`. Used to carry code words and compressed payloads of arbitrary
/// length (e.g. 369-bit compressed streams, 512-bit lines, 20-bit BCH
/// remainders) between the compression and coding layers without paying one
/// byte per bit the way a `Vec<bool>` does.
///
/// Invariant: every bit at position `>= len` inside the backing words is
/// zero, so word-level operations (`count_ones`, equality, hashing,
/// `words()`) never see garbage.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitBuf {
    words: Vec<u64>,
    len: usize,
}

/// Historical name of [`BitBuf`], kept so existing call sites and the public
/// API remain stable while everything shares the packed representation.
pub type BitVec = BitBuf;

impl BitBuf {
    /// Creates an empty bit buffer.
    pub fn new() -> BitBuf {
        BitBuf { words: Vec::new(), len: 0 }
    }

    /// Creates an empty bit buffer with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> BitBuf {
        BitBuf { words: Vec::with_capacity(bits.div_ceil(64)), len: 0 }
    }

    /// Creates a bit buffer of `len` zero bits.
    pub fn zeros(len: usize) -> BitBuf {
        BitBuf { words: vec![0; len.div_ceil(64)], len }
    }

    /// Creates a bit buffer from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> BitBuf {
        let mut out = BitBuf::with_capacity(bits.len());
        for &b in bits {
            out.push(b);
        }
        out
    }

    /// Creates a bit buffer from the low `len` bits of `value` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_u64(value: u64, len: usize) -> BitBuf {
        assert!(len <= 64);
        let mut out = BitBuf::new();
        out.push_u64(value, len);
        out
    }

    /// Creates a bit buffer of `len` bits from packed words (bit `i` of the
    /// buffer is bit `i % 64` of `words[i / 64]`); bits past `len` in the
    /// final word are cleared to uphold the invariant.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than `len` requires.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> BitBuf {
        assert!(words.len() >= len.div_ceil(64), "not enough words for {len} bits");
        words.truncate(len.div_ceil(64));
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        BitBuf { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the buffer holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of bounds (len {})", self.len);
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Bit at `index`, or `None` when out of bounds.
    #[inline]
    pub fn get_opt(&self, index: usize) -> Option<bool> {
        if index < self.len {
            Some((self.words[index / 64] >> (index % 64)) & 1 == 1)
        } else {
            None
        }
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len, "bit index {index} out of bounds (len {})", self.len);
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Appends a bit.
    #[inline]
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if value {
            *self.words.last_mut().expect("word just ensured") |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Appends the low `len` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn push_u64(&mut self, value: u64, len: usize) {
        assert!(len <= 64);
        if len == 0 {
            return;
        }
        let value = if len == 64 { value } else { value & ((1u64 << len) - 1) };
        let offset = self.len % 64;
        if offset == 0 {
            self.words.push(value);
        } else {
            *self.words.last_mut().expect("non-empty by offset") |= value << offset;
            if offset + len > 64 {
                self.words.push(value >> (64 - offset));
            }
        }
        self.len += len;
    }

    /// Appends all bits of `other`.
    pub fn extend_from(&mut self, other: &BitBuf) {
        let mut remaining = other.len;
        let mut start = 0usize;
        while remaining > 0 {
            let take = remaining.min(64);
            self.push_u64(other.read_u64(start, take), take);
            start += take;
            remaining -= take;
        }
    }

    /// Reads `len` bits starting at `start` into the low bits of a `u64`,
    /// LSB first.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `len > 64`.
    pub fn read_u64(&self, start: usize, len: usize) -> u64 {
        assert!(len <= 64);
        assert!(start + len <= self.len, "bit range out of bounds");
        if len == 0 {
            return 0;
        }
        let word = start / 64;
        let offset = start % 64;
        let mut out = self.words[word] >> offset;
        if offset + len > 64 {
            out |= self.words[word + 1] << (64 - offset);
        }
        if len < 64 {
            out &= (1u64 << len) - 1;
        }
        out
    }

    /// Returns a new buffer holding bits `start..self.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `start > self.len()`.
    pub fn slice_from(&self, start: usize) -> BitBuf {
        assert!(start <= self.len, "slice start out of bounds");
        let mut out = BitBuf::with_capacity(self.len - start);
        let mut pos = start;
        while pos < self.len {
            let take = (self.len - pos).min(64);
            out.push_u64(self.read_u64(pos, take), take);
            pos += take;
        }
        out
    }

    /// Truncates the buffer to at most `len` bits.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.len = len;
        self.words.truncate(len.div_ceil(64));
        if !len.is_multiple_of(64) {
            let last = self.words.last_mut().expect("non-empty by len");
            *last &= (1u64 << (len % 64)) - 1;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// XORs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_with(&mut self, other: &BitBuf) {
        assert_eq!(self.len(), other.len(), "xor requires equal lengths");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= b;
        }
    }

    /// Iterates over the bits, first bit first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| (self.words[i / 64] >> (i % 64)) & 1 == 1)
    }

    /// The bits as a vector of booleans (first bit first).
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// The packed backing words; bits at positions `>= len()` are zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for BitBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitBuf[{}; ", self.len())?;
        for b in self.iter().take(64) {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        if self.len() > 64 {
            write!(f, "...")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitBuf {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> BitBuf {
        let mut out = BitBuf::new();
        out.extend(iter);
        out
    }
}

impl Extend<bool> for BitBuf {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        for b in iter {
            self.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip() {
        let v = BitBuf::from_u64(0xDEAD_BEEF, 32);
        assert_eq!(v.len(), 32);
        assert_eq!(v.read_u64(0, 32), 0xDEAD_BEEF);
    }

    #[test]
    fn push_and_read_across_boundaries() {
        let mut v = BitBuf::new();
        v.push_u64(0b101, 3);
        v.push_u64(0xFF, 8);
        assert_eq!(v.len(), 11);
        assert_eq!(v.read_u64(0, 3), 0b101);
        assert_eq!(v.read_u64(3, 8), 0xFF);
    }

    #[test]
    fn push_u64_spanning_words_matches_bitwise_push() {
        let mut packed = BitBuf::new();
        let mut reference = BitBuf::new();
        let values = [(0x0123_4567_89AB_CDEFu64, 64), (0b1_0110u64, 5), (u64::MAX, 64), (0, 7)];
        for (value, len) in values {
            packed.push_u64(value, len);
            for i in 0..len {
                reference.push((value >> i) & 1 == 1);
            }
        }
        assert_eq!(packed, reference);
        assert_eq!(packed.words(), reference.words());
    }

    #[test]
    fn read_u64_spans_word_boundaries() {
        let mut v = BitBuf::zeros(60);
        v.push_u64(0xBEEF, 16);
        assert_eq!(v.read_u64(60, 16), 0xBEEF);
    }

    #[test]
    fn xor_is_involutive() {
        let a = BitBuf::from_u64(0b1100, 4);
        let mut b = BitBuf::from_u64(0b1010, 4);
        b.xor_with(&a);
        assert_eq!(b.read_u64(0, 4), 0b0110);
        b.xor_with(&a);
        assert_eq!(b.read_u64(0, 4), 0b1010);
    }

    #[test]
    fn count_ones_counts() {
        assert_eq!(BitBuf::from_u64(0b1011, 4).count_ones(), 3);
        assert_eq!(BitBuf::zeros(100).count_ones(), 0);
    }

    #[test]
    fn from_iter_and_extend() {
        let v: BitBuf = [true, false, true].into_iter().collect();
        assert_eq!(v.len(), 3);
        let mut w = BitBuf::new();
        w.extend(v.iter());
        assert_eq!(w, v);
    }

    #[test]
    fn bools_round_trip() {
        let bools = [true, false, false, true, true, false, true];
        let v = BitBuf::from_bools(&bools);
        assert_eq!(v.to_bools(), bools);
        assert_eq!(v.len(), bools.len());
    }

    #[test]
    fn set_clears_and_sets_packed_bits() {
        let mut v = BitBuf::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn truncate_zeroes_the_tail() {
        let mut v = BitBuf::new();
        v.push_u64(u64::MAX, 64);
        v.push_u64(u64::MAX, 64);
        v.truncate(70);
        assert_eq!(v.len(), 70);
        assert_eq!(v.count_ones(), 70);
        // The invariant must hold so equality keeps working.
        assert_eq!(v.words()[1], (1u64 << 6) - 1);
    }

    #[test]
    fn slice_from_drops_the_prefix() {
        let mut v = BitBuf::new();
        v.push_u64(0b1_0110, 5);
        v.push_u64(0xABCD, 16);
        let tail = v.slice_from(5);
        assert_eq!(tail.len(), 16);
        assert_eq!(tail.read_u64(0, 16), 0xABCD);
        assert!(v.slice_from(v.len()).is_empty());
    }

    #[test]
    fn extend_from_matches_bit_by_bit() {
        let mut a = BitBuf::from_u64(0b101, 3);
        let b = BitBuf::from_u64(0xF0F0_F0F0_F0F0_F0F0, 64);
        let mut reference = a.clone();
        for bit in b.iter() {
            reference.push(bit);
        }
        a.extend_from(&b);
        assert_eq!(a, reference);
    }

    #[test]
    fn from_words_masks_the_tail() {
        let v = BitBuf::from_words(vec![u64::MAX, u64::MAX], 70);
        assert_eq!(v.len(), 70);
        assert_eq!(v.count_ones(), 70);
        assert_eq!(v, {
            let mut w = BitBuf::new();
            w.push_u64(u64::MAX, 64);
            w.push_u64(u64::MAX, 6);
            w
        });
    }

    #[test]
    fn get_opt_is_none_out_of_bounds() {
        let v = BitBuf::from_u64(0b1, 1);
        assert_eq!(v.get_opt(0), Some(true));
        assert_eq!(v.get_opt(1), None);
    }

    #[test]
    #[should_panic]
    fn xor_length_mismatch_panics() {
        let mut a = BitBuf::zeros(3);
        a.xor_with(&BitBuf::zeros(4));
    }

    #[test]
    #[should_panic]
    fn get_out_of_bounds_panics() {
        let _ = BitBuf::zeros(3).get(3);
    }
}
