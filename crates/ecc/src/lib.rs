//! Error-correcting-code substrates used by the WLCRC reproduction.
//!
//! The paper's comparison schemes rely on two classic codes:
//!
//! * **DIN** protects each encoded memory line with a 20-bit BCH code able to
//!   correct two write-disturbance errors — provided here as a binary BCH code
//!   with `t = 2` over GF(2^10) ([`bch::Bch`]).
//! * **FlipMin** derives its coset candidates from the dual code of a
//!   (72, 64) Hamming generator matrix — provided here as
//!   [`hamming::Hamming7264`] together with [`coset_masks`], which expands the
//!   dual-code construction into full-line XOR masks.
//!
//! Everything is implemented from scratch on top of a small GF(2^m)
//! arithmetic module ([`gf`]) and a dense, u64-word-packed bit buffer
//! ([`bits::BitBuf`], historically exported as [`bits::BitVec`]) that is also
//! reused by the compression layers (`wlcrc_compress`) and the DIN codec.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bch;
pub mod bits;
pub mod gf;
pub mod hamming;

pub use bch::{Bch, PackedBch};
pub use bits::{BitBuf, BitVec};
pub use gf::GaloisField;
pub use hamming::Hamming7264;

/// Generates `count` deterministic 512-bit XOR masks (coset candidates) from
/// the dual code of the (72, 64) Hamming code, replicated across the line, as
/// used by the FlipMin scheme.
///
/// The first mask is always the all-zero mask (the identity candidate), so the
/// unencoded data is always one of the candidates.
pub fn coset_masks(count: usize, seed: u64) -> Vec<[u64; 8]> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let hamming = Hamming7264::new();
    let dual = hamming.dual_basis();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut masks = Vec::with_capacity(count);
    masks.push([0u64; 8]);
    while masks.len() < count {
        // Random non-empty combination of dual-code basis vectors, replicated
        // over the eight 72-bit codeword slots, truncated to the 512-bit line.
        let mut combo = 0u128;
        for basis in &dual {
            if rng.gen::<bool>() {
                combo ^= basis;
            }
        }
        if combo == 0 {
            continue;
        }
        let mut mask = [0u64; 8];
        for (w, slot) in mask.iter_mut().enumerate() {
            // Use a rotated copy per word so candidates differ across words.
            let rotated = combo.rotate_left((w as u32 * 13) % 72);
            *slot = (rotated & u128::from(u64::MAX)) as u64;
        }
        if masks.contains(&mask) {
            continue;
        }
        masks.push(mask);
    }
    masks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coset_masks_start_with_identity() {
        let masks = coset_masks(16, 42);
        assert_eq!(masks.len(), 16);
        assert_eq!(masks[0], [0u64; 8]);
    }

    #[test]
    fn coset_masks_are_distinct() {
        let masks = coset_masks(16, 42);
        for i in 0..masks.len() {
            for j in (i + 1)..masks.len() {
                assert_ne!(masks[i], masks[j]);
            }
        }
    }

    #[test]
    fn coset_masks_are_deterministic() {
        assert_eq!(coset_masks(8, 7), coset_masks(8, 7));
        assert_ne!(coset_masks(8, 7), coset_masks(8, 8));
    }
}
