//! A binary BCH code with `t = 2` (two-error correction), shortened to an
//! arbitrary message length.
//!
//! DIN attaches a 20-bit BCH code to every encoded memory line so that two
//! write-disturbance errors can be corrected during the verification step.
//! With `m = 10` the full code is BCH(1023, 1003) and its 20 parity bits are
//! exactly the overhead quoted by the paper; here the code is used shortened
//! to the actual payload length (≤ 1003 bits).

use crate::bits::BitVec;
use crate::gf::GaloisField;
use std::fmt;

/// A binary, systematic, shortened BCH code correcting up to two errors.
#[derive(Clone)]
pub struct Bch {
    gf: GaloisField,
    generator: BitVec,
    parity_bits: usize,
    max_message_bits: usize,
}

/// Errors reported by [`Bch::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BchError {
    /// More errors occurred than the code can correct.
    TooManyErrors,
    /// The received word length does not match the code parameters.
    LengthMismatch,
}

impl fmt::Display for BchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BchError::TooManyErrors => write!(f, "more errors than the code can correct"),
            BchError::LengthMismatch => write!(f, "received word has the wrong length"),
        }
    }
}

impl std::error::Error for BchError {}

impl Bch {
    /// Constructs the `t = 2` BCH code over GF(2^m).
    ///
    /// The generator polynomial is the least common multiple of the minimal
    /// polynomials of `alpha` and `alpha^3`; for `m = 10` it has degree 20.
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside the supported range of [`GaloisField::new`].
    pub fn new(m: usize) -> Bch {
        let gf = GaloisField::new(m);
        let m1 = gf.minimal_polynomial(1);
        let m3 = gf.minimal_polynomial(3);
        let generator_mask = poly_mul_gf2(m1, m3);
        let parity_bits = 127 - generator_mask.leading_zeros() as usize;
        let mut generator = BitVec::zeros(parity_bits + 1);
        for i in 0..=parity_bits {
            if (generator_mask >> i) & 1 == 1 {
                generator.set(i, true);
            }
        }
        let n = (1usize << m) - 1;
        Bch { gf, generator, parity_bits, max_message_bits: n - parity_bits }
    }

    /// The standard code used by DIN: `t = 2` over GF(2^10), i.e. 20 parity bits.
    pub fn din_default() -> Bch {
        Bch::new(10)
    }

    /// Number of parity bits appended to each message.
    pub fn parity_bits(&self) -> usize {
        self.parity_bits
    }

    /// Maximum number of message bits the (shortened) code can protect.
    pub fn max_message_bits(&self) -> usize {
        self.max_message_bits
    }

    /// Computes the parity bits for `message` (systematic encoding).
    ///
    /// # Panics
    ///
    /// Panics if the message is longer than [`Bch::max_message_bits`].
    pub fn parity(&self, message: &BitVec) -> BitVec {
        assert!(message.len() <= self.max_message_bits, "message too long for this BCH code");
        // Polynomial division of message * x^parity by the generator.
        // Work on a buffer of message followed by `parity_bits` zeros, with
        // index 0 being the highest-degree coefficient for the division.
        let k = message.len();
        let total = k + self.parity_bits;
        let mut buf = vec![false; total];
        for i in 0..k {
            // message bit i is the coefficient of x^(parity + i); store
            // high-degree first.
            buf[k - 1 - i] = message.get(i);
        }
        // buf[0..k] = message (high degree first), buf[k..] = zeros.
        for pos in 0..k {
            if buf[pos] {
                for j in 0..=self.parity_bits {
                    if self.generator.get(self.parity_bits - j) {
                        buf[pos + j] ^= true;
                    }
                }
            }
        }
        // Remainder is in buf[k..], high degree first; return LSB-first.
        let mut parity = BitVec::zeros(self.parity_bits);
        for i in 0..self.parity_bits {
            parity.set(i, buf[total - 1 - i]);
        }
        parity
    }

    /// Encodes `message`, returning `message || parity`.
    ///
    /// # Panics
    ///
    /// Panics if the message is longer than [`Bch::max_message_bits`].
    pub fn encode(&self, message: &BitVec) -> BitVec {
        let mut out = message.clone();
        out.extend_from(&self.parity(message));
        out
    }

    /// Decodes a received word of `message_len + parity_bits` bits, correcting
    /// up to two bit errors. Returns the corrected message bits.
    ///
    /// # Errors
    ///
    /// Returns [`BchError::LengthMismatch`] if the word is shorter than the
    /// parity, and [`BchError::TooManyErrors`] if more than two errors are
    /// detected (the word cannot be corrected).
    pub fn decode(&self, received: &BitVec) -> Result<BitVec, BchError> {
        if received.len() < self.parity_bits
            || received.len() > self.max_message_bits + self.parity_bits
        {
            return Err(BchError::LengthMismatch);
        }
        let message_len = received.len() - self.parity_bits;

        // Treat the received vector as a codeword polynomial: the bit at
        // message position i corresponds to x^(parity_bits + i) and parity bit
        // j corresponds to x^j.
        let coeff = |idx: usize| -> bool {
            if idx < self.parity_bits {
                received.get(message_len + idx)
            } else {
                received.get(idx - self.parity_bits)
            }
        };
        let n = received.len();

        // Syndromes S1..S4 = r(alpha^i).
        let mut syndromes = [0u32; 4];
        for (si, syn) in syndromes.iter_mut().enumerate() {
            let alpha_i = si + 1;
            let mut acc = 0u32;
            for j in 0..n {
                if coeff(j) {
                    acc ^= self.gf.pow(self.gf.alpha_pow(alpha_i), j);
                }
            }
            *syn = acc;
        }
        let [s1, s2, s3, _s4] = syndromes;

        if syndromes.iter().all(|s| *s == 0) {
            return Ok(extract_message(received, message_len));
        }

        // Berlekamp/Peterson for t = 2:
        // If S1 != 0 and S3 == S1^3 -> single error at log(S1).
        // Otherwise solve sigma(x) = 1 + sigma1 x + sigma2 x^2 with
        //   sigma1 = S1, sigma2 = (S3 + S1^3) / S1.
        let mut corrected = received.clone();
        let s1_cubed = self.gf.pow(s1, 3);
        if s1 != 0 && s3 == s1_cubed {
            let pos = self.gf.log(s1);
            if pos >= n {
                return Err(BchError::TooManyErrors);
            }
            flip_codeword_bit(&mut corrected, pos, message_len, self.parity_bits);
            return Ok(extract_message(&corrected, message_len));
        }
        if s1 == 0 {
            // S1 == 0 but some other syndrome non-zero: uncorrectable for t=2.
            return Err(BchError::TooManyErrors);
        }
        let sigma1 = s1;
        let sigma2 = self.gf.div(self.gf.add(s3, s1_cubed), s1);
        // Chien search over valid positions.
        let mut error_positions = Vec::new();
        for pos in 0..n {
            // sigma(alpha^{-pos}) == 0  <=> error at position pos.
            let x =
                self.gf.alpha_pow((self.gf.order() - (pos % self.gf.order())) % self.gf.order());
            let val = self.gf.add(
                self.gf.add(1, self.gf.mul(sigma1, x)),
                self.gf.mul(sigma2, self.gf.mul(x, x)),
            );
            if val == 0 {
                error_positions.push(pos);
            }
        }
        if error_positions.len() != 2 {
            return Err(BchError::TooManyErrors);
        }
        // Verify S2 consistency: S2 must equal S1^2 for binary codes.
        if s2 != self.gf.mul(s1, s1) {
            return Err(BchError::TooManyErrors);
        }
        for pos in error_positions {
            flip_codeword_bit(&mut corrected, pos, message_len, self.parity_bits);
        }
        Ok(extract_message(&corrected, message_len))
    }
}

impl fmt::Debug for Bch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bch(t=2, m={}, parity_bits={})", self.gf.degree(), self.parity_bits)
    }
}

/// Number of `u64` words in a [`PackedBch`] codeword buffer (512 bits).
pub const PACKED_WORDS: usize = 8;

/// Word-parallel encode/syndrome tables for one fixed shortened-code length
/// whose codeword fits in 512 bits.
///
/// Parity and syndromes are GF(2)-linear in the received bits, so both reduce
/// to AND + XOR-fold + popcount-parity against precomputed per-bit masks:
///
/// * `parity_masks[j]` marks the message bits whose remainder `x^(p+i) mod g`
///   has parity bit `j` set — parity bit `j` of a message is the XOR-parity
///   of the masked message words.
/// * `synd_masks[a][b]` marks the received bits whose codeword degree `d`
///   satisfies "bit `b` of `alpha^((a ? 3 : 1) * d)` is set" — GF bit `b` of
///   syndrome S1/S3 is the XOR-parity of the masked received words. S2 and
///   S4 follow for free from the Frobenius identity `r(alpha^2) = r(alpha)^2`
///   over GF(2) polynomials, so they are bit-identical to the scalar sums.
#[derive(Clone)]
pub struct PackedBch {
    gf: GaloisField,
    message_len: usize,
    parity_bits: usize,
    parity_masks: Vec<[u64; PACKED_WORDS]>,
    synd_masks: [Vec<[u64; PACKED_WORDS]>; 2],
}

impl Bch {
    /// Builds the word-parallel tables for messages of exactly `message_len`
    /// bits (codeword `message_len + parity_bits` bits, at most 512).
    ///
    /// # Panics
    ///
    /// Panics if the codeword would not fit in [`PACKED_WORDS`] words or the
    /// message exceeds [`Bch::max_message_bits`].
    pub fn packed(&self, message_len: usize) -> PackedBch {
        assert!(message_len <= self.max_message_bits, "message too long for this BCH code");
        let n = message_len + self.parity_bits;
        assert!(n <= PACKED_WORDS * 64, "codeword does not fit the packed buffer");
        // g = x^p + g_lo  =>  x^p ≡ g_lo (mod g); step the remainder of
        // x^(p+i) with a shift and a conditional reduction.
        let mut g_full = 0u32;
        for j in 0..=self.parity_bits {
            if self.generator.get(j) {
                g_full |= 1 << j;
            }
        }
        let g_lo = g_full & ((1u32 << self.parity_bits) - 1);
        let mut parity_masks = vec![[0u64; PACKED_WORDS]; self.parity_bits];
        let mut r = g_lo;
        for i in 0..message_len {
            for (j, mask) in parity_masks.iter_mut().enumerate() {
                if (r >> j) & 1 == 1 {
                    mask[i / 64] |= 1u64 << (i % 64);
                }
            }
            r <<= 1;
            if (r >> self.parity_bits) & 1 == 1 {
                r ^= g_full;
            }
        }
        // Received bit p has codeword degree p + parity_bits (message) or
        // p - message_len (parity) — same mapping as the scalar decode.
        let mut synd_masks = [
            vec![[0u64; PACKED_WORDS]; self.gf.degree()],
            vec![[0u64; PACKED_WORDS]; self.gf.degree()],
        ];
        for (which, a) in [1usize, 3].into_iter().enumerate() {
            for p in 0..n {
                let d = if p < message_len { self.parity_bits + p } else { p - message_len };
                let elem = self.gf.alpha_pow((a * d) % self.gf.order());
                for (b, mask) in synd_masks[which].iter_mut().enumerate() {
                    if (elem >> b) & 1 == 1 {
                        mask[p / 64] |= 1u64 << (p % 64);
                    }
                }
            }
        }
        PackedBch {
            gf: self.gf.clone(),
            message_len,
            parity_bits: self.parity_bits,
            parity_masks,
            synd_masks,
        }
    }
}

impl PackedBch {
    /// The fixed message length these tables were built for.
    pub fn message_len(&self) -> usize {
        self.message_len
    }

    /// Number of parity bits produced per message.
    pub fn parity_bits(&self) -> usize {
        self.parity_bits
    }

    /// The parity bits of `message` (LSB-first in the returned word), where
    /// `message` holds exactly [`Self::message_len`] bits little-endian with
    /// every higher bit zero. Matches [`Bch::parity`] bit for bit.
    pub fn parity_words(&self, message: &[u64; PACKED_WORDS]) -> u32 {
        let mut parity = 0u32;
        for (j, mask) in self.parity_masks.iter().enumerate() {
            // popcount(a ^ b) ≡ popcount(a) + popcount(b) (mod 2), so one
            // XOR-fold plus a single popcount gives the bit parity.
            let mut folded = 0u64;
            for w in 0..PACKED_WORDS {
                folded ^= mask[w] & message[w];
            }
            parity |= (folded.count_ones() & 1) << j;
        }
        parity
    }

    /// The four syndromes `S1..S4` of a received codeword of
    /// `message_len + parity_bits` bits (little-endian, higher bits zero).
    /// All zero iff the word is a codeword; matches the scalar sums in
    /// [`Bch::decode`] exactly.
    pub fn syndromes(&self, received: &[u64; PACKED_WORDS]) -> [u32; 4] {
        let mut odd = [0u32; 2];
        for (which, masks) in self.synd_masks.iter().enumerate() {
            let mut acc = 0u32;
            for (b, mask) in masks.iter().enumerate() {
                let mut folded = 0u64;
                for w in 0..PACKED_WORDS {
                    folded ^= mask[w] & received[w];
                }
                acc |= (folded.count_ones() & 1) << b;
            }
            odd[which] = acc;
        }
        let [s1, s3] = odd;
        let s2 = self.gf.mul(s1, s1);
        let s4 = self.gf.mul(s2, s2);
        [s1, s2, s3, s4]
    }
}

impl fmt::Debug for PackedBch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedBch(message_len={}, parity_bits={})", self.message_len, self.parity_bits)
    }
}

/// Flips the bit whose codeword-polynomial degree is `pos`.
fn flip_codeword_bit(word: &mut BitVec, pos: usize, message_len: usize, parity_bits: usize) {
    let idx = if pos < parity_bits { message_len + pos } else { pos - parity_bits };
    let cur = word.get(idx);
    word.set(idx, !cur);
}

fn extract_message(word: &BitVec, message_len: usize) -> BitVec {
    word.iter().take(message_len).collect()
}

/// Carry-less (GF(2)) polynomial multiplication of two bit-mask polynomials.
fn poly_mul_gf2(a: u64, b: u64) -> u128 {
    let mut acc = 0u128;
    for i in 0..64 {
        if (a >> i) & 1 == 1 {
            acc ^= u128::from(b) << i;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_message(len: usize, rng: &mut StdRng) -> BitVec {
        (0..len).map(|_| rng.gen::<bool>()).collect()
    }

    #[test]
    fn din_code_has_20_parity_bits() {
        let bch = Bch::din_default();
        assert_eq!(bch.parity_bits(), 20);
        assert_eq!(bch.max_message_bits(), 1003);
    }

    #[test]
    fn clean_round_trip() {
        let bch = Bch::din_default();
        let mut rng = StdRng::seed_from_u64(11);
        for len in [1usize, 8, 100, 369, 492, 512] {
            let msg = random_message(len, &mut rng);
            let code = bch.encode(&msg);
            assert_eq!(code.len(), len + 20);
            assert_eq!(bch.decode(&code).unwrap(), msg);
        }
    }

    #[test]
    fn corrects_any_single_error() {
        let bch = Bch::din_default();
        let mut rng = StdRng::seed_from_u64(5);
        let msg = random_message(128, &mut rng);
        let code = bch.encode(&msg);
        for i in 0..code.len() {
            let mut corrupted = code.clone();
            corrupted.set(i, !corrupted.get(i));
            assert_eq!(bch.decode(&corrupted).unwrap(), msg, "error at bit {i}");
        }
    }

    #[test]
    fn corrects_double_errors() {
        let bch = Bch::din_default();
        let mut rng = StdRng::seed_from_u64(9);
        let msg = random_message(369, &mut rng);
        let code = bch.encode(&msg);
        for _ in 0..50 {
            let i = rng.gen_range(0..code.len());
            let mut j = rng.gen_range(0..code.len());
            while j == i {
                j = rng.gen_range(0..code.len());
            }
            let mut corrupted = code.clone();
            corrupted.set(i, !corrupted.get(i));
            corrupted.set(j, !corrupted.get(j));
            assert_eq!(bch.decode(&corrupted).unwrap(), msg, "errors at {i},{j}");
        }
    }

    #[test]
    fn detects_triple_errors_mostly() {
        let bch = Bch::din_default();
        let mut rng = StdRng::seed_from_u64(3);
        let msg = random_message(200, &mut rng);
        let code = bch.encode(&msg);
        let mut miscorrected_to_original = 0;
        for _ in 0..30 {
            let mut corrupted = code.clone();
            let mut picked = std::collections::HashSet::new();
            while picked.len() < 3 {
                picked.insert(rng.gen_range(0..code.len()));
            }
            for &i in &picked {
                corrupted.set(i, !corrupted.get(i));
            }
            match bch.decode(&corrupted) {
                Err(BchError::TooManyErrors) => {}
                Ok(decoded) => {
                    // A t=2 code may miscorrect 3 errors to a different
                    // codeword, but never back to the original message.
                    if decoded == msg {
                        miscorrected_to_original += 1;
                    }
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(miscorrected_to_original, 0);
    }

    #[test]
    fn length_mismatch_is_reported() {
        let bch = Bch::din_default();
        assert_eq!(bch.decode(&BitVec::zeros(5)), Err(BchError::LengthMismatch));
    }

    fn to_words(bits: &BitVec) -> [u64; PACKED_WORDS] {
        let mut words = [0u64; PACKED_WORDS];
        for (i, &w) in bits.words().iter().enumerate() {
            words[i] = w;
        }
        words
    }

    #[test]
    fn packed_parity_matches_scalar_parity() {
        let bch = Bch::din_default();
        let packed = bch.packed(492);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..50 {
            let msg = random_message(492, &mut rng);
            let scalar = bch.parity(&msg);
            let fast = packed.parity_words(&to_words(&msg));
            for j in 0..20 {
                assert_eq!((fast >> j) & 1 == 1, scalar.get(j), "parity bit {j}");
            }
        }
    }

    #[test]
    fn packed_syndromes_are_zero_exactly_on_codewords() {
        let bch = Bch::din_default();
        let packed = bch.packed(492);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let msg = random_message(492, &mut rng);
            let code = bch.encode(&msg);
            let clean = to_words(&code);
            assert_eq!(packed.syndromes(&clean), [0; 4]);
            // Any single flipped bit must produce a non-zero S1 equal to
            // alpha^degree — the value the scalar decoder locates errors by.
            let p = rng.gen_range(0..512usize);
            let mut corrupted = clean;
            corrupted[p / 64] ^= 1u64 << (p % 64);
            let [s1, s2, s3, s4] = packed.syndromes(&corrupted);
            let gf = GaloisField::new(10);
            let d = if p < 492 { 20 + p } else { p - 492 };
            assert_eq!(s1, gf.alpha_pow(d % gf.order()));
            assert_eq!(s2, gf.pow(gf.alpha_pow(2), d));
            assert_eq!(s3, gf.pow(gf.alpha_pow(3), d));
            assert_eq!(s4, gf.pow(gf.alpha_pow(4), d));
        }
    }

    #[test]
    fn packed_syndromes_match_scalar_decode_verdict_on_double_errors() {
        // Two flipped bits: syndromes non-zero, and the scalar decoder (the
        // fallback path of the kernelised DIN decode) still recovers.
        let bch = Bch::din_default();
        let packed = bch.packed(492);
        let mut rng = StdRng::seed_from_u64(29);
        let msg = random_message(492, &mut rng);
        let code = bch.encode(&msg);
        for _ in 0..20 {
            let i = rng.gen_range(0..512usize);
            let mut j = rng.gen_range(0..512usize);
            while j == i {
                j = rng.gen_range(0..512usize);
            }
            let mut words = to_words(&code);
            words[i / 64] ^= 1u64 << (i % 64);
            words[j / 64] ^= 1u64 << (j % 64);
            assert_ne!(packed.syndromes(&words), [0; 4]);
            let mut corrupted = code.clone();
            corrupted.set(i, !corrupted.get(i));
            corrupted.set(j, !corrupted.get(j));
            assert_eq!(bch.decode(&corrupted).unwrap(), msg);
        }
    }

    #[test]
    fn smaller_field_also_works() {
        let bch = Bch::new(6); // BCH(63, 51), 12 parity bits
        assert_eq!(bch.parity_bits(), 12);
        let mut rng = StdRng::seed_from_u64(1);
        let msg = random_message(40, &mut rng);
        let code = bch.encode(&msg);
        let mut corrupted = code.clone();
        corrupted.set(3, !corrupted.get(3));
        corrupted.set(30, !corrupted.get(30));
        assert_eq!(bch.decode(&corrupted).unwrap(), msg);
    }
}
