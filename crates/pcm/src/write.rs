//! Differential write: only cells whose state changes are programmed.

use crate::energy::EnergyModel;
use crate::physical::{CellClass, PhysicalLine};
use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// The outcome of one differential write of an encoded line into the array.
///
/// Energy and updated-cell counts are broken down into the data-block part and
/// the auxiliary part, following the figures of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WriteOutcome {
    /// Energy (pJ) spent programming data cells that changed.
    pub data_energy_pj: f64,
    /// Energy (pJ) spent programming auxiliary cells that changed.
    pub aux_energy_pj: f64,
    /// Number of data cells that changed and were therefore programmed.
    pub data_cells_updated: usize,
    /// Number of auxiliary cells that changed and were therefore programmed.
    pub aux_cells_updated: usize,
}

impl WriteOutcome {
    /// Total write energy (data + auxiliary), in picojoules.
    #[inline]
    pub fn total_energy_pj(&self) -> f64 {
        self.data_energy_pj + self.aux_energy_pj
    }

    /// Total number of cells programmed (data + auxiliary).
    #[inline]
    pub fn total_cells_updated(&self) -> usize {
        self.data_cells_updated + self.aux_cells_updated
    }
}

impl AddAssign for WriteOutcome {
    fn add_assign(&mut self, rhs: WriteOutcome) {
        self.data_energy_pj += rhs.data_energy_pj;
        self.aux_energy_pj += rhs.aux_energy_pj;
        self.data_cells_updated += rhs.data_cells_updated;
        self.aux_cells_updated += rhs.aux_cells_updated;
    }
}

/// Performs a differential write of `new` over the currently stored `old`
/// content and reports the energy and number of programmed cells.
///
/// A cell is programmed only if its target state differs from the stored
/// state; each programmed cell costs the RESET energy plus the SET energy of
/// its target state. The data/aux split follows the classification carried by
/// the *new* encoded line.
///
/// # Panics
///
/// Panics if the two lines have a different number of cells (they must come
/// from the same encoding scheme).
pub fn differential_write(
    old: &PhysicalLine,
    new: &PhysicalLine,
    energy: &EnergyModel,
) -> WriteOutcome {
    assert_eq!(old.len(), new.len(), "differential write requires lines of identical cell count");
    let mut outcome = WriteOutcome::default();
    for (idx, new_state, class) in new.iter() {
        let old_state = old.state(idx);
        if old_state == new_state {
            continue;
        }
        let e = energy.write_energy_pj(new_state);
        match class {
            CellClass::Data => {
                outcome.data_energy_pj += e;
                outcome.data_cells_updated += 1;
            }
            CellClass::Aux => {
                outcome.aux_energy_pj += e;
                outcome.aux_cells_updated += 1;
            }
        }
    }
    outcome
}

/// Returns the indices of the cells that a differential write would program.
///
/// # Panics
///
/// Panics if the two lines have a different number of cells.
pub fn changed_cell_indices(old: &PhysicalLine, new: &PhysicalLine) -> Vec<usize> {
    assert_eq!(old.len(), new.len());
    (0..new.len()).filter(|&i| old.state(i) != new.state(i)).collect()
}

/// Computes only the total differential-write energy of writing `new` over
/// `old`, without the data/aux breakdown. This is the inner loop of every
/// encoder's candidate-selection cost function, so it is kept allocation-free.
///
/// # Panics
///
/// Panics if the two lines have a different number of cells.
pub fn write_cost_pj(old: &PhysicalLine, new: &PhysicalLine, energy: &EnergyModel) -> f64 {
    assert_eq!(old.len(), new.len());
    let mut cost = 0.0;
    for i in 0..new.len() {
        cost += energy.transition_energy_pj(old.state(i), new.state(i));
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::CellState;

    fn line(states: &[CellState]) -> PhysicalLine {
        PhysicalLine::from_states(states.to_vec())
    }

    #[test]
    fn identical_lines_cost_nothing() {
        let e = EnergyModel::paper_default();
        let a = line(&[CellState::S3, CellState::S2, CellState::S4]);
        let out = differential_write(&a, &a, &e);
        assert_eq!(out.total_energy_pj(), 0.0);
        assert_eq!(out.total_cells_updated(), 0);
        assert!(changed_cell_indices(&a, &a).is_empty());
    }

    #[test]
    fn changed_cells_pay_full_programming_energy() {
        let e = EnergyModel::paper_default();
        let old = line(&[CellState::S1, CellState::S1]);
        let new = line(&[CellState::S4, CellState::S1]);
        let out = differential_write(&old, &new, &e);
        assert_eq!(out.data_cells_updated, 1);
        assert_eq!(out.total_energy_pj(), 36.0 + 547.0);
        assert_eq!(changed_cell_indices(&old, &new), vec![0]);
    }

    #[test]
    fn aux_cells_are_accounted_separately() {
        let e = EnergyModel::paper_default();
        let old = PhysicalLine::all_reset(3);
        let mut new = PhysicalLine::all_reset(3);
        new.set_state(0, CellState::S2);
        new.set_state(2, CellState::S3);
        new.set_class(2, CellClass::Aux);
        let out = differential_write(&old, &new, &e);
        assert_eq!(out.data_cells_updated, 1);
        assert_eq!(out.aux_cells_updated, 1);
        assert_eq!(out.data_energy_pj, 56.0);
        assert_eq!(out.aux_energy_pj, 343.0);
    }

    #[test]
    fn write_cost_matches_outcome_total() {
        let e = EnergyModel::paper_default();
        let old = line(&[CellState::S1, CellState::S2, CellState::S3, CellState::S4]);
        let new = line(&[CellState::S4, CellState::S2, CellState::S1, CellState::S2]);
        let out = differential_write(&old, &new, &e);
        assert!((write_cost_pj(&old, &new, &e) - out.total_energy_pj()).abs() < 1e-9);
    }

    #[test]
    fn outcomes_accumulate() {
        let e = EnergyModel::paper_default();
        let old = PhysicalLine::all_reset(2);
        let mut new = PhysicalLine::all_reset(2);
        new.set_state(0, CellState::S2);
        let mut acc = WriteOutcome::default();
        acc += differential_write(&old, &new, &e);
        acc += differential_write(&old, &new, &e);
        assert_eq!(acc.data_cells_updated, 2);
        assert_eq!(acc.total_energy_pj(), 112.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let e = EnergyModel::paper_default();
        let _ = differential_write(&PhysicalLine::all_reset(2), &PhysicalLine::all_reset(3), &e);
    }
}
