//! MLC PCM device model used throughout the WLCRC reproduction.
//!
//! This crate models a 4-level-cell (MLC) phase-change memory at the level of
//! abstraction used by the paper *"Enabling Fine-Grain Restricted Coset Coding
//! Through Word-Level Compression for PCM"* (HPCA 2018):
//!
//! * [`state::CellState`] — the four programmable resistance states `S1..S4`,
//!   ordered by the energy required to program them.
//! * [`state::Symbol`] — a 2-bit data symbol (`00`, `01`, `10`, `11`).
//! * [`mapping::SymbolMapping`] — a bijection between symbols and states; the
//!   coset candidates of the paper are particular mappings.
//! * [`line::MemoryLine`] — a 512-bit memory line (eight 64-bit words).
//! * [`physical::PhysicalLine`] — the cell states actually stored in the
//!   array, including auxiliary cells, with a per-cell data/aux classification.
//! * [`energy::EnergyModel`] — RESET + iterative-SET programming energy
//!   (Table II of the paper), configurable for the Figure 14 sensitivity study.
//! * [`kernel`] — the bit-parallel candidate-evaluation kernel: transition
//!   LUTs and plane-popcount block costs shared by every coset-style scheme.
//! * [`write`] — differential write: only changed cells are programmed.
//! * [`disturb`] — the write-disturbance error model (per-state disturbance
//!   rates from Table II).
//! * [`codec::LineCodec`] — the interface every encoding scheme implements
//!   (baseline, FNW, FlipMin, DIN, n-cosets, WLCRC, ...).
//!
//! # Quick example
//!
//! ```
//! use wlcrc_pcm::prelude::*;
//!
//! let energy = EnergyModel::paper_default();
//! let old = PhysicalLine::all_reset(LINE_CELLS);
//! let line = MemoryLine::from_words([0xFFFF_0000_1234_5678; 8]);
//!
//! // Encode with the baseline codec (default mapping, differential write).
//! let codec = RawCodec::new();
//! let encoded = codec.encode(&line, &old, &energy);
//! let outcome = differential_write(&old, &encoded, &energy);
//! assert!(outcome.total_energy_pj() > 0.0);
//! assert_eq!(codec.decode(&encoded), line);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod config;
pub mod disturb;
pub mod energy;
pub mod kernel;
pub mod line;
pub mod mapping;
pub mod physical;
pub mod state;
pub mod write;

/// Number of bits in a memory line.
pub const LINE_BITS: usize = 512;
/// Number of bytes in a memory line.
pub const LINE_BYTES: usize = LINE_BITS / 8;
/// Number of 64-bit words in a memory line.
pub const LINE_WORDS: usize = LINE_BITS / 64;
/// Number of 2-bit MLC cells needed to store the data bits of a memory line.
pub const LINE_CELLS: usize = LINE_BITS / 2;
/// Number of cells used by one 64-bit word.
pub const WORD_CELLS: usize = 64 / 2;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::codec::{CodecError, LineCodec, RawCodec};
    pub use crate::config::PcmConfig;
    pub use crate::disturb::{DisturbanceModel, DisturbanceOutcome};
    pub use crate::energy::EnergyModel;
    pub use crate::kernel::{StatePlanes, SymbolPlanes, TransitionTable};
    pub use crate::line::MemoryLine;
    pub use crate::mapping::SymbolMapping;
    pub use crate::physical::{CellClass, PhysicalLine};
    pub use crate::state::{CellState, Symbol};
    pub use crate::write::{differential_write, WriteOutcome};
    pub use crate::{LINE_BITS, LINE_BYTES, LINE_CELLS, LINE_WORDS, WORD_CELLS};
}
