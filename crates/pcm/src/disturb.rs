//! Write-disturbance error model.
//!
//! Resetting a cell generates heat that can lower the resistance of adjacent
//! *idle* cells (cells not being programmed in the same write). A cell already
//! in the minimum-resistance state `S2` is immune; cells in `S1`, `S3` and
//! `S4` are disturbed with the per-state rates of Table II (20 nm node).

use crate::physical::PhysicalLine;
use crate::state::CellState;
use crate::write::changed_cell_indices;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Per-state write-disturbance error rates (probability that an idle neighbour
/// in the given state is disturbed by one adjacent RESET operation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisturbanceModel {
    rates: [f64; 4],
}

impl DisturbanceModel {
    /// The disturbance rates reported in the paper (Table II):
    /// S1: 12.3 %, S2: 0 %, S3: 27.6 %, S4: 15.2 %.
    pub const PAPER_RATES: [f64; 4] = [0.123, 0.0, 0.276, 0.152];

    /// Creates a disturbance model with the given per-state rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]`.
    pub fn new(rates: [f64; 4]) -> DisturbanceModel {
        for r in rates {
            assert!((0.0..=1.0).contains(&r), "disturbance rates must be probabilities");
        }
        DisturbanceModel { rates }
    }

    /// The model used by the paper's evaluation.
    pub fn paper_default() -> DisturbanceModel {
        DisturbanceModel::new(Self::PAPER_RATES)
    }

    /// The disturbance probability of an idle cell in `state`.
    #[inline]
    pub fn rate(&self, state: CellState) -> f64 {
        self.rates[state.index()]
    }
}

impl Default for DisturbanceModel {
    fn default() -> DisturbanceModel {
        DisturbanceModel::paper_default()
    }
}

/// The disturbance outcome of one line write.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DisturbanceOutcome {
    /// Number of idle cells disturbed (sampled), split by the class of the
    /// *disturbed* cell.
    pub data_errors: usize,
    /// Disturbed idle cells classified as auxiliary.
    pub aux_errors: usize,
    /// Expected number of disturbed idle cells (sum of probabilities), data cells.
    pub expected_data_errors: f64,
    /// Expected number of disturbed idle cells, auxiliary cells.
    pub expected_aux_errors: f64,
}

impl DisturbanceOutcome {
    /// Total sampled disturbance errors.
    #[inline]
    pub fn total_errors(&self) -> usize {
        self.data_errors + self.aux_errors
    }

    /// Total expected disturbance errors.
    #[inline]
    pub fn expected_total_errors(&self) -> f64 {
        self.expected_data_errors + self.expected_aux_errors
    }
}

impl AddAssign for DisturbanceOutcome {
    fn add_assign(&mut self, rhs: DisturbanceOutcome) {
        self.data_errors += rhs.data_errors;
        self.aux_errors += rhs.aux_errors;
        self.expected_data_errors += rhs.expected_data_errors;
        self.expected_aux_errors += rhs.expected_aux_errors;
    }
}

/// Evaluates write disturbance for one differential write of `new` over `old`.
///
/// Every cell that changes is programmed (and therefore RESET at least once);
/// each of its immediate neighbours (index ± 1 within the line) that is *idle*
/// in this write may be disturbed with the per-state probability of its stored
/// state. An idle cell adjacent to two written cells is exposed twice.
///
/// The function returns both a Monte-Carlo sample (using `rng`) and the exact
/// expected value, so callers can choose either statistic.
///
/// # Panics
///
/// Panics if the two lines have a different number of cells.
pub fn evaluate_disturbance<R: Rng + ?Sized>(
    old: &PhysicalLine,
    new: &PhysicalLine,
    model: &DisturbanceModel,
    rng: &mut R,
) -> DisturbanceOutcome {
    assert_eq!(old.len(), new.len());
    let written = changed_cell_indices(old, new);
    let mut is_written = vec![false; new.len()];
    for &i in &written {
        is_written[i] = true;
    }

    let mut outcome = DisturbanceOutcome::default();
    for &w in &written {
        let neighbours = [w.checked_sub(1), if w + 1 < new.len() { Some(w + 1) } else { None }];
        for n in neighbours.into_iter().flatten() {
            if is_written[n] {
                continue; // a written cell is re-programmed, not idle
            }
            let state = new.state(n); // idle => stored state unchanged by this write
            if !state.is_disturbable() {
                continue;
            }
            let p = model.rate(state);
            let is_aux = new.class(n) == crate::physical::CellClass::Aux;
            if is_aux {
                outcome.expected_aux_errors += p;
            } else {
                outcome.expected_data_errors += p;
            }
            if rng.gen::<f64>() < p {
                if is_aux {
                    outcome.aux_errors += 1;
                } else {
                    outcome.data_errors += 1;
                }
            }
        }
    }
    outcome
}

/// Computes only the expected number of disturbance errors (no sampling).
///
/// # Panics
///
/// Panics if the two lines have a different number of cells.
pub fn expected_disturbance(
    old: &PhysicalLine,
    new: &PhysicalLine,
    model: &DisturbanceModel,
) -> f64 {
    // A tiny deterministic RNG would still sample; instead reuse the main
    // routine with a counting RNG is unnecessary — recompute directly.
    assert_eq!(old.len(), new.len());
    let written = changed_cell_indices(old, new);
    let mut is_written = vec![false; new.len()];
    for &i in &written {
        is_written[i] = true;
    }
    let mut expected = 0.0;
    for &w in &written {
        let neighbours = [w.checked_sub(1), if w + 1 < new.len() { Some(w + 1) } else { None }];
        for n in neighbours.into_iter().flatten() {
            if is_written[n] {
                continue;
            }
            expected += model.rate(new.state(n));
        }
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::CellClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_writes_no_disturbance() {
        let model = DisturbanceModel::paper_default();
        let line = PhysicalLine::all_reset(16);
        let mut rng = StdRng::seed_from_u64(1);
        let out = evaluate_disturbance(&line, &line, &model, &mut rng);
        assert_eq!(out.total_errors(), 0);
        assert_eq!(out.expected_total_errors(), 0.0);
    }

    #[test]
    fn s2_neighbours_are_immune() {
        let model = DisturbanceModel::paper_default();
        let mut old = PhysicalLine::all_reset(3);
        old.set_state(0, CellState::S2);
        old.set_state(2, CellState::S2);
        let mut new = old.clone();
        new.set_state(1, CellState::S4); // write the middle cell
        let expected = expected_disturbance(&old, &new, &model);
        assert_eq!(expected, 0.0);
    }

    #[test]
    fn idle_s3_neighbour_uses_s3_rate() {
        let model = DisturbanceModel::paper_default();
        let mut old = PhysicalLine::all_reset(3);
        old.set_state(0, CellState::S3);
        old.set_state(2, CellState::S1);
        let mut new = old.clone();
        new.set_state(1, CellState::S2);
        let expected = expected_disturbance(&old, &new, &model);
        assert!((expected - (0.276 + 0.123)).abs() < 1e-12);
    }

    #[test]
    fn written_neighbours_are_not_idle() {
        let model = DisturbanceModel::paper_default();
        let old = PhysicalLine::all_reset(3);
        let mut new = old.clone();
        new.set_state(0, CellState::S4);
        new.set_state(1, CellState::S4);
        new.set_state(2, CellState::S4);
        // Every cell is written; nothing is idle.
        assert_eq!(expected_disturbance(&old, &new, &model), 0.0);
    }

    #[test]
    fn sampling_matches_expectation_roughly() {
        let model = DisturbanceModel::paper_default();
        let mut old = PhysicalLine::all_reset(64);
        for i in (0..64).step_by(2) {
            old.set_state(i, CellState::S3);
        }
        let mut new = old.clone();
        for i in (1..64).step_by(2) {
            new.set_state(i, CellState::S2);
        }
        let mut rng = StdRng::seed_from_u64(7);
        let mut total = 0usize;
        let mut expected = 0.0;
        let rounds = 200;
        for _ in 0..rounds {
            let out = evaluate_disturbance(&old, &new, &model, &mut rng);
            total += out.total_errors();
            expected += out.expected_total_errors();
        }
        let mean = total as f64 / rounds as f64;
        let exp = expected / rounds as f64;
        assert!((mean - exp).abs() < exp * 0.25, "mean {mean} vs expected {exp}");
    }

    #[test]
    fn aux_errors_are_split_out() {
        let model = DisturbanceModel::paper_default();
        let mut old = PhysicalLine::all_reset(3);
        old.set_class(0, CellClass::Aux);
        old.set_state(0, CellState::S3);
        let mut new = old.clone();
        new.set_state(1, CellState::S4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_aux = false;
        for _ in 0..200 {
            let out = evaluate_disturbance(&old, &new, &model, &mut rng);
            assert_eq!(out.data_errors + out.aux_errors, out.total_errors());
            if out.aux_errors > 0 {
                saw_aux = true;
            }
            assert!(out.expected_aux_errors > 0.0);
        }
        assert!(saw_aux, "with 27.6% rate over 200 trials an aux error should occur");
    }

    #[test]
    #[should_panic]
    fn invalid_rate_is_rejected() {
        let _ = DisturbanceModel::new([0.1, 0.2, 1.5, 0.0]);
    }
}
