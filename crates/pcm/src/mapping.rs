//! Symbol-to-state mappings.
//!
//! An MLC PCM encoding is a bijection between the four 2-bit data symbols and
//! the four cell states. The paper's coset candidates (Table I) are particular
//! mappings; the *default mapping* stores `00, 10, 11, 01` in `S1, S2, S3, S4`
//! respectively.

use crate::state::{CellState, Symbol};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A bijective mapping from 2-bit data symbols to cell states.
///
/// ```
/// use wlcrc_pcm::mapping::SymbolMapping;
/// use wlcrc_pcm::state::{CellState, Symbol};
///
/// let def = SymbolMapping::default_mapping();
/// assert_eq!(def.state_of(Symbol::new(0b00)), CellState::S1);
/// assert_eq!(def.symbol_of(CellState::S4), Symbol::new(0b01));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SymbolMapping {
    /// `state_of[symbol.value()]` is the index of the state storing that symbol.
    state_of: [u8; 4],
}

impl SymbolMapping {
    /// Builds a mapping from the state assigned to each symbol value
    /// (`states[v]` is the state that stores symbol `v`).
    ///
    /// # Panics
    ///
    /// Panics if the mapping is not a bijection.
    pub fn from_states(states: [CellState; 4]) -> SymbolMapping {
        let mut seen = [false; 4];
        for s in states {
            assert!(!seen[s.index()], "symbol mapping must be a bijection");
            seen[s.index()] = true;
        }
        SymbolMapping {
            state_of: [
                states[0].index() as u8,
                states[1].index() as u8,
                states[2].index() as u8,
                states[3].index() as u8,
            ],
        }
    }

    /// Builds a mapping from the symbol stored in each state
    /// (`symbols[i]` is the symbol stored in state `S(i+1)`).
    ///
    /// # Panics
    ///
    /// Panics if the mapping is not a bijection.
    pub fn from_symbols_per_state(symbols: [Symbol; 4]) -> SymbolMapping {
        let mut states = [CellState::S1; 4];
        let mut seen = [false; 4];
        for (state_idx, sym) in symbols.iter().enumerate() {
            assert!(!seen[sym.value() as usize], "symbol mapping must be a bijection");
            seen[sym.value() as usize] = true;
            states[sym.value() as usize] = CellState::from_index(state_idx);
        }
        SymbolMapping::from_states(states)
    }

    /// The default mapping of the paper: symbols `00, 10, 11, 01` are stored in
    /// states `S1, S2, S3, S4` respectively. This is coset candidate `C1`.
    pub fn default_mapping() -> SymbolMapping {
        SymbolMapping::from_symbols_per_state([
            Symbol::new(0b00),
            Symbol::new(0b10),
            Symbol::new(0b11),
            Symbol::new(0b01),
        ])
    }

    /// The state that stores `symbol` under this mapping.
    #[inline]
    pub fn state_of(&self, symbol: Symbol) -> CellState {
        CellState::from_index(self.state_of[symbol.value() as usize] as usize)
    }

    /// The symbol stored in `state` under this mapping (inverse lookup).
    #[inline]
    pub fn symbol_of(&self, state: CellState) -> Symbol {
        for v in 0..4u8 {
            if self.state_of[v as usize] as usize == state.index() {
                return Symbol::new(v);
            }
        }
        unreachable!("SymbolMapping invariant guarantees a bijection")
    }

    /// The symbol assigned to each state, indexed by state (`S1` first).
    pub fn symbols_per_state(&self) -> [Symbol; 4] {
        [
            self.symbol_of(CellState::S1),
            self.symbol_of(CellState::S2),
            self.symbol_of(CellState::S3),
            self.symbol_of(CellState::S4),
        ]
    }

    /// Enumerates all 24 possible symbol-to-state bijections.
    pub fn all_mappings() -> Vec<SymbolMapping> {
        let mut out = Vec::with_capacity(24);
        let states = CellState::ALL;
        for a in 0..4 {
            for b in 0..4 {
                if b == a {
                    continue;
                }
                for c in 0..4 {
                    if c == a || c == b {
                        continue;
                    }
                    let d = 6 - a - b - c;
                    out.push(SymbolMapping::from_states([
                        states[a], states[b], states[c], states[d],
                    ]));
                }
            }
        }
        out
    }
}

impl Default for SymbolMapping {
    fn default() -> SymbolMapping {
        SymbolMapping::default_mapping()
    }
}

impl fmt::Display for SymbolMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let per_state = self.symbols_per_state();
        write!(
            f,
            "[S1<-{} S2<-{} S3<-{} S4<-{}]",
            per_state[0], per_state[1], per_state[2], per_state[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mapping_matches_paper() {
        let m = SymbolMapping::default_mapping();
        assert_eq!(m.state_of(Symbol::new(0b00)), CellState::S1);
        assert_eq!(m.state_of(Symbol::new(0b10)), CellState::S2);
        assert_eq!(m.state_of(Symbol::new(0b11)), CellState::S3);
        assert_eq!(m.state_of(Symbol::new(0b01)), CellState::S4);
    }

    #[test]
    fn mapping_is_invertible() {
        for m in SymbolMapping::all_mappings() {
            for s in Symbol::ALL {
                assert_eq!(m.symbol_of(m.state_of(s)), s);
            }
            for st in CellState::ALL {
                assert_eq!(m.state_of(m.symbol_of(st)), st);
            }
        }
    }

    #[test]
    fn all_mappings_are_distinct_and_complete() {
        let all = SymbolMapping::all_mappings();
        assert_eq!(all.len(), 24);
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    #[should_panic]
    fn non_bijection_is_rejected() {
        let _ = SymbolMapping::from_states([
            CellState::S1,
            CellState::S1,
            CellState::S2,
            CellState::S3,
        ]);
    }

    #[test]
    fn symbols_per_state_round_trips() {
        let m = SymbolMapping::default_mapping();
        let per_state = m.symbols_per_state();
        assert_eq!(SymbolMapping::from_symbols_per_state(per_state), m);
    }

    #[test]
    fn display_shows_all_states() {
        let s = SymbolMapping::default_mapping().to_string();
        assert!(s.contains("S1<-00"));
        assert!(s.contains("S4<-01"));
    }
}
