//! Programming-energy model (Table II of the paper, plus the Figure 14
//! sensitivity configurations).

use crate::state::CellState;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Write-energy model of a 4-level PCM cell.
///
/// The paper uses a "single RESET, multiple SET iterations" programming
/// strategy: whenever a cell value changes, the cell is first RESET (≈36 pJ)
/// and then zero or more SET pulses bring it to the target state, costing an
/// additional 0 pJ (`S1`), 20 pJ (`S2`), 307 pJ (`S3`) or 547 pJ (`S4`) with
/// the default (90 nm prototype) numbers.
///
/// ```
/// use wlcrc_pcm::energy::EnergyModel;
/// use wlcrc_pcm::state::CellState;
///
/// let e = EnergyModel::paper_default();
/// assert_eq!(e.write_energy_pj(CellState::S1), 36.0);
/// assert_eq!(e.write_energy_pj(CellState::S4), 36.0 + 547.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    reset_pj: f64,
    set_pj: [f64; 4],
}

impl EnergyModel {
    /// RESET energy used by the paper (picojoules).
    pub const PAPER_RESET_PJ: f64 = 36.0;
    /// Per-state SET energies used by the paper (picojoules), indexed by state.
    pub const PAPER_SET_PJ: [f64; 4] = [0.0, 20.0, 307.0, 547.0];

    /// Creates an energy model from a RESET energy and per-state SET energies.
    ///
    /// # Panics
    ///
    /// Panics if any energy is negative or not finite.
    pub fn new(reset_pj: f64, set_pj: [f64; 4]) -> EnergyModel {
        assert!(
            reset_pj.is_finite() && reset_pj >= 0.0,
            "RESET energy must be a finite non-negative number"
        );
        for e in set_pj {
            assert!(e.is_finite() && e >= 0.0, "SET energies must be finite non-negative numbers");
        }
        EnergyModel { reset_pj, set_pj }
    }

    /// The energy model used throughout the paper's evaluation
    /// (36 pJ RESET; 0/20/307/547 pJ SET).
    pub fn paper_default() -> EnergyModel {
        EnergyModel::new(Self::PAPER_RESET_PJ, Self::PAPER_SET_PJ)
    }

    /// An energy model with reduced intermediate-state energies, keeping `S1`
    /// and `S2` unchanged. Used for the Figure 14 sensitivity study.
    pub fn with_intermediate_states(s3_set_pj: f64, s4_set_pj: f64) -> EnergyModel {
        EnergyModel::new(
            Self::PAPER_RESET_PJ,
            [Self::PAPER_SET_PJ[0], Self::PAPER_SET_PJ[1], s3_set_pj, s4_set_pj],
        )
    }

    /// The four configurations evaluated in Figure 14 of the paper, from the
    /// default `(S3, S4) = (307, 547)` down to `(50, 80)`.
    pub fn figure14_configurations() -> [EnergyModel; 4] {
        [
            EnergyModel::with_intermediate_states(307.0, 547.0),
            EnergyModel::with_intermediate_states(152.0, 273.0),
            EnergyModel::with_intermediate_states(75.0, 135.0),
            EnergyModel::with_intermediate_states(50.0, 80.0),
        ]
    }

    /// The RESET energy in picojoules.
    #[inline]
    pub fn reset_pj(&self) -> f64 {
        self.reset_pj
    }

    /// The SET energy required to reach `state` (after the RESET), in picojoules.
    #[inline]
    pub fn set_pj(&self, state: CellState) -> f64 {
        self.set_pj[state.index()]
    }

    /// The total energy spent when a *changed* cell is programmed into `state`:
    /// the RESET energy plus the SET energy of the target state.
    #[inline]
    pub fn write_energy_pj(&self, state: CellState) -> f64 {
        self.reset_pj + self.set_pj[state.index()]
    }

    /// The cost of a differential write of one cell: zero when the stored state
    /// already equals the target state, the full programming energy otherwise.
    #[inline]
    pub fn transition_energy_pj(&self, old: CellState, new: CellState) -> f64 {
        if old == new {
            0.0
        } else {
            self.write_energy_pj(new)
        }
    }
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel::paper_default()
    }
}

impl fmt::Display for EnergyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EnergyModel {{ RESET: {} pJ, SET: [{}, {}, {}, {}] pJ }}",
            self.reset_pj, self.set_pj[0], self.set_pj[1], self.set_pj[2], self.set_pj[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_ii() {
        let e = EnergyModel::paper_default();
        assert_eq!(e.write_energy_pj(CellState::S1), 36.0);
        assert_eq!(e.write_energy_pj(CellState::S2), 56.0);
        assert_eq!(e.write_energy_pj(CellState::S3), 343.0);
        assert_eq!(e.write_energy_pj(CellState::S4), 583.0);
    }

    #[test]
    fn transition_energy_is_zero_for_unchanged_cells() {
        let e = EnergyModel::paper_default();
        for s in CellState::ALL {
            assert_eq!(e.transition_energy_pj(s, s), 0.0);
        }
        assert_eq!(
            e.transition_energy_pj(CellState::S1, CellState::S4),
            e.write_energy_pj(CellState::S4)
        );
    }

    #[test]
    fn figure14_configurations_keep_low_states_fixed() {
        for cfg in EnergyModel::figure14_configurations() {
            assert_eq!(cfg.write_energy_pj(CellState::S1), 36.0);
            assert_eq!(cfg.write_energy_pj(CellState::S2), 56.0);
            assert!(cfg.write_energy_pj(CellState::S3) <= 343.0);
            assert!(cfg.write_energy_pj(CellState::S4) <= 583.0);
        }
    }

    #[test]
    fn energy_order_is_monotone_in_default_model() {
        let e = EnergyModel::paper_default();
        let mut prev = -1.0;
        for s in CellState::ALL {
            assert!(e.write_energy_pj(s) > prev);
            prev = e.write_energy_pj(s);
        }
    }

    #[test]
    #[should_panic]
    fn negative_energy_is_rejected() {
        let _ = EnergyModel::new(-1.0, [0.0; 4]);
    }

    #[test]
    fn display_mentions_reset() {
        let e = EnergyModel::paper_default();
        assert!(e.to_string().contains("RESET: 36"));
    }
}
