//! The [`LineCodec`] trait implemented by every encoding scheme, plus the
//! baseline codec (differential write with the default symbol mapping and no
//! auxiliary information).

use crate::energy::EnergyModel;
use crate::line::MemoryLine;
use crate::mapping::SymbolMapping;
use crate::physical::{CellClass, PhysicalLine};
use crate::LINE_CELLS;
use std::fmt;

/// Error type returned by codecs that can fail to decode malformed content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    message: String,
}

impl CodecError {
    /// Creates a codec error with a descriptive message.
    pub fn new(message: impl Into<String>) -> CodecError {
        CodecError { message: message.into() }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

/// A memory-line encoding scheme.
///
/// Every scheme in this workspace (baseline, Flip-N-Write, FlipMin, DIN,
/// n-cosets, WLC-based schemes, WLCRC) implements this trait. An encoder is
/// given the data to store and the currently stored physical content of the
/// line (so that it can minimise the differential-write cost), and produces
/// the new physical content, including any auxiliary cells.
///
/// Invariants every implementation must uphold:
///
/// * `encode` always returns a line of exactly [`LineCodec::encoded_cells`] cells;
/// * `decode(encode(data, old)) == data` for every `data` and every well-formed
///   `old` produced by the same codec (lossless round trip);
/// * the codec never relies on the *data* content of `old`, only on its cell
///   states (it is what is physically stored, possibly from a different write).
///
/// Codecs are `Send + Sync`: `encode`/`decode` take `&self` and must not rely
/// on interior mutability, so one codec instance can be shared by the
/// parallel experiment engine's worker threads (`wlcrc_memsim`'s
/// `ExperimentPlan`) or rebuilt cheaply per worker.
pub trait LineCodec: Send + Sync {
    /// Human-readable scheme name used in reports ("WLCRC-16", "6cosets", ...).
    fn name(&self) -> &str;

    /// Number of cells (data + auxiliary) occupied by an encoded line.
    fn encoded_cells(&self) -> usize;

    /// Encodes `data`, choosing the encoding that minimises the differential
    /// write cost with respect to the stored content `old`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `old.len() != self.encoded_cells()`.
    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, energy: &EnergyModel) -> PhysicalLine;

    /// Decodes a stored physical line back into the data it represents.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `stored.len() != self.encoded_cells()`.
    fn decode(&self, stored: &PhysicalLine) -> MemoryLine;

    /// A line of `encoded_cells` cells representing a freshly initialised
    /// (all-RESET) line; used by simulators for the first write to an address.
    fn initial_line(&self) -> PhysicalLine {
        PhysicalLine::all_reset(self.encoded_cells())
    }

    /// Encodes a batch of independent `(data, old)` jobs, returning one
    /// encoded line per job in order.
    ///
    /// The default simply calls [`LineCodec::encode`] per job, so every codec
    /// gets the API for free and batching is always byte-identical to
    /// one-at-a-time encoding. Kernelised codecs override this to build their
    /// per-energy transition tables once per batch instead of once per line,
    /// which is where the amortisation the batched write paths
    /// (`SimulatorSession::write_batch`, the serve lanes) rely on comes from.
    fn encode_batch(
        &self,
        jobs: &[(&MemoryLine, &PhysicalLine)],
        energy: &EnergyModel,
    ) -> Vec<PhysicalLine> {
        jobs.iter().map(|&(data, old)| self.encode(data, old, energy)).collect()
    }
}

/// The baseline scheme: the 512 data bits are stored through the default
/// symbol-to-state mapping with differential write and no auxiliary cells.
#[derive(Debug, Clone)]
pub struct RawCodec {
    mapping: SymbolMapping,
    name: String,
}

impl RawCodec {
    /// Creates the baseline codec with the paper's default mapping.
    pub fn new() -> RawCodec {
        RawCodec::with_mapping(SymbolMapping::default_mapping())
    }

    /// Creates a baseline codec that uses a custom fixed symbol mapping.
    pub fn with_mapping(mapping: SymbolMapping) -> RawCodec {
        RawCodec { mapping, name: "Baseline".to_string() }
    }

    /// The fixed mapping used by this codec.
    pub fn mapping(&self) -> SymbolMapping {
        self.mapping
    }
}

impl Default for RawCodec {
    fn default() -> RawCodec {
        RawCodec::new()
    }
}

impl LineCodec for RawCodec {
    fn name(&self) -> &str {
        &self.name
    }

    fn encoded_cells(&self) -> usize {
        LINE_CELLS
    }

    fn encode(&self, data: &MemoryLine, old: &PhysicalLine, _energy: &EnergyModel) -> PhysicalLine {
        assert_eq!(old.len(), self.encoded_cells());
        let mut out = PhysicalLine::all_reset(LINE_CELLS);
        for cell in 0..LINE_CELLS {
            out.set_state(cell, self.mapping.state_of(data.symbol(cell)));
            out.set_class(cell, CellClass::Data);
        }
        out
    }

    fn decode(&self, stored: &PhysicalLine) -> MemoryLine {
        assert_eq!(stored.len(), self.encoded_cells());
        let mut line = MemoryLine::new();
        for cell in 0..LINE_CELLS {
            line.set_symbol(cell, self.mapping.symbol_of(stored.state(cell)));
        }
        line
    }
}

/// Encodes a full [`MemoryLine`] with a fixed symbol mapping, returning only
/// the 256 data-cell states. Shared helper used by several schemes.
pub fn map_line(data: &MemoryLine, mapping: &SymbolMapping) -> PhysicalLine {
    let mut out = PhysicalLine::all_reset(LINE_CELLS);
    for cell in 0..LINE_CELLS {
        out.set_state(cell, mapping.state_of(data.symbol(cell)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::CellState;

    #[test]
    fn raw_codec_round_trips() {
        let codec = RawCodec::new();
        let e = EnergyModel::paper_default();
        let old = codec.initial_line();
        let data = MemoryLine::from_words([0xDEAD_BEEF_0123_4567; 8]);
        let enc = codec.encode(&data, &old, &e);
        assert_eq!(enc.len(), LINE_CELLS);
        assert_eq!(codec.decode(&enc), data);
    }

    #[test]
    fn raw_codec_has_no_aux_cells() {
        let codec = RawCodec::new();
        let e = EnergyModel::paper_default();
        let enc = codec.encode(&MemoryLine::ZERO, &codec.initial_line(), &e);
        assert_eq!(enc.aux_cells(), 0);
    }

    #[test]
    fn zero_line_maps_to_all_s1() {
        let codec = RawCodec::new();
        let e = EnergyModel::paper_default();
        let enc = codec.encode(&MemoryLine::ZERO, &codec.initial_line(), &e);
        assert!(enc.states().iter().all(|s| *s == CellState::S1));
    }

    #[test]
    fn all_ones_line_maps_to_all_s3() {
        let codec = RawCodec::new();
        let e = EnergyModel::paper_default();
        let enc = codec.encode(&MemoryLine::ZERO.complement(), &codec.initial_line(), &e);
        assert!(enc.states().iter().all(|s| *s == CellState::S3));
    }

    #[test]
    fn map_line_matches_raw_encode() {
        let codec = RawCodec::new();
        let e = EnergyModel::paper_default();
        let data = MemoryLine::from_words([0x0123_4567_89AB_CDEF; 8]);
        let enc = codec.encode(&data, &codec.initial_line(), &e);
        let mapped = map_line(&data, &SymbolMapping::default_mapping());
        assert_eq!(enc.states(), mapped.states());
    }

    #[test]
    fn codec_error_display() {
        let err = CodecError::new("bad flag symbol");
        assert!(err.to_string().contains("bad flag symbol"));
    }
}
