//! Cell states and 2-bit data symbols.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the four programmable resistance states of a 4-level (MLC) PCM cell.
///
/// States are numbered in the order implied by the energy needed to program a
/// cell into that state: `S1` requires the least energy (a single RESET pulse)
/// and `S4` the most (RESET followed by many partial-SET iterations).
///
/// Resistance-wise, `S1` is the highest-resistance (amorphous/RESET) state and
/// `S2` the lowest-resistance (fully crystalline/SET) state; `S3` and `S4` are
/// the intermediate states reached through iterative program-and-verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CellState {
    /// RESET state (highest resistance, lowest programming energy).
    S1,
    /// SET state (lowest resistance, immune to write disturbance).
    S2,
    /// First intermediate state (high programming energy).
    S3,
    /// Second intermediate state (highest programming energy).
    S4,
}

impl CellState {
    /// All four states, in energy order.
    pub const ALL: [CellState; 4] = [CellState::S1, CellState::S2, CellState::S3, CellState::S4];

    /// Returns the zero-based index of the state (`S1 -> 0`, ..., `S4 -> 3`).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            CellState::S1 => 0,
            CellState::S2 => 1,
            CellState::S3 => 2,
            CellState::S4 => 3,
        }
    }

    /// Builds a state from its zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    #[inline]
    pub const fn from_index(index: usize) -> CellState {
        match index {
            0 => CellState::S1,
            1 => CellState::S2,
            2 => CellState::S3,
            3 => CellState::S4,
            _ => panic!("cell state index out of range"),
        }
    }

    /// `true` for the two low-energy states `S1` and `S2`.
    #[inline]
    pub const fn is_low_energy(self) -> bool {
        matches!(self, CellState::S1 | CellState::S2)
    }

    /// `true` if an idle cell in this state can be disturbed by a neighbouring
    /// RESET operation. Only `S2` (minimum resistance) is immune.
    #[inline]
    pub const fn is_disturbable(self) -> bool {
        !matches!(self, CellState::S2)
    }
}

impl fmt::Display for CellState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.index() + 1)
    }
}

/// A 2-bit data symbol stored in one MLC cell.
///
/// The value is in `0..=3` and is interpreted as the bit pair `(msb, lsb)`:
/// `Symbol::new(0b10)` is the symbol `10`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Symbol(u8);

impl Symbol {
    /// All four symbols in numeric order `00, 01, 10, 11`.
    pub const ALL: [Symbol; 4] = [Symbol(0b00), Symbol(0b01), Symbol(0b10), Symbol(0b11)];

    /// Creates a symbol from its 2-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `value >= 4`.
    #[inline]
    pub const fn new(value: u8) -> Symbol {
        assert!(value < 4, "symbol value must be a 2-bit value");
        Symbol(value)
    }

    /// Creates a symbol from its most-significant and least-significant bits.
    #[inline]
    pub const fn from_bits(msb: bool, lsb: bool) -> Symbol {
        Symbol(((msb as u8) << 1) | lsb as u8)
    }

    /// Returns the 2-bit value of the symbol.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns the most-significant bit of the symbol.
    #[inline]
    pub const fn msb(self) -> bool {
        self.0 & 0b10 != 0
    }

    /// Returns the least-significant bit of the symbol.
    #[inline]
    pub const fn lsb(self) -> bool {
        self.0 & 0b01 != 0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", (self.0 >> 1) & 1, self.0 & 1)
    }
}

impl fmt::Binary for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02b}", self.0)
    }
}

impl From<Symbol> for u8 {
    fn from(s: Symbol) -> u8 {
        s.0
    }
}

impl TryFrom<u8> for Symbol {
    type Error = InvalidSymbolError;

    fn try_from(value: u8) -> Result<Symbol, InvalidSymbolError> {
        if value < 4 {
            Ok(Symbol(value))
        } else {
            Err(InvalidSymbolError { value })
        }
    }
}

/// Error returned when converting an out-of-range value into a [`Symbol`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSymbolError {
    /// The offending value.
    pub value: u8,
}

impl fmt::Display for InvalidSymbolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {} is not a valid 2-bit symbol", self.value)
    }
}

impl std::error::Error for InvalidSymbolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_index_round_trip() {
        for s in CellState::ALL {
            assert_eq!(CellState::from_index(s.index()), s);
        }
    }

    #[test]
    fn state_ordering_matches_energy_order() {
        assert!(CellState::S1 < CellState::S2);
        assert!(CellState::S2 < CellState::S3);
        assert!(CellState::S3 < CellState::S4);
    }

    #[test]
    fn low_energy_states() {
        assert!(CellState::S1.is_low_energy());
        assert!(CellState::S2.is_low_energy());
        assert!(!CellState::S3.is_low_energy());
        assert!(!CellState::S4.is_low_energy());
    }

    #[test]
    fn disturbable_states_exclude_s2() {
        assert!(CellState::S1.is_disturbable());
        assert!(!CellState::S2.is_disturbable());
        assert!(CellState::S3.is_disturbable());
        assert!(CellState::S4.is_disturbable());
    }

    #[test]
    fn symbol_bits_round_trip() {
        for v in 0..4u8 {
            let s = Symbol::new(v);
            assert_eq!(Symbol::from_bits(s.msb(), s.lsb()), s);
            assert_eq!(u8::from(s), v);
        }
    }

    #[test]
    fn symbol_try_from_rejects_out_of_range() {
        assert!(Symbol::try_from(3u8).is_ok());
        assert!(Symbol::try_from(4u8).is_err());
        let err = Symbol::try_from(200u8).unwrap_err();
        assert_eq!(err.value, 200);
        assert!(err.to_string().contains("200"));
    }

    #[test]
    fn symbol_display_is_two_bits() {
        assert_eq!(Symbol::new(0b00).to_string(), "00");
        assert_eq!(Symbol::new(0b01).to_string(), "01");
        assert_eq!(Symbol::new(0b10).to_string(), "10");
        assert_eq!(Symbol::new(0b11).to_string(), "11");
    }

    #[test]
    fn state_display() {
        assert_eq!(CellState::S1.to_string(), "S1");
        assert_eq!(CellState::S4.to_string(), "S4");
    }
}
