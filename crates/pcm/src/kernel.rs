//! Bit-parallel candidate-evaluation kernel.
//!
//! Every coset-style scheme answers the same question millions of times per
//! simulated trace: *what would it cost to store this block of 2-bit symbols
//! through mapping M, given the states already in the array?* The scalar
//! answer walks the block cell by cell (`symbol()` → `state_of()` →
//! `transition_energy_pj()`), which is a long dependent chain of 2-bit
//! lookups and float adds.
//!
//! This module answers it with word-level bit logic instead:
//!
//! * [`SymbolPlanes`] / [`StatePlanes`] hold a memory line's symbols and a
//!   physical line's states as two bit planes each — `plane0` carries the
//!   low bit of every cell's 2-bit value, `plane1` the high bit, one bit per
//!   cell, 64 cells per `u64` word.
//! * [`TransitionTable`] precomputes, per (symbol→state mapping, energy
//!   model), the full 16-entry `(old state × symbol)` transition-cost table
//!   plus the masks needed to evaluate it in bit-parallel form.
//! * [`block_cost`] and friends combine the two: for each 64-cell plane word
//!   they derive the candidate's target-state planes with a handful of
//!   AND/OR/XOR operations, isolate the cells whose state would change, and
//!   reduce each target-state bucket with one `popcount` — a few dozen word
//!   operations per 64 cells instead of hundreds of scalar steps.
//!
//! The kernel is numerically exact with respect to the scalar path whenever
//! the energy table holds integer-valued picojoule costs (as the paper's
//! Table II and every Figure 14 configuration do): all intermediate sums are
//! integers below 2^53, so grouping terms per bucket cannot round. The
//! scalar routines in `wlcrc_coset::cost` are kept as the reference oracle
//! and the equivalence is pinned by `tests/kernel_equivalence.rs`.

use crate::energy::EnergyModel;
use crate::line::MemoryLine;
use crate::mapping::SymbolMapping;
use crate::physical::PhysicalLine;
use crate::state::{CellState, Symbol};
use crate::{LINE_CELLS, LINE_WORDS};
use std::ops::Range;

/// Number of 64-cell plane words covering the 256 data cells of a line.
pub const PLANE_WORDS: usize = LINE_CELLS / 64;

/// Extracts the even-positioned bits of `x` (bits 0, 2, 4, ...) into the low
/// 32 bits of the result.
#[inline]
fn even_bits(mut x: u64) -> u64 {
    x &= 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF
}

/// Inverse of [`even_bits`]: spreads the low 32 bits of `x` onto the even
/// positions (bit `i` of the input lands on bit `2i`).
#[inline]
fn spread_bits(mut x: u64) -> u64 {
    x &= 0x0000_0000_FFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    (x | (x << 1)) & 0x5555_5555_5555_5555
}

/// The 2-bit symbols of a [`MemoryLine`], de-interleaved into two bit planes.
///
/// Bit `c` of `plane0` word `c / 64` is the **low** bit of cell `c`'s symbol;
/// the same bit of `plane1` is the **high** bit. The per-symbol masks
/// (`mask(v)`) mark the cells holding symbol value `v` and are what the cost
/// kernel consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolPlanes {
    plane0: [u64; PLANE_WORDS],
    plane1: [u64; PLANE_WORDS],
    /// `masks[v][w]`: cells of plane word `w` holding symbol value `v`.
    masks: [[u64; PLANE_WORDS]; 4],
}

impl SymbolPlanes {
    /// Builds the plane view of `line`. The view is a pure function of the
    /// line content, so it is always consistent with [`MemoryLine::symbol`].
    pub fn new(line: &MemoryLine) -> SymbolPlanes {
        let mut plane0 = [0u64; PLANE_WORDS];
        let mut plane1 = [0u64; PLANE_WORDS];
        for w in 0..PLANE_WORDS {
            // Plane word w covers cells 64w..64w+64, i.e. line words 2w, 2w+1.
            let a = line.word(2 * w);
            let b = line.word(2 * w + 1);
            plane0[w] = even_bits(a) | (even_bits(b) << 32);
            plane1[w] = even_bits(a >> 1) | (even_bits(b >> 1) << 32);
        }
        SymbolPlanes::from_planes(plane0, plane1)
    }

    /// Builds the view from raw planes (used when symbols are produced by
    /// XORing plane views rather than from a line).
    pub fn from_planes(plane0: [u64; PLANE_WORDS], plane1: [u64; PLANE_WORDS]) -> SymbolPlanes {
        let mut masks = [[0u64; PLANE_WORDS]; 4];
        for w in 0..PLANE_WORDS {
            let (p0, p1) = (plane0[w], plane1[w]);
            masks[0][w] = !p1 & !p0;
            masks[1][w] = !p1 & p0;
            masks[2][w] = p1 & !p0;
            masks[3][w] = p1 & p0;
        }
        SymbolPlanes { plane0, plane1, masks }
    }

    /// The low-bit plane.
    #[inline]
    pub fn plane0(&self) -> &[u64; PLANE_WORDS] {
        &self.plane0
    }

    /// The high-bit plane.
    #[inline]
    pub fn plane1(&self) -> &[u64; PLANE_WORDS] {
        &self.plane1
    }

    /// The cells-holding-symbol-`v` mask planes.
    #[inline]
    pub fn mask(&self, v: usize) -> &[u64; PLANE_WORDS] {
        &self.masks[v]
    }

    /// The symbol of cell `cell` according to the planes.
    #[inline]
    pub fn symbol(&self, cell: usize) -> Symbol {
        let (w, b) = (cell / 64, cell % 64);
        let lo = (self.plane0[w] >> b) & 1;
        let hi = (self.plane1[w] >> b) & 1;
        Symbol::new((hi << 1 | lo) as u8)
    }

    /// The symbol-wise XOR of two plane views (each cell's 2-bit value XORed
    /// independently) — how FlipMin derives its mask candidates.
    pub fn xor(&self, other: &SymbolPlanes) -> SymbolPlanes {
        let mut plane0 = self.plane0;
        let mut plane1 = self.plane1;
        for w in 0..PLANE_WORDS {
            plane0[w] ^= other.plane0[w];
            plane1[w] ^= other.plane1[w];
        }
        SymbolPlanes::from_planes(plane0, plane1)
    }
}

/// The stored states of the first 256 cells of a [`PhysicalLine`], packed as
/// two bit planes (low/high bit of each state's 2-bit index).
///
/// Auxiliary cells beyond the 256 data cells are not covered: every scheme
/// touches them with a handful of scalar operations, never inside the
/// per-candidate block loops the kernel accelerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatePlanes {
    plane0: [u64; PLANE_WORDS],
    plane1: [u64; PLANE_WORDS],
}

impl StatePlanes {
    /// Builds the plane view of the first `min(len, 256)` cells of `line`.
    /// The view is a pure function of the stored states, so it is always
    /// consistent with [`PhysicalLine::state`].
    pub fn new(line: &PhysicalLine) -> StatePlanes {
        let mut plane0 = [0u64; PLANE_WORDS];
        let mut plane1 = [0u64; PLANE_WORDS];
        let states = line.states();
        let states = &states[..states.len().min(LINE_CELLS)];
        for (w, chunk) in states.chunks(64).enumerate() {
            // Accumulate each 64-cell word in registers; the per-cell
            // read-modify-write of the naive loop is what made this hot.
            let mut p0 = 0u64;
            let mut p1 = 0u64;
            for (b, &state) in chunk.iter().enumerate() {
                let idx = state.index() as u64;
                p0 |= (idx & 1) << b;
                p1 |= (idx >> 1) << b;
            }
            plane0[w] = p0;
            plane1[w] = p1;
        }
        StatePlanes { plane0, plane1 }
    }

    /// The low-bit plane of the state indices.
    #[inline]
    pub fn plane0(&self) -> &[u64; PLANE_WORDS] {
        &self.plane0
    }

    /// The high-bit plane of the state indices.
    #[inline]
    pub fn plane1(&self) -> &[u64; PLANE_WORDS] {
        &self.plane1
    }

    /// The state of cell `cell` according to the planes.
    #[inline]
    pub fn state(&self, cell: usize) -> CellState {
        let (w, b) = (cell / 64, cell % 64);
        let lo = (self.plane0[w] >> b) & 1;
        let hi = (self.plane1[w] >> b) & 1;
        CellState::from_index((hi << 1 | lo) as usize)
    }

    /// Rewrites the two bits of cell `cell` — the incremental update
    /// [`PhysicalLine::set_state`] uses to keep a cached view warm.
    #[inline]
    pub(crate) fn set(&mut self, cell: usize, state: CellState) {
        let (w, b) = (cell / 64, cell % 64);
        let mask = 1u64 << b;
        let idx = state.index() as u64;
        self.plane0[w] = (self.plane0[w] & !mask) | ((idx & 1) << b);
        self.plane1[w] = (self.plane1[w] & !mask) | ((idx >> 1) << b);
    }
}

/// The precomputed transition space of one (symbol→state mapping, energy
/// model) pair: the flat 16-entry `cost_pj[old * 4 + symbol]` table, the
/// matching would-this-cell-change bitmask, and the per-symbol target-state
/// masks the bit-parallel kernel consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionTable {
    /// Programming energy of each target state (RESET + SET), by state index.
    write_pj: [f64; 4],
    /// Bit `v` set iff the state storing symbol `v` has an odd index.
    target_lo: u8,
    /// Bit `v` set iff the state storing symbol `v` has index >= 2.
    target_hi: u8,
    /// All-ones when `target_lo` bit `v` is set, else zero (branchless
    /// select masks for [`Self::target_planes`]).
    t0_select: [u64; 4],
    /// All-ones when `target_hi` bit `v` is set, else zero.
    t1_select: [u64; 4],
    /// `write_pj` as integers when every entry is an integer below 2^20
    /// (true for the paper's Table II and all Figure 14 configurations):
    /// weighted popcount sums then run in exact integer arithmetic — the
    /// converted result is bit-identical to the f64 dot product, since both
    /// are integers far below 2^53 — and skip four int→float conversions
    /// per block.
    write_int: Option<[u64; 4]>,
    /// The state storing each symbol value.
    states: [CellState; 4],
}

impl TransitionTable {
    /// Builds the table for `mapping` under `energy`.
    pub fn new(mapping: &SymbolMapping, energy: &EnergyModel) -> TransitionTable {
        TransitionTable::from_states(
            [
                mapping.state_of(Symbol::new(0)),
                mapping.state_of(Symbol::new(1)),
                mapping.state_of(Symbol::new(2)),
                mapping.state_of(Symbol::new(3)),
            ],
            energy,
        )
    }

    /// Builds the table from the state assigned to each symbol value
    /// (`states[v]` stores symbol `v`). Unlike [`SymbolMapping`], the
    /// assignment does not have to be a bijection, which lets schemes such as
    /// FNW express "mapping composed with symbol complement" directly.
    pub fn from_states(states: [CellState; 4], energy: &EnergyModel) -> TransitionTable {
        let mut target_lo = 0u8;
        let mut target_hi = 0u8;
        for (v, &target) in states.iter().enumerate() {
            if target.index() & 1 == 1 {
                target_lo |= 1 << v;
            }
            if target.index() & 2 == 2 {
                target_hi |= 1 << v;
            }
        }
        let write_pj = [
            energy.write_energy_pj(CellState::S1),
            energy.write_energy_pj(CellState::S2),
            energy.write_energy_pj(CellState::S3),
            energy.write_energy_pj(CellState::S4),
        ];
        let select = |bits: u8| -> [u64; 4] {
            core::array::from_fn(|v| 0u64.wrapping_sub(u64::from(bits >> v & 1)))
        };
        let write_int =
            if write_pj.iter().all(|&e| e.fract() == 0.0 && (0.0..1048576.0).contains(&e)) {
                Some(core::array::from_fn(|i| write_pj[i] as u64))
            } else {
                None
            };
        TransitionTable {
            write_pj,
            target_lo,
            target_hi,
            t0_select: select(target_lo),
            t1_select: select(target_hi),
            write_int,
            states,
        }
    }

    /// A placeholder table (identity assignment, zero energy); used to fill
    /// fixed-size candidate-table arrays without heap allocation.
    pub fn placeholder() -> TransitionTable {
        TransitionTable::from_states(CellState::ALL, &EnergyModel::new(0.0, [0.0; 4]))
    }

    /// The flat `(old state × symbol)` transition-cost entry — zero when the
    /// cell already stores the target state, its full programming energy
    /// otherwise.
    #[inline]
    pub fn cost_pj(&self, old: CellState, symbol: Symbol) -> f64 {
        let target = self.states[symbol.value() as usize];
        if old == target {
            0.0
        } else {
            self.write_pj[target.index()]
        }
    }

    /// `true` when storing `symbol` over `old` would reprogram the cell.
    #[inline]
    pub fn is_updated(&self, old: CellState, symbol: Symbol) -> bool {
        old != self.states[symbol.value() as usize]
    }

    /// The state that stores `symbol` under this table's assignment.
    #[inline]
    pub fn state_of(&self, symbol: Symbol) -> CellState {
        self.states[symbol.value() as usize]
    }

    /// The per-state programming energies as exact integers, when the energy
    /// model is integer-valued (see the `write_int` fast path).
    #[inline]
    pub fn integer_write_pj(&self) -> Option<[u64; 4]> {
        self.write_int
    }

    /// The target-state planes of a block of symbols: bit `c` of the returned
    /// `(plane0, plane1)` is the low/high bit of the state that would store
    /// cell `c`'s symbol.
    #[inline]
    pub fn target_planes(&self, data: &SymbolPlanes, word: usize) -> (u64, u64) {
        let m =
            [data.masks[0][word], data.masks[1][word], data.masks[2][word], data.masks[3][word]];
        let t0 = (m[0] & self.t0_select[0])
            | (m[1] & self.t0_select[1])
            | (m[2] & self.t0_select[2])
            | (m[3] & self.t0_select[3]);
        let t1 = (m[0] & self.t1_select[0])
            | (m[1] & self.t1_select[1])
            | (m[2] & self.t1_select[2])
            | (m[3] & self.t1_select[3]);
        (t0, t1)
    }
}

/// Iterates over the (plane-word index, in-word cell mask) pairs covering
/// `cells`.
#[inline]
fn plane_words(cells: Range<usize>) -> impl Iterator<Item = (usize, u64)> {
    debug_assert!(cells.end <= LINE_CELLS);
    let (start, end) = (cells.start, cells.end);
    (start / 64..end.div_ceil(64)).map(move |w| {
        let lo = start.max(w * 64) - w * 64;
        let hi = end.min(w * 64 + 64) - w * 64;
        let mask = if hi - lo == 64 { u64::MAX } else { ((1u64 << (hi - lo)) - 1) << lo };
        (w, mask)
    })
}

/// Cost and updated-cell count of one plane word under `mask`.
#[inline]
fn word_cost(
    data: &SymbolPlanes,
    old: &StatePlanes,
    table: &TransitionTable,
    word: usize,
    mask: u64,
) -> (f64, u32) {
    let (t0, t1) = table.target_planes(data, word);
    let changed = ((t0 ^ old.plane0[word]) | (t1 ^ old.plane1[word])) & mask;
    if changed == 0 {
        return (0.0, 0);
    }
    // Bucket the changed cells by target state: four popcounts replace up to
    // 64 scalar lookups. The differential-write cost of a changed cell only
    // depends on its target state (RESET + SET-to-target).
    let c1 = (changed & !t1 & !t0).count_ones();
    let c2 = (changed & !t1 & t0).count_ones();
    let c3 = (changed & t1 & !t0).count_ones();
    let c4 = (changed & t1 & t0).count_ones();
    let cost = match table.write_int {
        // Integer energies: the u64 total is the same integer the f64 dot
        // product produces (all terms far below 2^53), minus the four
        // int→float conversions.
        Some(wi) => {
            (u64::from(c1) * wi[0]
                + u64::from(c2) * wi[1]
                + u64::from(c3) * wi[2]
                + u64::from(c4) * wi[3]) as f64
        }
        None => {
            f64::from(c1) * table.write_pj[0]
                + f64::from(c2) * table.write_pj[1]
                + f64::from(c3) * table.write_pj[2]
                + f64::from(c4) * table.write_pj[3]
        }
    };
    (cost, changed.count_ones())
}

/// Bit-parallel equivalent of `wlcrc_coset::cost::block_cost`: the
/// differential-write energy (pJ) of storing the symbols in `cells` of `data`
/// through `table`, given the states in `old`.
pub fn block_cost(
    data: &SymbolPlanes,
    old: &StatePlanes,
    cells: Range<usize>,
    table: &TransitionTable,
) -> f64 {
    if let Some(wi) = table.write_int {
        // Fixed-width chunked form: accumulate the four bucket counts across
        // every word with straight-line AND/XOR/popcount (no per-word float
        // dependency chain, autovectorisable), then one dot product at the
        // end. Exact regrouping — every partial sum is an integer.
        let mut counts = [0u64; 4];
        for (w, mask) in plane_words(cells) {
            let (t0, t1) = table.target_planes(data, w);
            let changed = ((t0 ^ old.plane0[w]) | (t1 ^ old.plane1[w])) & mask;
            counts[0] += u64::from((changed & !t1 & !t0).count_ones());
            counts[1] += u64::from((changed & !t1 & t0).count_ones());
            counts[2] += u64::from((changed & t1 & !t0).count_ones());
            counts[3] += u64::from((changed & t1 & t0).count_ones());
        }
        return (counts[0] * wi[0] + counts[1] * wi[1] + counts[2] * wi[2] + counts[3] * wi[3])
            as f64;
    }
    let mut cost = 0.0;
    for (w, mask) in plane_words(cells) {
        cost += word_cost(data, old, table, w, mask).0;
    }
    cost
}

/// Like [`block_cost`], but starts the accumulator at `base` and gives up as
/// soon as the running total reaches `bound` (branch-and-bound for candidate
/// searches: a candidate whose partial cost already matches the incumbent can
/// never win a strict `<` comparison).
///
/// Returns `Some(total)` with `total < bound`, or `None` when the bound was
/// hit.
pub fn block_cost_bounded(
    data: &SymbolPlanes,
    old: &StatePlanes,
    cells: Range<usize>,
    table: &TransitionTable,
    base: f64,
    bound: f64,
) -> Option<f64> {
    let mut cost = base;
    if cost >= bound {
        return None;
    }
    for (w, mask) in plane_words(cells) {
        cost += word_cost(data, old, table, w, mask).0;
        if cost >= bound {
            return None;
        }
    }
    Some(cost)
}

/// Costs of `blocks` equal-size blocks tiling the line from cell 0, written
/// into `out[0..blocks]` for one candidate.
///
/// For blocks smaller than a plane word this amortises the target-plane and
/// changed-mask computation across every block sharing the word — the
/// per-block work drops to four masked popcounts — which is what makes the
/// fine-granularity (8/16/32-bit) candidate sweeps of the n-cosets and
/// restricted codecs profitable. Blocks of one or more whole words fall back
/// to [`block_cost`] per block.
///
/// # Panics
///
/// Panics if `out` is shorter than `blocks` or `cells_per_block` does not
/// tile 64-cell words (divisor or multiple of 64).
pub fn block_costs_uniform(
    data: &SymbolPlanes,
    old: &StatePlanes,
    cells_per_block: usize,
    blocks: usize,
    table: &TransitionTable,
    out: &mut [f64],
) {
    let mut targets = ([0u64; PLANE_WORDS], [0u64; PLANE_WORDS]);
    block_costs_uniform_with_targets(data, old, cells_per_block, blocks, table, out, &mut targets);
}

/// Like [`block_costs_uniform`], but additionally records the candidate's
/// target-state planes for every covered word in `targets` (`.0` = low bit,
/// `.1` = high bit), so the caller can assemble the winning encoding with a
/// few mask merges instead of re-mapping every cell.
pub fn block_costs_uniform_with_targets(
    data: &SymbolPlanes,
    old: &StatePlanes,
    cells_per_block: usize,
    blocks: usize,
    table: &TransitionTable,
    out: &mut [f64],
    targets: &mut ([u64; PLANE_WORDS], [u64; PLANE_WORDS]),
) {
    assert!(out.len() >= blocks, "output slice too short");
    let words = (blocks * cells_per_block).div_ceil(64).min(PLANE_WORDS);
    if cells_per_block >= 64 {
        assert!(cells_per_block.is_multiple_of(64), "blocks must tile plane words");
        for (b, slot) in out.iter_mut().enumerate().take(blocks) {
            *slot = block_cost(data, old, b * cells_per_block..(b + 1) * cells_per_block, table);
        }
        for w in 0..words {
            let (t0, t1) = table.target_planes(data, w);
            targets.0[w] = t0;
            targets.1[w] = t1;
        }
        return;
    }
    assert!(64 % cells_per_block == 0, "blocks must tile plane words");
    let blocks_per_word = 64 / cells_per_block;
    let block_mask = (1u64 << cells_per_block) - 1;
    let out = &mut out[..blocks];
    for (w, chunk) in out.chunks_mut(blocks_per_word).enumerate() {
        let (t0, t1) = table.target_planes(data, w);
        targets.0[w] = t0;
        targets.1[w] = t1;
        let changed = (t0 ^ old.plane0[w]) | (t1 ^ old.plane1[w]);
        let buckets =
            [changed & !t1 & !t0, changed & !t1 & t0, changed & t1 & !t0, changed & t1 & t0];
        if let Some(wi) = table.write_int {
            for (b, slot) in chunk.iter_mut().enumerate() {
                let shift = b * cells_per_block;
                let total = u64::from(((buckets[0] >> shift) & block_mask).count_ones()) * wi[0]
                    + u64::from(((buckets[1] >> shift) & block_mask).count_ones()) * wi[1]
                    + u64::from(((buckets[2] >> shift) & block_mask).count_ones()) * wi[2]
                    + u64::from(((buckets[3] >> shift) & block_mask).count_ones()) * wi[3];
                *slot = total as f64;
            }
        } else {
            for (b, slot) in chunk.iter_mut().enumerate() {
                let shift = b * cells_per_block;
                *slot = f64::from(((buckets[0] >> shift) & block_mask).count_ones())
                    * table.write_pj[0]
                    + f64::from(((buckets[1] >> shift) & block_mask).count_ones())
                        * table.write_pj[1]
                    + f64::from(((buckets[2] >> shift) & block_mask).count_ones())
                        * table.write_pj[2]
                    + f64::from(((buckets[3] >> shift) & block_mask).count_ones())
                        * table.write_pj[3];
            }
        }
    }
}

/// Fused sweep + candidate selection for uniform sub-word blocks: for every
/// block of `cells_per_block` cells (tiling the line from cell 0), evaluates
/// each candidate's data cost plus `selector_costs[block][candidate]`, picks
/// the argmin (first strict minimum, matching the scalar `<` scan), records
/// it in `winners`, and merges the winner's target planes into
/// `(out0, out1)` ready for [`write_states_from_planes`].
///
/// Everything happens word by word while the candidate bucket masks are
/// still in registers — no per-candidate cost arrays are materialised.
///
/// # Panics
///
/// Panics if `cells_per_block` does not divide 64, `winners` or
/// `selector_costs` is shorter than the block count, or more than eight
/// candidate tables are given.
#[allow(clippy::too_many_arguments)]
pub fn select_blocks_uniform(
    data: &SymbolPlanes,
    old: &StatePlanes,
    cells_per_block: usize,
    blocks: usize,
    tables: &[TransitionTable],
    selector_costs: &[[f64; 8]],
    winners: &mut [u8],
    out0: &mut [u64; PLANE_WORDS],
    out1: &mut [u64; PLANE_WORDS],
) {
    assert!(64 % cells_per_block == 0 && cells_per_block < 64, "blocks must subdivide plane words");
    assert!(winners.len() >= blocks, "winners slice too short");
    assert!(selector_costs.len() >= blocks, "selector_costs slice too short");
    assert!(tables.len() <= 8, "at most eight candidates");
    let blocks_per_word = 64 / cells_per_block;
    let block_mask = (1u64 << cells_per_block) - 1;
    let winners = &mut winners[..blocks];
    for (w, chunk) in winners.chunks_mut(blocks_per_word).enumerate() {
        // Per-candidate word state: target planes and changed-cell buckets.
        let mut planes = [(0u64, 0u64); 8];
        let mut buckets = [[0u64; 4]; 8];
        for (idx, table) in tables.iter().enumerate() {
            let (t0, t1) = table.target_planes(data, w);
            planes[idx] = (t0, t1);
            let changed = (t0 ^ old.plane0[w]) | (t1 ^ old.plane1[w]);
            buckets[idx] =
                [changed & !t1 & !t0, changed & !t1 & t0, changed & t1 & !t0, changed & t1 & t0];
        }
        for (b, slot) in chunk.iter_mut().enumerate() {
            let block = w * blocks_per_word + b;
            let selector = &selector_costs[block];
            let shift = b * cells_per_block;
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for (idx, table) in tables.iter().enumerate() {
                let bu = &buckets[idx];
                let data_cost = match table.write_int {
                    Some(wi) => {
                        (u64::from(((bu[0] >> shift) & block_mask).count_ones()) * wi[0]
                            + u64::from(((bu[1] >> shift) & block_mask).count_ones()) * wi[1]
                            + u64::from(((bu[2] >> shift) & block_mask).count_ones()) * wi[2]
                            + u64::from(((bu[3] >> shift) & block_mask).count_ones()) * wi[3])
                            as f64
                    }
                    None => {
                        f64::from(((bu[0] >> shift) & block_mask).count_ones()) * table.write_pj[0]
                            + f64::from(((bu[1] >> shift) & block_mask).count_ones())
                                * table.write_pj[1]
                            + f64::from(((bu[2] >> shift) & block_mask).count_ones())
                                * table.write_pj[2]
                            + f64::from(((bu[3] >> shift) & block_mask).count_ones())
                                * table.write_pj[3]
                    }
                };
                let cost = data_cost + selector[idx];
                if cost < best_cost {
                    best_cost = cost;
                    best = idx;
                }
            }
            *slot = best as u8;
            let mask = block_mask << shift;
            out0[w] |= planes[best].0 & mask;
            out1[w] |= planes[best].1 & mask;
        }
    }
}

/// All-integer variant of [`select_blocks_uniform`], used when every
/// candidate's energy table is integer-valued (paper Table II and the
/// Figure 14 configurations): totals and comparisons run on `u64`. Every
/// total is an integer that the f64 path represents exactly, so the argmin —
/// first strict minimum — is identical; only the arithmetic is cheaper.
///
/// # Panics
///
/// Panics under the same conditions as [`select_blocks_uniform`], or when a
/// table has no integer representation.
#[allow(clippy::too_many_arguments)]
pub fn select_blocks_uniform_int(
    data: &SymbolPlanes,
    old: &StatePlanes,
    cells_per_block: usize,
    blocks: usize,
    tables: &[TransitionTable],
    selector_costs: &[[u64; 8]],
    winners: &mut [u8],
    out0: &mut [u64; PLANE_WORDS],
    out1: &mut [u64; PLANE_WORDS],
) {
    assert!(64 % cells_per_block == 0 && cells_per_block < 64, "blocks must subdivide plane words");
    assert!(winners.len() >= blocks, "winners slice too short");
    assert!(selector_costs.len() >= blocks, "selector_costs slice too short");
    assert!(tables.len() <= 8, "at most eight candidates");
    let weights: [[u64; 4]; 8] = core::array::from_fn(|i| match tables.get(i) {
        Some(t) => t.write_int.expect("integer-valued energy table required"),
        None => [0; 4],
    });
    // Monomorphise over the candidate count: with `N` known the compiler
    // fully unrolls the candidate loops and keeps the bucket masks in
    // registers instead of spilling a dynamically-indexed array.
    match tables.len() {
        0 => {}
        1 => select_int_core::<1>(
            data,
            old,
            cells_per_block,
            blocks,
            tables,
            &weights,
            selector_costs,
            winners,
            out0,
            out1,
        ),
        2 => select_int_core::<2>(
            data,
            old,
            cells_per_block,
            blocks,
            tables,
            &weights,
            selector_costs,
            winners,
            out0,
            out1,
        ),
        3 => select_int_core::<3>(
            data,
            old,
            cells_per_block,
            blocks,
            tables,
            &weights,
            selector_costs,
            winners,
            out0,
            out1,
        ),
        4 => select_int_core::<4>(
            data,
            old,
            cells_per_block,
            blocks,
            tables,
            &weights,
            selector_costs,
            winners,
            out0,
            out1,
        ),
        5 => select_int_core::<5>(
            data,
            old,
            cells_per_block,
            blocks,
            tables,
            &weights,
            selector_costs,
            winners,
            out0,
            out1,
        ),
        6 => select_int_core::<6>(
            data,
            old,
            cells_per_block,
            blocks,
            tables,
            &weights,
            selector_costs,
            winners,
            out0,
            out1,
        ),
        7 => select_int_core::<7>(
            data,
            old,
            cells_per_block,
            blocks,
            tables,
            &weights,
            selector_costs,
            winners,
            out0,
            out1,
        ),
        _ => select_int_core::<8>(
            data,
            old,
            cells_per_block,
            blocks,
            tables,
            &weights,
            selector_costs,
            winners,
            out0,
            out1,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn select_int_core<const N: usize>(
    data: &SymbolPlanes,
    old: &StatePlanes,
    cells_per_block: usize,
    blocks: usize,
    tables: &[TransitionTable],
    weights: &[[u64; 4]; 8],
    selector_costs: &[[u64; 8]],
    winners: &mut [u8],
    out0: &mut [u64; PLANE_WORDS],
    out1: &mut [u64; PLANE_WORDS],
) {
    debug_assert_eq!(tables.len(), N);
    let blocks_per_word = 64 / cells_per_block;
    let block_mask = (1u64 << cells_per_block) - 1;
    let winners = &mut winners[..blocks];
    for ((w, chunk), sel_rows) in
        winners.chunks_mut(blocks_per_word).enumerate().zip(selector_costs.chunks(blocks_per_word))
    {
        let mut planes = [(0u64, 0u64); N];
        let mut buckets = [[0u64; 4]; N];
        let mut any_changed = 0u64;
        for idx in 0..N {
            let (t0, t1) = tables[idx].target_planes(data, w);
            planes[idx] = (t0, t1);
            let changed = (t0 ^ old.plane0[w]) | (t1 ^ old.plane1[w]);
            any_changed |= changed;
            buckets[idx] =
                [changed & !t1 & !t0, changed & !t1 & t0, changed & t1 & !t0, changed & t1 & t0];
        }
        if any_changed == 0 {
            // Differential-write fast path: no candidate reprograms any cell
            // of this word (a rewrite of identical content), so every block's
            // data cost is zero and only the selector costs decide.
            for ((b, slot), selector) in chunk.iter_mut().enumerate().zip(sel_rows) {
                let mut best = 0usize;
                let mut best_cost = u64::MAX;
                for (idx, &sel) in selector.iter().enumerate().take(N) {
                    if sel < best_cost {
                        best_cost = sel;
                        best = idx;
                    }
                }
                *slot = best as u8;
                let mask = block_mask << (b * cells_per_block);
                out0[w] |= planes[best].0 & mask;
                out1[w] |= planes[best].1 & mask;
            }
            continue;
        }
        for ((b, slot), selector) in chunk.iter_mut().enumerate().zip(sel_rows) {
            let shift = b * cells_per_block;
            let mut best = 0usize;
            let mut best_cost = u64::MAX;
            for idx in 0..N {
                let bu = &buckets[idx];
                let wi = &weights[idx];
                let cost = u64::from(((bu[0] >> shift) & block_mask).count_ones()) * wi[0]
                    + u64::from(((bu[1] >> shift) & block_mask).count_ones()) * wi[1]
                    + u64::from(((bu[2] >> shift) & block_mask).count_ones()) * wi[2]
                    + u64::from(((bu[3] >> shift) & block_mask).count_ones()) * wi[3]
                    + selector[idx];
                if cost < best_cost {
                    best_cost = cost;
                    best = idx;
                }
            }
            *slot = best as u8;
            let mask = block_mask << shift;
            out0[w] |= planes[best].0 & mask;
            out1[w] |= planes[best].1 & mask;
        }
    }
}

/// Writes the states encoded by a pair of assembled target planes into the
/// first `cells` cells of `out` in one pass.
///
/// When the planes cover the full 256-cell data region they are also
/// installed as `out`'s cached [`StatePlanes`] view, so the *next* encode
/// against this line gets its stored planes for free instead of rebuilding
/// them cell by cell.
pub fn write_states_from_planes(
    out: &mut PhysicalLine,
    cells: usize,
    plane0: &[u64; PLANE_WORDS],
    plane1: &[u64; PLANE_WORDS],
) {
    debug_assert!(cells <= LINE_CELLS);
    let states = out.states_mut();
    for (w, chunk) in states[..cells].chunks_mut(64).enumerate() {
        let (p0, p1) = (plane0[w], plane1[w]);
        for (b, slot) in chunk.iter_mut().enumerate() {
            let idx = (((p1 >> b) & 1) << 1) | ((p0 >> b) & 1);
            *slot = CellState::ALL[(idx & 3) as usize];
        }
    }
    if cells == LINE_CELLS && out.len() >= LINE_CELLS {
        out.install_state_planes(StatePlanes { plane0: *plane0, plane1: *plane1 });
    }
}

/// Costs and updated-cell counts of the data blocks of one region that fits
/// inside a single plane word: `data_cells` leading cells starting at
/// `base_cell`, tiled by `cells_per_block` (the final block may be shorter).
/// Writes `(cost, updated)` per block into `out` and returns the block count.
///
/// This is the WLC-integrated layout: a 64-bit data word occupies 32 cells,
/// of which the first `data_cells` hold coset-encoded blocks. The
/// target-plane and changed-mask computation is shared by every block of the
/// region, leaving four masked popcounts per block.
///
/// # Panics
///
/// Panics if the region crosses a plane-word boundary or `out` is too short.
pub fn word_block_costs_updated(
    data: &SymbolPlanes,
    old: &StatePlanes,
    table: &TransitionTable,
    base_cell: usize,
    data_cells: usize,
    cells_per_block: usize,
    out: &mut [(f64, usize)],
) -> usize {
    let blocks = data_cells.div_ceil(cells_per_block);
    assert!(out.len() >= blocks, "output slice too short");
    let w = base_cell / 64;
    let offset = base_cell % 64;
    assert!(offset + data_cells <= 64, "region crosses a plane-word boundary");
    let (t0, t1) = table.target_planes(data, w);
    let changed = (t0 ^ old.plane0[w]) | (t1 ^ old.plane1[w]);
    let buckets = [changed & !t1 & !t0, changed & !t1 & t0, changed & t1 & !t0, changed & t1 & t0];
    for (j, slot) in out.iter_mut().enumerate().take(blocks) {
        let start = j * cells_per_block;
        let end = (start + cells_per_block).min(data_cells);
        let width = end - start;
        let mask = (if width == 64 { u64::MAX } else { (1u64 << width) - 1 }) << (offset + start);
        let cost = match table.write_int {
            Some(wi) => {
                (u64::from((buckets[0] & mask).count_ones()) * wi[0]
                    + u64::from((buckets[1] & mask).count_ones()) * wi[1]
                    + u64::from((buckets[2] & mask).count_ones()) * wi[2]
                    + u64::from((buckets[3] & mask).count_ones()) * wi[3]) as f64
            }
            None => {
                f64::from((buckets[0] & mask).count_ones()) * table.write_pj[0]
                    + f64::from((buckets[1] & mask).count_ones()) * table.write_pj[1]
                    + f64::from((buckets[2] & mask).count_ones()) * table.write_pj[2]
                    + f64::from((buckets[3] & mask).count_ones()) * table.write_pj[3]
            }
        };
        *slot = (cost, (changed & mask).count_ones() as usize);
    }
    blocks
}

/// Bit-parallel equivalent of `wlcrc_coset::cost::block_updated_cells`: the
/// number of cells in `cells` whose stored state would change.
pub fn block_updated_cells(
    data: &SymbolPlanes,
    old: &StatePlanes,
    cells: Range<usize>,
    table: &TransitionTable,
) -> usize {
    let mut updated = 0u32;
    for (w, mask) in plane_words(cells) {
        let (t0, t1) = table.target_planes(data, w);
        updated += (((t0 ^ old.plane0[w]) | (t1 ^ old.plane1[w])) & mask).count_ones();
    }
    updated as usize
}

/// Cost and updated-cell count in one pass (the WLC-integrated codecs need
/// both for the multi-objective policy).
pub fn block_cost_updated(
    data: &SymbolPlanes,
    old: &StatePlanes,
    cells: Range<usize>,
    table: &TransitionTable,
) -> (f64, usize) {
    let mut cost = 0.0;
    let mut updated = 0u32;
    for (w, mask) in plane_words(cells) {
        let (c, u) = word_cost(data, old, table, w, mask);
        cost += c;
        updated += u;
    }
    (cost, updated as usize)
}

/// Classifies the cells of `cells` into the sixteen `(old state × symbol)`
/// buckets, indexed `old.index() * 4 + symbol.value()`. Dotting the result
/// against [`TransitionTable::cost_pj`] reproduces [`block_cost`]; exposed
/// for diagnostics and the equivalence tests.
pub fn bucket_counts(data: &SymbolPlanes, old: &StatePlanes, cells: Range<usize>) -> [u32; 16] {
    let mut counts = [0u32; 16];
    for (w, mask) in plane_words(cells) {
        let (o0, o1) = (old.plane0[w], old.plane1[w]);
        // Fixed-width form: sixteen unconditional masked popcounts per word.
        // No data-dependent branches, so the whole word reduces to a flat
        // AND/popcount grid the compiler can vectorise.
        let state_masks =
            [(!o1 & !o0) & mask, (!o1 & o0) & mask, (o1 & !o0) & mask, (o1 & o0) & mask];
        for (s, &sm) in state_masks.iter().enumerate() {
            for v in 0..4 {
                counts[s * 4 + v] += (sm & data.masks[v][w]).count_ones();
            }
        }
    }
    counts
}

/// Writes the states storing the symbols of `cells` of `data` under `table`
/// into `out` (at the same cell indices). Runs once per chosen candidate, so
/// it stays scalar but goes through the precomputed target-state array.
pub fn write_block(
    data: &MemoryLine,
    out: &mut PhysicalLine,
    cells: Range<usize>,
    table: &TransitionTable,
) {
    for cell in cells {
        out.set_state(cell, table.state_of(data.symbol(cell)));
    }
}

/// Builds the symbol planes of a packed little-endian bit buffer occupying
/// the first `words.len() * 64` bits of a line (zero-padded); used by the
/// COC payload path, whose repacked stream is not a [`MemoryLine`].
pub fn planes_of_words(words: &[u64]) -> SymbolPlanes {
    let mut line = MemoryLine::ZERO;
    for (i, &w) in words.iter().take(LINE_WORDS).enumerate() {
        line.set_word(i, w);
    }
    SymbolPlanes::new(&line)
}

/// Re-interleaves a pair of bit planes back into a [`MemoryLine`]: cell `c`
/// of the result holds the 2-bit value `(plane1 bit c) << 1 | (plane0 bit c)`.
/// Exact inverse of [`SymbolPlanes::new`]'s de-interleave, so decode paths
/// can assemble the whole data line with a handful of word shuffles instead
/// of 256 `set_symbol` calls.
pub fn line_from_planes(plane0: &[u64; PLANE_WORDS], plane1: &[u64; PLANE_WORDS]) -> MemoryLine {
    let mut words = [0u64; LINE_WORDS];
    for w in 0..PLANE_WORDS {
        let (p0, p1) = (plane0[w], plane1[w]);
        words[2 * w] = spread_bits(p0) | (spread_bits(p1) << 1);
        words[2 * w + 1] = spread_bits(p0 >> 32) | (spread_bits(p1 >> 32) << 1);
    }
    MemoryLine::from_words(words)
}

/// Maps stored-state planes to symbol planes under a per-state symbol
/// assignment (`symbols[i]` is the symbol read from state `S(i+1)`): the
/// bit-parallel inverse mapping every decode path needs. Returns
/// `(plane0, plane1)` of the symbols.
pub fn symbol_planes_from_states(
    old: &StatePlanes,
    symbols: [Symbol; 4],
) -> ([u64; PLANE_WORDS], [u64; PLANE_WORDS]) {
    // Branchless select masks, exactly like TransitionTable::target_planes
    // but in the state→symbol direction.
    let mut lo_bits = 0u8;
    let mut hi_bits = 0u8;
    for (s, sym) in symbols.iter().enumerate() {
        lo_bits |= (sym.value() & 1) << s;
        hi_bits |= ((sym.value() >> 1) & 1) << s;
    }
    let select = |bits: u8| -> [u64; 4] {
        core::array::from_fn(|s| 0u64.wrapping_sub(u64::from(bits >> s & 1)))
    };
    let (s0_sel, s1_sel) = (select(lo_bits), select(hi_bits));
    let mut plane0 = [0u64; PLANE_WORDS];
    let mut plane1 = [0u64; PLANE_WORDS];
    for w in 0..PLANE_WORDS {
        let (o0, o1) = (old.plane0[w], old.plane1[w]);
        let m = [!o1 & !o0, !o1 & o0, o1 & !o0, o1 & o0];
        plane0[w] =
            (m[0] & s0_sel[0]) | (m[1] & s0_sel[1]) | (m[2] & s0_sel[2]) | (m[3] & s0_sel[3]);
        plane1[w] =
            (m[0] & s1_sel[0]) | (m[1] & s1_sel[1]) | (m[2] & s1_sel[2]) | (m[3] & s1_sel[3]);
    }
    (plane0, plane1)
}

/// Shared driver for batched encodes: extracts each job's symbol and stored
/// plane views once and hands them to `encode_one` in order. The per-codec
/// `encode_batch` overrides build their transition tables a single time and
/// capture them in the closure, so table setup amortises across the batch
/// while plane extraction stays out of the per-codec code.
pub fn encode_batch<F>(
    jobs: &[(&MemoryLine, &PhysicalLine)],
    mut encode_one: F,
) -> Vec<PhysicalLine>
where
    F: FnMut(&SymbolPlanes, &StatePlanes, &MemoryLine, &PhysicalLine) -> PhysicalLine,
{
    let mut out = Vec::with_capacity(jobs.len());
    for &(data, old) in jobs {
        let planes = data.symbol_planes();
        let stored = old.state_planes();
        out.push(encode_one(&planes, &stored, data, old));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_line(rng: &mut StdRng) -> MemoryLine {
        let mut words = [0u64; LINE_WORDS];
        for w in &mut words {
            *w = rng.gen();
        }
        MemoryLine::from_words(words)
    }

    fn random_stored(rng: &mut StdRng) -> PhysicalLine {
        let states: Vec<CellState> =
            (0..LINE_CELLS).map(|_| CellState::from_index(rng.gen_range(0..4))).collect();
        PhysicalLine::from_states(states)
    }

    /// Scalar reference: per-cell mapping + transition energy.
    fn scalar_cost(
        data: &MemoryLine,
        old: &PhysicalLine,
        cells: Range<usize>,
        states: [CellState; 4],
        energy: &EnergyModel,
    ) -> f64 {
        let mut cost = 0.0;
        for cell in cells {
            let target = states[data.symbol(cell).value() as usize];
            cost += energy.transition_energy_pj(old.state(cell), target);
        }
        cost
    }

    #[test]
    fn symbol_planes_match_symbol_accessor() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let line = random_line(&mut rng);
            let planes = SymbolPlanes::new(&line);
            for cell in 0..LINE_CELLS {
                assert_eq!(planes.symbol(cell), line.symbol(cell), "cell {cell}");
            }
        }
    }

    #[test]
    fn state_planes_match_state_accessor() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let stored = random_stored(&mut rng);
            let planes = StatePlanes::new(&stored);
            for cell in 0..LINE_CELLS {
                assert_eq!(planes.state(cell), stored.state(cell), "cell {cell}");
            }
        }
    }

    #[test]
    fn transition_table_matches_energy_model() {
        let energy = EnergyModel::paper_default();
        let mapping = SymbolMapping::default_mapping();
        let table = TransitionTable::new(&mapping, &energy);
        for old in CellState::ALL {
            for sym in Symbol::ALL {
                let target = mapping.state_of(sym);
                assert_eq!(table.cost_pj(old, sym), energy.transition_energy_pj(old, target));
                assert_eq!(table.is_updated(old, sym), old != target);
                assert_eq!(table.state_of(sym), target);
            }
        }
    }

    #[test]
    fn block_cost_matches_scalar_for_all_mappings() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(3);
        for mapping in SymbolMapping::all_mappings() {
            let table = TransitionTable::new(&mapping, &energy);
            let states = [
                mapping.state_of(Symbol::new(0)),
                mapping.state_of(Symbol::new(1)),
                mapping.state_of(Symbol::new(2)),
                mapping.state_of(Symbol::new(3)),
            ];
            let data = random_line(&mut rng);
            let old = random_stored(&mut rng);
            let (dp, op) = (SymbolPlanes::new(&data), StatePlanes::new(&old));
            for cells in [0..LINE_CELLS, 0..4, 60..68, 128..192, 7..9, 250..256] {
                let expect = scalar_cost(&data, &old, cells.clone(), states, &energy);
                assert_eq!(block_cost(&dp, &op, cells.clone(), &table), expect, "{cells:?}");
            }
        }
    }

    #[test]
    fn bucket_counts_dot_cost_table_reproduces_block_cost() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(4);
        let mapping = SymbolMapping::all_mappings()[13];
        let table = TransitionTable::new(&mapping, &energy);
        for _ in 0..10 {
            let data = random_line(&mut rng);
            let old = random_stored(&mut rng);
            let (dp, op) = (SymbolPlanes::new(&data), StatePlanes::new(&old));
            let counts = bucket_counts(&dp, &op, 0..LINE_CELLS);
            assert_eq!(counts.iter().map(|c| *c as usize).sum::<usize>(), LINE_CELLS);
            let dotted: f64 = counts
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    f64::from(c)
                        * table.cost_pj(CellState::from_index(i / 4), Symbol::new((i % 4) as u8))
                })
                .sum();
            assert_eq!(dotted, block_cost(&dp, &op, 0..LINE_CELLS, &table));
        }
    }

    #[test]
    fn updated_cells_matches_scalar() {
        let energy = EnergyModel::paper_default();
        let mapping = SymbolMapping::default_mapping();
        let table = TransitionTable::new(&mapping, &energy);
        let mut rng = StdRng::seed_from_u64(5);
        let data = random_line(&mut rng);
        let old = random_stored(&mut rng);
        let (dp, op) = (SymbolPlanes::new(&data), StatePlanes::new(&old));
        for cells in [0..LINE_CELLS, 3..77, 64..128] {
            let expect =
                cells.clone().filter(|&c| old.state(c) != mapping.state_of(data.symbol(c))).count();
            assert_eq!(block_updated_cells(&dp, &op, cells.clone(), &table), expect);
            let (cost, updated) = block_cost_updated(&dp, &op, cells.clone(), &table);
            assert_eq!(updated, expect);
            assert_eq!(cost, block_cost(&dp, &op, cells, &table));
        }
    }

    #[test]
    fn uniform_sweep_matches_per_block_cost() {
        let energy = EnergyModel::paper_default();
        let mut rng = StdRng::seed_from_u64(11);
        for mapping in [SymbolMapping::default_mapping(), SymbolMapping::all_mappings()[17]] {
            let table = TransitionTable::new(&mapping, &energy);
            let data = random_line(&mut rng);
            let old = random_stored(&mut rng);
            let (dp, op) = (SymbolPlanes::new(&data), StatePlanes::new(&old));
            for cells_per_block in [4usize, 8, 16, 32, 64, 128, 256] {
                let blocks = LINE_CELLS / cells_per_block;
                let mut out = [0.0f64; 64];
                block_costs_uniform(&dp, &op, cells_per_block, blocks, &table, &mut out);
                for (b, &cost) in out.iter().enumerate().take(blocks) {
                    let range = b * cells_per_block..(b + 1) * cells_per_block;
                    assert_eq!(
                        cost,
                        block_cost(&dp, &op, range, &table),
                        "cpb {cells_per_block} block {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn bounded_cost_agrees_when_under_bound_and_aborts_otherwise() {
        let energy = EnergyModel::paper_default();
        let table = TransitionTable::new(&SymbolMapping::default_mapping(), &energy);
        let mut rng = StdRng::seed_from_u64(6);
        let data = random_line(&mut rng);
        let old = random_stored(&mut rng);
        let (dp, op) = (SymbolPlanes::new(&data), StatePlanes::new(&old));
        let full = block_cost(&dp, &op, 0..LINE_CELLS, &table);
        assert_eq!(
            block_cost_bounded(&dp, &op, 0..LINE_CELLS, &table, 0.0, f64::INFINITY),
            Some(full)
        );
        assert_eq!(
            block_cost_bounded(&dp, &op, 0..LINE_CELLS, &table, 10.0, f64::INFINITY),
            Some(full + 10.0)
        );
        // A bound at or below the total must abort.
        assert_eq!(block_cost_bounded(&dp, &op, 0..LINE_CELLS, &table, 0.0, full), None);
        assert_eq!(block_cost_bounded(&dp, &op, 0..LINE_CELLS, &table, full, 1.0), None);
    }

    #[test]
    fn write_block_matches_mapping() {
        let energy = EnergyModel::paper_default();
        let mapping = SymbolMapping::all_mappings()[7];
        let table = TransitionTable::new(&mapping, &energy);
        let mut rng = StdRng::seed_from_u64(7);
        let data = random_line(&mut rng);
        let mut out = PhysicalLine::all_reset(LINE_CELLS);
        write_block(&data, &mut out, 10..200, &table);
        for cell in 10..200 {
            assert_eq!(out.state(cell), mapping.state_of(data.symbol(cell)));
        }
        assert_eq!(out.state(0), CellState::S1);
        assert_eq!(out.state(200), CellState::S1);
    }

    #[test]
    fn xor_planes_match_symbol_xor() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = random_line(&mut rng);
        let b = random_line(&mut rng);
        let xored = SymbolPlanes::new(&a).xor(&SymbolPlanes::new(&b));
        let direct = SymbolPlanes::new(&a.xor(&b));
        assert_eq!(xored, direct);
    }

    #[test]
    fn line_from_planes_inverts_symbol_plane_extraction() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let line = random_line(&mut rng);
            let planes = SymbolPlanes::new(&line);
            assert_eq!(line_from_planes(planes.plane0(), planes.plane1()), line);
        }
    }

    #[test]
    fn symbol_planes_from_states_matches_scalar_inverse_mapping() {
        let mut rng = StdRng::seed_from_u64(13);
        for mapping in [SymbolMapping::default_mapping(), SymbolMapping::all_mappings()[19]] {
            let stored = random_stored(&mut rng);
            let planes = StatePlanes::new(&stored);
            let (p0, p1) = symbol_planes_from_states(&planes, mapping.symbols_per_state());
            let line = line_from_planes(&p0, &p1);
            for cell in 0..LINE_CELLS {
                assert_eq!(line.symbol(cell), mapping.symbol_of(stored.state(cell)), "cell {cell}");
            }
        }
    }

    #[test]
    fn encode_batch_driver_hands_out_consistent_planes() {
        let mut rng = StdRng::seed_from_u64(14);
        let data: Vec<MemoryLine> = (0..4).map(|_| random_line(&mut rng)).collect();
        let stored: Vec<PhysicalLine> = (0..4).map(|_| random_stored(&mut rng)).collect();
        let jobs: Vec<(&MemoryLine, &PhysicalLine)> = data.iter().zip(stored.iter()).collect();
        let out = encode_batch(&jobs, |planes, old, line, old_line| {
            assert_eq!(*planes, SymbolPlanes::new(line));
            assert_eq!(old.plane0(), StatePlanes::new(old_line).plane0());
            old_line.clone()
        });
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn planes_of_words_places_bits_like_a_line_prefix() {
        let words = [0x0123_4567_89AB_CDEFu64, u64::MAX, 0, 42];
        let planes = planes_of_words(&words);
        let mut line = MemoryLine::ZERO;
        for (i, &w) in words.iter().enumerate() {
            line.set_word(i, w);
        }
        assert_eq!(planes, SymbolPlanes::new(&line));
    }
}
