//! Physical (stored) cell content of an encoded memory line.

use crate::kernel::StatePlanes;
use crate::state::CellState;
use crate::LINE_CELLS;
use serde::{de, Deserialize, Serialize, Value};
use std::fmt;
use std::sync::OnceLock;

/// Classification of a stored cell, used to break write energy and cell-update
/// counts into the *data block* part and the *auxiliary* part, as the paper's
/// figures do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellClass {
    /// A cell holding (possibly encoded) data bits.
    Data,
    /// A cell holding auxiliary information: coset-candidate selectors,
    /// flip flags, compression flags, ECC bits or reclaimed WLC bits.
    Aux,
}

/// The cell states stored in the PCM array for one encoded memory line,
/// together with the data/aux classification of every cell.
///
/// Different encoding schemes store a different number of cells per line
/// (256 data cells plus zero or more auxiliary cells), so the length is not
/// fixed. Two physical lines are only comparable cell-by-cell if they were
/// produced by the same scheme.
///
/// The line lazily caches the [`StatePlanes`] bit-plane view of its first
/// 256 cells (built on the first [`PhysicalLine::state_planes`] call, or
/// installed directly by the kernel's plane-assembled writes) and keeps it
/// in sync through [`PhysicalLine::set_state`]/[`PhysicalLine::push`], so
/// the per-encode plane rebuild the coset kernel used to pay is amortised
/// away for lines that live across writes. The cache is invisible:
/// equality, hashing-by-content and serialization see only cells and
/// classes.
#[derive(Clone)]
pub struct PhysicalLine {
    cells: Vec<CellState>,
    classes: Vec<CellClass>,
    /// Lazily built plane view of `cells[..256]`; `OnceLock` keeps the type
    /// `Sync` (codecs holding lines are shared across worker threads) while
    /// allowing interior initialisation from `&self`.
    planes: OnceLock<StatePlanes>,
}

impl PartialEq for PhysicalLine {
    fn eq(&self, other: &PhysicalLine) -> bool {
        // The plane cache is derived state and must never affect equality.
        self.cells == other.cells && self.classes == other.classes
    }
}

impl Eq for PhysicalLine {}

impl Serialize for PhysicalLine {
    fn to_value(&self) -> Value {
        Value::record(
            "PhysicalLine",
            vec![("cells", self.cells.to_value()), ("classes", self.classes.to_value())],
        )
    }
}

impl Deserialize for PhysicalLine {
    fn from_value(value: &Value) -> Result<PhysicalLine, de::Error> {
        let record = value.as_record("PhysicalLine")?;
        let cells: Vec<CellState> = record.field("cells")?;
        let classes: Vec<CellClass> = record.field("classes")?;
        if cells.len() != classes.len() {
            return Err(de::Error::custom("cells and classes lengths differ"));
        }
        Ok(PhysicalLine { cells, classes, planes: OnceLock::new() })
    }
}

impl PhysicalLine {
    /// Creates a physical line of `len` cells, all in the RESET state `S1`,
    /// all classified as data. This models a freshly initialised (erased) line.
    pub fn all_reset(len: usize) -> PhysicalLine {
        PhysicalLine {
            cells: vec![CellState::S1; len],
            classes: vec![CellClass::Data; len],
            planes: OnceLock::new(),
        }
    }

    /// Creates a physical line from explicit cell states, all classified as data.
    pub fn from_states(cells: Vec<CellState>) -> PhysicalLine {
        let classes = vec![CellClass::Data; cells.len()];
        PhysicalLine { cells, classes, planes: OnceLock::new() }
    }

    /// Creates a physical line from explicit cell states and classes.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn from_parts(cells: Vec<CellState>, classes: Vec<CellClass>) -> PhysicalLine {
        assert_eq!(cells.len(), classes.len(), "cells and classes must have the same length");
        PhysicalLine { cells, classes, planes: OnceLock::new() }
    }

    /// Number of cells in the encoded line.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the line has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The state of cell `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn state(&self, index: usize) -> CellState {
        self.cells[index]
    }

    /// Sets the state of cell `index`, keeping any warm plane cache in sync
    /// (a two-bit update, not an invalidation).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn set_state(&mut self, index: usize, state: CellState) {
        self.cells[index] = state;
        if index < LINE_CELLS {
            if let Some(planes) = self.planes.get_mut() {
                planes.set(index, state);
            }
        }
    }

    /// The classification of cell `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn class(&self, index: usize) -> CellClass {
        self.classes[index]
    }

    /// Sets the classification of cell `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn set_class(&mut self, index: usize, class: CellClass) {
        self.classes[index] = class;
    }

    /// Appends a cell with the given state and class, keeping any warm plane
    /// cache in sync.
    pub fn push(&mut self, state: CellState, class: CellClass) {
        let index = self.cells.len();
        self.cells.push(state);
        self.classes.push(class);
        if index < LINE_CELLS {
            if let Some(planes) = self.planes.get_mut() {
                planes.set(index, state);
            }
        }
    }

    /// The stored cell states.
    #[inline]
    pub fn states(&self) -> &[CellState] {
        &self.cells
    }

    /// Mutable access to the stored cell states (classes are untouched).
    /// Invalidates the plane cache — the caller may rewrite any state.
    #[inline]
    pub fn states_mut(&mut self) -> &mut [CellState] {
        self.planes.take();
        &mut self.cells
    }

    /// The per-cell classifications.
    #[inline]
    pub fn classes(&self) -> &[CellClass] {
        &self.classes
    }

    /// Number of cells classified as auxiliary.
    pub fn aux_cells(&self) -> usize {
        self.classes.iter().filter(|c| **c == CellClass::Aux).count()
    }

    /// Number of cells classified as data.
    pub fn data_cells(&self) -> usize {
        self.len() - self.aux_cells()
    }

    /// Number of cells whose state differs from `other` at the same index.
    ///
    /// # Panics
    ///
    /// Panics if the two lines have different lengths.
    pub fn changed_cells(&self, other: &PhysicalLine) -> usize {
        assert_eq!(self.len(), other.len(), "lines must have the same cell count");
        self.cells.iter().zip(other.cells.iter()).filter(|(a, b)| a != b).count()
    }

    /// Iterates over `(index, state, class)` for every cell.
    pub fn iter(&self) -> impl Iterator<Item = (usize, CellState, CellClass)> + '_ {
        self.cells.iter().zip(self.classes.iter()).enumerate().map(|(i, (s, c))| (i, *s, *c))
    }

    /// The bit-plane view of the first 256 cells' states, consumed by the
    /// bit-parallel evaluation kernel ([`crate::kernel`]).
    ///
    /// The view is cached: the first call builds it (or the kernel's
    /// plane-assembled write installs it for free), later calls copy it, and
    /// every mutation path keeps it consistent — so a stored line that lives
    /// across writes pays the 256-cell rebuild at most once, not per encode.
    pub fn state_planes(&self) -> StatePlanes {
        *self.planes.get_or_init(|| StatePlanes::new(self))
    }

    /// Installs a known-correct plane cache (the kernel's plane-assembled
    /// writes already hold the planes they just scattered). Debug builds
    /// verify the claim against a rebuild.
    pub(crate) fn install_state_planes(&mut self, planes: StatePlanes) {
        debug_assert_eq!(
            planes,
            StatePlanes::new(self),
            "installed planes must match the stored states"
        );
        self.planes.take();
        let _ = self.planes.set(planes);
    }

    /// Histogram of stored states, indexed by state index.
    pub fn state_histogram(&self) -> [usize; 4] {
        let mut hist = [0usize; 4];
        for s in &self.cells {
            hist[s.index()] += 1;
        }
        hist
    }
}

impl fmt::Debug for PhysicalLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysicalLine {{ cells: {}, aux: {}, states: ", self.len(), self.aux_cells())?;
        for s in self.cells.iter().take(16) {
            write!(f, "{}", s.index() + 1)?;
        }
        if self.len() > 16 {
            write!(f, "...")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reset_is_uniform() {
        let line = PhysicalLine::all_reset(10);
        assert_eq!(line.len(), 10);
        assert!(line.states().iter().all(|s| *s == CellState::S1));
        assert_eq!(line.aux_cells(), 0);
        assert_eq!(line.data_cells(), 10);
    }

    #[test]
    fn changed_cells_counts_differences() {
        let a = PhysicalLine::all_reset(4);
        let mut b = a.clone();
        b.set_state(1, CellState::S3);
        b.set_state(3, CellState::S2);
        assert_eq!(a.changed_cells(&b), 2);
        assert_eq!(b.changed_cells(&a), 2);
        assert_eq!(a.changed_cells(&a), 0);
    }

    #[test]
    fn push_and_classify() {
        let mut line = PhysicalLine::all_reset(2);
        line.push(CellState::S4, CellClass::Aux);
        assert_eq!(line.len(), 3);
        assert_eq!(line.aux_cells(), 1);
        assert_eq!(line.class(2), CellClass::Aux);
        line.set_class(0, CellClass::Aux);
        assert_eq!(line.aux_cells(), 2);
    }

    #[test]
    fn state_histogram_sums_to_len() {
        let mut line = PhysicalLine::all_reset(8);
        line.set_state(0, CellState::S4);
        line.set_state(1, CellState::S4);
        line.set_state(2, CellState::S2);
        let h = line.state_histogram();
        assert_eq!(h.iter().sum::<usize>(), 8);
        assert_eq!(h[3], 2);
        assert_eq!(h[1], 1);
        assert_eq!(h[0], 5);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_are_rejected() {
        let a = PhysicalLine::all_reset(4);
        let b = PhysicalLine::all_reset(5);
        let _ = a.changed_cells(&b);
    }

    #[test]
    #[should_panic]
    fn from_parts_checks_lengths() {
        let _ = PhysicalLine::from_parts(vec![CellState::S1], vec![]);
    }

    /// A 300-cell line (256 data + aux tail) with a varied state pattern.
    fn patterned_line() -> PhysicalLine {
        let states: Vec<CellState> =
            (0..300).map(|i| CellState::from_index((i * 7 + i / 9) % 4)).collect();
        PhysicalLine::from_states(states)
    }

    #[test]
    fn plane_cache_stays_consistent_through_mutations() {
        let mut line = patterned_line();
        // Warm the cache, then mutate through every supported path.
        let warm = line.state_planes();
        assert_eq!(warm, StatePlanes::new(&line));
        line.set_state(0, CellState::S4);
        line.set_state(255, CellState::S2);
        line.set_state(131, CellState::S1);
        line.set_state(290, CellState::S3); // aux region: not covered by planes
        line.push(CellState::S4, CellClass::Aux); // beyond 256: ignored
        assert_eq!(line.state_planes(), StatePlanes::new(&line), "set_state keeps planes in sync");
        // Raw mutable access invalidates; the next call rebuilds.
        line.states_mut()[17] = CellState::S3;
        assert_eq!(line.state_planes(), StatePlanes::new(&line), "states_mut invalidates");
    }

    #[test]
    fn plane_cache_tracks_growth_through_the_data_region() {
        let mut line = PhysicalLine::all_reset(10);
        let _ = line.state_planes();
        for i in 0..400 {
            line.push(CellState::from_index(i % 4), CellClass::Data);
        }
        assert_eq!(line.state_planes(), StatePlanes::new(&line));
    }

    #[test]
    fn cache_warmth_does_not_affect_equality_or_clones() {
        let cold = patterned_line();
        let warmed = patterned_line();
        let _ = warmed.state_planes();
        assert_eq!(cold, warmed);
        let cloned = warmed.clone();
        assert_eq!(cloned.state_planes(), StatePlanes::new(&cloned));
        // A clone of a warm line carries a warm, still-correct cache even
        // after diverging mutations.
        let mut diverged = warmed.clone();
        diverged.set_state(3, CellState::S4);
        assert_eq!(diverged.state_planes(), StatePlanes::new(&diverged));
        assert_eq!(warmed.state_planes(), StatePlanes::new(&warmed));
        assert_ne!(diverged, warmed);
    }

    #[test]
    fn physical_lines_serialize_without_the_cache() {
        use serde::{Deserialize, Serialize};
        let mut line = patterned_line();
        line.set_class(299, CellClass::Aux);
        let _ = line.state_planes();
        let back = PhysicalLine::from_value(&line.to_value()).unwrap();
        assert_eq!(back, line);
        assert_eq!(back.class(299), CellClass::Aux);
    }
}
