//! 512-bit memory lines and bit/symbol manipulation utilities.

use crate::state::Symbol;
use crate::{LINE_BITS, LINE_BYTES, LINE_CELLS, LINE_WORDS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 512-bit memory line, the unit written to PCM main memory.
///
/// The line consists of eight 64-bit words `w0..w7`; word `i` occupies bits
/// `64*i .. 64*i+63` of the line. Within a word, bit 0 is the least-significant
/// bit. Every two consecutive bits of the line are stored in one MLC cell:
/// cell `c` holds bits `(2c+1, 2c)` where bit `2c+1` is the most-significant
/// bit of the cell's [`Symbol`].
///
/// ```
/// use wlcrc_pcm::line::MemoryLine;
/// use wlcrc_pcm::state::Symbol;
///
/// let line = MemoryLine::from_words([0b1101, 0, 0, 0, 0, 0, 0, 0]);
/// assert_eq!(line.symbol(0), Symbol::new(0b01)); // bits 1..0
/// assert_eq!(line.symbol(1), Symbol::new(0b11)); // bits 3..2
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct MemoryLine {
    words: [u64; LINE_WORDS],
}

impl MemoryLine {
    /// A line with every bit cleared.
    pub const ZERO: MemoryLine = MemoryLine { words: [0; LINE_WORDS] };

    /// Creates a new all-zero memory line.
    pub fn new() -> MemoryLine {
        MemoryLine::ZERO
    }

    /// Creates a line from its eight 64-bit words.
    pub fn from_words(words: [u64; LINE_WORDS]) -> MemoryLine {
        MemoryLine { words }
    }

    /// Creates a line from 64 bytes in little-endian word order.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != 64`.
    pub fn from_bytes(bytes: &[u8]) -> MemoryLine {
        assert_eq!(bytes.len(), LINE_BYTES, "a memory line is exactly 64 bytes");
        let mut words = [0u64; LINE_WORDS];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            words[i] = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        }
        MemoryLine { words }
    }

    /// Returns the line content as 64 bytes in little-endian word order.
    pub fn to_bytes(self) -> [u8; LINE_BYTES] {
        let mut out = [0u8; LINE_BYTES];
        for (i, w) in self.words.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// The eight 64-bit words of the line.
    #[inline]
    pub fn words(&self) -> &[u64; LINE_WORDS] {
        &self.words
    }

    /// Mutable access to the eight 64-bit words of the line.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64; LINE_WORDS] {
        &mut self.words
    }

    /// Returns word `index` (0..8).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    #[inline]
    pub fn word(&self, index: usize) -> u64 {
        self.words[index]
    }

    /// Sets word `index` (0..8).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    #[inline]
    pub fn set_word(&mut self, index: usize, value: u64) {
        self.words[index] = value;
    }

    /// Returns bit `bit` of the line (0..512), bit 0 being the LSB of word 0.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 512`.
    #[inline]
    pub fn bit(&self, bit: usize) -> bool {
        assert!(bit < LINE_BITS);
        (self.words[bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// Sets bit `bit` of the line to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 512`.
    #[inline]
    pub fn set_bit(&mut self, bit: usize, value: bool) {
        assert!(bit < LINE_BITS);
        let mask = 1u64 << (bit % 64);
        if value {
            self.words[bit / 64] |= mask;
        } else {
            self.words[bit / 64] &= !mask;
        }
    }

    /// Returns the 2-bit symbol stored in cell `cell` (0..256).
    ///
    /// Cell `c` holds line bits `(2c+1, 2c)`, the odd bit being the symbol MSB.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= 256`.
    #[inline]
    pub fn symbol(&self, cell: usize) -> Symbol {
        assert!(cell < LINE_CELLS);
        let word = self.words[cell / 32];
        let shift = (cell % 32) * 2;
        Symbol::new(((word >> shift) & 0b11) as u8)
    }

    /// Stores `symbol` into cell `cell` (0..256).
    ///
    /// # Panics
    ///
    /// Panics if `cell >= 256`.
    #[inline]
    pub fn set_symbol(&mut self, cell: usize, symbol: Symbol) {
        assert!(cell < LINE_CELLS);
        let shift = (cell % 32) * 2;
        let word = &mut self.words[cell / 32];
        *word = (*word & !(0b11u64 << shift)) | (u64::from(symbol.value()) << shift);
    }

    /// Iterates over the 256 symbols of the line, cell 0 first.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..LINE_CELLS).map(move |c| self.symbol(c))
    }

    /// The de-interleaved bit-plane view of the line's 256 symbols, consumed
    /// by the bit-parallel evaluation kernel ([`crate::kernel`]).
    pub fn symbol_planes(&self) -> crate::kernel::SymbolPlanes {
        crate::kernel::SymbolPlanes::new(self)
    }

    /// Counts occurrences of each of the four symbols across the line,
    /// indexed by symbol value.
    pub fn symbol_histogram(&self) -> [usize; 4] {
        let mut hist = [0usize; 4];
        for s in self.symbols() {
            hist[s.value() as usize] += 1;
        }
        hist
    }

    /// Number of bits that differ between `self` and `other`.
    pub fn hamming_distance(&self, other: &MemoryLine) -> u32 {
        self.words.iter().zip(other.words.iter()).map(|(a, b)| (a ^ b).count_ones()).sum()
    }

    /// Returns a line with every bit complemented.
    pub fn complement(&self) -> MemoryLine {
        let mut words = self.words;
        for w in &mut words {
            *w = !*w;
        }
        MemoryLine { words }
    }

    /// XORs `mask` into the line and returns the result.
    pub fn xor(&self, mask: &MemoryLine) -> MemoryLine {
        let mut words = self.words;
        for (w, m) in words.iter_mut().zip(mask.words.iter()) {
            *w ^= m;
        }
        MemoryLine { words }
    }

    /// Extracts `len` bits starting at line bit `start` (little-endian),
    /// returning them in the low bits of a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or the range exceeds the line.
    pub fn extract_bits(&self, start: usize, len: usize) -> u64 {
        assert!(len <= 64, "cannot extract more than 64 bits at once");
        assert!(start + len <= LINE_BITS, "bit range exceeds the line");
        let mut out = 0u64;
        for i in 0..len {
            if self.bit(start + i) {
                out |= 1 << i;
            }
        }
        out
    }

    /// Writes the low `len` bits of `value` into the line starting at bit `start`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or the range exceeds the line.
    pub fn insert_bits(&mut self, start: usize, len: usize, value: u64) {
        assert!(len <= 64, "cannot insert more than 64 bits at once");
        assert!(start + len <= LINE_BITS, "bit range exceeds the line");
        for i in 0..len {
            self.set_bit(start + i, (value >> i) & 1 == 1);
        }
    }
}

impl fmt::Debug for MemoryLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemoryLine[")?;
        for (i, w) in self.words.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{:016x}", w)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for MemoryLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<[u64; LINE_WORDS]> for MemoryLine {
    fn from(words: [u64; LINE_WORDS]) -> MemoryLine {
        MemoryLine::from_words(words)
    }
}

impl From<MemoryLine> for [u64; LINE_WORDS] {
    fn from(line: MemoryLine) -> [u64; LINE_WORDS] {
        line.words
    }
}

/// Helpers for manipulating a single 64-bit word at cell granularity.
pub mod word {
    use crate::state::Symbol;
    use crate::WORD_CELLS;

    /// Returns the 2-bit symbol in cell `cell` (0..32) of `word`.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= 32`.
    #[inline]
    pub fn symbol(word: u64, cell: usize) -> Symbol {
        assert!(cell < WORD_CELLS);
        Symbol::new(((word >> (cell * 2)) & 0b11) as u8)
    }

    /// Returns `word` with `symbol` stored in cell `cell` (0..32).
    ///
    /// # Panics
    ///
    /// Panics if `cell >= 32`.
    #[inline]
    pub fn with_symbol(word: u64, cell: usize, symbol: Symbol) -> u64 {
        assert!(cell < WORD_CELLS);
        let shift = cell * 2;
        (word & !(0b11u64 << shift)) | (u64::from(symbol.value()) << shift)
    }

    /// `true` if the `k` most-significant bits of `word` are all equal
    /// (all zeros or all ones). This is the Word-Level Compression test.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 64`.
    #[inline]
    pub fn msbs_identical(word: u64, k: usize) -> bool {
        assert!((1..=64).contains(&k), "k must be in 1..=64");
        if k == 1 {
            return true;
        }
        let top = word >> (64 - k);
        let mask = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
        top == 0 || top == mask
    }

    /// Sign-extends bit `from_bit` of `word` into all higher bit positions.
    ///
    /// # Panics
    ///
    /// Panics if `from_bit >= 64`.
    #[inline]
    pub fn sign_extend_from(word: u64, from_bit: usize) -> u64 {
        assert!(from_bit < 64);
        let sign = (word >> from_bit) & 1 == 1;
        let kept_mask = if from_bit == 63 { u64::MAX } else { (1u64 << (from_bit + 1)) - 1 };
        let kept = word & kept_mask;
        if sign {
            kept | !kept_mask
        } else {
            kept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        let mut bytes = [0u8; LINE_BYTES];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i * 7 + 3) as u8;
        }
        let line = MemoryLine::from_bytes(&bytes);
        assert_eq!(line.to_bytes(), bytes);
    }

    #[test]
    fn symbol_get_set_round_trip() {
        let mut line = MemoryLine::new();
        line.set_symbol(0, Symbol::new(0b11));
        line.set_symbol(255, Symbol::new(0b10));
        line.set_symbol(37, Symbol::new(0b01));
        assert_eq!(line.symbol(0), Symbol::new(0b11));
        assert_eq!(line.symbol(255), Symbol::new(0b10));
        assert_eq!(line.symbol(37), Symbol::new(0b01));
        assert_eq!(line.symbol(1), Symbol::new(0b00));
    }

    #[test]
    fn symbol_msb_is_odd_bit() {
        let mut line = MemoryLine::new();
        line.set_bit(1, true); // bit 1 is the MSB of cell 0
        assert_eq!(line.symbol(0), Symbol::new(0b10));
    }

    #[test]
    fn histogram_counts_all_cells() {
        let line = MemoryLine::from_words([u64::MAX, 0, 0, 0, 0, 0, 0, 0]);
        let hist = line.symbol_histogram();
        assert_eq!(hist[0b11], 32);
        assert_eq!(hist[0b00], 224);
        assert_eq!(hist.iter().sum::<usize>(), LINE_CELLS);
    }

    #[test]
    fn hamming_distance_and_complement() {
        let a = MemoryLine::ZERO;
        let b = a.complement();
        assert_eq!(a.hamming_distance(&b), 512);
        assert_eq!(a.hamming_distance(&a), 0);
        assert_eq!(b.complement(), a);
    }

    #[test]
    fn extract_insert_round_trip() {
        let mut line = MemoryLine::new();
        line.insert_bits(60, 16, 0xBEEF);
        assert_eq!(line.extract_bits(60, 16), 0xBEEF);
        // The range spans word 0 and word 1.
        assert_ne!(line.word(0), 0);
        assert_ne!(line.word(1), 0);
    }

    #[test]
    fn msbs_identical_detects_sign_extension() {
        assert!(word::msbs_identical(0x0000_0000_0000_1234, 6));
        assert!(word::msbs_identical(0xFFFF_FFFF_FFFF_F234, 6));
        assert!(!word::msbs_identical(0x8000_0000_0000_0000, 2));
        assert!(word::msbs_identical(u64::MAX, 64));
        assert!(word::msbs_identical(0, 64));
        assert!(!word::msbs_identical(1, 64));
    }

    #[test]
    fn sign_extend_round_trip() {
        assert_eq!(word::sign_extend_from(0x07FF_FFFF_FFFF_FFFF, 58), u64::MAX);
        assert_eq!(word::sign_extend_from(0x0000_0000_0000_1234, 58), 0x1234);
        assert_eq!(word::sign_extend_from(0xFFu64, 63), 0xFF);
    }

    #[test]
    fn word_symbol_round_trip() {
        let w = word::with_symbol(0, 31, Symbol::new(0b10));
        assert_eq!(word::symbol(w, 31), Symbol::new(0b10));
        assert_eq!(w, 0x8000_0000_0000_0000);
    }

    #[test]
    fn xor_is_involutive() {
        let a = MemoryLine::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
        let m = MemoryLine::from_words([0xFF; 8]);
        assert_eq!(a.xor(&m).xor(&m), a);
    }

    #[test]
    #[should_panic]
    fn from_bytes_rejects_wrong_length() {
        let _ = MemoryLine::from_bytes(&[0u8; 32]);
    }
}
