//! System configuration (Table II of the paper).

use crate::disturb::DisturbanceModel;
use crate::energy::EnergyModel;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated machine and PCM main memory.
///
/// The timing-related parameters (write pausing, queue depth) are carried for
/// completeness but do not influence the per-write energy/endurance metrics
/// the paper reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcmConfig {
    /// Number of CPU cores generating traffic.
    pub cores: usize,
    /// Core clock frequency in GHz.
    pub core_ghz: f64,
    /// Private L2 cache size per core, in MiB.
    pub l2_mib: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Cache/memory line size in bytes.
    pub line_bytes: usize,
    /// Total main-memory capacity in GiB.
    pub capacity_gib: usize,
    /// Number of memory channels.
    pub channels: usize,
    /// DIMMs per channel.
    pub dimms_per_channel: usize,
    /// Banks per DIMM.
    pub banks_per_dimm: usize,
    /// Write-queue entries per bank.
    pub write_queue_entries: usize,
    /// Fraction of write-queue occupancy above which writes are prioritised
    /// over reads (the paper uses 80 %).
    pub write_drain_threshold: f64,
    /// Cell programming-energy model.
    pub energy: EnergyModel,
    /// Write-disturbance model.
    pub disturbance: DisturbanceModel,
}

impl PcmConfig {
    /// The configuration of Table II: 8-core 4 GHz CMP, 2 MB private L2 per
    /// core, 32 GB MLC PCM with 2 channels × 2 DIMMs × 16 banks, 64 B lines.
    pub fn table_ii() -> PcmConfig {
        PcmConfig {
            cores: 8,
            core_ghz: 4.0,
            l2_mib: 2,
            l2_ways: 8,
            line_bytes: 64,
            capacity_gib: 32,
            channels: 2,
            dimms_per_channel: 2,
            banks_per_dimm: 16,
            write_queue_entries: 32,
            write_drain_threshold: 0.8,
            energy: EnergyModel::paper_default(),
            disturbance: DisturbanceModel::paper_default(),
        }
    }

    /// Total number of banks across the whole memory system.
    pub fn total_banks(&self) -> usize {
        self.channels * self.dimms_per_channel * self.banks_per_dimm
    }

    /// Total number of 64-byte lines in main memory.
    pub fn total_lines(&self) -> u64 {
        (self.capacity_gib as u64) * 1024 * 1024 * 1024 / self.line_bytes as u64
    }
}

impl Default for PcmConfig {
    fn default() -> PcmConfig {
        PcmConfig::table_ii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let c = PcmConfig::table_ii();
        assert_eq!(c.cores, 8);
        assert_eq!(c.line_bytes, 64);
        assert_eq!(c.capacity_gib, 32);
        assert_eq!(c.total_banks(), 2 * 2 * 16);
    }

    #[test]
    fn total_lines_matches_capacity() {
        let c = PcmConfig::table_ii();
        assert_eq!(c.total_lines(), 32u64 * 1024 * 1024 * 1024 / 64);
    }

    #[test]
    fn default_is_table_ii() {
        assert_eq!(PcmConfig::default(), PcmConfig::table_ii());
    }
}
