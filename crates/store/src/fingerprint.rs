//! Stable content fingerprints.
//!
//! A [`Fingerprint`] is a 128-bit FNV-1a hash of a value's wire encoding —
//! stable across processes, platforms and releases (it depends only on the
//! [`wire`](crate::wire) byte layout, never on `std`'s randomized hashers).
//! The store addresses entries by the fingerprint of their *key*: anything
//! that should invalidate a cached result (config, scheme, workload, seed,
//! simulator version salt) must be part of the key value, so a change in any
//! of it lands on a different address and stale results are simply never
//! found.

use crate::wire;
use serde::Value;
use std::fmt;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// A streaming 128-bit FNV-1a hasher.
///
/// Unlike `std::hash::Hasher` implementations, the output is a documented,
/// stable function of the input bytes — safe to persist in filenames.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl StableHasher {
    /// Creates a hasher in the standard FNV offset state.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV128_OFFSET }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) -> &mut StableHasher {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
        self
    }

    /// Absorbs a value through its wire encoding.
    pub fn update_value(&mut self, value: &Value) -> &mut StableHasher {
        self.update(&wire::encode(value))
    }

    /// Finishes the hash.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

/// A 128-bit content fingerprint, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The fingerprint of a value's wire encoding.
    pub fn of_value(value: &Value) -> Fingerprint {
        StableHasher::new().update_value(value).finish()
    }

    /// The fingerprint of raw bytes.
    pub fn of_bytes(bytes: &[u8]) -> Fingerprint {
        StableHasher::new().update(bytes).finish()
    }

    /// The 32-hex-digit rendering used in entry filenames.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a full 32-digit hex rendering.
    pub fn from_hex(hex: &str) -> Option<Fingerprint> {
        if hex.len() != 32 {
            return None;
        }
        u128::from_str_radix(hex, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_stable_across_calls() {
        let value = Value::record("K", vec![("a", Value::U64(7))]);
        assert_eq!(Fingerprint::of_value(&value), Fingerprint::of_value(&value));
    }

    #[test]
    fn any_field_change_moves_the_fingerprint() {
        let base = Value::record("K", vec![("a", Value::U64(7)), ("b", Value::F64(1.0))]);
        let variations = [
            Value::record("K2", vec![("a", Value::U64(7)), ("b", Value::F64(1.0))]),
            Value::record("K", vec![("a", Value::U64(8)), ("b", Value::F64(1.0))]),
            Value::record("K", vec![("a", Value::U64(7)), ("b", Value::F64(-1.0))]),
            Value::record("K", vec![("x", Value::U64(7)), ("b", Value::F64(1.0))]),
            Value::record("K", vec![("a", Value::U64(7))]),
        ];
        for variation in variations {
            assert_ne!(Fingerprint::of_value(&base), Fingerprint::of_value(&variation));
        }
    }

    #[test]
    fn hex_round_trips() {
        let fp = Fingerprint::of_bytes(b"wlcrc");
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(&hex[..30]), None);
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a 128 of the empty input is the offset basis.
        assert_eq!(Fingerprint::of_bytes(b"").0, 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = StableHasher::new();
        h.update(b"ab").update(b"cd");
        assert_eq!(h.finish(), Fingerprint::of_bytes(b"abcd"));
    }
}
