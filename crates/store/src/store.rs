//! The on-disk content-addressed store.
//!
//! Layout: every entry is one file under the store root,
//! `<root>/<first 2 hex digits>/<32 hex digits>.wlcrc`, named by the
//! [`Fingerprint`] of the entry's *key* value. The file carries a magic +
//! format version header, the fingerprint it claims to be stored under, and
//! a checksummed, self-describing payload (key + cached value), so a reader
//! can validate an entry end-to-end without knowing the Rust types behind
//! it.
//!
//! Concurrency and corruption rules:
//!
//! * **writes are atomic**: the entry is written to a temp file in the same
//!   directory and `rename`d into place, so concurrent processes — or a
//!   crash mid-write — can never expose a half-written entry under its final
//!   name;
//! * **reads never trust the file**: magic, version, fingerprint (recomputed
//!   from the stored key), checksum and key equality are all verified; any
//!   mismatch, truncation or decode error is reported as a miss
//!   ([`ResultStore::get`] returns `None`) — a corrupt cache can cost a
//!   recomputation, never a wrong result and never a panic;
//! * **hits are journaled**: each successful `get` appends one
//!   `<fingerprint> <unix-seconds>` line to `hits.log` (`O_APPEND`, one
//!   `write` syscall per line), which is how CI asserts a warm run was
//!   actually served from the cache and how LRU eviction orders entries by
//!   recency. The journal is advisory: corrupt lines are ignored, a
//!   read-only store skips it, and opening a writable store compacts it
//!   down to one last-hit line per fingerprint once it grows past
//!   [`HITS_COMPACT_THRESHOLD`] lines — exactly the information eviction
//!   needs, so compaction never loses LRU ordering;
//! * **cells are claimable**: a *claim* is a marker file under `claims/`
//!   created with `O_EXCL` (atomic: exactly one creator wins), carrying the
//!   owner's pid, host and claim time. Independent worker processes use
//!   claims to divide a grid between them — see [`ResultStore::try_claim`].
//!   Claims are a work-division optimisation, never a correctness
//!   mechanism: entry writes stay atomic and content-addressed, so a stale
//!   claim taken over by two racing workers costs a duplicate computation
//!   of the same bytes, not a wrong result.

use crate::fingerprint::Fingerprint;
use crate::metrics;
use crate::wire::{self, WireError};
use serde::Value;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Magic bytes opening every entry file.
pub const MAGIC: [u8; 8] = *b"WLCRCSTR";

/// Version of the entry-file layout; bump when the header layout changes.
/// (Invalidation of *results* goes through the fingerprint salt instead.)
pub const FORMAT_VERSION: u8 = wire::WIRE_VERSION;

/// File extension of store entries.
pub const ENTRY_EXTENSION: &str = "wlcrc";

/// Environment variable naming the store directory; when set, the experiment
/// engine caches cell results there.
pub const STORE_ENV: &str = "WLCRC_STORE";

/// Environment variable marking the store read-only (`1`/`true`/`yes`/`on`):
/// hits are served but misses are not written back and no journal is kept.
pub const STORE_READONLY_ENV: &str = "WLCRC_STORE_READONLY";

/// Environment variable capping the store size in bytes (optional `k`/`m`/`g`
/// suffix). When set, opening a writable store evicts least-recently-used
/// entries until the cap holds — see [`ResultStore::evict_lru`].
pub const MAX_BYTES_ENV: &str = "WLCRC_STORE_MAX_BYTES";

/// Name of the advisory hit journal inside the store root.
const HITS_LOG: &str = "hits.log";

/// Opening a writable store compacts `hits.log` down to one
/// last-hit-per-fingerprint line once it holds more lines than this. The
/// threshold is far above what one grid run journals, so compaction is a
/// rare maintenance event, not a per-run cost.
pub const HITS_COMPACT_THRESHOLD: usize = 65_536;

/// Cheapest possible journal line (32 hex + newline, the pre-timestamp
/// format): used as a size floor so `open` can skip reading a small journal.
const MIN_HIT_LINE_BYTES: u64 = 33;

/// Subdirectory of the store root holding claim markers.
const CLAIMS_DIR: &str = "claims";

/// File extension of claim markers.
const CLAIM_EXTENSION: &str = "claim";

/// Subdirectory of the store root where corrupt entries are moved aside.
/// Quarantined files keep their bytes (evidence for a post-mortem) but are
/// out of the addressable namespace, so the next write of the same key
/// recreates a clean entry instead of fighting the corpse.
const QUARANTINE_DIR: &str = "quarantine";

/// Fault site: tear an entry write in half before the rename lands,
/// simulating a non-atomic writer or a crash that still published a partial
/// file under the final name. See [`wlcrc_faults`].
pub const FAULT_TORN_WRITE: &str = "store.write.torn";

/// Fault site: flip one byte of an entry after reading it from disk,
/// simulating media corruption the checksum must catch. See [`wlcrc_faults`].
pub const FAULT_READ_CORRUPT: &str = "store.read.corrupt";

/// Why a store operation failed. Read-path problems are deliberately *not*
/// errors at the [`ResultStore::get`] level — they surface as misses — but
/// [`ResultStore::verify`] reports them per entry through this type.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O error reading or writing an entry.
    Io(std::io::Error),
    /// The file is too short or missing a section.
    Truncated,
    /// The magic bytes do not match.
    BadMagic,
    /// The format version is not one this build reads.
    UnsupportedVersion(u8),
    /// The payload checksum does not match its bytes.
    ChecksumMismatch,
    /// The payload could not be decoded.
    Wire(WireError),
    /// The payload decoded but is not a `StoreEntry` record.
    MalformedEntry,
    /// The fingerprint recomputed from the stored key does not match the
    /// fingerprint the entry claims (or the filename it sits under).
    FingerprintMismatch,
    /// The stored key is not the requested key (fingerprint collision).
    KeyMismatch,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "i/o error: {err}"),
            StoreError::Truncated => write!(f, "entry truncated"),
            StoreError::BadMagic => write!(f, "bad magic bytes"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StoreError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            StoreError::Wire(err) => write!(f, "payload decode error: {err}"),
            StoreError::MalformedEntry => write!(f, "payload is not a StoreEntry record"),
            StoreError::FingerprintMismatch => write!(f, "fingerprint mismatch"),
            StoreError::KeyMismatch => write!(f, "key mismatch (fingerprint collision)"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> StoreError {
        StoreError::Io(err)
    }
}

/// One decoded store entry: the self-describing key and the cached payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The fingerprint the entry is stored under.
    pub fingerprint: Fingerprint,
    /// The key value the payload was computed from.
    pub key: Value,
    /// The cached payload value.
    pub payload: Value,
}

/// Summary of one on-disk entry, returned by [`ResultStore::entries`].
#[derive(Debug, Clone)]
pub struct EntryInfo {
    /// The fingerprint parsed from the filename.
    pub fingerprint: Fingerprint,
    /// Path of the entry file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
}

/// The recorded owner of a claim marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimInfo {
    /// Process id of the claimant.
    pub pid: u32,
    /// Hostname of the claimant (so multi-machine stores can tell whether a
    /// liveness check is even meaningful).
    pub host: String,
    /// Unix seconds at claim time.
    pub since_unix: u64,
}

/// Result of [`ResultStore::try_claim`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// This process created the claim marker; it owns the cell.
    Acquired,
    /// Another claim already exists. `None` when the marker file exists but
    /// its contents are unreadable or corrupt (treat as held: the holder may
    /// be mid-write).
    Held(Option<ClaimInfo>),
}

/// Outcome of [`ResultStore::verify`].
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Entries that validated end-to-end.
    pub valid: Vec<EntryInfo>,
    /// Entries that failed validation, with the reason.
    pub corrupt: Vec<(EntryInfo, StoreError)>,
}

/// Outcome of [`ResultStore::fsck`]: what the scan found and what the repair
/// pass did about it.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Entries that validated end-to-end and were left in place.
    pub valid: usize,
    /// Corrupt entries moved into the quarantine directory, with the reason
    /// each failed validation. Their keys re-derive on the next run.
    pub quarantined: Vec<(EntryInfo, StoreError)>,
    /// Journal lines dropped because they did not parse (torn appends,
    /// garbage tails). Ordinary duplicate hit lines are not damage and are
    /// not counted, even though the repairing rewrite collapses them too.
    pub dropped_journal_lines: usize,
    /// Stale or unreadable claim markers removed.
    pub cleared_claims: Vec<Fingerprint>,
    /// Leftover `.tmp-*` files from crashed writers removed.
    pub removed_temp_files: usize,
}

impl FsckReport {
    /// `true` when the scan found nothing to repair.
    pub fn clean(&self) -> bool {
        self.quarantined.is_empty()
            && self.dropped_journal_lines == 0
            && self.cleared_claims.is_empty()
            && self.removed_temp_files == 0
    }
}

/// A persistent, content-addressed result store rooted at a directory.
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: PathBuf,
    readonly: bool,
}

impl ResultStore {
    /// Opens (creating if needed) a writable store at `root`. Opening also
    /// runs the cheap maintenance passes: the hit journal is compacted once
    /// it exceeds [`HITS_COMPACT_THRESHOLD`] lines, and when
    /// [`MAX_BYTES_ENV`] is set the store is LRU-evicted down to that cap.
    /// Maintenance failures are swallowed — an unmaintainable cache still
    /// serves hits.
    pub fn open(root: impl Into<PathBuf>) -> Result<ResultStore, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let store = ResultStore { root, readonly: false };
        store.maybe_compact_hits_log();
        if let Some(cap) = std::env::var(MAX_BYTES_ENV).ok().and_then(|v| parse_byte_size(&v)) {
            let _ = store.evict_lru(cap);
        }
        Ok(store)
    }

    /// Opens a store that serves hits but never writes (no entries, no
    /// journal). The directory does not have to exist; every lookup is then
    /// simply a miss.
    pub fn open_read_only(root: impl Into<PathBuf>) -> ResultStore {
        ResultStore { root: root.into(), readonly: true }
    }

    /// Opens a store at `root`, read-only when asked; a writable store whose
    /// directory cannot be created degrades to read-only rather than
    /// failing — the cache is an accelerator, not a dependency. This is the
    /// one resolution policy shared by [`ResultStore::from_env`] and the
    /// experiment engine.
    pub fn open_or_read_only(root: impl Into<PathBuf>, readonly: bool) -> ResultStore {
        let root = root.into();
        if readonly {
            return ResultStore::open_read_only(root);
        }
        match ResultStore::open(&root) {
            Ok(store) => store,
            Err(_) => ResultStore::open_read_only(root),
        }
    }

    /// Opens the store named by `WLCRC_STORE` / `WLCRC_STORE_READONLY`, if
    /// set.
    pub fn from_env() -> Option<ResultStore> {
        let root = std::env::var_os(STORE_ENV)?;
        if root.is_empty() {
            return None;
        }
        Some(ResultStore::open_or_read_only(PathBuf::from(root), readonly_from_env()))
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `true` when the store never writes.
    pub fn is_read_only(&self) -> bool {
        self.readonly
    }

    /// The path an entry for `fingerprint` would live at.
    pub fn entry_path(&self, fingerprint: Fingerprint) -> PathBuf {
        let hex = fingerprint.to_hex();
        self.root.join(&hex[..2]).join(format!("{hex}.{ENTRY_EXTENSION}"))
    }

    /// Looks up the payload cached under `key`. Any read problem — a missing
    /// entry, a truncated or tampered file, a foreign format, even a
    /// fingerprint collision — is a miss, never an error. A hit is appended
    /// to the journal unless the store is read-only. A writable store
    /// quarantines an entry that fails validation (see
    /// [`ResultStore::quarantine_entry`]), so the next write of the same key
    /// lands on a clean slot and repeat lookups stop re-parsing the corpse.
    pub fn get(&self, key: &Value) -> Option<Value> {
        let fingerprint = Fingerprint::of_value(key);
        let entry = match self.read_entry(fingerprint) {
            Ok(entry) => entry,
            Err(StoreError::Io(err)) if err.kind() == std::io::ErrorKind::NotFound => {
                metrics::metrics().misses.inc();
                return None;
            }
            Err(_) => {
                if !self.readonly {
                    let _ = self.quarantine_entry(fingerprint);
                }
                metrics::metrics().misses.inc();
                return None;
            }
        };
        if &entry.key != key {
            metrics::metrics().misses.inc();
            return None;
        }
        if !self.readonly {
            self.journal_hit(fingerprint);
        }
        metrics::metrics().hits.inc();
        Some(entry.payload)
    }

    /// Stores `payload` under `key`, atomically (tmp file + rename). In a
    /// read-only store this is a no-op returning `Ok(false)`.
    pub fn put(&self, key: &Value, payload: &Value) -> Result<bool, StoreError> {
        if self.readonly {
            return Ok(false);
        }
        let fingerprint = Fingerprint::of_value(key);
        let entry_value = Value::Record {
            name: "StoreEntry".to_string(),
            fields: vec![
                ("key".to_string(), key.clone()),
                ("payload".to_string(), payload.clone()),
            ],
        };
        let payload_bytes = wire::encode(&entry_value);
        let mut file_bytes =
            Vec::with_capacity(MAGIC.len() + 1 + 16 + 4 + payload_bytes.len() + 16);
        file_bytes.extend_from_slice(&MAGIC);
        file_bytes.push(FORMAT_VERSION);
        file_bytes.extend_from_slice(&fingerprint.0.to_be_bytes());
        file_bytes.extend_from_slice(
            &u32::try_from(payload_bytes.len()).expect("payload fits u32").to_le_bytes(),
        );
        file_bytes.extend_from_slice(&payload_bytes);
        file_bytes.extend_from_slice(&Fingerprint::of_bytes(&payload_bytes).0.to_be_bytes());

        // Chaos hook: publish only half the bytes under the final name, the
        // damage a non-atomic writer (or a dying disk) would do. Readers must
        // treat the result as a miss and `fsck` must repair it.
        if wlcrc_faults::should_fire(FAULT_TORN_WRITE) {
            file_bytes.truncate(file_bytes.len() / 2);
        }

        let path = self.entry_path(fingerprint);
        let dir = path.parent().expect("entry path has a shard directory");
        let started = std::time::Instant::now();
        let _span = wlcrc_obs::span("store.write");
        fs::create_dir_all(dir)?;
        // The temp file lives in the final directory so the rename cannot
        // cross filesystems; the name is per-process so concurrent writers
        // of the same entry race only at the (atomic) rename.
        let tmp = dir.join(format!(".tmp-{}-{}", std::process::id(), fingerprint.to_hex()));
        fs::write(&tmp, &file_bytes)?;
        match fs::rename(&tmp, &path) {
            Ok(()) => {
                let store_metrics = metrics::metrics();
                store_metrics.writes.inc();
                store_metrics.write_seconds.observe(started.elapsed());
                Ok(true)
            }
            Err(err) => {
                let _ = fs::remove_file(&tmp);
                Err(err.into())
            }
        }
    }

    /// Reads and fully validates the entry stored under `fingerprint`.
    pub fn read_entry(&self, fingerprint: Fingerprint) -> Result<Entry, StoreError> {
        let started = std::time::Instant::now();
        let _span = wlcrc_obs::span("store.read");
        let store_metrics = metrics::metrics();
        store_metrics.reads.inc();
        let result = read_entry_file(&self.entry_path(fingerprint)).and_then(|entry| {
            if entry.fingerprint != fingerprint {
                return Err(StoreError::FingerprintMismatch);
            }
            Ok(entry)
        });
        store_metrics.read_seconds.observe(started.elapsed());
        result
    }

    /// Deletes the entry stored under `fingerprint`, returning whether one
    /// existed. No-op in a read-only store.
    pub fn evict(&self, fingerprint: Fingerprint) -> Result<bool, StoreError> {
        if self.readonly {
            return Ok(false);
        }
        match fs::remove_file(self.entry_path(fingerprint)) {
            Ok(()) => {
                metrics::metrics().evictions.inc();
                Ok(true)
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(err) => Err(err.into()),
        }
    }

    /// Lists the on-disk entries (existence only — contents unvalidated),
    /// sorted by fingerprint for deterministic output.
    pub fn entries(&self) -> Vec<EntryInfo> {
        let mut out = Vec::new();
        let Ok(shards) = fs::read_dir(&self.root) else {
            return out;
        };
        for shard in shards.flatten() {
            // Only the 2-hex shard directories hold addressable entries;
            // `claims/` and `quarantine/` live alongside them and must not
            // be scanned as entries.
            let is_shard = shard
                .file_name()
                .to_str()
                .is_some_and(|name| name.len() == 2 && name.bytes().all(|b| b.is_ascii_hexdigit()));
            if !is_shard {
                continue;
            }
            let Ok(files) = fs::read_dir(shard.path()) else {
                continue;
            };
            for file in files.flatten() {
                let path = file.path();
                let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                    continue;
                };
                if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXTENSION) {
                    continue;
                }
                let Some(fingerprint) = Fingerprint::from_hex(stem) else {
                    continue;
                };
                let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
                out.push(EntryInfo { fingerprint, path, bytes });
            }
        }
        out.sort_by_key(|info| info.fingerprint);
        out
    }

    /// Validates every on-disk entry end-to-end.
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport::default();
        for info in self.entries() {
            match read_entry_file(&info.path) {
                Ok(entry) if entry.fingerprint == info.fingerprint => report.valid.push(info),
                Ok(_) => report.corrupt.push((info, StoreError::FingerprintMismatch)),
                Err(err) => report.corrupt.push((info, err)),
            }
        }
        report
    }

    /// Number of journaled cache hits currently in the journal. Compaction
    /// (see [`ResultStore::compact_hits_log`]) collapses repeat hits, so
    /// this is a lower bound on lifetime hits — which is the direction the
    /// "was the cache actually used?" checks need.
    pub fn hit_count(&self) -> u64 {
        let Ok(journal) = fs::read_to_string(self.root.join(HITS_LOG)) else {
            return 0;
        };
        journal
            .lines()
            .filter(|line| {
                line.split_whitespace()
                    .next()
                    .is_some_and(|hex| Fingerprint::from_hex(hex).is_some())
            })
            .count() as u64
    }

    /// The last journaled hit time (unix seconds) per fingerprint. Lines in
    /// the pre-timestamp journal format (bare hex) count as time 0; eviction
    /// falls back to the entry file's mtime in that case.
    pub fn last_uses(&self) -> HashMap<Fingerprint, u64> {
        let mut out = HashMap::new();
        let Ok(journal) = fs::read_to_string(self.root.join(HITS_LOG)) else {
            return out;
        };
        for line in journal.lines() {
            let mut tokens = line.split_whitespace();
            let Some(fingerprint) = tokens.next().and_then(Fingerprint::from_hex) else {
                continue;
            };
            let ts: u64 = tokens.next().and_then(|t| t.parse().ok()).unwrap_or(0);
            let slot = out.entry(fingerprint).or_insert(0);
            *slot = ts.max(*slot);
        }
        out
    }

    /// Rewrites the journal down to one `<fingerprint> <last-hit>` line per
    /// fingerprint, ordered oldest-first (tmp + rename, like entry writes).
    /// Returns the number of lines dropped. Concurrent appends from other
    /// processes during the rewrite can be lost; the journal is advisory,
    /// so that costs at worst a slightly-too-early eviction.
    pub fn compact_hits_log(&self) -> Result<usize, StoreError> {
        if self.readonly {
            return Ok(0);
        }
        let path = self.root.join(HITS_LOG);
        let journal = match fs::read_to_string(&path) {
            Ok(journal) => journal,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(err) => return Err(err.into()),
        };
        let before = journal.lines().count();
        let mut last: Vec<(u64, Fingerprint)> =
            self.last_uses().into_iter().map(|(fingerprint, ts)| (ts, fingerprint)).collect();
        last.sort();
        let mut compacted = String::with_capacity(last.len() * 44);
        for (ts, fingerprint) in &last {
            compacted.push_str(&format!("{} {ts}\n", fingerprint.to_hex()));
        }
        let tmp = self.root.join(format!(".tmp-hits-{}", std::process::id()));
        fs::write(&tmp, compacted.as_bytes())?;
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(before.saturating_sub(last.len())),
            Err(err) => {
                let _ = fs::remove_file(&tmp);
                Err(err.into())
            }
        }
    }

    /// Compacts the journal only once it is large enough to matter; a cheap
    /// file-size floor avoids even reading a small journal.
    fn maybe_compact_hits_log(&self) {
        let path = self.root.join(HITS_LOG);
        let Ok(meta) = fs::metadata(&path) else {
            return;
        };
        if meta.len() < HITS_COMPACT_THRESHOLD as u64 * MIN_HIT_LINE_BYTES {
            return;
        }
        let lines = match fs::read_to_string(&path) {
            Ok(journal) => journal.lines().count(),
            Err(_) => return,
        };
        if lines > HITS_COMPACT_THRESHOLD {
            let _ = self.compact_hits_log();
        }
    }

    /// The moment an entry was last useful: its last journaled hit, or its
    /// file mtime when the journal has nothing newer (covers entries written
    /// but never re-read, and pre-timestamp journal lines).
    fn last_use(&self, info: &EntryInfo, uses: &HashMap<Fingerprint, u64>) -> u64 {
        let mtime = fs::metadata(&info.path)
            .ok()
            .and_then(|m| m.modified().ok())
            .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
            .map(|d| d.as_secs())
            .unwrap_or(0);
        mtime.max(uses.get(&info.fingerprint).copied().unwrap_or(0))
    }

    /// Evicts least-recently-used entries until the store's total entry
    /// bytes fit under `max_bytes`; returns the evicted entries (oldest
    /// first). Ties on last-use break by fingerprint so the outcome is
    /// deterministic. No-op in a read-only store.
    pub fn evict_lru(&self, max_bytes: u64) -> Result<Vec<EntryInfo>, StoreError> {
        if self.readonly {
            return Ok(Vec::new());
        }
        let entries = self.entries();
        let mut remaining: u64 = entries.iter().map(|info| info.bytes).sum();
        if remaining <= max_bytes {
            return Ok(Vec::new());
        }
        let uses = self.last_uses();
        let mut ranked: Vec<(u64, EntryInfo)> =
            entries.into_iter().map(|info| (self.last_use(&info, &uses), info)).collect();
        ranked.sort_by_key(|(last, info)| (*last, info.fingerprint));
        let mut evicted = Vec::new();
        for (_, info) in ranked {
            if remaining <= max_bytes {
                break;
            }
            if self.evict(info.fingerprint)? {
                remaining = remaining.saturating_sub(info.bytes);
                evicted.push(info);
            }
        }
        Ok(evicted)
    }

    /// Evicts every entry whose last use is strictly before `cutoff_unix`;
    /// returns the evicted entries (oldest first). No-op in a read-only
    /// store.
    pub fn evict_older_than(&self, cutoff_unix: u64) -> Result<Vec<EntryInfo>, StoreError> {
        if self.readonly {
            return Ok(Vec::new());
        }
        let uses = self.last_uses();
        let mut ranked: Vec<(u64, EntryInfo)> = self
            .entries()
            .into_iter()
            .map(|info| (self.last_use(&info, &uses), info))
            .filter(|(last, _)| *last < cutoff_unix)
            .collect();
        ranked.sort_by_key(|(last, info)| (*last, info.fingerprint));
        let mut evicted = Vec::new();
        for (_, info) in ranked {
            if self.evict(info.fingerprint)? {
                evicted.push(info);
            }
        }
        Ok(evicted)
    }

    /// Appends a hit to the advisory journal; failures are ignored (the
    /// journal must never turn a cache hit into a run failure).
    fn journal_hit(&self, fingerprint: Fingerprint) {
        let Ok(mut file) =
            fs::OpenOptions::new().create(true).append(true).open(self.root.join(HITS_LOG))
        else {
            return;
        };
        // One write_all of the full line: under O_APPEND the line lands
        // atomically, so concurrent processes cannot interleave hex and
        // newline fragments (writeln! would issue separate writes).
        let _ = file.write_all(format!("{} {}\n", fingerprint.to_hex(), unix_now()).as_bytes());
    }

    /// The path a claim marker for `fingerprint` would live at.
    pub fn claim_path(&self, fingerprint: Fingerprint) -> PathBuf {
        self.root.join(CLAIMS_DIR).join(format!("{}.{CLAIM_EXTENSION}", fingerprint.to_hex()))
    }

    /// Tries to claim the cell `fingerprint` for this process. The marker is
    /// created with `create_new` (`O_EXCL`), so exactly one racing process
    /// acquires a fresh claim; everyone else sees [`ClaimOutcome::Held`]
    /// with the recorded owner. A read-only store never claims (it has no
    /// work to divide — it cannot write results back).
    pub fn try_claim(&self, fingerprint: Fingerprint) -> Result<ClaimOutcome, StoreError> {
        if self.readonly {
            return Ok(ClaimOutcome::Held(None));
        }
        let path = self.claim_path(fingerprint);
        let dir = path.parent().expect("claim path has a parent directory");
        fs::create_dir_all(dir)?;
        match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut file) => {
                // Losing the content write is fine: an empty marker still
                // excludes other claimants, and readers treat it as
                // Held(None).
                let _ = file.write_all(claim_line().as_bytes());
                Ok(ClaimOutcome::Acquired)
            }
            Err(err) if err.kind() == std::io::ErrorKind::AlreadyExists => {
                Ok(ClaimOutcome::Held(self.read_claim(fingerprint)))
            }
            Err(err) => Err(err.into()),
        }
    }

    /// Reads the owner recorded in a claim marker; `None` when the marker is
    /// missing, unreadable or malformed.
    pub fn read_claim(&self, fingerprint: Fingerprint) -> Option<ClaimInfo> {
        parse_claim(&fs::read_to_string(self.claim_path(fingerprint)).ok()?)
    }

    /// Replaces an existing claim with this process's own (tmp + rename —
    /// atomic, but *not* exclusive: two workers that both judged the same
    /// claim stale can both take it over and both compute the cell). Call
    /// only after [`claim_is_stale`] says the current holder is gone; the
    /// worst case is duplicate work, never a wrong result, because entry
    /// writes stay atomic and deterministic.
    pub fn takeover_claim(&self, fingerprint: Fingerprint) -> Result<(), StoreError> {
        if self.readonly {
            return Ok(());
        }
        let path = self.claim_path(fingerprint);
        let dir = path.parent().expect("claim path has a parent directory");
        fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(".tmp-{}-{}", std::process::id(), fingerprint.to_hex()));
        fs::write(&tmp, claim_line().as_bytes())?;
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(err) => {
                let _ = fs::remove_file(&tmp);
                Err(err.into())
            }
        }
    }

    /// Removes the claim marker for `fingerprint`, returning whether one
    /// existed. Workers release after the entry write lands, so a visible
    /// entry file always wins over any claim state.
    pub fn release_claim(&self, fingerprint: Fingerprint) -> Result<bool, StoreError> {
        if self.readonly {
            return Ok(false);
        }
        match fs::remove_file(self.claim_path(fingerprint)) {
            Ok(()) => Ok(true),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(err) => Err(err.into()),
        }
    }

    /// Lists the outstanding claim markers, sorted by fingerprint.
    pub fn claims(&self) -> Vec<(Fingerprint, Option<ClaimInfo>)> {
        let mut out = Vec::new();
        let Ok(files) = fs::read_dir(self.root.join(CLAIMS_DIR)) else {
            return out;
        };
        for file in files.flatten() {
            let path = file.path();
            if path.extension().and_then(|e| e.to_str()) != Some(CLAIM_EXTENSION) {
                continue;
            }
            let Some(fingerprint) =
                path.file_stem().and_then(|s| s.to_str()).and_then(Fingerprint::from_hex)
            else {
                continue;
            };
            out.push((fingerprint, self.read_claim(fingerprint)));
        }
        out.sort_by_key(|(fingerprint, _)| *fingerprint);
        out
    }

    /// The path a quarantined entry for `fingerprint` would live at.
    pub fn quarantine_path(&self, fingerprint: Fingerprint) -> PathBuf {
        self.root.join(QUARANTINE_DIR).join(format!("{}.{ENTRY_EXTENSION}", fingerprint.to_hex()))
    }

    /// Moves the entry stored under `fingerprint` into the quarantine
    /// directory (atomic rename; an earlier quarantined corpse under the
    /// same fingerprint is replaced). Returns whether an entry existed.
    /// No-op in a read-only store.
    pub fn quarantine_entry(&self, fingerprint: Fingerprint) -> Result<bool, StoreError> {
        if self.readonly {
            return Ok(false);
        }
        let to = self.quarantine_path(fingerprint);
        fs::create_dir_all(to.parent().expect("quarantine path has a parent directory"))?;
        match fs::rename(self.entry_path(fingerprint), &to) {
            Ok(()) => {
                metrics::metrics().quarantined.inc();
                Ok(true)
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(err) => Err(err.into()),
        }
    }

    /// Lists the quarantined entries, sorted by fingerprint.
    pub fn quarantined(&self) -> Vec<EntryInfo> {
        let mut out = Vec::new();
        let Ok(files) = fs::read_dir(self.root.join(QUARANTINE_DIR)) else {
            return out;
        };
        for file in files.flatten() {
            let path = file.path();
            if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXTENSION) {
                continue;
            }
            let Some(fingerprint) =
                path.file_stem().and_then(|s| s.to_str()).and_then(Fingerprint::from_hex)
            else {
                continue;
            };
            let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
            out.push(EntryInfo { fingerprint, path, bytes });
        }
        out.sort_by_key(|info| info.fingerprint);
        out
    }

    /// Scans and repairs the store in place:
    ///
    /// 1. every entry is validated end-to-end; corrupt ones are moved into
    ///    `quarantine/` (the content-addressed key re-derives the result on
    ///    the next run — `fsck` cannot recompute payloads itself);
    /// 2. unparseable `hits.log` lines (torn appends) are dropped by
    ///    rewriting the journal through compaction;
    /// 3. claim markers whose holder is stale (per [`claim_is_stale`] with
    ///    `stale_after_secs`) or whose contents are unreadable *and* old
    ///    enough are removed;
    /// 4. `.tmp-*` leftovers from crashed writers older than
    ///    `stale_after_secs` are deleted.
    ///
    /// Requires a writable store; a read-only store returns an empty report
    /// without touching anything.
    pub fn fsck(&self, stale_after_secs: u64) -> Result<FsckReport, StoreError> {
        let mut report = FsckReport::default();
        if self.readonly {
            return Ok(report);
        }

        let verified = self.verify();
        report.valid = verified.valid.len();
        for (info, err) in verified.corrupt {
            if self.quarantine_entry(info.fingerprint)? {
                report.quarantined.push((info, err));
            }
        }

        report.dropped_journal_lines = self.malformed_journal_lines();
        if report.dropped_journal_lines > 0 {
            self.compact_hits_log()?;
        }

        for (fingerprint, info) in self.claims() {
            let stale = match info {
                Some(info) => claim_is_stale(&info, stale_after_secs),
                // Unreadable markers: the holder may be mid-write, so only
                // age them out on mtime like any other stale artifact.
                None => self.marker_older_than(fingerprint, stale_after_secs),
            };
            if stale && self.release_claim(fingerprint)? {
                report.cleared_claims.push(fingerprint);
            }
        }

        report.removed_temp_files = self.remove_stale_temp_files(stale_after_secs);
        Ok(report)
    }

    /// Journal lines whose first token is not a fingerprint — torn appends
    /// and garbage tails that the journal readers silently skip.
    fn malformed_journal_lines(&self) -> usize {
        let Ok(journal) = fs::read_to_string(self.root.join(HITS_LOG)) else {
            return 0;
        };
        journal
            .lines()
            .filter(|line| line.split_whitespace().next().and_then(Fingerprint::from_hex).is_none())
            .count()
    }

    /// Whether the claim marker for `fingerprint` is older than
    /// `stale_after_secs` by file mtime (used for markers whose contents do
    /// not parse).
    fn marker_older_than(&self, fingerprint: Fingerprint, stale_after_secs: u64) -> bool {
        let Ok(meta) = fs::metadata(self.claim_path(fingerprint)) else {
            return false;
        };
        let mtime = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
            .map(|d| d.as_secs())
            .unwrap_or(0);
        unix_now().saturating_sub(mtime) > stale_after_secs
    }

    /// Removes `.tmp-*` files older than `stale_after_secs` from the root,
    /// the shard directories and the claims directory. Recent temp files are
    /// left alone — a live writer may still be about to rename one.
    fn remove_stale_temp_files(&self, stale_after_secs: u64) -> usize {
        let mut dirs = vec![self.root.clone(), self.root.join(CLAIMS_DIR)];
        if let Ok(shards) = fs::read_dir(&self.root) {
            dirs.extend(shards.flatten().map(|e| e.path()).filter(|p| p.is_dir()));
        }
        let mut removed = 0;
        for dir in dirs {
            let Ok(files) = fs::read_dir(&dir) else {
                continue;
            };
            for file in files.flatten() {
                let path = file.path();
                let is_tmp = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(".tmp-"));
                if !is_tmp {
                    continue;
                }
                let age = file
                    .metadata()
                    .ok()
                    .and_then(|m| m.modified().ok())
                    .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                    .map(|d| unix_now().saturating_sub(d.as_secs()))
                    .unwrap_or(u64::MAX);
                if age > stale_after_secs && fs::remove_file(&path).is_ok() {
                    removed += 1;
                }
            }
        }
        removed
    }
}

/// Whether a claim's holder should be presumed dead: the claim is older than
/// `stale_after_secs`, or it was made on *this* host by a process that no
/// longer exists (checked via `/proc`, so the liveness shortcut only applies
/// where `/proc` is real). Cross-host claims age out on time alone.
pub fn claim_is_stale(info: &ClaimInfo, stale_after_secs: u64) -> bool {
    if unix_now().saturating_sub(info.since_unix) > stale_after_secs {
        return true;
    }
    info.pid != 0
        && info.host == hostname()
        && Path::new("/proc/self").exists()
        && !Path::new(&format!("/proc/{}", info.pid)).exists()
}

/// The claim line this process writes: `<pid>@<host> <unix-seconds>`.
fn claim_line() -> String {
    format!("{}@{} {}\n", std::process::id(), hostname(), unix_now())
}

/// Parses a claim line written by [`claim_line`].
fn parse_claim(text: &str) -> Option<ClaimInfo> {
    let mut tokens = text.split_whitespace();
    let owner = tokens.next()?;
    let since_unix: u64 = tokens.next()?.parse().ok()?;
    let (pid, host) = owner.split_once('@')?;
    Some(ClaimInfo { pid: pid.parse().ok()?, host: host.to_string(), since_unix })
}

/// Current unix time in seconds (0 on a pre-epoch clock).
fn unix_now() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

/// Best-effort hostname: `/proc/sys/kernel/hostname`, then `$HOSTNAME`,
/// then `"?"`. Only used to label claims and scope the dead-pid check.
fn hostname() -> String {
    if let Ok(host) = fs::read_to_string("/proc/sys/kernel/hostname") {
        let host = host.trim();
        if !host.is_empty() {
            return host.to_string();
        }
    }
    match std::env::var("HOSTNAME") {
        Ok(host) if !host.trim().is_empty() => host.trim().to_string(),
        _ => "?".to_string(),
    }
}

/// Parses a byte size with an optional `k`/`m`/`g` suffix (binary
/// multiples): `"900k"` → 921600. Used by [`MAX_BYTES_ENV`] and
/// `storectl evict --max-bytes`.
pub fn parse_byte_size(text: &str) -> Option<u64> {
    let text = text.trim();
    let (digits, multiplier) = match text.chars().last()? {
        'k' | 'K' => (&text[..text.len() - 1], 1u64 << 10),
        'm' | 'M' => (&text[..text.len() - 1], 1u64 << 20),
        'g' | 'G' => (&text[..text.len() - 1], 1u64 << 30),
        _ => (text, 1),
    };
    digits.trim().parse::<u64>().ok()?.checked_mul(multiplier)
}

/// Whether `WLCRC_STORE_READONLY` currently marks stores read-only.
pub fn readonly_from_env() -> bool {
    std::env::var(STORE_READONLY_ENV).is_ok_and(|v| {
        let v = v.trim();
        ["1", "true", "yes", "on"].iter().any(|accepted| v.eq_ignore_ascii_case(accepted))
    })
}

/// Parses one entry file: magic, version, claimed fingerprint, length-checked
/// payload, checksum, decode, and fingerprint-of-key revalidation.
fn read_entry_file(path: &Path) -> Result<Entry, StoreError> {
    let mut bytes = fs::read(path)?;
    // Chaos hook: media corruption after the read — the checksum (or one of
    // the other header checks) must turn this into a typed error, never a
    // wrong payload.
    wlcrc_faults::corrupt_byte(FAULT_READ_CORRUPT, &mut bytes);
    let header_len = MAGIC.len() + 1 + 16 + 4;
    if bytes.len() < header_len + 16 {
        return Err(StoreError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = bytes[MAGIC.len()];
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let claimed = Fingerprint(u128::from_be_bytes(
        bytes[MAGIC.len() + 1..MAGIC.len() + 17].try_into().expect("16 bytes"),
    ));
    let payload_len =
        u32::from_le_bytes(bytes[MAGIC.len() + 17..header_len].try_into().expect("4 bytes"))
            as usize;
    let payload_end = header_len.checked_add(payload_len).ok_or(StoreError::Truncated)?;
    if payload_end + 16 != bytes.len() {
        return Err(StoreError::Truncated);
    }
    let payload_bytes = &bytes[header_len..payload_end];
    let checksum =
        Fingerprint(u128::from_be_bytes(bytes[payload_end..].try_into().expect("16 bytes")));
    if Fingerprint::of_bytes(payload_bytes) != checksum {
        return Err(StoreError::ChecksumMismatch);
    }
    let entry_value = wire::decode(payload_bytes).map_err(StoreError::Wire)?;
    let record = entry_value.as_record("StoreEntry").map_err(|_| StoreError::MalformedEntry)?;
    let key = record.raw("key").ok_or(StoreError::MalformedEntry)?.clone();
    let payload = record.raw("payload").ok_or(StoreError::MalformedEntry)?.clone();
    if Fingerprint::of_value(&key) != claimed {
        return Err(StoreError::FingerprintMismatch);
    }
    Ok(Entry { fingerprint: claimed, key, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A scratch directory removed on drop; unique per test without any
    /// external tempdir dependency.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "wlcrc-store-test-{}-{}-{}",
                std::process::id(),
                tag,
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&path);
            Scratch(path)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn key(n: u64) -> Value {
        Value::record("Key", vec![("n", Value::U64(n)), ("tag", Value::Str("t".into()))])
    }

    fn payload(x: f64) -> Value {
        Value::record("Payload", vec![("energy", Value::F64(x))])
    }

    #[test]
    fn put_then_get_round_trips() {
        let scratch = Scratch::new("roundtrip");
        let store = ResultStore::open(&scratch.0).unwrap();
        assert_eq!(store.get(&key(1)), None);
        assert!(store.put(&key(1), &payload(42.5)).unwrap());
        assert_eq!(store.get(&key(1)), Some(payload(42.5)));
        assert_eq!(store.get(&key(2)), None);
        assert_eq!(store.entries().len(), 1);
        assert_eq!(store.hit_count(), 1);
    }

    #[test]
    fn operations_feed_the_metrics_registry() {
        // Counters are process-global and other tests run concurrently in
        // this binary, so deltas are asserted as lower bounds.
        let scratch = Scratch::new("metrics");
        let store = ResultStore::open(&scratch.0).unwrap();
        let store_metrics = metrics::metrics();
        let snapshot = || {
            (
                store_metrics.hits.get(),
                store_metrics.misses.get(),
                store_metrics.writes.get(),
                store_metrics.evictions.get(),
            )
        };
        let (hits, misses, writes, evictions) = snapshot();
        let reads = store_metrics.reads.get();
        assert_eq!(store.get(&key(900)), None); // miss
        store.put(&key(900), &payload(1.0)).unwrap(); // write
        assert_eq!(store.get(&key(900)), Some(payload(1.0))); // hit
        assert!(store.evict(Fingerprint::of_value(&key(900))).unwrap()); // evict
        let (hits2, misses2, writes2, evictions2) = snapshot();
        assert!(hits2 > hits);
        assert!(misses2 > misses);
        assert!(writes2 > writes);
        assert!(evictions2 > evictions);
        assert!(store_metrics.reads.get() >= reads + 2);
        assert!(store_metrics.read_seconds.count() >= 2);
        assert!(store_metrics.write_seconds.count() >= 1);
        assert!(store_metrics.write_seconds.max_ns() > 0);
    }

    #[test]
    fn overwrite_replaces_the_payload() {
        let scratch = Scratch::new("overwrite");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(1), &payload(1.0)).unwrap();
        store.put(&key(1), &payload(2.0)).unwrap();
        assert_eq!(store.get(&key(1)), Some(payload(2.0)));
        assert_eq!(store.entries().len(), 1);
    }

    #[test]
    fn read_only_store_serves_hits_but_never_writes() {
        let scratch = Scratch::new("readonly");
        let writer = ResultStore::open(&scratch.0).unwrap();
        writer.put(&key(1), &payload(7.0)).unwrap();
        let hits_before = writer.hit_count();
        let reader = ResultStore::open_read_only(&scratch.0);
        assert_eq!(reader.get(&key(1)), Some(payload(7.0)));
        assert!(!reader.put(&key(2), &payload(8.0)).unwrap());
        assert_eq!(reader.get(&key(2)), None);
        assert_eq!(reader.entries().len(), 1);
        // The read-only hit was not journaled.
        assert_eq!(writer.hit_count(), hits_before);
    }

    #[test]
    fn truncation_and_tampering_read_as_misses() {
        let scratch = Scratch::new("corrupt");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(3), &payload(9.0)).unwrap();
        let path = store.entry_path(Fingerprint::of_value(&key(3)));
        let original = fs::read(&path).unwrap();

        // Every truncation point is a miss, not a panic.
        for cut in [0, 5, MAGIC.len() + 1, original.len() / 2, original.len() - 1] {
            fs::write(&path, &original[..cut]).unwrap();
            assert_eq!(store.get(&key(3)), None, "truncation at {cut}");
        }
        // Every single-byte flip is a miss.
        for i in 0..original.len() {
            let mut tampered = original.clone();
            tampered[i] ^= 0x40;
            fs::write(&path, &tampered).unwrap();
            assert_eq!(store.get(&key(3)), None, "flip at byte {i}");
        }
        // Restoring the original bytes restores the hit.
        fs::write(&path, &original).unwrap();
        assert_eq!(store.get(&key(3)), Some(payload(9.0)));
        // And a corrupt entry can simply be rewritten.
        fs::write(&path, b"garbage").unwrap();
        assert!(store.put(&key(3), &payload(9.0)).unwrap());
        assert_eq!(store.get(&key(3)), Some(payload(9.0)));
    }

    #[test]
    fn verify_separates_valid_from_corrupt() {
        let scratch = Scratch::new("verify");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(1), &payload(1.0)).unwrap();
        store.put(&key(2), &payload(2.0)).unwrap();
        let victim = store.entry_path(Fingerprint::of_value(&key(2)));
        let mut bytes = fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&victim, &bytes).unwrap();
        let report = store.verify();
        assert_eq!(report.valid.len(), 1);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0].0.fingerprint, Fingerprint::of_value(&key(2)));
    }

    #[test]
    fn evict_removes_entries() {
        let scratch = Scratch::new("evict");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(1), &payload(1.0)).unwrap();
        let fp = Fingerprint::of_value(&key(1));
        assert!(store.evict(fp).unwrap());
        assert!(!store.evict(fp).unwrap());
        assert_eq!(store.get(&key(1)), None);
        assert!(store.entries().is_empty());
    }

    #[test]
    fn entry_under_wrong_filename_is_rejected() {
        let scratch = Scratch::new("misfiled");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(1), &payload(1.0)).unwrap();
        let from = store.entry_path(Fingerprint::of_value(&key(1)));
        let to = store.entry_path(Fingerprint::of_value(&key(2)));
        fs::create_dir_all(to.parent().unwrap()).unwrap();
        fs::rename(&from, &to).unwrap();
        // The key-2 lookup finds a file whose content was stored for key 1:
        // the recomputed fingerprint exposes the mismatch.
        assert_eq!(store.get(&key(2)), None);
        assert_eq!(store.get(&key(1)), None);
    }

    #[test]
    fn from_env_is_disabled_without_the_variable() {
        // The test runner may set WLCRC_STORE for child processes it spawns,
        // but within this process the variable is controlled here.
        std::env::remove_var(STORE_ENV);
        assert!(ResultStore::from_env().is_none());
    }

    #[test]
    fn journal_lines_are_timestamped_and_legacy_lines_still_count() {
        let scratch = Scratch::new("journal");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(1), &payload(1.0)).unwrap();
        store.get(&key(1)).unwrap();
        let fp = Fingerprint::of_value(&key(1));
        let uses = store.last_uses();
        assert!(uses.get(&fp).copied().unwrap_or(0) > 0, "hit carries a real timestamp");
        // A line in the pre-timestamp format (bare hex) still counts as a
        // hit and parses as last-use 0.
        let legacy = Fingerprint::of_value(&key(2));
        let mut journal =
            fs::OpenOptions::new().append(true).open(scratch.0.join(HITS_LOG)).unwrap();
        journal.write_all(format!("{}\n", legacy.to_hex()).as_bytes()).unwrap();
        drop(journal);
        assert_eq!(store.hit_count(), 2);
        assert_eq!(store.last_uses().get(&legacy), Some(&0));
    }

    #[test]
    fn compaction_keeps_one_last_hit_line_per_fingerprint() {
        let scratch = Scratch::new("compact");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(1), &payload(1.0)).unwrap();
        store.put(&key(2), &payload(2.0)).unwrap();
        for _ in 0..5 {
            store.get(&key(1)).unwrap();
            store.get(&key(2)).unwrap();
        }
        let uses_before = store.last_uses();
        assert_eq!(store.hit_count(), 10);
        let dropped = store.compact_hits_log().unwrap();
        assert_eq!(dropped, 8);
        assert_eq!(store.hit_count(), 2);
        // Compaction preserved exactly the information eviction needs.
        assert_eq!(store.last_uses(), uses_before);
    }

    #[test]
    fn open_compacts_an_oversized_journal() {
        let scratch = Scratch::new("autocompact");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(1), &payload(1.0)).unwrap();
        let fp = Fingerprint::of_value(&key(1));
        let mut bloated = String::new();
        for i in 0..=HITS_COMPACT_THRESHOLD {
            bloated.push_str(&format!("{} {}\n", fp.to_hex(), 1_000_000 + i));
        }
        fs::write(scratch.0.join(HITS_LOG), bloated.as_bytes()).unwrap();
        let reopened = ResultStore::open(&scratch.0).unwrap();
        assert_eq!(reopened.hit_count(), 1);
        assert_eq!(
            reopened.last_uses().get(&fp),
            Some(&(1_000_000 + HITS_COMPACT_THRESHOLD as u64)),
            "compaction kept the newest timestamp"
        );
    }

    #[test]
    fn evict_lru_drops_the_least_recently_used_first() {
        let scratch = Scratch::new("lru");
        let store = ResultStore::open(&scratch.0).unwrap();
        for n in 1..=3 {
            store.put(&key(n), &payload(n as f64)).unwrap();
        }
        // Journal future-dated hits so they dominate the (just-now) file
        // mtimes: key 2 is hottest, key 3 warm, key 1 never re-read (LRU).
        let future = unix_now() + 1000;
        let mut journal = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(scratch.0.join(HITS_LOG))
            .unwrap();
        journal
            .write_all(
                format!(
                    "{} {}\n{} {}\n",
                    Fingerprint::of_value(&key(3)).to_hex(),
                    future,
                    Fingerprint::of_value(&key(2)).to_hex(),
                    future + 100,
                )
                .as_bytes(),
            )
            .unwrap();
        drop(journal);
        let total: u64 = store.entries().iter().map(|info| info.bytes).sum();
        let evicted = store.evict_lru(total - 1).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].fingerprint, Fingerprint::of_value(&key(1)));
        // Evicting to zero clears everything, hottest last.
        let evicted = store.evict_lru(0).unwrap();
        assert_eq!(
            evicted.iter().map(|info| info.fingerprint).collect::<Vec<_>>(),
            vec![Fingerprint::of_value(&key(3)), Fingerprint::of_value(&key(2))]
        );
        assert!(store.entries().is_empty());
        // An empty store under any cap evicts nothing.
        assert!(store.evict_lru(0).unwrap().is_empty());
    }

    #[test]
    fn evict_older_than_uses_journal_over_mtime() {
        let scratch = Scratch::new("older");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(1), &payload(1.0)).unwrap();
        store.put(&key(2), &payload(2.0)).unwrap();
        let future = unix_now() + 1000;
        let mut journal = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(scratch.0.join(HITS_LOG))
            .unwrap();
        journal
            .write_all(
                format!("{} {}\n", Fingerprint::of_value(&key(2)).to_hex(), future).as_bytes(),
            )
            .unwrap();
        drop(journal);
        // Cutoff between "now" (key 1's mtime) and key 2's journaled hit.
        let evicted = store.evict_older_than(unix_now() + 500).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].fingerprint, Fingerprint::of_value(&key(1)));
        assert_eq!(store.entries().len(), 1);
    }

    #[test]
    fn claims_are_exclusive_until_released() {
        let scratch = Scratch::new("claims");
        let store = ResultStore::open(&scratch.0).unwrap();
        let fp = Fingerprint::of_value(&key(1));
        assert_eq!(store.try_claim(fp).unwrap(), ClaimOutcome::Acquired);
        match store.try_claim(fp).unwrap() {
            ClaimOutcome::Held(Some(info)) => {
                assert_eq!(info.pid, std::process::id());
                assert_eq!(info.host, hostname());
                assert!(!claim_is_stale(&info, 60), "own live claim is not stale");
            }
            other => panic!("expected Held(Some(..)), got {other:?}"),
        }
        assert_eq!(store.claims().len(), 1);
        assert!(store.release_claim(fp).unwrap());
        assert!(!store.release_claim(fp).unwrap());
        assert_eq!(store.try_claim(fp).unwrap(), ClaimOutcome::Acquired);
    }

    #[test]
    fn stale_claims_age_out_or_die_with_their_pid() {
        let aged = ClaimInfo {
            pid: std::process::id(),
            host: hostname(),
            since_unix: unix_now().saturating_sub(100),
        };
        assert!(claim_is_stale(&aged, 50), "old enough claims age out");
        assert!(!claim_is_stale(&aged, 1000), "a live same-host pid keeps a recent claim");
        if Path::new("/proc/self").exists() {
            let dead = ClaimInfo { pid: u32::MAX, host: hostname(), since_unix: unix_now() };
            assert!(claim_is_stale(&dead, 1000), "a dead same-host pid is stale immediately");
        }
        let remote = ClaimInfo {
            pid: u32::MAX,
            host: "elsewhere.invalid".to_string(),
            since_unix: unix_now(),
        };
        assert!(!claim_is_stale(&remote, 1000), "cross-host claims only age out");
    }

    #[test]
    fn takeover_replaces_the_recorded_owner() {
        let scratch = Scratch::new("takeover");
        let store = ResultStore::open(&scratch.0).unwrap();
        let fp = Fingerprint::of_value(&key(1));
        // Plant a foreign claim by hand.
        let path = store.claim_path(fp);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, b"999999@elsewhere.invalid 5\n").unwrap();
        let foreign = store.read_claim(fp).unwrap();
        assert_eq!(foreign.pid, 999_999);
        assert!(claim_is_stale(&foreign, 60), "a claim from unix time 5 has aged out");
        store.takeover_claim(fp).unwrap();
        let ours = store.read_claim(fp).unwrap();
        assert_eq!(ours.pid, std::process::id());
        assert_eq!(ours.host, hostname());
        // A corrupt marker reads as Held(None), never a panic.
        fs::write(&path, b"not a claim line").unwrap();
        assert_eq!(store.try_claim(fp).unwrap(), ClaimOutcome::Held(None));
    }

    #[test]
    fn read_only_stores_never_claim_or_evict() {
        let scratch = Scratch::new("ro-claims");
        let writer = ResultStore::open(&scratch.0).unwrap();
        writer.put(&key(1), &payload(1.0)).unwrap();
        let reader = ResultStore::open_read_only(&scratch.0);
        let fp = Fingerprint::of_value(&key(1));
        assert_eq!(reader.try_claim(fp).unwrap(), ClaimOutcome::Held(None));
        assert!(reader.evict_lru(0).unwrap().is_empty());
        assert!(reader.evict_older_than(u64::MAX).unwrap().is_empty());
        assert_eq!(reader.compact_hits_log().unwrap(), 0);
        assert_eq!(writer.entries().len(), 1, "nothing was evicted");
    }

    #[test]
    fn byte_sizes_parse_with_binary_suffixes() {
        assert_eq!(parse_byte_size("0"), Some(0));
        assert_eq!(parse_byte_size("4096"), Some(4096));
        assert_eq!(parse_byte_size("900k"), Some(900 * 1024));
        assert_eq!(parse_byte_size(" 2M "), Some(2 * 1024 * 1024));
        assert_eq!(parse_byte_size("1g"), Some(1 << 30));
        assert_eq!(parse_byte_size(""), None);
        assert_eq!(parse_byte_size("k"), None);
        assert_eq!(parse_byte_size("12q"), None);
        assert_eq!(parse_byte_size("-5"), None);
    }
}
