//! The on-disk content-addressed store.
//!
//! Layout: every entry is one file under the store root,
//! `<root>/<first 2 hex digits>/<32 hex digits>.wlcrc`, named by the
//! [`Fingerprint`] of the entry's *key* value. The file carries a magic +
//! format version header, the fingerprint it claims to be stored under, and
//! a checksummed, self-describing payload (key + cached value), so a reader
//! can validate an entry end-to-end without knowing the Rust types behind
//! it.
//!
//! Concurrency and corruption rules:
//!
//! * **writes are atomic**: the entry is written to a temp file in the same
//!   directory and `rename`d into place, so concurrent processes — or a
//!   crash mid-write — can never expose a half-written entry under its final
//!   name;
//! * **reads never trust the file**: magic, version, fingerprint (recomputed
//!   from the stored key), checksum and key equality are all verified; any
//!   mismatch, truncation or decode error is reported as a miss
//!   ([`ResultStore::get`] returns `None`) — a corrupt cache can cost a
//!   recomputation, never a wrong result and never a panic;
//! * **hits are journaled**: each successful `get` appends one line to
//!   `hits.log` (`O_APPEND`, one `write` syscall per line), which is how CI
//!   asserts a warm run was actually served from the cache. The journal is
//!   advisory: corrupt lines are ignored and a read-only store skips it.

use crate::fingerprint::Fingerprint;
use crate::wire::{self, WireError};
use serde::Value;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes opening every entry file.
pub const MAGIC: [u8; 8] = *b"WLCRCSTR";

/// Version of the entry-file layout; bump when the header layout changes.
/// (Invalidation of *results* goes through the fingerprint salt instead.)
pub const FORMAT_VERSION: u8 = wire::WIRE_VERSION;

/// File extension of store entries.
pub const ENTRY_EXTENSION: &str = "wlcrc";

/// Environment variable naming the store directory; when set, the experiment
/// engine caches cell results there.
pub const STORE_ENV: &str = "WLCRC_STORE";

/// Environment variable marking the store read-only (`1`/`true`/`yes`/`on`):
/// hits are served but misses are not written back and no journal is kept.
pub const STORE_READONLY_ENV: &str = "WLCRC_STORE_READONLY";

/// Name of the advisory hit journal inside the store root.
const HITS_LOG: &str = "hits.log";

/// Why a store operation failed. Read-path problems are deliberately *not*
/// errors at the [`ResultStore::get`] level — they surface as misses — but
/// [`ResultStore::verify`] reports them per entry through this type.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O error reading or writing an entry.
    Io(std::io::Error),
    /// The file is too short or missing a section.
    Truncated,
    /// The magic bytes do not match.
    BadMagic,
    /// The format version is not one this build reads.
    UnsupportedVersion(u8),
    /// The payload checksum does not match its bytes.
    ChecksumMismatch,
    /// The payload could not be decoded.
    Wire(WireError),
    /// The payload decoded but is not a `StoreEntry` record.
    MalformedEntry,
    /// The fingerprint recomputed from the stored key does not match the
    /// fingerprint the entry claims (or the filename it sits under).
    FingerprintMismatch,
    /// The stored key is not the requested key (fingerprint collision).
    KeyMismatch,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "i/o error: {err}"),
            StoreError::Truncated => write!(f, "entry truncated"),
            StoreError::BadMagic => write!(f, "bad magic bytes"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StoreError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            StoreError::Wire(err) => write!(f, "payload decode error: {err}"),
            StoreError::MalformedEntry => write!(f, "payload is not a StoreEntry record"),
            StoreError::FingerprintMismatch => write!(f, "fingerprint mismatch"),
            StoreError::KeyMismatch => write!(f, "key mismatch (fingerprint collision)"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> StoreError {
        StoreError::Io(err)
    }
}

/// One decoded store entry: the self-describing key and the cached payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The fingerprint the entry is stored under.
    pub fingerprint: Fingerprint,
    /// The key value the payload was computed from.
    pub key: Value,
    /// The cached payload value.
    pub payload: Value,
}

/// Summary of one on-disk entry, returned by [`ResultStore::entries`].
#[derive(Debug, Clone)]
pub struct EntryInfo {
    /// The fingerprint parsed from the filename.
    pub fingerprint: Fingerprint,
    /// Path of the entry file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
}

/// Outcome of [`ResultStore::verify`].
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Entries that validated end-to-end.
    pub valid: Vec<EntryInfo>,
    /// Entries that failed validation, with the reason.
    pub corrupt: Vec<(EntryInfo, StoreError)>,
}

/// A persistent, content-addressed result store rooted at a directory.
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: PathBuf,
    readonly: bool,
}

impl ResultStore {
    /// Opens (creating if needed) a writable store at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<ResultStore, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ResultStore { root, readonly: false })
    }

    /// Opens a store that serves hits but never writes (no entries, no
    /// journal). The directory does not have to exist; every lookup is then
    /// simply a miss.
    pub fn open_read_only(root: impl Into<PathBuf>) -> ResultStore {
        ResultStore { root: root.into(), readonly: true }
    }

    /// Opens a store at `root`, read-only when asked; a writable store whose
    /// directory cannot be created degrades to read-only rather than
    /// failing — the cache is an accelerator, not a dependency. This is the
    /// one resolution policy shared by [`ResultStore::from_env`] and the
    /// experiment engine.
    pub fn open_or_read_only(root: impl Into<PathBuf>, readonly: bool) -> ResultStore {
        let root = root.into();
        if readonly {
            return ResultStore::open_read_only(root);
        }
        match ResultStore::open(&root) {
            Ok(store) => store,
            Err(_) => ResultStore::open_read_only(root),
        }
    }

    /// Opens the store named by `WLCRC_STORE` / `WLCRC_STORE_READONLY`, if
    /// set.
    pub fn from_env() -> Option<ResultStore> {
        let root = std::env::var_os(STORE_ENV)?;
        if root.is_empty() {
            return None;
        }
        Some(ResultStore::open_or_read_only(PathBuf::from(root), readonly_from_env()))
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `true` when the store never writes.
    pub fn is_read_only(&self) -> bool {
        self.readonly
    }

    /// The path an entry for `fingerprint` would live at.
    pub fn entry_path(&self, fingerprint: Fingerprint) -> PathBuf {
        let hex = fingerprint.to_hex();
        self.root.join(&hex[..2]).join(format!("{hex}.{ENTRY_EXTENSION}"))
    }

    /// Looks up the payload cached under `key`. Any read problem — a missing
    /// entry, a truncated or tampered file, a foreign format, even a
    /// fingerprint collision — is a miss, never an error. A hit is appended
    /// to the journal unless the store is read-only.
    pub fn get(&self, key: &Value) -> Option<Value> {
        let fingerprint = Fingerprint::of_value(key);
        let entry = self.read_entry(fingerprint).ok()?;
        if &entry.key != key {
            return None;
        }
        if !self.readonly {
            self.journal_hit(fingerprint);
        }
        Some(entry.payload)
    }

    /// Stores `payload` under `key`, atomically (tmp file + rename). In a
    /// read-only store this is a no-op returning `Ok(false)`.
    pub fn put(&self, key: &Value, payload: &Value) -> Result<bool, StoreError> {
        if self.readonly {
            return Ok(false);
        }
        let fingerprint = Fingerprint::of_value(key);
        let entry_value = Value::Record {
            name: "StoreEntry".to_string(),
            fields: vec![
                ("key".to_string(), key.clone()),
                ("payload".to_string(), payload.clone()),
            ],
        };
        let payload_bytes = wire::encode(&entry_value);
        let mut file_bytes =
            Vec::with_capacity(MAGIC.len() + 1 + 16 + 4 + payload_bytes.len() + 16);
        file_bytes.extend_from_slice(&MAGIC);
        file_bytes.push(FORMAT_VERSION);
        file_bytes.extend_from_slice(&fingerprint.0.to_be_bytes());
        file_bytes.extend_from_slice(
            &u32::try_from(payload_bytes.len()).expect("payload fits u32").to_le_bytes(),
        );
        file_bytes.extend_from_slice(&payload_bytes);
        file_bytes.extend_from_slice(&Fingerprint::of_bytes(&payload_bytes).0.to_be_bytes());

        let path = self.entry_path(fingerprint);
        let dir = path.parent().expect("entry path has a shard directory");
        fs::create_dir_all(dir)?;
        // The temp file lives in the final directory so the rename cannot
        // cross filesystems; the name is per-process so concurrent writers
        // of the same entry race only at the (atomic) rename.
        let tmp = dir.join(format!(".tmp-{}-{}", std::process::id(), fingerprint.to_hex()));
        fs::write(&tmp, &file_bytes)?;
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(true),
            Err(err) => {
                let _ = fs::remove_file(&tmp);
                Err(err.into())
            }
        }
    }

    /// Reads and fully validates the entry stored under `fingerprint`.
    pub fn read_entry(&self, fingerprint: Fingerprint) -> Result<Entry, StoreError> {
        let entry = read_entry_file(&self.entry_path(fingerprint))?;
        if entry.fingerprint != fingerprint {
            return Err(StoreError::FingerprintMismatch);
        }
        Ok(entry)
    }

    /// Deletes the entry stored under `fingerprint`, returning whether one
    /// existed. No-op in a read-only store.
    pub fn evict(&self, fingerprint: Fingerprint) -> Result<bool, StoreError> {
        if self.readonly {
            return Ok(false);
        }
        match fs::remove_file(self.entry_path(fingerprint)) {
            Ok(()) => Ok(true),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(err) => Err(err.into()),
        }
    }

    /// Lists the on-disk entries (existence only — contents unvalidated),
    /// sorted by fingerprint for deterministic output.
    pub fn entries(&self) -> Vec<EntryInfo> {
        let mut out = Vec::new();
        let Ok(shards) = fs::read_dir(&self.root) else {
            return out;
        };
        for shard in shards.flatten() {
            let Ok(files) = fs::read_dir(shard.path()) else {
                continue;
            };
            for file in files.flatten() {
                let path = file.path();
                let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                    continue;
                };
                if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXTENSION) {
                    continue;
                }
                let Some(fingerprint) = Fingerprint::from_hex(stem) else {
                    continue;
                };
                let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
                out.push(EntryInfo { fingerprint, path, bytes });
            }
        }
        out.sort_by_key(|info| info.fingerprint);
        out
    }

    /// Validates every on-disk entry end-to-end.
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport::default();
        for info in self.entries() {
            match read_entry_file(&info.path) {
                Ok(entry) if entry.fingerprint == info.fingerprint => report.valid.push(info),
                Ok(_) => report.corrupt.push((info, StoreError::FingerprintMismatch)),
                Err(err) => report.corrupt.push((info, err)),
            }
        }
        report
    }

    /// Number of journaled cache hits over the store's lifetime.
    pub fn hit_count(&self) -> u64 {
        let Ok(journal) = fs::read_to_string(self.root.join(HITS_LOG)) else {
            return 0;
        };
        journal.lines().filter(|line| Fingerprint::from_hex(line.trim()).is_some()).count() as u64
    }

    /// Appends a hit to the advisory journal; failures are ignored (the
    /// journal must never turn a cache hit into a run failure).
    fn journal_hit(&self, fingerprint: Fingerprint) {
        let Ok(mut file) =
            fs::OpenOptions::new().create(true).append(true).open(self.root.join(HITS_LOG))
        else {
            return;
        };
        // One write_all of the full line: under O_APPEND the line lands
        // atomically, so concurrent processes cannot interleave hex and
        // newline fragments (writeln! would issue separate writes).
        let _ = file.write_all(format!("{}\n", fingerprint.to_hex()).as_bytes());
    }
}

/// Whether `WLCRC_STORE_READONLY` currently marks stores read-only.
pub fn readonly_from_env() -> bool {
    std::env::var(STORE_READONLY_ENV).is_ok_and(|v| {
        let v = v.trim();
        ["1", "true", "yes", "on"].iter().any(|accepted| v.eq_ignore_ascii_case(accepted))
    })
}

/// Parses one entry file: magic, version, claimed fingerprint, length-checked
/// payload, checksum, decode, and fingerprint-of-key revalidation.
fn read_entry_file(path: &Path) -> Result<Entry, StoreError> {
    let bytes = fs::read(path)?;
    let header_len = MAGIC.len() + 1 + 16 + 4;
    if bytes.len() < header_len + 16 {
        return Err(StoreError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = bytes[MAGIC.len()];
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let claimed = Fingerprint(u128::from_be_bytes(
        bytes[MAGIC.len() + 1..MAGIC.len() + 17].try_into().expect("16 bytes"),
    ));
    let payload_len =
        u32::from_le_bytes(bytes[MAGIC.len() + 17..header_len].try_into().expect("4 bytes"))
            as usize;
    let payload_end = header_len.checked_add(payload_len).ok_or(StoreError::Truncated)?;
    if payload_end + 16 != bytes.len() {
        return Err(StoreError::Truncated);
    }
    let payload_bytes = &bytes[header_len..payload_end];
    let checksum =
        Fingerprint(u128::from_be_bytes(bytes[payload_end..].try_into().expect("16 bytes")));
    if Fingerprint::of_bytes(payload_bytes) != checksum {
        return Err(StoreError::ChecksumMismatch);
    }
    let entry_value = wire::decode(payload_bytes).map_err(StoreError::Wire)?;
    let record = entry_value.as_record("StoreEntry").map_err(|_| StoreError::MalformedEntry)?;
    let key = record.raw("key").ok_or(StoreError::MalformedEntry)?.clone();
    let payload = record.raw("payload").ok_or(StoreError::MalformedEntry)?.clone();
    if Fingerprint::of_value(&key) != claimed {
        return Err(StoreError::FingerprintMismatch);
    }
    Ok(Entry { fingerprint: claimed, key, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A scratch directory removed on drop; unique per test without any
    /// external tempdir dependency.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "wlcrc-store-test-{}-{}-{}",
                std::process::id(),
                tag,
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&path);
            Scratch(path)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn key(n: u64) -> Value {
        Value::record("Key", vec![("n", Value::U64(n)), ("tag", Value::Str("t".into()))])
    }

    fn payload(x: f64) -> Value {
        Value::record("Payload", vec![("energy", Value::F64(x))])
    }

    #[test]
    fn put_then_get_round_trips() {
        let scratch = Scratch::new("roundtrip");
        let store = ResultStore::open(&scratch.0).unwrap();
        assert_eq!(store.get(&key(1)), None);
        assert!(store.put(&key(1), &payload(42.5)).unwrap());
        assert_eq!(store.get(&key(1)), Some(payload(42.5)));
        assert_eq!(store.get(&key(2)), None);
        assert_eq!(store.entries().len(), 1);
        assert_eq!(store.hit_count(), 1);
    }

    #[test]
    fn overwrite_replaces_the_payload() {
        let scratch = Scratch::new("overwrite");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(1), &payload(1.0)).unwrap();
        store.put(&key(1), &payload(2.0)).unwrap();
        assert_eq!(store.get(&key(1)), Some(payload(2.0)));
        assert_eq!(store.entries().len(), 1);
    }

    #[test]
    fn read_only_store_serves_hits_but_never_writes() {
        let scratch = Scratch::new("readonly");
        let writer = ResultStore::open(&scratch.0).unwrap();
        writer.put(&key(1), &payload(7.0)).unwrap();
        let hits_before = writer.hit_count();
        let reader = ResultStore::open_read_only(&scratch.0);
        assert_eq!(reader.get(&key(1)), Some(payload(7.0)));
        assert!(!reader.put(&key(2), &payload(8.0)).unwrap());
        assert_eq!(reader.get(&key(2)), None);
        assert_eq!(reader.entries().len(), 1);
        // The read-only hit was not journaled.
        assert_eq!(writer.hit_count(), hits_before);
    }

    #[test]
    fn truncation_and_tampering_read_as_misses() {
        let scratch = Scratch::new("corrupt");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(3), &payload(9.0)).unwrap();
        let path = store.entry_path(Fingerprint::of_value(&key(3)));
        let original = fs::read(&path).unwrap();

        // Every truncation point is a miss, not a panic.
        for cut in [0, 5, MAGIC.len() + 1, original.len() / 2, original.len() - 1] {
            fs::write(&path, &original[..cut]).unwrap();
            assert_eq!(store.get(&key(3)), None, "truncation at {cut}");
        }
        // Every single-byte flip is a miss.
        for i in 0..original.len() {
            let mut tampered = original.clone();
            tampered[i] ^= 0x40;
            fs::write(&path, &tampered).unwrap();
            assert_eq!(store.get(&key(3)), None, "flip at byte {i}");
        }
        // Restoring the original bytes restores the hit.
        fs::write(&path, &original).unwrap();
        assert_eq!(store.get(&key(3)), Some(payload(9.0)));
        // And a corrupt entry can simply be rewritten.
        fs::write(&path, b"garbage").unwrap();
        assert!(store.put(&key(3), &payload(9.0)).unwrap());
        assert_eq!(store.get(&key(3)), Some(payload(9.0)));
    }

    #[test]
    fn verify_separates_valid_from_corrupt() {
        let scratch = Scratch::new("verify");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(1), &payload(1.0)).unwrap();
        store.put(&key(2), &payload(2.0)).unwrap();
        let victim = store.entry_path(Fingerprint::of_value(&key(2)));
        let mut bytes = fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&victim, &bytes).unwrap();
        let report = store.verify();
        assert_eq!(report.valid.len(), 1);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0].0.fingerprint, Fingerprint::of_value(&key(2)));
    }

    #[test]
    fn evict_removes_entries() {
        let scratch = Scratch::new("evict");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(1), &payload(1.0)).unwrap();
        let fp = Fingerprint::of_value(&key(1));
        assert!(store.evict(fp).unwrap());
        assert!(!store.evict(fp).unwrap());
        assert_eq!(store.get(&key(1)), None);
        assert!(store.entries().is_empty());
    }

    #[test]
    fn entry_under_wrong_filename_is_rejected() {
        let scratch = Scratch::new("misfiled");
        let store = ResultStore::open(&scratch.0).unwrap();
        store.put(&key(1), &payload(1.0)).unwrap();
        let from = store.entry_path(Fingerprint::of_value(&key(1)));
        let to = store.entry_path(Fingerprint::of_value(&key(2)));
        fs::create_dir_all(to.parent().unwrap()).unwrap();
        fs::rename(&from, &to).unwrap();
        // The key-2 lookup finds a file whose content was stored for key 1:
        // the recomputed fingerprint exposes the mismatch.
        assert_eq!(store.get(&key(2)), None);
        assert_eq!(store.get(&key(1)), None);
    }

    #[test]
    fn from_env_is_disabled_without_the_variable() {
        // The test runner may set WLCRC_STORE for child processes it spawns,
        // but within this process the variable is controlled here.
        std::env::remove_var(STORE_ENV);
        assert!(ResultStore::from_env().is_none());
    }
}
