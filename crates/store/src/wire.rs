//! The store's versioned, self-describing wire format.
//!
//! A [`Value`] tree is encoded as a tagged byte stream: every node starts
//! with a one-byte tag, integers and float bit patterns are fixed-width
//! little-endian, and strings/sequences carry explicit lengths. Because
//! records and variants embed their type, field and variant *names*, an
//! encoded tree can be decoded, rendered and compared without access to the
//! Rust types that produced it — this is what lets `storectl inspect` print
//! any entry and lets the store reject a hash collision by comparing keys.
//!
//! Floats are encoded via [`f64::to_bits`], so every value — including NaN
//! payloads and signed zeros — round-trips bit-exactly; the experiment
//! engine's byte-identical-results guarantee depends on this.
//!
//! Decoding is **corruption-tolerant**: every length is validated against
//! the remaining input before any allocation, unknown tags and trailing
//! garbage are errors, and no input can cause a panic or an oversized
//! allocation. Callers treat any [`WireError`] as a cache miss.

use serde::Value;
use std::fmt;

/// Version byte of the wire encoding itself; bump when the byte layout of
/// tags changes. (Schema evolution of the *records* is handled by the
/// fingerprint salt, not by this byte.)
pub const WIRE_VERSION: u8 = 1;

const TAG_UNIT: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_U64: u8 = 0x03;
const TAG_I64: u8 = 0x04;
const TAG_F64: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_BYTES: u8 = 0x07;
const TAG_SEQ: u8 = 0x08;
const TAG_RECORD: u8 = 0x09;
const TAG_VARIANT: u8 = 0x0A;

/// Maximum nesting depth [`decode`] accepts. Real records nest a handful of
/// levels (entry → key → config → model); the cap exists so a crafted
/// payload of nested sequence tags errors out instead of overflowing the
/// decoder's stack — corrupt input must never crash the process.
pub const MAX_DEPTH: usize = 64;

/// Why a byte stream could not be decoded into a [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Truncated,
    /// A length prefix exceeded the remaining input.
    LengthOutOfBounds,
    /// An unknown tag byte was encountered.
    UnknownTag(u8),
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// Bytes remained after the root value was decoded.
    TrailingBytes,
    /// Values nested deeper than [`MAX_DEPTH`].
    TooDeep,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::LengthOutOfBounds => write!(f, "length prefix exceeds input"),
            WireError::UnknownTag(tag) => write!(f, "unknown tag byte {tag:#04x}"),
            WireError::InvalidUtf8 => write!(f, "string is not valid UTF-8"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
            WireError::TooDeep => write!(f, "values nested deeper than {MAX_DEPTH}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a value tree into bytes.
pub fn encode(value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(value, &mut out);
    out
}

fn encode_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Unit => out.push(TAG_UNIT),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::U64(n) => {
            out.push(TAG_U64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::I64(n) => {
            out.push(TAG_I64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(TAG_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            encode_len(s.len(), out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            encode_len(b.len(), out);
            out.extend_from_slice(b);
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            encode_len(items.len(), out);
            for item in items {
                encode_into(item, out);
            }
        }
        Value::Record { name, fields } => {
            out.push(TAG_RECORD);
            encode_str(name, out);
            encode_len(fields.len(), out);
            for (field, value) in fields {
                encode_str(field, out);
                encode_into(value, out);
            }
        }
        Value::Variant { enum_name, variant } => {
            out.push(TAG_VARIANT);
            encode_str(enum_name, out);
            encode_str(variant, out);
        }
    }
}

fn encode_len(len: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&u32::try_from(len).expect("length fits u32").to_le_bytes());
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    encode_len(s.len(), out);
    out.extend_from_slice(s.as_bytes());
}

/// Decodes a byte stream produced by [`encode`], rejecting trailing bytes.
pub fn decode(bytes: &[u8]) -> Result<Value, WireError> {
    let mut reader = Reader { bytes, pos: 0 };
    let value = reader.value(0)?;
    if reader.pos != bytes.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(value)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::LengthOutOfBounds)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn byte(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a length prefix, validated against the remaining input so a
    /// corrupt length can never trigger an oversized allocation.
    fn len(&mut self) -> Result<usize, WireError> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")) as usize;
        if len > self.bytes.len() - self.pos {
            return Err(WireError::LengthOutOfBounds);
        }
        Ok(len)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }

    fn value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth >= MAX_DEPTH {
            return Err(WireError::TooDeep);
        }
        match self.byte()? {
            TAG_UNIT => Ok(Value::Unit),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_U64 => Ok(Value::U64(self.u64()?)),
            TAG_I64 => Ok(Value::I64(self.u64()? as i64)),
            TAG_F64 => Ok(Value::F64(f64::from_bits(self.u64()?))),
            TAG_STR => Ok(Value::Str(self.string()?)),
            TAG_BYTES => {
                let len = self.len()?;
                Ok(Value::Bytes(self.take(len)?.to_vec()))
            }
            TAG_SEQ => {
                // Each item is at least one tag byte, so `len` (validated
                // against the remaining input) bounds the allocation.
                let len = self.len()?;
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Seq(items))
            }
            TAG_RECORD => {
                let name = self.string()?;
                let len = self.len()?;
                let mut fields = Vec::with_capacity(len);
                for _ in 0..len {
                    let field = self.string()?;
                    fields.push((field, self.value(depth + 1)?));
                }
                Ok(Value::Record { name, fields })
            }
            TAG_VARIANT => {
                let enum_name = self.string()?;
                let variant = self.string()?;
                Ok(Value::Variant { enum_name, variant })
            }
            tag => Err(WireError::UnknownTag(tag)),
        }
    }
}

/// Renders a value tree as indented text, used by `storectl inspect`.
pub fn render(value: &Value) -> String {
    let mut out = String::new();
    render_into(value, 0, &mut out);
    out
}

fn render_into(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Value::Unit => out.push_str("()"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&format!("{x:?}")),
        Value::Str(s) => out.push_str(&format!("{s:?}")),
        Value::Bytes(b) => out.push_str(&format!("{} bytes", b.len())),
        Value::Seq(items) => {
            if items.len() > 16 {
                out.push_str(&format!("[{} items]", items.len()));
            } else {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_into(item, indent, out);
                }
                out.push(']');
            }
        }
        Value::Record { name, fields } => {
            out.push_str(&format!("{name} {{\n"));
            for (field, value) in fields {
                out.push_str(&format!("{pad}  {field}: "));
                render_into(value, indent + 1, out);
                out.push('\n');
            }
            out.push_str(&format!("{pad}}}"));
        }
        Value::Variant { enum_name, variant } => {
            out.push_str(&format!("{enum_name}::{variant}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::record(
            "Sample",
            vec![
                ("unit", Value::Unit),
                ("flag", Value::Bool(true)),
                ("count", Value::U64(u64::MAX)),
                ("delta", Value::I64(-12)),
                ("energy", Value::F64(1234.5678)),
                ("nan", Value::F64(f64::NAN)),
                ("neg_zero", Value::F64(-0.0)),
                ("name", Value::Str("wlcrc".to_string())),
                ("blob", Value::Bytes(vec![0, 1, 2, 255])),
                ("seq", Value::Seq(vec![Value::U64(1), Value::Str("x".to_string())])),
                ("kind", Value::unit_variant("Kind", "Fast")),
            ],
        )
    }

    #[test]
    fn round_trips_every_variant() {
        let value = sample();
        let bytes = encode(&value);
        assert_eq!(decode(&bytes).unwrap(), value);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for bits in [0u64, 1, f64::NAN.to_bits(), (-0.0f64).to_bits(), 0x7FF0_0000_0000_0001] {
            let value = Value::F64(f64::from_bits(bits));
            match decode(&encode(&value)).unwrap() {
                Value::F64(x) => assert_eq!(x.to_bits(), bits),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn every_single_byte_flip_fails_or_decodes_without_panic() {
        // Bit flips may still decode to a *different* valid tree (payload
        // bytes are not self-checking at this layer — the store's checksum
        // catches that); the wire layer only guarantees no panic and no
        // oversized allocation.
        let bytes = encode(&sample());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xA5;
            let _ = decode(&corrupt);
        }
    }

    #[test]
    fn corrupt_length_prefixes_are_rejected() {
        let mut bytes = encode(&Value::Str("hello".to_string()));
        // Inflate the length prefix far past the input size.
        bytes[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&bytes), Err(WireError::LengthOutOfBounds));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&Value::Unit);
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert_eq!(decode(&[0x7F]), Err(WireError::UnknownTag(0x7F)));
        assert_eq!(decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // A hand-crafted payload of 100k nested single-element sequences: a
        // checksummed-but-hostile entry must produce an error, not a crash.
        let depth = 100_000;
        let mut bytes = Vec::with_capacity(depth * 5 + 1);
        for _ in 0..depth {
            bytes.push(0x08); // TAG_SEQ
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        bytes.push(0x00); // TAG_UNIT
        assert_eq!(decode(&bytes), Err(WireError::TooDeep));
        // Legitimate nesting below the cap still decodes.
        let mut value = Value::Unit;
        for _ in 0..MAX_DEPTH - 1 {
            value = Value::Seq(vec![value]);
        }
        assert_eq!(decode(&encode(&value)).unwrap(), value);
    }

    #[test]
    fn render_is_readable() {
        let text = render(&sample());
        assert!(text.contains("Sample {"));
        assert!(text.contains("count: 18446744073709551615"));
        assert!(text.contains("kind: Kind::Fast"));
    }
}
