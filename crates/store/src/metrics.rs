//! Store metrics, registered in the process-global `wlcrc_obs` registry.
//!
//! Handles are resolved once (first use) and then updated lock-free from
//! the store's read/write paths. Because they live in the global registry,
//! any scrape surface in the same process — the serve metrics endpoint,
//! `storectl stats --latency` — sees them under the `wlcrc_store_*`
//! families without plumbing.

use std::sync::LazyLock;

use wlcrc_obs::{Counter, Histogram};

/// The store's counter and latency-histogram handles.
///
/// Counters are process-wide totals across every [`crate::ResultStore`]
/// instance (stores are usually one-per-process; multi-store processes see
/// the sum, which is the right thing for a scrape).
pub struct StoreMetrics {
    /// Entry reads attempted (`read_entry`), hits and misses alike.
    pub reads: &'static Counter,
    /// Entries written durably (`put` that completed its rename).
    pub writes: &'static Counter,
    /// `get` lookups that validated and returned a payload.
    pub hits: &'static Counter,
    /// `get` lookups that missed (absent, corrupt, or key mismatch).
    pub misses: &'static Counter,
    /// Entries deleted via `evict` (including LRU/age sweeps).
    pub evictions: &'static Counter,
    /// Entries moved to the quarantine directory.
    pub quarantined: &'static Counter,
    /// Latency of entry reads (open + validate), seconds.
    pub read_seconds: &'static Histogram,
    /// Latency of durable entry writes (encode + write + rename), seconds.
    pub write_seconds: &'static Histogram,
}

/// The store's metric handles (find-or-create on first call).
pub fn metrics() -> &'static StoreMetrics {
    static METRICS: LazyLock<StoreMetrics> = LazyLock::new(|| {
        let registry = wlcrc_obs::registry();
        StoreMetrics {
            reads: registry.counter("wlcrc_store_reads_total"),
            writes: registry.counter("wlcrc_store_writes_total"),
            hits: registry.counter("wlcrc_store_hits_total"),
            misses: registry.counter("wlcrc_store_misses_total"),
            evictions: registry.counter("wlcrc_store_evictions_total"),
            quarantined: registry.counter("wlcrc_store_quarantined_total"),
            read_seconds: registry.histogram("wlcrc_store_read_seconds"),
            write_seconds: registry.histogram("wlcrc_store_write_seconds"),
        }
    });
    &METRICS
}
