//! `wlcrc_store` — a persistent, content-addressed result store.
//!
//! The experiment engine (`wlcrc_memsim::ExperimentPlan`) simulates grids of
//! (scheme × workload × config × seed) cells whose results are pure
//! functions of their inputs. This crate caches those results *across
//! processes*: a cell's inputs are serialized into a self-describing key
//! [`Value`](serde::Value), hashed to a stable 128-bit [`Fingerprint`], and
//! the cell's result is stored in a file addressed by that fingerprint. Any
//! later run — another figure binary, a CI job, a perfsnap — that derives
//! the same key is served the recorded result instead of re-simulating.
//!
//! The crate is deliberately generic: it stores [`Value`] trees, not
//! simulator types, so it sits below `wlcrc_trace`/`wlcrc_memsim` in the
//! dependency graph and `storectl` can inspect any entry without the
//! producing code. The typed layer (cell keys, `SchemeStats` payloads) lives
//! in `wlcrc_memsim::cache`.
//!
//! Module map:
//!
//! * [`wire`] — the versioned, self-describing byte format (bit-exact f64s,
//!   corruption-tolerant decoding);
//! * [`fingerprint`] — stable FNV-1a-128 content hashing;
//! * [`store`] — the on-disk store: atomic writes, validated reads, hit
//!   journal (timestamped + self-compacting), list/evict/verify, LRU
//!   eviction, corrupt-entry quarantine + `fsck` repair, and the claim
//!   markers multi-process grid runners coordinate through. Fault sites
//!   ([`store::FAULT_TORN_WRITE`], [`store::FAULT_READ_CORRUPT`]) let chaos
//!   tests inject torn writes and media corruption deterministically via
//!   `wlcrc_faults`;
//! * [`metrics`] — read/write/hit/miss/evict/quarantine counters and
//!   read/write latency histograms, published through the process-global
//!   `wlcrc_obs` registry (scraped by serve, printed by
//!   `storectl stats --latency`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod metrics;
pub mod store;
pub mod wire;

pub use fingerprint::{Fingerprint, StableHasher};
pub use metrics::{metrics, StoreMetrics};
pub use store::{
    claim_is_stale, parse_byte_size, readonly_from_env, ClaimInfo, ClaimOutcome, Entry, EntryInfo,
    FsckReport, ResultStore, StoreError, VerifyReport, FAULT_READ_CORRUPT, FAULT_TORN_WRITE,
    FORMAT_VERSION, HITS_COMPACT_THRESHOLD, MAX_BYTES_ENV, STORE_ENV, STORE_READONLY_ENV,
};
pub use wire::{WireError, WIRE_VERSION};
