//! Fault-injected store behavior: torn writes and media corruption read as
//! misses, corrupt entries are quarantined, and `fsck` repairs the damage.
//!
//! These live in their own integration-test binary because the
//! `wlcrc_faults` plan is process-global: configuring a torn-write fault
//! here must not tear writes in unrelated unit tests. Within this binary the
//! tests serialise on a lock and clear the plan when done.

use serde::Value;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use wlcrc_store::{Fingerprint, ResultStore, FAULT_READ_CORRUPT, FAULT_TORN_WRITE};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn exclusive_faults() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "wlcrc-store-faults-{}-{}-{}",
            std::process::id(),
            tag,
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn key(n: u64) -> Value {
    Value::record("Key", vec![("n", Value::U64(n))])
}

fn payload(x: f64) -> Value {
    Value::record("Payload", vec![("energy", Value::F64(x))])
}

#[test]
fn torn_write_fault_is_a_miss_and_fsck_quarantines_it() {
    let _guard = exclusive_faults();
    let scratch = Scratch::new("torn");
    let store = ResultStore::open(&scratch.0).unwrap();

    // Tear exactly the second write: entry 1 lands clean, entry 2 torn.
    wlcrc_faults::configure(&format!("seed=1;{FAULT_TORN_WRITE}=@2")).unwrap();
    assert!(store.put(&key(1), &payload(1.0)).unwrap());
    assert!(store.put(&key(2), &payload(2.0)).unwrap());
    assert_eq!(wlcrc_faults::fired_count(FAULT_TORN_WRITE), 1, "the schedule tore one write");
    wlcrc_faults::clear();

    // The torn entry exists on disk but never serves a payload.
    assert_eq!(store.entries().len(), 2);
    assert_eq!(store.get(&key(1)), Some(payload(1.0)));
    assert_eq!(store.get(&key(2)), None);

    // The failed read already quarantined the corpse; fsck confirms a clean
    // store and the quarantine preserves the evidence.
    let report = store.fsck(60).unwrap();
    assert!(report.quarantined.is_empty(), "get already moved the torn entry aside");
    assert_eq!(report.valid, 1);
    assert_eq!(store.quarantined().len(), 1);
    assert_eq!(store.quarantined()[0].fingerprint, Fingerprint::of_value(&key(2)));

    // Re-deriving (re-putting) the entry restores the hit.
    assert!(store.put(&key(2), &payload(2.0)).unwrap());
    assert_eq!(store.get(&key(2)), Some(payload(2.0)));
    assert!(store.fsck(60).unwrap().clean());
}

#[test]
fn read_corruption_fault_never_yields_a_wrong_payload() {
    let _guard = exclusive_faults();
    let scratch = Scratch::new("readcorrupt");
    let store = ResultStore::open(&scratch.0).unwrap();
    store.put(&key(7), &payload(7.5)).unwrap();

    // Every read for a while sees one flipped byte; each must be a miss (or,
    // vanishingly unlikely for a 1-byte flip, a validated identical entry) —
    // never a different payload.
    wlcrc_faults::configure(&format!("seed=3;{FAULT_READ_CORRUPT}=1.0")).unwrap();
    let first = store.get(&key(7));
    assert!(wlcrc_faults::fired_count(FAULT_READ_CORRUPT) >= 1, "corruption was injected");
    wlcrc_faults::clear();
    assert_eq!(first, None, "a flipped byte must not validate");

    // The (actually intact) entry was quarantined on the failed read: the
    // cache recomputes, it never lies.
    assert_eq!(store.quarantined().len(), 1);
    store.put(&key(7), &payload(7.5)).unwrap();
    assert_eq!(store.get(&key(7)), Some(payload(7.5)));
}

#[test]
fn fsck_repairs_journal_tails_stale_claims_and_temp_litter() {
    let _guard = exclusive_faults();
    wlcrc_faults::clear();
    let scratch = Scratch::new("fsck");
    let store = ResultStore::open(&scratch.0).unwrap();
    store.put(&key(1), &payload(1.0)).unwrap();
    store.get(&key(1)).unwrap();

    // A torn journal append: the tail line has no parsable fingerprint.
    let mut journal = fs::OpenOptions::new().append(true).open(scratch.0.join("hits.log")).unwrap();
    journal.write_all(b"deadbeef-not-a-fingerprint 12\ntorn").unwrap();
    drop(journal);

    // A claim whose recorded time has long passed (stale by age).
    let fp = Fingerprint::of_value(&key(2));
    let claim = store.claim_path(fp);
    fs::create_dir_all(claim.parent().unwrap()).unwrap();
    fs::write(&claim, b"999999@elsewhere.invalid 5\n").unwrap();

    // Temp litter from a crashed writer, pre-aged past the staleness cutoff
    // by sleeping across a clock second.
    let tmp = scratch.0.join(".tmp-dead-writer");
    fs::write(&tmp, b"half an entry").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(1100));

    let report = store.fsck(0).unwrap();
    assert!(!report.clean());
    assert_eq!(report.valid, 1);
    assert!(report.quarantined.is_empty());
    assert_eq!(report.dropped_journal_lines, 2);
    assert_eq!(report.cleared_claims, vec![fp]);
    assert_eq!(report.removed_temp_files, 1);

    // The journal survives with its one good line; the claim and litter are
    // gone; a second pass is clean.
    assert_eq!(store.hit_count(), 1);
    assert!(store.claims().is_empty());
    assert!(!tmp.exists());
    assert!(store.fsck(0).unwrap().clean());
}

#[test]
fn readonly_fsck_touches_nothing() {
    let _guard = exclusive_faults();
    wlcrc_faults::clear();
    let scratch = Scratch::new("ro");
    let writer = ResultStore::open(&scratch.0).unwrap();
    writer.put(&key(1), &payload(1.0)).unwrap();
    let path = writer.entry_path(Fingerprint::of_value(&key(1)));
    fs::write(&path, b"garbage").unwrap();

    let reader = ResultStore::open_read_only(&scratch.0);
    assert_eq!(reader.get(&key(1)), None, "corrupt entry is a miss");
    assert!(path.exists(), "read-only stores never quarantine");
    let report = reader.fsck(0).unwrap();
    assert!(report.clean());
    assert!(path.exists());
}
