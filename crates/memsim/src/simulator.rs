//! The trace-driven simulator core.

use crate::memory::MemoryOrganization;
use crate::stats::SchemeStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::config::PcmConfig;
use wlcrc_pcm::disturb::evaluate_disturbance;
use wlcrc_pcm::physical::PhysicalLine;
use wlcrc_pcm::write::differential_write;
use wlcrc_trace::{Trace, WriteRecord};

/// Options controlling a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationOptions {
    /// Seed for the disturbance-sampling RNG.
    pub seed: u64,
    /// When `true`, every write is decoded again and compared with the
    /// original data; mismatches are counted as integrity failures.
    pub verify_integrity: bool,
}

impl Default for SimulationOptions {
    fn default() -> SimulationOptions {
        SimulationOptions { seed: 0xC0DE, verify_integrity: true }
    }
}

/// A trace-driven simulator evaluating one encoding scheme at a time against
/// the stored state of the simulated PCM array.
#[derive(Debug)]
pub struct Simulator {
    config: PcmConfig,
    options: SimulationOptions,
}

impl Simulator {
    /// Creates a simulator with the Table II configuration and default options.
    pub fn new() -> Simulator {
        Simulator { config: PcmConfig::table_ii(), options: SimulationOptions::default() }
    }

    /// Creates a simulator with a custom configuration.
    pub fn with_config(config: PcmConfig) -> Simulator {
        Simulator { config, options: SimulationOptions::default() }
    }

    /// Overrides the simulation options.
    pub fn with_options(mut self, options: SimulationOptions) -> Simulator {
        self.options = options;
        self
    }

    /// The PCM configuration in use.
    pub fn config(&self) -> &PcmConfig {
        &self.config
    }

    /// Runs `codec` over `trace` and returns the aggregated statistics.
    ///
    /// The simulator maintains the physically stored content of every line it
    /// has seen. The first write to an address initialises the stored content
    /// by encoding the record's *old* value (this initialisation write is not
    /// accounted, mirroring how the paper's traces provide the overwritten
    /// value for every transaction).
    pub fn run(&self, codec: &dyn LineCodec, trace: &Trace) -> SchemeStats {
        let mut stats = SchemeStats::new(codec.name(), trace.workload.clone());
        let mut stored: HashMap<u64, PhysicalLine> = HashMap::new();
        let mut organization = MemoryOrganization::new(&self.config);
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let energy = &self.config.energy;

        for record in trace.iter() {
            let old = stored
                .remove(&record.address)
                .unwrap_or_else(|| codec.encode(&record.old, &codec.initial_line(), energy));
            let new = codec.encode(&record.new, &old, energy);
            let outcome = differential_write(&old, &new, energy);
            let disturbance = evaluate_disturbance(&old, &new, &self.config.disturbance, &mut rng);
            let encoded = new.aux_cells() > 0 || codec.encoded_cells() == new.len();
            let integrity_ok =
                if self.options.verify_integrity { codec.decode(&new) == record.new } else { true };
            stats.record(outcome, disturbance, encoded, integrity_ok);
            organization.record_write(record.address);
            stored.insert(record.address, new);
        }
        stats
    }

    /// Runs `codec` over a slice of raw `(old, new)` records without address
    /// tracking: each record is treated as an isolated write whose stored
    /// content is the encoding of the old value. Used by the random-data
    /// studies (Figures 1, 2) where there is no reuse.
    pub fn run_isolated(&self, codec: &dyn LineCodec, records: &[WriteRecord]) -> SchemeStats {
        let mut stats = SchemeStats::new(codec.name(), "isolated");
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let energy = &self.config.energy;
        for record in records {
            let old = codec.encode(&record.old, &codec.initial_line(), energy);
            let new = codec.encode(&record.new, &old, energy);
            let outcome = differential_write(&old, &new, energy);
            let disturbance = evaluate_disturbance(&old, &new, &self.config.disturbance, &mut rng);
            let integrity_ok =
                if self.options.verify_integrity { codec.decode(&new) == record.new } else { true };
            stats.record(outcome, disturbance, true, integrity_ok);
        }
        stats
    }
}

impl Default for Simulator {
    fn default() -> Simulator {
        Simulator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlcrc_pcm::codec::RawCodec;
    use wlcrc_pcm::line::MemoryLine;
    use wlcrc_trace::{Benchmark, TraceGenerator};

    #[test]
    fn identical_rewrite_costs_nothing() {
        let sim = Simulator::new();
        let codec = RawCodec::new();
        let line = MemoryLine::from_words([0xABCD; 8]);
        let mut trace = Trace::new("t");
        trace.push(WriteRecord::new(0, line, line));
        let stats = sim.run(&codec, &trace);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.total_energy_pj(), 0.0);
        assert_eq!(stats.mean_updated_cells(), 0.0);
    }

    #[test]
    fn stored_state_carries_across_writes() {
        // Second write to the same address must be differenced against the
        // first write's content, not against the trace's old value.
        let sim = Simulator::new();
        let codec = RawCodec::new();
        let a = MemoryLine::from_words([1; 8]);
        let b = MemoryLine::from_words([2; 8]);
        let mut trace = Trace::new("t");
        trace.push(WriteRecord::new(0, MemoryLine::ZERO, a));
        trace.push(WriteRecord::new(0, a, a)); // no change
        trace.push(WriteRecord::new(0, a, b));
        let stats = sim.run(&codec, &trace);
        assert_eq!(stats.writes, 3);
        // The middle write must be free.
        assert!(stats.total_energy_pj() > 0.0);
        let baseline_single = {
            let sim2 = Simulator::new();
            let mut t = Trace::new("t2");
            t.push(WriteRecord::new(0, MemoryLine::ZERO, a));
            sim2.run(&codec, &t).total_energy_pj()
        };
        // Energy of the three writes is the energy of write 1 plus write 3
        // (write 2 is free); it must exceed a single write's energy.
        assert!(stats.total_energy_pj() > baseline_single * 0.99);
    }

    #[test]
    fn integrity_is_verified_for_real_traces() {
        let sim = Simulator::new();
        let codec = RawCodec::new();
        let mut generator = TraceGenerator::new(Benchmark::Gcc.profile(), 5);
        let trace = generator.generate(300);
        let stats = sim.run(&codec, &trace);
        assert_eq!(stats.integrity_failures, 0);
        assert_eq!(stats.writes, 300);
        assert!(stats.mean_energy_pj() > 0.0);
    }

    #[test]
    fn isolated_run_matches_record_count() {
        let sim = Simulator::new();
        let codec = RawCodec::new();
        let records: Vec<WriteRecord> = (0..50)
            .map(|i| {
                WriteRecord::new(
                    0,
                    MemoryLine::from_words([i; 8]),
                    MemoryLine::from_words([i + 1; 8]),
                )
            })
            .collect();
        let stats = sim.run_isolated(&codec, &records);
        assert_eq!(stats.writes, 50);
        assert_eq!(stats.integrity_failures, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let codec = RawCodec::new();
        let mut generator = TraceGenerator::new(Benchmark::Mcf.profile(), 9);
        let trace = generator.generate(200);
        let a = Simulator::new().run(&codec, &trace);
        let b = Simulator::new().run(&codec, &trace);
        assert_eq!(a, b);
    }
}
