//! The trace-driven simulator core: a streaming, bank-partitioned pipeline.
//!
//! Records are consumed from any [`TraceSource`] one at a time (peak memory
//! is O(working-set), never O(trace-length)) and routed to a *lane* per
//! memory bank. Each lane owns its stored-line map, its statistics
//! accumulator and its own disturbance-sampling RNG whose seed derives only
//! from `(options.seed, bank index)`. Because writes to different banks are
//! independent in the cost model, the lanes never interact; the final result
//! merges the lane accumulators in ascending bank order.
//!
//! This structure is what makes intra-trace sharding deterministic: a shard
//! worker that processes only the banks with `bank % shards == shard` (see
//! [`Simulator::run_shard`]) computes exactly the lanes the sequential run
//! would have computed, so merging all shards' lanes in bank order is
//! byte-identical to [`Simulator::run`] for any shard count.

use crate::memory::MemoryOrganization;
use crate::stats::SchemeStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::config::PcmConfig;
use wlcrc_pcm::disturb::evaluate_disturbance;
use wlcrc_pcm::physical::PhysicalLine;
use wlcrc_pcm::write::differential_write;
use wlcrc_trace::{IntoTraceSource, TraceSource, WriteRecord};

/// Options controlling a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationOptions {
    /// Base seed for the disturbance-sampling RNGs; each bank lane derives
    /// its own stream from `(seed, bank index)`.
    pub seed: u64,
    /// When `true`, every write is decoded again and compared with the
    /// original data; mismatches are counted as integrity failures.
    pub verify_integrity: bool,
    /// When `true` (the default), write disturbance is sampled per write.
    /// Disabling it skips both the sampling and the RNG draws — the degraded
    /// mode of the serve layer sheds exactly this work first — so disturbance
    /// counters stay zero and later re-enabling yields a different (still
    /// deterministic) RNG stream than an all-sampled run.
    pub sample_disturbance: bool,
}

impl Default for SimulationOptions {
    fn default() -> SimulationOptions {
        SimulationOptions { seed: 0xC0DE, verify_integrity: true, sample_disturbance: true }
    }
}

/// The statistics of one bank's lane, labelled with its flat bank index.
/// Produced by [`Simulator::run_shard`]; merge shards' lanes with
/// [`merge_bank_stats`] in ascending bank order to obtain the run's
/// [`SchemeStats`].
pub type BankStats = (usize, SchemeStats);

/// A trace-driven simulator evaluating one encoding scheme at a time against
/// the stored state of the simulated PCM array.
#[derive(Debug)]
pub struct Simulator {
    config: PcmConfig,
    options: SimulationOptions,
}

impl Simulator {
    /// Creates a simulator with the Table II configuration and default options.
    pub fn new() -> Simulator {
        Simulator { config: PcmConfig::table_ii(), options: SimulationOptions::default() }
    }

    /// Creates a simulator with a custom configuration.
    pub fn with_config(config: PcmConfig) -> Simulator {
        Simulator { config, options: SimulationOptions::default() }
    }

    /// Overrides the simulation options.
    pub fn with_options(mut self, options: SimulationOptions) -> Simulator {
        self.options = options;
        self
    }

    /// The PCM configuration in use.
    pub fn config(&self) -> &PcmConfig {
        &self.config
    }

    /// Runs `codec` over `trace` — a streaming [`TraceSource`] or a
    /// materialised `&Trace` — and returns the aggregated statistics.
    ///
    /// The simulator maintains the physically stored content of every line it
    /// has seen. The first write to an address initialises the stored content
    /// by encoding the record's *old* value (this initialisation write is not
    /// accounted, mirroring how the paper's traces provide the overwritten
    /// value for every transaction).
    pub fn run(&self, codec: &dyn LineCodec, trace: impl IntoTraceSource) -> SchemeStats {
        let source = trace.into_trace_source();
        let scheme = codec.name().to_string();
        let workload = source.workload().to_string();
        let lanes = self.run_lanes(codec, source, 0, 1, Tracking::Stored);
        merge_bank_stats(&scheme, &workload, self.config.total_banks(), lanes)
    }

    /// Runs one intra-trace shard: streams `trace`, simulating only the
    /// records whose bank satisfies `bank % shards == shard` and discarding
    /// the rest, and returns the per-bank partial statistics in ascending
    /// bank order.
    ///
    /// Concatenating the output of all `shards` shards, sorting by bank and
    /// merging with [`merge_bank_stats`] is byte-identical to
    /// [`Simulator::run`] — per-lane RNG streams, stored state and
    /// accumulation order do not depend on the shard count. Sources must be
    /// deterministic: each shard replays its own copy of the stream, which
    /// keeps shards embarrassingly parallel at O(working-set) memory each.
    pub fn run_shard(
        &self,
        codec: &dyn LineCodec,
        trace: impl IntoTraceSource,
        shard: usize,
        shards: usize,
    ) -> Vec<BankStats> {
        self.run_lanes(codec, trace.into_trace_source(), shard, shards, Tracking::Stored)
    }

    /// Shard variant of [`Simulator::run_isolated`]; see [`Simulator::run_shard`].
    pub fn run_isolated_shard(
        &self,
        codec: &dyn LineCodec,
        trace: impl IntoTraceSource,
        shard: usize,
        shards: usize,
    ) -> Vec<BankStats> {
        self.run_lanes(codec, trace.into_trace_source(), shard, shards, Tracking::Isolated)
    }

    /// Runs `codec` over a slice of raw `(old, new)` records without address
    /// tracking: each record is treated as an isolated write whose stored
    /// content is the encoding of the old value. Used by the random-data
    /// studies (Figures 1, 2) where there is no reuse.
    pub fn run_isolated(&self, codec: &dyn LineCodec, records: &[WriteRecord]) -> SchemeStats {
        let source = wlcrc_trace::from_fn("isolated", records.len() as u64, |i| {
            records[usize::try_from(i).expect("record index fits usize")]
        });
        let scheme = codec.name().to_string();
        let lanes = self.run_lanes(codec, source, 0, 1, Tracking::Isolated);
        merge_bank_stats(&scheme, "isolated", self.config.total_banks(), lanes)
    }

    /// The lane engine behind every entry point: streams the source, routes
    /// each record to its bank lane (creating lanes on demand), and returns
    /// the non-empty lanes of this shard in ascending bank order.
    fn run_lanes(
        &self,
        codec: &dyn LineCodec,
        mut source: impl TraceSource,
        shard: usize,
        shards: usize,
        tracking: Tracking,
    ) -> Vec<BankStats> {
        let shards = shards.max(1);
        let organization = MemoryOrganization::new(&self.config);
        let mut lanes: Vec<Option<BankLane>> = Vec::new();
        lanes.resize_with(organization.total_banks(), || None);
        let energy = &self.config.energy;
        for record in &mut source {
            let bank = organization.bank_index(record.address);
            if bank % shards != shard {
                continue;
            }
            let lane = lanes[bank].get_or_insert_with(|| BankLane::new(self.options.seed, bank));
            lane.feed(codec, &record, energy, &self.config, &self.options, tracking);
        }
        lanes
            .into_iter()
            .enumerate()
            .filter_map(|(bank, lane)| lane.map(|lane| (bank, lane.stats)))
            .collect()
    }
}

impl Default for Simulator {
    fn default() -> Simulator {
        Simulator::new()
    }
}

/// A long-lived, incrementally fed simulation: the session-friendly face of
/// the per-bank lane core.
///
/// Where [`Simulator::run`] consumes a whole [`TraceSource`] and returns, a
/// `SimulatorSession` owns its codec and its bank lanes *across calls*:
/// records arrive one batch at a time (a memory service's request stream),
/// each is routed to its bank lane exactly as the batch runner would route
/// it, and [`SimulatorSession::stats`] can be taken at any point without
/// disturbing the stored state.
///
/// **Equivalence guarantee:** feeding the records of a trace through
/// [`write`](SimulatorSession::write) / [`write_batch`](SimulatorSession::write_batch)
/// in trace order produces statistics byte-identical to
/// [`Simulator::run`] over the same trace with the same options — lanes are
/// keyed by bank, per-lane arrival order is the trace order, and per-lane RNG
/// streams derive only from `(seed, bank)`. Records of *different* banks may
/// even be fed in any interleaving (lanes never interact). The serve soak
/// test pins this end to end over a live socket.
///
/// **Degraded mode:** [`set_degraded`](SimulatorSession::set_degraded) sheds
/// integrity verification and disturbance sampling — the two pieces of work
/// that do not affect energy/endurance accounting — so an overloaded service
/// can drain queues faster at an explicit, observable accuracy cost. While
/// degraded, disturbance RNG draws are skipped entirely; re-enabling restores
/// full accounting but the sampled-disturbance stream will differ from a
/// never-degraded run (energy and endurance numbers are RNG-free and remain
/// exact).
pub struct SimulatorSession {
    codec: Box<dyn LineCodec>,
    config: PcmConfig,
    options: SimulationOptions,
    organization: MemoryOrganization,
    lanes: Vec<Option<BankLane>>,
    workload: String,
    writes: u64,
    degraded: bool,
}

impl Simulator {
    /// Opens a long-lived session owning `codec`, labelled `workload` in its
    /// statistics. The session inherits this simulator's configuration and
    /// options.
    pub fn session(
        &self,
        codec: Box<dyn LineCodec>,
        workload: impl Into<String>,
    ) -> SimulatorSession {
        let organization = MemoryOrganization::new(&self.config);
        let mut lanes: Vec<Option<BankLane>> = Vec::new();
        lanes.resize_with(organization.total_banks(), || None);
        SimulatorSession {
            codec,
            config: self.config.clone(),
            options: self.options.clone(),
            organization,
            lanes,
            workload: workload.into(),
            writes: 0,
            degraded: false,
        }
    }
}

impl SimulatorSession {
    /// The options in effect for the next write, with degraded mode's shed
    /// work applied.
    fn effective_options(&self) -> SimulationOptions {
        if self.degraded {
            SimulationOptions {
                verify_integrity: false,
                sample_disturbance: false,
                ..self.options.clone()
            }
        } else {
            self.options.clone()
        }
    }

    /// Feeds one write record to its bank lane.
    pub fn write(&mut self, record: &WriteRecord) {
        let bank = self.organization.bank_index(record.address);
        let seed = self.options.seed;
        let options = self.effective_options();
        let lane = self.lanes[bank].get_or_insert_with(|| BankLane::new(seed, bank));
        lane.feed(
            self.codec.as_ref(),
            record,
            &self.config.energy,
            &self.config,
            &options,
            Tracking::Stored,
        );
        self.writes += 1;
    }

    /// Feeds a batch, grouped by bank lane for locality: all records of bank
    /// 0 first, then bank 1, and so on, each lane preserving the batch's
    /// arrival order. Within a lane, maximal runs of distinct addresses are
    /// encoded through [`LineCodec::encode_batch`], so codecs that hoist
    /// their transition-table setup pay it once per run instead of once per
    /// record. Statistics are byte-identical to feeding the batch record by
    /// record — encoding is pure, and every side effect (RNG draws,
    /// integrity checks, accumulation, insertion) still happens per record
    /// in the lane's arrival order.
    pub fn write_batch(&mut self, records: &[WriteRecord]) {
        if records.len() < 2 {
            for record in records {
                self.write(record);
            }
            return;
        }
        let options = self.effective_options();
        // Stable sort of record indices by bank keeps arrival order per lane.
        let banks: Vec<usize> =
            records.iter().map(|r| self.organization.bank_index(r.address)).collect();
        let mut order: Vec<u32> = (0..records.len() as u32).collect();
        order.sort_by_key(|&i| banks[i as usize]);
        let mut start = 0usize;
        while start < order.len() {
            let bank = banks[order[start] as usize];
            let mut end = start;
            while end < order.len() && banks[order[end] as usize] == bank {
                end += 1;
            }
            let lane_records: Vec<&WriteRecord> =
                order[start..end].iter().map(|&k| &records[k as usize]).collect();
            let seed = self.options.seed;
            let lane = self.lanes[bank].get_or_insert_with(|| BankLane::new(seed, bank));
            lane.feed_batch(
                self.codec.as_ref(),
                &lane_records,
                &self.config.energy,
                &self.config,
                &options,
            );
            self.writes += lane_records.len() as u64;
            start = end;
        }
    }

    /// Enables or disables degraded mode (shed verify-integrity and
    /// disturbance sampling; see the type docs for the accuracy contract).
    pub fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    /// Whether the session is currently shedding optional work.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Number of records fed so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// The codec this session encodes with.
    pub fn codec(&self) -> &dyn LineCodec {
        self.codec.as_ref()
    }

    /// The session's PCM configuration.
    pub fn config(&self) -> &PcmConfig {
        &self.config
    }

    /// The session's simulation options.
    pub fn options(&self) -> &SimulationOptions {
        &self.options
    }

    /// The flat bank index `address` routes to.
    pub fn bank_index(&self, address: u64) -> usize {
        self.organization.bank_index(address)
    }

    /// Total number of banks in the session's organisation.
    pub fn total_banks(&self) -> usize {
        self.organization.total_banks()
    }

    /// The per-bank partial statistics accumulated so far (non-empty lanes in
    /// ascending bank order), cloned without disturbing the stored state.
    pub fn bank_stats(&self) -> Vec<BankStats> {
        self.lanes
            .iter()
            .enumerate()
            .filter_map(|(bank, lane)| lane.as_ref().map(|lane| (bank, lane.stats.clone())))
            .collect()
    }

    /// The session's aggregated statistics so far — byte-identical to what
    /// [`Simulator::run`] would return for the records fed to date.
    pub fn stats(&self) -> SchemeStats {
        merge_bank_stats(
            self.codec.name(),
            &self.workload,
            self.organization.total_banks(),
            self.bank_stats(),
        )
    }
}

/// Whether lanes track physically stored lines across writes or treat every
/// record as an isolated write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tracking {
    Stored,
    Isolated,
}

/// One bank's private simulation state: stored lines, statistics and RNG.
#[derive(Debug)]
struct BankLane {
    stats: SchemeStats,
    rng: StdRng,
    stored: HashMap<u64, PhysicalLine>,
}

impl BankLane {
    fn new(base_seed: u64, bank: usize) -> BankLane {
        BankLane {
            stats: SchemeStats::default(),
            rng: StdRng::seed_from_u64(derive_bank_seed(base_seed, bank)),
            stored: HashMap::new(),
        }
    }

    fn feed(
        &mut self,
        codec: &dyn LineCodec,
        record: &WriteRecord,
        energy: &wlcrc_pcm::energy::EnergyModel,
        config: &PcmConfig,
        options: &SimulationOptions,
        tracking: Tracking,
    ) {
        let old = match tracking {
            Tracking::Stored => self
                .stored
                .remove(&record.address)
                .unwrap_or_else(|| codec.encode(&record.old, &codec.initial_line(), energy)),
            Tracking::Isolated => codec.encode(&record.old, &codec.initial_line(), energy),
        };
        let new = codec.encode(&record.new, &old, energy);
        let outcome = differential_write(&old, &new, energy);
        let disturbance = if options.sample_disturbance {
            evaluate_disturbance(&old, &new, &config.disturbance, &mut self.rng)
        } else {
            wlcrc_pcm::disturb::DisturbanceOutcome::default()
        };
        let encoded = match tracking {
            Tracking::Stored => new.aux_cells() > 0 || codec.encoded_cells() == new.len(),
            Tracking::Isolated => true,
        };
        let integrity_ok =
            if options.verify_integrity { codec.decode(&new) == record.new } else { true };
        self.stats.record(outcome, disturbance, encoded, integrity_ok);
        if tracking == Tracking::Stored {
            self.stored.insert(record.address, new);
        }
    }

    /// Feeds one lane's arrival-order slice of a batch, batch-encoding
    /// maximal runs of *distinct* addresses through
    /// [`LineCodec::encode_batch`] (within such a run no record's encoding
    /// depends on another's outcome, so the encodes are independent).
    /// Byte-identical to calling [`BankLane::feed`] per record: encoding is
    /// pure, and the side effects — disturbance RNG draws, integrity
    /// checks, statistics accumulation and stored-line insertion — run per
    /// record in arrival order after each run's encodes.
    fn feed_batch(
        &mut self,
        codec: &dyn LineCodec,
        records: &[&WriteRecord],
        energy: &wlcrc_pcm::energy::EnergyModel,
        config: &PcmConfig,
        options: &SimulationOptions,
    ) {
        let initial = codec.initial_line();
        let mut seen: std::collections::HashSet<u64> =
            std::collections::HashSet::with_capacity(records.len().min(64));
        let mut start = 0usize;
        while start < records.len() {
            seen.clear();
            let mut end = start;
            while end < records.len() && seen.insert(records[end].address) {
                end += 1;
            }
            let run = &records[start..end];
            // Stored content per record: take what the lane holds, then
            // batch-encode the first-touch misses against the initial line.
            let mut olds: Vec<Option<PhysicalLine>> =
                run.iter().map(|r| self.stored.remove(&r.address)).collect();
            let miss_jobs: Vec<(&wlcrc_pcm::line::MemoryLine, &PhysicalLine)> = run
                .iter()
                .zip(&olds)
                .filter(|(_, old)| old.is_none())
                .map(|(r, _)| (&r.old, &initial))
                .collect();
            if !miss_jobs.is_empty() {
                let mut encoded = codec.encode_batch(&miss_jobs, energy).into_iter();
                for slot in olds.iter_mut().filter(|o| o.is_none()) {
                    *slot = encoded.next();
                }
            }
            let olds: Vec<PhysicalLine> =
                olds.into_iter().map(|o| o.expect("every miss was filled")).collect();
            let new_jobs: Vec<(&wlcrc_pcm::line::MemoryLine, &PhysicalLine)> =
                run.iter().zip(&olds).map(|(r, old)| (&r.new, old)).collect();
            let news = codec.encode_batch(&new_jobs, energy);
            for ((record, old), new) in run.iter().zip(&olds).zip(news) {
                let outcome = differential_write(old, &new, energy);
                let disturbance = if options.sample_disturbance {
                    evaluate_disturbance(old, &new, &config.disturbance, &mut self.rng)
                } else {
                    wlcrc_pcm::disturb::DisturbanceOutcome::default()
                };
                let encoded = new.aux_cells() > 0 || codec.encoded_cells() == new.len();
                let integrity_ok =
                    if options.verify_integrity { codec.decode(&new) == record.new } else { true };
                self.stats.record(outcome, disturbance, encoded, integrity_ok);
                self.stored.insert(record.address, new);
            }
            start = end;
        }
    }
}

/// Derives a bank lane's disturbance-sampling seed from the run seed and the
/// flat bank index only (SplitMix64 finaliser for avalanche), so the stream a
/// bank sees is independent of which shard — or how many shards — process the
/// trace.
fn derive_bank_seed(base: u64, bank: usize) -> u64 {
    let mut h = base ^ (bank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Merges per-bank partial statistics (from one or many shards of the same
/// run) into the run's [`SchemeStats`]: lanes are merged in ascending bank
/// order — the one canonical order, whatever the shard count — and the
/// per-bank write counts are recorded in
/// [`bank_writes`](SchemeStats::bank_writes) (length `total_banks`).
pub fn merge_bank_stats(
    scheme: &str,
    workload: &str,
    total_banks: usize,
    lanes: impl IntoIterator<Item = BankStats>,
) -> SchemeStats {
    let mut lanes: Vec<BankStats> = lanes.into_iter().collect();
    lanes.sort_by_key(|(bank, _)| *bank);
    let mut merged = SchemeStats::new(scheme, workload);
    merged.bank_writes = vec![0; total_banks];
    for (bank, stats) in &lanes {
        debug_assert!(*bank < total_banks, "bank {bank} out of range {total_banks}");
        merged.merge(stats);
        merged.bank_writes[*bank] += stats.writes;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlcrc_pcm::codec::RawCodec;
    use wlcrc_pcm::line::MemoryLine;
    use wlcrc_trace::{Benchmark, Trace, TraceGenerator, TraceStream};

    #[test]
    fn identical_rewrite_costs_nothing() {
        let sim = Simulator::new();
        let codec = RawCodec::new();
        let line = MemoryLine::from_words([0xABCD; 8]);
        let mut trace = Trace::new("t");
        trace.push(WriteRecord::new(0, line, line));
        let stats = sim.run(&codec, &trace);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.total_energy_pj(), 0.0);
        assert_eq!(stats.mean_updated_cells(), 0.0);
    }

    #[test]
    fn stored_state_carries_across_writes() {
        // Second write to the same address must be differenced against the
        // first write's content, not against the trace's old value.
        let sim = Simulator::new();
        let codec = RawCodec::new();
        let a = MemoryLine::from_words([1; 8]);
        let b = MemoryLine::from_words([2; 8]);
        let mut trace = Trace::new("t");
        trace.push(WriteRecord::new(0, MemoryLine::ZERO, a));
        trace.push(WriteRecord::new(0, a, a)); // no change
        trace.push(WriteRecord::new(0, a, b));
        let stats = sim.run(&codec, &trace);
        assert_eq!(stats.writes, 3);
        // The middle write must be free.
        assert!(stats.total_energy_pj() > 0.0);
        let baseline_single = {
            let sim2 = Simulator::new();
            let mut t = Trace::new("t2");
            t.push(WriteRecord::new(0, MemoryLine::ZERO, a));
            sim2.run(&codec, &t).total_energy_pj()
        };
        // Energy of the three writes is the energy of write 1 plus write 3
        // (write 2 is free); it must exceed a single write's energy.
        assert!(stats.total_energy_pj() > baseline_single * 0.99);
    }

    #[test]
    fn integrity_is_verified_for_real_traces() {
        let sim = Simulator::new();
        let codec = RawCodec::new();
        let mut generator = TraceGenerator::new(Benchmark::Gcc.profile(), 5);
        let trace = generator.generate(300);
        let stats = sim.run(&codec, &trace);
        assert_eq!(stats.integrity_failures, 0);
        assert_eq!(stats.writes, 300);
        assert!(stats.mean_energy_pj() > 0.0);
    }

    #[test]
    fn isolated_run_matches_record_count() {
        let sim = Simulator::new();
        let codec = RawCodec::new();
        let records: Vec<WriteRecord> = (0..50)
            .map(|i| {
                WriteRecord::new(
                    0,
                    MemoryLine::from_words([i; 8]),
                    MemoryLine::from_words([i + 1; 8]),
                )
            })
            .collect();
        let stats = sim.run_isolated(&codec, &records);
        assert_eq!(stats.writes, 50);
        assert_eq!(stats.integrity_failures, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let codec = RawCodec::new();
        let mut generator = TraceGenerator::new(Benchmark::Mcf.profile(), 9);
        let trace = generator.generate(200);
        let a = Simulator::new().run(&codec, &trace);
        let b = Simulator::new().run(&codec, &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn streamed_run_is_byte_identical_to_materialised_run() {
        let codec = RawCodec::new();
        for b in [Benchmark::Gcc, Benchmark::Lbm, Benchmark::Canneal] {
            let trace = TraceGenerator::new(b.profile(), 3).generate(150);
            let materialised = Simulator::new().run(&codec, &trace);
            let streamed = Simulator::new().run(&codec, TraceStream::new(b.profile(), 3, 150));
            assert_eq!(materialised, streamed, "{b:?}");
        }
    }

    #[test]
    fn shard_union_is_byte_identical_to_sequential_run() {
        let codec = RawCodec::new();
        let trace = TraceGenerator::new(Benchmark::Soplex.profile(), 11).generate(250);
        let sim = Simulator::new();
        let sequential = sim.run(&codec, &trace);
        for shards in [1usize, 3, 4, 7] {
            let mut lanes: Vec<BankStats> = Vec::new();
            for shard in 0..shards {
                lanes.extend(sim.run_shard(&codec, &trace, shard, shards));
            }
            let merged =
                merge_bank_stats(codec.name(), &trace.workload, sim.config().total_banks(), lanes);
            assert_eq!(sequential, merged, "{shards} shards");
        }
    }

    #[test]
    fn bank_writes_cover_the_whole_trace() {
        let codec = RawCodec::new();
        let trace = TraceGenerator::new(Benchmark::Astar.profile(), 2).generate(300);
        let stats = Simulator::new().run(&codec, &trace);
        assert_eq!(stats.bank_writes.len(), Simulator::new().config().total_banks());
        assert_eq!(stats.bank_writes.iter().sum::<u64>(), stats.writes);
        assert!(stats.banks_touched() > 1, "writes must spread over banks");
        assert!(stats.write_imbalance() >= 1.0);
    }

    #[test]
    fn session_writes_match_batch_run_byte_for_byte() {
        let sim = Simulator::new();
        let trace = TraceGenerator::new(Benchmark::Gcc.profile(), 7).generate(300);
        let batch = sim.run(&RawCodec::new(), &trace);
        // Record by record.
        let mut session = sim.session(Box::new(RawCodec::new()), trace.workload.clone());
        for record in trace.iter() {
            session.write(record);
        }
        assert_eq!(session.stats(), batch);
        assert_eq!(session.writes(), 300);
        // Chunked into uneven batches (write_batch regroups by bank).
        let mut chunked = sim.session(Box::new(RawCodec::new()), trace.workload.clone());
        let records: Vec<WriteRecord> = trace.iter().copied().collect();
        for chunk in records.chunks(37) {
            chunked.write_batch(chunk);
        }
        assert_eq!(chunked.stats(), batch);
    }

    #[test]
    fn session_stats_are_reusable_mid_stream() {
        let sim = Simulator::new();
        let trace = TraceGenerator::new(Benchmark::Mcf.profile(), 3).generate(120);
        let records: Vec<WriteRecord> = trace.iter().copied().collect();
        let mut session = sim.session(Box::new(RawCodec::new()), "mcf");
        session.write_batch(&records[..60]);
        let midway = session.stats();
        assert_eq!(midway.writes, 60);
        session.write_batch(&records[60..]);
        let full = session.stats();
        assert_eq!(full.writes, 120);
        // Taking stats mid-stream must not have perturbed the stored state.
        let mut straight = sim.session(Box::new(RawCodec::new()), "mcf");
        straight.write_batch(&records);
        assert_eq!(full, straight.stats());
    }

    #[test]
    fn degraded_mode_sheds_sampling_but_keeps_energy_exact() {
        let sim = Simulator::new();
        let trace = TraceGenerator::new(Benchmark::Lbm.profile(), 5).generate(100);
        let records: Vec<WriteRecord> = trace.iter().copied().collect();
        let mut normal = sim.session(Box::new(RawCodec::new()), "lbm");
        normal.write_batch(&records);
        let mut degraded = sim.session(Box::new(RawCodec::new()), "lbm");
        degraded.set_degraded(true);
        assert!(degraded.degraded());
        degraded.write_batch(&records);
        let n = normal.stats();
        let d = degraded.stats();
        // Energy and endurance are RNG-free and must be identical; sampled
        // disturbance and expected-disturbance accounting are shed.
        assert_eq!(d.writes, n.writes);
        assert_eq!(d.data_energy_pj, n.data_energy_pj);
        assert_eq!(d.data_cells_updated, n.data_cells_updated);
        assert_eq!(d.expected_disturb_errors, 0.0);
        assert_eq!(d.data_disturb_errors + d.aux_disturb_errors, 0);
    }

    #[test]
    fn disabling_disturbance_sampling_zeroes_disturb_counters() {
        let sim = Simulator::new().with_options(SimulationOptions {
            sample_disturbance: false,
            ..SimulationOptions::default()
        });
        let trace = TraceGenerator::new(Benchmark::Gcc.profile(), 9).generate(80);
        let stats = sim.run(&RawCodec::new(), &trace);
        assert_eq!(stats.writes, 80);
        assert_eq!(stats.data_disturb_errors + stats.aux_disturb_errors, 0);
        assert_eq!(stats.expected_disturb_errors, 0.0);
        assert!(stats.total_energy_pj() > 0.0, "energy accounting must be unaffected");
    }

    #[test]
    fn bank_seeds_separate_banks_and_base_seeds() {
        let base = derive_bank_seed(1, 0);
        assert_ne!(base, derive_bank_seed(1, 1), "bank must matter");
        assert_ne!(base, derive_bank_seed(2, 0), "base seed must matter");
    }
}
