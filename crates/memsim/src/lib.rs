//! Trace-driven MLC PCM main-memory simulator.
//!
//! This crate ties the device model (`wlcrc-pcm`), the encoding schemes
//! (`wlcrc-coset`, `wlcrc`) and the synthetic workloads (`wlcrc-trace`)
//! together, replicating the methodology of the paper's evaluation:
//!
//! * every write transaction carries both the new value and the overwritten
//!   value; the simulator additionally tracks the *physically stored* cell
//!   states per line so that differential writes see exactly what a real
//!   array would contain;
//! * per write it accounts the programming energy (split into data and
//!   auxiliary cells), the number of updated cells (the endurance metric) and
//!   the expected/sampled write-disturbance errors;
//! * results are aggregated per scheme and per workload into
//!   [`stats::SchemeStats`], the structure every figure of the paper is
//!   derived from.
//!
//! The memory organisation of Table II (channels, DIMMs, banks) is modelled
//! in [`memory::MemoryOrganization`] for address mapping and per-bank
//! accounting; it does not affect the energy metrics, matching the paper.
//!
//! Experiment grids (scheme × workload × config × seed) are executed by the
//! parallel sharded engine in [`engine`]: declare the grid with
//! [`engine::ExperimentPlan`], and the cells are spread over a scoped worker
//! pool (`WLCRC_THREADS`) with bit-identical results for any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod experiment;
pub mod memory;
pub mod simulator;
pub mod stats;

pub use engine::{resolve_worker_count, ExperimentPlan, THREADS_ENV};
pub use experiment::{run_schemes_on_workloads, ExperimentResult, RunMetadata};
pub use memory::MemoryOrganization;
pub use simulator::{SimulationOptions, Simulator};
pub use stats::SchemeStats;
