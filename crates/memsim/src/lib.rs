//! Trace-driven MLC PCM main-memory simulator.
//!
//! This crate ties the device model (`wlcrc-pcm`), the encoding schemes
//! (`wlcrc-coset`, `wlcrc`) and the synthetic workloads (`wlcrc-trace`)
//! together, replicating the methodology of the paper's evaluation:
//!
//! * every write transaction carries both the new value and the overwritten
//!   value; the simulator additionally tracks the *physically stored* cell
//!   states per line so that differential writes see exactly what a real
//!   array would contain;
//! * per write it accounts the programming energy (split into data and
//!   auxiliary cells), the number of updated cells (the endurance metric) and
//!   the expected/sampled write-disturbance errors;
//! * results are aggregated per scheme and per workload into
//!   [`stats::SchemeStats`], the structure every figure of the paper is
//!   derived from.
//!
//! The memory organisation of Table II (channels, DIMMs, banks) is modelled
//! in [`memory::MemoryOrganization`] for address mapping and per-bank
//! accounting; it does not affect the energy metrics, matching the paper.
//!
//! Simulation is *streaming*: the simulator consumes any
//! [`wlcrc_trace::TraceSource`] one record at a time and routes each write to
//! a per-bank lane (own stored state, statistics and RNG stream), so peak
//! memory is O(working-set) — never O(trace-length) — and the per-bank lanes
//! merge in a canonical bank order whatever the parallelism.
//!
//! Experiment grids (scheme × workload × config × seed) are executed by the
//! parallel sharded engine in [`engine`]: declare the grid with
//! [`engine::ExperimentPlan`], and the cells — and, within each cell, the
//! per-bank partitions of its trace — are spread over a scoped worker pool
//! (`WLCRC_THREADS`, `WLCRC_INTRA_SHARDS`) with bit-identical results for
//! any worker or shard count.
//!
//! Cell results can additionally be cached **across processes** in a
//! persistent content-addressed store (`WLCRC_STORE`, or
//! [`engine::ExperimentPlan::store`]): repeated figure/CI/bench runs of
//! identical cells are served from disk instead of re-simulated, with
//! byte-identical results for any hit/miss mix. The cache-key rules live in
//! [`cache`]; the generic store machinery in the `wlcrc_store` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod experiment;
pub mod memory;
pub mod simulator;
pub mod stats;

pub use cache::{CellKey, PlanKey, SIMULATOR_VERSION_SALT, STORE_SALT_ENV};
pub use engine::{
    cell_seed, grid_metrics, resolve_worker_count, scaled_workload_lines, workload_stream_seed,
    ClaimedRunReport, ExperimentPlan, GridMetrics, TraceSourceFactory, CLAIM_CRASH_EXIT_CODE,
    FAULT_CLAIM_CRASH, INTRA_SHARDS_ENV, MATERIALISE_ENV, STORE_ENV, STORE_READONLY_ENV,
    THREADS_ENV,
};
pub use experiment::{run_schemes_on_workloads, ExperimentResult, RunMetadata};
pub use memory::MemoryOrganization;
pub use simulator::{merge_bank_stats, BankStats, SimulationOptions, Simulator, SimulatorSession};
pub use stats::SchemeStats;
