//! Experiment results: the per-cell statistics grid every figure is derived
//! from, plus the historical sequential entry point (now a thin wrapper over
//! the parallel [`ExperimentPlan`](crate::engine::ExperimentPlan) engine).

use crate::engine::ExperimentPlan;
use crate::stats::SchemeStats;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use wlcrc_pcm::codec::LineCodec;
use wlcrc_trace::WorkloadProfile;

/// Provenance of an [`ExperimentResult`]: which grid produced it.
///
/// Deliberately excludes anything scheduling-related (worker count, timing):
/// two runs of the same plan must produce byte-identical results whatever the
/// parallelism.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetadata {
    /// Base seeds of the grid (cells are merged across them, in this order).
    pub seeds: Vec<u64>,
    /// Unscaled trace length per profile workload.
    pub lines_per_workload: usize,
    /// Index of this result's config on the plan's config axis.
    pub config_index: usize,
    /// Number of simulated cells behind this result
    /// (workloads × schemes × seeds).
    pub grid_cells: usize,
}

/// The result of evaluating a set of schemes across a set of workloads.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// One entry per (scheme, workload) pair, in run order (workload-major).
    pub cells: Vec<SchemeStats>,
    /// Provenance of the run that produced the cells.
    pub meta: RunMetadata,
}

impl ExperimentResult {
    /// All statistics collected for `scheme`, one per workload.
    pub fn for_scheme(&self, scheme: &str) -> Vec<&SchemeStats> {
        self.cells.iter().filter(|s| s.scheme == scheme).collect()
    }

    /// The statistics for a specific scheme/workload pair, if present.
    pub fn get(&self, scheme: &str, workload: &str) -> Option<&SchemeStats> {
        self.cells.iter().find(|s| s.scheme == scheme && s.workload == workload)
    }

    /// Cross-workload average statistics for `scheme` (workloads are weighted
    /// by their number of writes, like the paper's `Ave.` bars).
    pub fn average_for_scheme(&self, scheme: &str) -> SchemeStats {
        let mut merged = SchemeStats::new(scheme, "Ave.");
        for stats in self.for_scheme(scheme) {
            merged.merge(stats);
        }
        merged
    }

    /// The distinct scheme names, in first-seen order.
    pub fn schemes(&self) -> Vec<String> {
        distinct(self.cells.iter().map(|cell| cell.scheme.as_str()))
    }

    /// The distinct workload names, in first-seen order.
    pub fn workloads(&self) -> Vec<String> {
        distinct(self.cells.iter().map(|cell| cell.workload.as_str()))
    }

    /// The per-bank write imbalance of `workload`'s trace (max/min ratio over
    /// [`SchemeStats::bank_writes`]; 1.0 = perfectly balanced, infinity =
    /// some bank untouched), taken from the workload's first cell — every
    /// scheme replays the same records, so the distribution is identical
    /// across schemes. High values mean intra-trace bank-sharding loads the
    /// shard workers unevenly; see `WLCRC_INTRA_SHARDS`.
    pub fn write_imbalance(&self, workload: &str) -> Option<f64> {
        self.cells.iter().find(|s| s.workload == workload).map(SchemeStats::write_imbalance)
    }
}

/// First-seen-order dedup in O(n) (a seen-set instead of a `contains` scan).
fn distinct<'a>(names: impl Iterator<Item = &'a str>) -> Vec<String> {
    let mut seen: HashSet<&str> = HashSet::new();
    let mut out = Vec::new();
    for name in names {
        if seen.insert(name) {
            out.push(name.to_string());
        }
    }
    out
}

/// Runs every `(scheme, workload)` combination: for each workload a synthetic
/// trace of `lines_per_workload` writes (scaled by the workload's relative
/// write intensity) is generated from its profile and fed to every scheme.
///
/// The same trace (same seed) is used for all schemes of a workload so the
/// comparison is paired, exactly as in the paper. Execution is delegated to
/// [`ExperimentPlan`], so the grid is sharded across the worker pool
/// (`WLCRC_THREADS`) with deterministic results; prefer building a plan
/// directly in new code.
///
/// Seeding note: traces are derived exactly as the historical sequential
/// harness derived them, so the written data — and every energy/endurance
/// metric, which is RNG-free — is unchanged. The *disturbance-sampling* RNG,
/// however, is now seeded per (scheme, workload) cell instead of reusing the
/// raw base seed everywhere (the engine's cross-worker determinism rule), so
/// sampled disturbance counts differ from pre-engine releases for the same
/// `seed`.
pub fn run_schemes_on_workloads(
    schemes: Vec<(&str, Box<dyn LineCodec>)>,
    workloads: &[WorkloadProfile],
    lines_per_workload: usize,
    seed: u64,
) -> ExperimentResult {
    let mut plan = ExperimentPlan::new()
        .seed(seed)
        .lines_per_workload(lines_per_workload)
        .workloads(workloads.iter().cloned());
    for (label, codec) in schemes {
        plan = plan.scheme_boxed(label, codec);
    }
    plan.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlcrc_pcm::codec::RawCodec;
    use wlcrc_trace::Benchmark;

    fn baseline_pair() -> Vec<(&'static str, Box<dyn LineCodec>)> {
        vec![("Baseline", Box::new(RawCodec::new())), ("Baseline2", Box::new(RawCodec::new()))]
    }

    #[test]
    fn runs_every_combination() {
        let workloads = vec![Benchmark::Gcc.profile(), Benchmark::Mcf.profile()];
        let result = run_schemes_on_workloads(baseline_pair(), &workloads, 50, 1);
        assert_eq!(result.cells.len(), 4);
        assert_eq!(result.schemes().len(), 2);
        assert_eq!(result.workloads(), vec!["gcc".to_string(), "mcf".to_string()]);
        assert!(result.get("Baseline", "gcc").is_some());
        assert_eq!(result.meta.seeds, vec![1]);
        assert_eq!(result.meta.grid_cells, 4);
    }

    #[test]
    fn intensity_scales_trace_length() {
        let schemes: Vec<(&str, Box<dyn LineCodec>)> =
            vec![("Baseline", Box::new(RawCodec::new()))];
        let workloads = vec![Benchmark::Leslie3d.profile(), Benchmark::Omnetpp.profile()];
        let result = run_schemes_on_workloads(schemes, &workloads, 100, 2);
        let hmi = result.get("Baseline", "lesl").unwrap().writes;
        let lmi = result.get("Baseline", "omne").unwrap().writes;
        assert!(hmi > lmi, "HMI workloads must issue more writes ({hmi} vs {lmi})");
    }

    #[test]
    fn averages_merge_workloads() {
        let schemes: Vec<(&str, Box<dyn LineCodec>)> =
            vec![("Baseline", Box::new(RawCodec::new()))];
        let workloads = vec![Benchmark::Gcc.profile(), Benchmark::Mcf.profile()];
        let result = run_schemes_on_workloads(schemes, &workloads, 30, 3);
        let avg = result.average_for_scheme("Baseline");
        let total: u64 = result.for_scheme("Baseline").iter().map(|s| s.writes).sum();
        assert_eq!(avg.writes, total);
        assert_eq!(avg.workload, "Ave.");
    }

    #[test]
    fn write_imbalance_is_reported_per_workload() {
        let workloads = vec![Benchmark::Gcc.profile()];
        let result = run_schemes_on_workloads(baseline_pair(), &workloads, 200, 1);
        let imbalance = result.write_imbalance("gcc").expect("workload present");
        assert!(imbalance >= 1.0);
        assert_eq!(result.write_imbalance("nope"), None);
    }

    #[test]
    fn distinct_preserves_first_seen_order() {
        let names = ["b", "a", "b", "c", "a", "c", "d"];
        assert_eq!(distinct(names.into_iter()), vec!["b", "a", "c", "d"]);
        assert!(distinct(std::iter::empty()).is_empty());
    }
}
