//! Convenience harness shared by the figure-regeneration binaries: run a set
//! of schemes over a set of workloads and collect the per-cell statistics.

use crate::simulator::{SimulationOptions, Simulator};
use crate::stats::SchemeStats;
use serde::{Deserialize, Serialize};
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::config::PcmConfig;
use wlcrc_trace::{TraceGenerator, WorkloadProfile};

/// The result of evaluating a set of schemes across a set of workloads.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// One entry per (scheme, workload) pair, in run order.
    pub cells: Vec<SchemeStats>,
}

impl ExperimentResult {
    /// All statistics collected for `scheme`, one per workload.
    pub fn for_scheme(&self, scheme: &str) -> Vec<&SchemeStats> {
        self.cells.iter().filter(|s| s.scheme == scheme).collect()
    }

    /// The statistics for a specific scheme/workload pair, if present.
    pub fn get(&self, scheme: &str, workload: &str) -> Option<&SchemeStats> {
        self.cells.iter().find(|s| s.scheme == scheme && s.workload == workload)
    }

    /// Cross-workload average statistics for `scheme` (workloads are weighted
    /// by their number of writes, like the paper's `Ave.` bars).
    pub fn average_for_scheme(&self, scheme: &str) -> SchemeStats {
        let mut merged = SchemeStats::new(scheme, "Ave.");
        for stats in self.for_scheme(scheme) {
            merged.merge(stats);
        }
        merged
    }

    /// The distinct scheme names, in first-seen order.
    pub fn schemes(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for cell in &self.cells {
            if !out.contains(&cell.scheme) {
                out.push(cell.scheme.clone());
            }
        }
        out
    }

    /// The distinct workload names, in first-seen order.
    pub fn workloads(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for cell in &self.cells {
            if !out.contains(&cell.workload) {
                out.push(cell.workload.clone());
            }
        }
        out
    }
}

/// Runs every `(scheme, workload)` combination: for each workload a synthetic
/// trace of `lines_per_workload` writes (scaled by the workload's relative
/// write intensity) is generated from its profile and fed to every scheme.
///
/// The same trace (same seed) is used for all schemes of a workload so the
/// comparison is paired, exactly as in the paper.
pub fn run_schemes_on_workloads(
    schemes: &[(&str, Box<dyn LineCodec>)],
    workloads: &[WorkloadProfile],
    lines_per_workload: usize,
    seed: u64,
) -> ExperimentResult {
    let mut result = ExperimentResult::default();
    for profile in workloads {
        let scaled = ((lines_per_workload as f64) * profile.write_intensity
            / max_intensity(workloads))
        .ceil()
        .max(1.0) as usize;
        let mut generator = TraceGenerator::new(profile.clone(), seed ^ hash_name(&profile.name));
        let trace = generator.generate(scaled);
        for (label, codec) in schemes {
            let simulator = Simulator::with_config(PcmConfig::table_ii())
                .with_options(SimulationOptions { seed, verify_integrity: true });
            let mut stats = simulator.run(codec.as_ref(), &trace);
            stats.scheme = (*label).to_string();
            result.cells.push(stats);
        }
    }
    result
}

fn max_intensity(workloads: &[WorkloadProfile]) -> f64 {
    workloads.iter().map(|w| w.write_intensity).fold(1.0, f64::max)
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |acc, b| {
        (acc ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlcrc_pcm::codec::RawCodec;
    use wlcrc_trace::Benchmark;

    #[test]
    fn runs_every_combination() {
        let schemes: Vec<(&str, Box<dyn LineCodec>)> =
            vec![("Baseline", Box::new(RawCodec::new())), ("Baseline2", Box::new(RawCodec::new()))];
        let workloads = vec![Benchmark::Gcc.profile(), Benchmark::Mcf.profile()];
        let result = run_schemes_on_workloads(&schemes, &workloads, 50, 1);
        assert_eq!(result.cells.len(), 4);
        assert_eq!(result.schemes().len(), 2);
        assert_eq!(result.workloads(), vec!["gcc".to_string(), "mcf".to_string()]);
        assert!(result.get("Baseline", "gcc").is_some());
    }

    #[test]
    fn intensity_scales_trace_length() {
        let schemes: Vec<(&str, Box<dyn LineCodec>)> =
            vec![("Baseline", Box::new(RawCodec::new()))];
        let workloads = vec![Benchmark::Leslie3d.profile(), Benchmark::Omnetpp.profile()];
        let result = run_schemes_on_workloads(&schemes, &workloads, 100, 2);
        let hmi = result.get("Baseline", "lesl").unwrap().writes;
        let lmi = result.get("Baseline", "omne").unwrap().writes;
        assert!(hmi > lmi, "HMI workloads must issue more writes ({hmi} vs {lmi})");
    }

    #[test]
    fn averages_merge_workloads() {
        let schemes: Vec<(&str, Box<dyn LineCodec>)> =
            vec![("Baseline", Box::new(RawCodec::new()))];
        let workloads = vec![Benchmark::Gcc.profile(), Benchmark::Mcf.profile()];
        let result = run_schemes_on_workloads(&schemes, &workloads, 30, 3);
        let avg = result.average_for_scheme("Baseline");
        let total: u64 = result.for_scheme("Baseline").iter().map(|s| s.writes).sum();
        assert_eq!(avg.writes, total);
        assert_eq!(avg.workload, "Ave.");
    }
}
