//! The parallel sharded experiment engine.
//!
//! [`ExperimentPlan`] declares a grid of experiment cells — every combination
//! of *scheme × workload × config × seed* — and executes them on a pool of
//! scoped worker threads. The paper's evaluation (and every figure binary in
//! this workspace) is exactly this shape: a large set of mutually independent
//! simulations followed by a deterministic merge.
//!
//! # Streaming pipeline
//!
//! Workloads are consumed as [`TraceSource`] streams: profile workloads are
//! generated lazily (O(working-set) memory, never O(trace-length)), and
//! custom bounded-memory streams plug in through
//! [`ExperimentPlan::source`]. The historical materialise-then-run pipeline
//! survives as an opt-in ([`ExperimentPlan::materialise_traces`], or the
//! `WLCRC_MATERIALISE` environment variable) and produces byte-identical
//! results — the CI smoke step diffs the two modes.
//!
//! # Intra-trace (per-bank) sharding
//!
//! Besides sharding the grid across cells, the engine shards *within* each
//! trace: records partition by [`MemoryOrganization::bank_index`] (writes to
//! different banks are independent in the cost model), each bank-partition
//! shard replays the stream and simulates only the banks with
//! `bank % shards == shard`, and the per-bank statistics merge in ascending
//! bank order. The shard count comes from
//! [`ExperimentPlan::intra_trace_shards`], the `WLCRC_INTRA_SHARDS`
//! environment variable, or a policy that uses spare workers when the grid
//! has fewer cells than the pool — and never affects any result, so a single
//! huge workload can use the whole machine.
//!
//! [`MemoryOrganization::bank_index`]: crate::memory::MemoryOrganization::bank_index
//!
//! # Persistent result store (cross-run caching)
//!
//! When a store is configured — [`ExperimentPlan::store`], or the
//! `WLCRC_STORE` environment variable — every cacheable cell first consults
//! an on-disk content-addressed cache (`wlcrc_store`): the cell's full
//! identity (simulator version salt, scheme label + behavioral codec
//! fingerprint, workload identity, config + geometry, seeds, simulation
//! options; see [`crate::cache`]) is hashed into the entry address, hits
//! skip simulation entirely, and misses are written back atomically after
//! the merge. `WLCRC_STORE_READONLY` serves hits without writing. Results
//! are **byte-identical with the store disabled, cold, warm, or partially
//! warm** — worker count, shard count and materialisation mode are excluded
//! from the key for the same reason they cannot affect results. Bumping the
//! version salt ([`crate::cache::SIMULATOR_VERSION_SALT`]) makes every old
//! entry unreachable, forcing recomputation after simulator-behaviour
//! changes. Workloads added through [`ExperimentPlan::source`] are opaque
//! closures and bypass the cache.
//!
//! # Determinism guarantee
//!
//! Results are **bit-identical for any worker count, shard count and
//! materialisation mode**. Three rules make that hold:
//!
//! 1. every cell derives its disturbance-sampling seed purely from
//!    `(base seed, config index, scheme label, workload name)`, and every
//!    bank lane derives its RNG stream from `(cell seed, bank index)` —
//!    never from thread identity, scheduling order or shard count;
//! 2. trace streams are deterministic: a cell's stream derives only from the
//!    base seed and the workload, so every scheme and every shard replays
//!    the identical record sequence (comparisons stay paired, exactly as in
//!    the paper);
//! 3. per-bank partials merge in ascending bank order, cell results land in
//!    slots indexed by their grid position and merge in grid order, so
//!    floating-point accumulation order never depends on which worker
//!    finished first.
//!
//! # Worker count
//!
//! The pool size is taken from, in order: an explicit
//! [`ExperimentPlan::threads`] override, the `WLCRC_THREADS` environment
//! variable, and finally [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! use wlcrc_memsim::ExperimentPlan;
//! use wlcrc_pcm::codec::RawCodec;
//! use wlcrc_trace::Benchmark;
//!
//! let result = ExperimentPlan::new()
//!     .seed(7)
//!     .lines_per_workload(50)
//!     .workload(Benchmark::Gcc.profile())
//!     .workload(Benchmark::Mcf.profile())
//!     .scheme("Baseline", || Box::new(RawCodec::new()))
//!     .run();
//! assert_eq!(result.cells.len(), 2);
//! ```

use crate::cache::{self, CellKey, PlanKey, WorkloadIdentity};
use crate::experiment::{ExperimentResult, RunMetadata};
use crate::simulator::{merge_bank_stats, BankStats, SimulationOptions, Simulator};
use crate::stats::SchemeStats;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::config::PcmConfig;
use wlcrc_store::{claim_is_stale, ClaimOutcome, Fingerprint, ResultStore};
use wlcrc_trace::{Trace, TraceSource, TraceStream, WorkloadProfile};

/// Environment variable overriding the worker-pool size (a positive integer).
pub const THREADS_ENV: &str = "WLCRC_THREADS";

/// Environment variable naming the persistent result-store directory
/// (re-exported from `wlcrc_store`); when set, every plan caches cell
/// results there unless it opts out.
pub const STORE_ENV: &str = wlcrc_store::STORE_ENV;

/// Environment variable marking the result store read-only (re-exported from
/// `wlcrc_store`).
pub const STORE_READONLY_ENV: &str = wlcrc_store::STORE_READONLY_ENV;

/// Environment variable overriding the intra-trace (per-bank) shard count
/// per cell (a positive integer). Results are byte-identical for any value.
pub const INTRA_SHARDS_ENV: &str = "WLCRC_INTRA_SHARDS";

/// Environment variable forcing the opt-in materialise-then-run pipeline
/// (`1`/`true`). Results are byte-identical to streaming; peak memory is not.
pub const MATERIALISE_ENV: &str = "WLCRC_MATERIALISE";

type CodecFactoryFn = Arc<dyn Fn() -> Box<dyn LineCodec> + Send + Sync>;

/// A factory building one replayable [`TraceSource`] per invocation; the
/// argument is the plan's base seed for the cell. Must be deterministic —
/// the engine replays the stream once per bank-partition shard.
pub type TraceSourceFactory = Arc<dyn Fn(u64) -> Box<dyn TraceSource + Send> + Send + Sync>;

/// How a worker obtains the codec for a cell: either it builds a private
/// instance through a factory, or it borrows a pre-built shared instance
/// (possible because [`LineCodec`] is `Send + Sync`).
enum CodecSource {
    Factory(CodecFactoryFn),
    Shared(Arc<dyn LineCodec>),
}

impl CodecSource {
    /// Runs `f` with a codec reference for this cell.
    fn with_codec<T>(&self, f: impl FnOnce(&dyn LineCodec) -> T) -> T {
        match self {
            CodecSource::Factory(factory) => f(factory().as_ref()),
            CodecSource::Shared(codec) => f(codec.as_ref()),
        }
    }
}

/// A workload axis entry: a profile the plan streams lazily (scaled by write
/// intensity, like the paper's `Ave.` weighting), a caller-provided
/// materialised trace replayed verbatim, or a custom stream factory.
enum WorkloadSource {
    Profile(WorkloadProfile),
    Trace(Arc<Trace>),
    Stream { name: String, factory: TraceSourceFactory },
}

impl WorkloadSource {
    /// The workload name used for result labels and cell-seed derivation.
    fn name(&self) -> &str {
        match self {
            WorkloadSource::Profile(profile) => &profile.name,
            WorkloadSource::Trace(trace) => &trace.workload,
            WorkloadSource::Stream { name, .. } => name,
        }
    }
}

/// Declarative description of an experiment grid, executed by a worker pool.
///
/// See the [module documentation](self) for the determinism rules. Build a
/// plan with the chained setters, then call [`ExperimentPlan::run`] (single
/// config) or [`ExperimentPlan::run_grid`] (one [`ExperimentResult`] per
/// config).
pub struct ExperimentPlan {
    schemes: Vec<(String, CodecSource)>,
    workloads: Vec<WorkloadSource>,
    configs: Vec<PcmConfig>,
    seeds: Vec<u64>,
    lines_per_workload: usize,
    verify_integrity: bool,
    isolated: bool,
    threads: Option<usize>,
    intra_shards: Option<usize>,
    materialise: Option<bool>,
    store: StoreChoice,
    store_readonly: Option<bool>,
    store_salt: Option<String>,
    plan_cache: Option<bool>,
}

/// Where the plan's persistent result store comes from.
enum StoreChoice {
    /// Use `WLCRC_STORE` / `WLCRC_STORE_READONLY` when set (the default).
    Auto,
    /// Never consult a store, whatever the environment says.
    Disabled,
    /// Use this directory.
    At(PathBuf),
}

impl Default for ExperimentPlan {
    fn default() -> ExperimentPlan {
        ExperimentPlan::new()
    }
}

impl ExperimentPlan {
    /// Creates an empty plan: Table II config, seed 0, 1000 lines per
    /// workload, integrity verification on, streaming pipeline.
    pub fn new() -> ExperimentPlan {
        ExperimentPlan {
            schemes: Vec::new(),
            workloads: Vec::new(),
            configs: vec![PcmConfig::table_ii()],
            seeds: vec![0],
            lines_per_workload: 1000,
            verify_integrity: true,
            isolated: false,
            threads: None,
            intra_shards: None,
            materialise: None,
            store: StoreChoice::Auto,
            store_readonly: None,
            store_salt: None,
            plan_cache: None,
        }
    }

    /// Adds a scheme built per worker by `factory` (each worker owns its
    /// codec; construction must be cheap and deterministic).
    pub fn scheme<F>(mut self, label: impl Into<String>, factory: F) -> ExperimentPlan
    where
        F: Fn() -> Box<dyn LineCodec> + Send + Sync + 'static,
    {
        self.schemes.push((label.into(), CodecSource::Factory(Arc::new(factory))));
        self
    }

    /// Adds a scheme built per worker by an already-shared factory, e.g. a
    /// `CodecFactory` from `wlcrc::schemes::standard_factories` — no
    /// re-wrapping closure needed.
    pub fn scheme_factory(
        mut self,
        label: impl Into<String>,
        factory: Arc<dyn Fn() -> Box<dyn LineCodec> + Send + Sync>,
    ) -> ExperimentPlan {
        self.schemes.push((label.into(), CodecSource::Factory(factory)));
        self
    }

    /// Adds a pre-built codec, shared read-only by all workers.
    pub fn scheme_boxed(
        mut self,
        label: impl Into<String>,
        codec: Box<dyn LineCodec>,
    ) -> ExperimentPlan {
        self.schemes.push((label.into(), CodecSource::Shared(Arc::from(codec))));
        self
    }

    /// Adds a workload profile; the plan streams its trace lazily (scaled by
    /// relative write intensity like the paper's grids).
    pub fn workload(mut self, profile: WorkloadProfile) -> ExperimentPlan {
        self.workloads.push(WorkloadSource::Profile(profile));
        self
    }

    /// Adds several workload profiles.
    pub fn workloads(
        mut self,
        profiles: impl IntoIterator<Item = WorkloadProfile>,
    ) -> ExperimentPlan {
        for profile in profiles {
            self.workloads.push(WorkloadSource::Profile(profile));
        }
        self
    }

    /// Adds a pre-generated trace, replayed verbatim (no intensity scaling).
    pub fn trace(mut self, trace: Arc<Trace>) -> ExperimentPlan {
        self.workloads.push(WorkloadSource::Trace(trace));
        self
    }

    /// Adds several pre-generated traces.
    pub fn traces(mut self, traces: impl IntoIterator<Item = Arc<Trace>>) -> ExperimentPlan {
        for trace in traces {
            self.workloads.push(WorkloadSource::Trace(trace));
        }
        self
    }

    /// Adds a custom streaming workload: `factory` builds one replayable
    /// [`TraceSource`] per invocation from the plan's base seed (no intensity
    /// scaling). `name` labels the results and feeds cell-seed derivation;
    /// the factory must be deterministic because the stream is replayed once
    /// per bank-partition shard.
    pub fn source<F>(self, name: impl Into<String>, factory: F) -> ExperimentPlan
    where
        F: Fn(u64) -> Box<dyn TraceSource + Send> + Send + Sync + 'static,
    {
        self.source_factory(name, Arc::new(factory))
    }

    /// Adds a custom streaming workload from an already-shared factory.
    pub fn source_factory(
        mut self,
        name: impl Into<String>,
        factory: TraceSourceFactory,
    ) -> ExperimentPlan {
        self.workloads.push(WorkloadSource::Stream { name: name.into(), factory });
        self
    }

    /// Adds several named streaming workloads.
    pub fn sources(
        mut self,
        sources: impl IntoIterator<Item = (String, TraceSourceFactory)>,
    ) -> ExperimentPlan {
        for (name, factory) in sources {
            self.workloads.push(WorkloadSource::Stream { name, factory });
        }
        self
    }

    /// Sets the single PCM configuration of the grid.
    pub fn config(mut self, config: PcmConfig) -> ExperimentPlan {
        self.configs = vec![config];
        self
    }

    /// Sets the configuration axis of the grid (one [`ExperimentResult`] per
    /// entry; use [`ExperimentPlan::run_grid`]).
    pub fn configs(mut self, configs: impl IntoIterator<Item = PcmConfig>) -> ExperimentPlan {
        self.configs = configs.into_iter().collect();
        self
    }

    /// Sets the single base seed of the grid.
    pub fn seed(mut self, seed: u64) -> ExperimentPlan {
        self.seeds = vec![seed];
        self
    }

    /// Sets the seed axis of the grid; per-cell statistics are merged across
    /// seeds in seed order, so the result shape stays scheme × workload.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> ExperimentPlan {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the unscaled trace length per profile workload.
    pub fn lines_per_workload(mut self, lines: usize) -> ExperimentPlan {
        self.lines_per_workload = lines;
        self
    }

    /// Enables or disables decode-vs-original integrity verification.
    pub fn verify_integrity(mut self, verify: bool) -> ExperimentPlan {
        self.verify_integrity = verify;
        self
    }

    /// When `true`, records are simulated without address tracking (each
    /// write is differenced against its record's encoded old value), like the
    /// random-data studies of Figures 1 and 2.
    pub fn isolated(mut self, isolated: bool) -> ExperimentPlan {
        self.isolated = isolated;
        self
    }

    /// Overrides the worker count (otherwise `WLCRC_THREADS`, otherwise
    /// [`std::thread::available_parallelism`]).
    pub fn threads(mut self, workers: usize) -> ExperimentPlan {
        self.threads = Some(workers);
        self
    }

    /// Overrides the intra-trace (per-bank) shard count per cell (otherwise
    /// `WLCRC_INTRA_SHARDS`, otherwise spare-worker policy). Results are
    /// byte-identical for any value; more shards let one huge trace use more
    /// cores at the cost of replaying its stream once per shard.
    pub fn intra_trace_shards(mut self, shards: usize) -> ExperimentPlan {
        self.intra_shards = Some(shards);
        self
    }

    /// Opts in or out of the historical materialise-then-run pipeline
    /// (otherwise `WLCRC_MATERIALISE`, otherwise streaming). Materialising
    /// builds each (workload, seed) trace once and shares it across schemes
    /// and shards — byte-identical results, O(trace-length) peak memory.
    pub fn materialise_traces(mut self, materialise: bool) -> ExperimentPlan {
        self.materialise = Some(materialise);
        self
    }

    /// Caches cell results in the persistent store at `path` (see
    /// [`crate::cache`] for what addresses a cell). Without this call the
    /// plan still honours the `WLCRC_STORE` environment variable; use
    /// [`ExperimentPlan::store_enabled`]`(false)` to opt out entirely.
    ///
    /// The cache never changes results: hits are byte-identical to
    /// recomputation for any worker count, shard count and hit/miss mix.
    pub fn store(mut self, path: impl Into<PathBuf>) -> ExperimentPlan {
        self.store = StoreChoice::At(path.into());
        self
    }

    /// Enables or disables the persistent result store, uniformly with the
    /// plan's other boolean knobs ([`ExperimentPlan::verify_integrity`],
    /// [`ExperimentPlan::isolated`], [`ExperimentPlan::materialise_traces`]).
    ///
    /// `store_enabled(false)` never consults a store, even when `WLCRC_STORE`
    /// is set; `store_enabled(true)` restores the default behaviour (an
    /// explicit [`ExperimentPlan::store`] path, otherwise the `WLCRC_STORE`
    /// environment variable, otherwise no store).
    pub fn store_enabled(mut self, enabled: bool) -> ExperimentPlan {
        self.store = if enabled { StoreChoice::Auto } else { StoreChoice::Disabled };
        self
    }

    /// Never consults a result store, even when `WLCRC_STORE` is set.
    #[deprecated(since = "0.1.0", note = "use the uniform `store_enabled(false)` instead")]
    pub fn store_disabled(self) -> ExperimentPlan {
        self.store_enabled(false)
    }

    /// Forces the store read-only (hits are served, misses are not written
    /// back); otherwise `WLCRC_STORE_READONLY` decides.
    pub fn store_readonly(mut self, readonly: bool) -> ExperimentPlan {
        self.store_readonly = Some(readonly);
        self
    }

    /// Enables or disables plan-level result caching (default on). When on
    /// and a store is configured, each config's merged [`ExperimentResult`]
    /// is cached under a [`PlanKey`] on top of the per-cell entries, so a
    /// fully warm rerun is one store read per config — no per-cell lookups,
    /// no merge. Like the cell cache, the plan cache can never change a
    /// result: its key covers every cell fingerprint in the config.
    pub fn plan_cache(mut self, enabled: bool) -> ExperimentPlan {
        self.plan_cache = Some(enabled);
        self
    }

    /// Overrides the simulator version salt baked into every cache key
    /// (default [`cache::SIMULATOR_VERSION_SALT`], or `WLCRC_STORE_SALT`).
    /// Bumping the salt makes every previously cached cell unreachable, so
    /// results are recomputed — the invalidation path for simulator
    /// behaviour changes.
    pub fn store_version_salt(mut self, salt: impl Into<String>) -> ExperimentPlan {
        self.store_salt = Some(salt.into());
        self
    }

    /// Resolves the plan's result store: the explicit choice first, then the
    /// `WLCRC_STORE` environment; read-only from the explicit override, then
    /// `WLCRC_STORE_READONLY`. A store directory that cannot be created
    /// degrades to read-only (the cache is an accelerator, not a
    /// dependency).
    fn resolve_store(&self) -> Option<ResultStore> {
        let path = match &self.store {
            StoreChoice::Disabled => return None,
            StoreChoice::At(path) => path.clone(),
            StoreChoice::Auto => {
                let root = std::env::var_os(STORE_ENV).filter(|root| !root.is_empty())?;
                PathBuf::from(root)
            }
        };
        let readonly = self.store_readonly.unwrap_or_else(wlcrc_store::readonly_from_env);
        Some(ResultStore::open_or_read_only(path, readonly))
    }

    /// The worker count this plan will run with.
    pub fn worker_count(&self) -> usize {
        resolve_worker_count(self.threads)
    }

    /// The intra-trace shard count this plan will run with.
    pub fn intra_shard_count(&self) -> usize {
        let cells =
            self.configs.len() * self.workloads.len() * self.schemes.len() * self.seeds.len();
        self.resolve_intra_shards(cells)
    }

    /// Executes a single-config plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no schemes or workloads, or if more than one
    /// config was set (use [`ExperimentPlan::run_grid`] for a config axis).
    pub fn run(&self) -> ExperimentResult {
        assert_eq!(
            self.configs.len(),
            1,
            "plan has {} configs; use run_grid() for a config axis",
            self.configs.len()
        );
        self.run_grid().remove(0)
    }

    /// Executes the full grid and returns one [`ExperimentResult`] per
    /// config, each holding one merged cell per (workload, scheme) pair in
    /// declaration order (workload-major, matching the sequential layout).
    ///
    /// # Panics
    ///
    /// Panics if the plan has no schemes, workloads, configs or seeds.
    pub fn run_grid(&self) -> Vec<ExperimentResult> {
        assert!(!self.schemes.is_empty(), "plan declares no schemes");
        assert!(!self.workloads.is_empty(), "plan declares no workloads");
        assert!(!self.configs.is_empty(), "plan declares no configs");
        assert!(!self.seeds.is_empty(), "plan declares no seeds");
        let workers = self.worker_count();
        let n_workloads = self.workloads.len();
        let n_schemes = self.schemes.len();
        let n_seeds = self.seeds.len();
        let cell_count = self.configs.len() * n_workloads * n_schemes * n_seeds;
        let shards = self.resolve_intra_shards(cell_count);
        let max_intensity = self.max_intensity();

        // Phases 0.25/0.5 (optional): consult the persistent result store —
        // first whole-config plan entries, then per-cell entries. Every
        // cacheable cell derives a content-addressed key; hits skip
        // simulation entirely and misses are written back after the merge.
        // The cache can never change a result — a hit is the byte-identical
        // record of an identical cell, pinned by the engine tests.
        let store = self.resolve_store();
        let keys: Vec<Option<CellKey>> = match &store {
            Some(_) => self.cell_keys(cell_count, max_intensity),
            None => (0..cell_count).map(|_| None).collect(),
        };

        // Phase 0.25 (optional): the plan-level cache. Each config's merged
        // result is cached whole under a key covering every cell fingerprint
        // in the config, so a fully warm rerun is one store read per config
        // — it returns here without touching a single per-cell entry. A
        // config that hits drops out of every later phase.
        let cells_per_config = n_workloads * n_schemes * n_seeds;
        let plan_keys: Vec<Option<PlanKey>> = if store.is_some() && self.resolve_plan_cache() {
            (0..self.configs.len()).map(|config| self.plan_key(config, &keys)).collect()
        } else {
            (0..self.configs.len()).map(|_| None).collect()
        };
        let plan_hits: Vec<Option<ExperimentResult>> = match &store {
            Some(store) => {
                let _span = wlcrc_obs::span("engine.plan_cache_probe");
                plan_keys
                    .iter()
                    .map(|key| key.as_ref().and_then(|key| cache::load_plan(store, key)))
                    .collect()
            }
            None => (0..self.configs.len()).map(|_| None).collect(),
        };
        if plan_hits.iter().all(Option::is_some) {
            return plan_hits.into_iter().map(|hit| hit.expect("checked all hits")).collect();
        }

        // Phase 0.5 (optional): per-cell store lookups for the configs the
        // plan cache did not cover. Lookups go through the worker pool too:
        // a warm grid of thousands of cells is bound by file reads + record
        // decodes, not simulation, and those are as independent as the cells
        // themselves.
        let cached: Vec<Option<SchemeStats>> = match &store {
            Some(store) => {
                let _span = wlcrc_obs::span("engine.cell_probe");
                parallel_tasks(cell_count, workers, |cell| {
                    if plan_hits[cell / cells_per_config].is_some() {
                        return None;
                    }
                    keys[cell].as_ref().and_then(|key| cache::load_cell(store, key))
                })
            }
            None => (0..cell_count).map(|_| None).collect(),
        };
        let miss_cells: Vec<usize> = (0..cell_count)
            .filter(|&cell| plan_hits[cell / cells_per_config].is_none() && cached[cell].is_none())
            .collect();
        let mut miss_slot = vec![usize::MAX; cell_count];
        for (slot, &cell) in miss_cells.iter().enumerate() {
            miss_slot[cell] = slot;
        }

        // Optional phase 0 (opt-in): materialise each (workload, seed) trace
        // exactly once and share it behind an Arc — the historical pipeline,
        // byte-identical to streaming but O(trace-length) in memory. Runs
        // after the store lookup so a warm run generates only the traces its
        // missed cells will actually replay.
        let shared: Option<Vec<Option<Arc<Trace>>>> = self.resolve_materialise().then(|| {
            let _span = wlcrc_obs::span("engine.materialise");
            let mut needed = vec![false; n_workloads * n_seeds];
            for &cell in &miss_cells {
                let seed = cell % n_seeds;
                let workload = (cell / (n_seeds * n_schemes)) % n_workloads;
                needed[workload * n_seeds + seed] = true;
            }
            let pairs: Vec<usize> = (0..needed.len()).filter(|&pair| needed[pair]).collect();
            let traces = parallel_tasks(pairs.len(), workers, |index| {
                let (workload, seed) = (pairs[index] / n_seeds, pairs[index] % n_seeds);
                let source =
                    self.make_source(&self.workloads[workload], self.seeds[seed], max_intensity);
                Arc::new(source.collect_trace())
            });
            let mut slots: Vec<Option<Arc<Trace>>> = vec![None; n_workloads * n_seeds];
            for (index, &pair) in pairs.iter().enumerate() {
                slots[pair] = Some(Arc::clone(&traces[index]));
            }
            slots
        });

        // Phase 1: simulate every (missed cell, intra-trace shard) task. Each
        // shard replays the cell's stream and simulates only its banks; the
        // slot index fixes the merge order regardless of which worker runs
        // what.
        let simulate_span = wlcrc_obs::span("engine.simulate");
        let partials: Vec<Vec<BankStats>> =
            parallel_tasks(miss_cells.len() * shards, workers, |index| {
                let shard = index % shards;
                let cell = miss_cells[index / shards];
                let seed = cell % n_seeds;
                let scheme = (cell / n_seeds) % n_schemes;
                let workload = (cell / (n_seeds * n_schemes)) % n_workloads;
                let config = cell / (n_seeds * n_schemes * n_workloads);
                self.run_cell_shard(
                    config,
                    scheme,
                    workload,
                    seed,
                    shard,
                    shards,
                    max_intensity,
                    shared.as_deref(),
                )
            });
        drop(simulate_span);

        // Phase 2: merge each cell's bank partials in ascending bank order —
        // the one canonical order, whatever the shard count. Cached cells
        // are used as recorded; cells in plan-hit configs are never built
        // (their merged result is already in hand).
        let merge_span = wlcrc_obs::span("engine.merge");
        let cells: Vec<Option<SchemeStats>> = (0..cell_count)
            .map(|cell| {
                if plan_hits[cell / cells_per_config].is_some() {
                    return None;
                }
                if let Some(stats) = &cached[cell] {
                    return Some(stats.clone());
                }
                let scheme = (cell / n_seeds) % n_schemes;
                let workload = (cell / (n_seeds * n_schemes)) % n_workloads;
                let config = cell / (n_seeds * n_schemes * n_workloads);
                let slot = miss_slot[cell];
                let lanes = partials[slot * shards..(slot + 1) * shards].iter().flatten().cloned();
                Some(merge_bank_stats(
                    &self.schemes[scheme].0,
                    self.workloads[workload].name(),
                    self.configs[config].total_banks(),
                    lanes,
                ))
            })
            .collect();
        drop(merge_span);

        // Phase 2.5: write the freshly simulated cells back to the store —
        // through the worker pool, like the lookups, because a cold grid's
        // write-backs are file encodes + renames, independent per cell.
        if let Some(store) = &store {
            let _span = wlcrc_obs::span("engine.store_write_back");
            let to_write: Vec<usize> =
                miss_cells.iter().copied().filter(|&cell| keys[cell].is_some()).collect();
            parallel_tasks(to_write.len(), workers, |index| {
                let cell = to_write[index];
                let key = keys[cell].as_ref().expect("filtered to cells with keys");
                let stats = cells[cell].as_ref().expect("missed cells are in missed configs");
                cache::save_cell(store, key, stats);
            });
        }

        // Phase 3: deterministic merge, seed-minor so replicate order is
        // fixed by the plan, not by scheduling. Plan-hit configs return the
        // stored merged result verbatim; freshly merged configs write their
        // plan entry back so the next identical run is one read.
        self.merge_grid(&cells, &plan_hits, &plan_keys, store.as_ref())
    }

    /// The one canonical grid merge (phase 3 of [`ExperimentPlan::run_grid`]
    /// and of [`ExperimentPlan::run_grid_claimed`]): merges each config's
    /// per-cell statistics seed-minor in grid order, substitutes plan-level
    /// hits verbatim, and writes plan entries for freshly merged configs.
    fn merge_grid(
        &self,
        cells: &[Option<SchemeStats>],
        plan_hits: &[Option<ExperimentResult>],
        plan_keys: &[Option<PlanKey>],
        store: Option<&ResultStore>,
    ) -> Vec<ExperimentResult> {
        let _span = wlcrc_obs::span("engine.merge_grid");
        let n_workloads = self.workloads.len();
        let n_schemes = self.schemes.len();
        let n_seeds = self.seeds.len();
        let mut results = Vec::with_capacity(self.configs.len());
        for config in 0..self.configs.len() {
            if let Some(hit) = &plan_hits[config] {
                results.push(hit.clone());
                continue;
            }
            let mut result = ExperimentResult {
                meta: RunMetadata {
                    seeds: self.seeds.clone(),
                    lines_per_workload: self.lines_per_workload,
                    config_index: config,
                    grid_cells: n_workloads * n_schemes * n_seeds,
                },
                ..ExperimentResult::default()
            };
            for workload in 0..n_workloads {
                for scheme in 0..n_schemes {
                    let base = ((config * n_workloads + workload) * n_schemes + scheme) * n_seeds;
                    let mut merged =
                        cells[base].clone().expect("cells of missed configs are built");
                    for replicate in &cells[base + 1..base + n_seeds] {
                        merged
                            .merge(replicate.as_ref().expect("cells of missed configs are built"));
                    }
                    result.cells.push(merged);
                }
            }
            if let (Some(store), Some(key)) = (store, &plan_keys[config]) {
                cache::save_plan(store, key, &result);
            }
            results.push(result);
        }
        results
    }

    /// Highest write intensity among the profile workloads (1.0 minimum,
    /// matching the sequential harness's scaling rule).
    fn max_intensity(&self) -> f64 {
        self.workloads
            .iter()
            .filter_map(|w| match w {
                WorkloadSource::Profile(profile) => Some(profile.write_intensity),
                _ => None,
            })
            .fold(1.0, f64::max)
    }

    /// Builds a fresh replayable stream for one workload at one base seed.
    /// Deterministic: the stream derives only from the plan and `seed`, so
    /// every scheme and every shard sees the identical record sequence.
    fn make_source<'a>(
        &'a self,
        source: &'a WorkloadSource,
        seed: u64,
        max_intensity: f64,
    ) -> Box<dyn TraceSource + Send + 'a> {
        match source {
            WorkloadSource::Trace(trace) => Box::new(trace.source()),
            WorkloadSource::Stream { factory, .. } => factory(seed),
            WorkloadSource::Profile(profile) => Box::new(TraceStream::new(
                profile.clone(),
                workload_stream_seed(seed, &profile.name),
                self.scaled_lines(profile, max_intensity),
            )),
        }
    }

    /// The scaled trace length of a profile workload (relative write
    /// intensity, like the paper's grids). Shared between stream
    /// construction and cache-key derivation so the key always describes
    /// exactly the stream a cell replays.
    fn scaled_lines(&self, profile: &WorkloadProfile, max_intensity: f64) -> usize {
        scaled_workload_lines(self.lines_per_workload, profile, max_intensity)
    }

    /// Derives the store key of every cell; `None` marks uncacheable cells
    /// (opaque stream workloads, whose records the engine cannot
    /// fingerprint). Codec fingerprints are probed once per (scheme, config)
    /// — candidate selection depends on the config's energy model — and
    /// trace digests computed once per workload, not once per cell.
    fn cell_keys(&self, cell_count: usize, max_intensity: f64) -> Vec<Option<CellKey>> {
        let salt = self.store_salt.clone().unwrap_or_else(cache::effective_salt);
        // `codec_fps[scheme * configs + config]`.
        let codec_fps: Vec<Fingerprint> = self
            .schemes
            .iter()
            .flat_map(|(_, source)| {
                self.configs
                    .iter()
                    .map(|config| {
                        source.with_codec(|codec| cache::codec_fingerprint(codec, &config.energy))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        // Per-workload identity, minus the seed-dependent stream seed.
        enum Identity {
            Profile { value: serde::Value, name: String, scaled: u64 },
            Trace { name: String, digest: Fingerprint },
            Opaque,
        }
        let identities: Vec<Identity> = self
            .workloads
            .iter()
            .map(|workload| match workload {
                WorkloadSource::Profile(profile) => Identity::Profile {
                    value: profile.identity_value(),
                    name: profile.name.clone(),
                    scaled: self.scaled_lines(profile, max_intensity) as u64,
                },
                WorkloadSource::Trace(trace) => Identity::Trace {
                    name: trace.workload.clone(),
                    digest: trace.content_fingerprint(),
                },
                WorkloadSource::Stream { .. } => Identity::Opaque,
            })
            .collect();
        (0..cell_count)
            .map(|cell| {
                let n_seeds = self.seeds.len();
                let n_schemes = self.schemes.len();
                let seed = cell % n_seeds;
                let scheme = (cell / n_seeds) % n_schemes;
                let workload = (cell / (n_seeds * n_schemes)) % self.workloads.len();
                let config = cell / (n_seeds * n_schemes * self.workloads.len());
                let base_seed = self.seeds[seed];
                let identity = match &identities[workload] {
                    Identity::Profile { value, name, scaled } => WorkloadIdentity::Profile {
                        profile: value.clone(),
                        stream_seed: workload_stream_seed(base_seed, name),
                        scaled_lines: *scaled,
                    },
                    Identity::Trace { name, digest } => {
                        WorkloadIdentity::Trace { name: name.clone(), digest: *digest }
                    }
                    Identity::Opaque => return None,
                };
                let label = &self.schemes[scheme].0;
                Some(CellKey {
                    salt: salt.clone(),
                    scheme: label.clone(),
                    codec: codec_fps[scheme * self.configs.len() + config],
                    workload: identity,
                    config: self.configs[config].clone(),
                    config_index: config as u64,
                    base_seed,
                    cell_seed: cell_seed(base_seed, config, label, self.workloads[workload].name()),
                    verify_integrity: self.verify_integrity,
                    isolated: self.isolated,
                })
            })
            .collect()
    }

    /// Executes the grid cooperatively with other processes sharing the
    /// plan's store: every cacheable cell is *claimed* through the store
    /// before being simulated, so independent workers — on this machine or
    /// any machine sharing the directory — divide the grid between them
    /// instead of each computing all of it. The returned results are
    /// byte-identical to [`ExperimentPlan::run_grid`] for any process
    /// count, worker count and interleaving.
    ///
    /// The loop per cell: serve it from the store if present; otherwise
    /// claim it (`O_EXCL` marker — exactly one racing process wins),
    /// simulate, write the entry back, release the claim. A cell whose
    /// claim is held by someone else is requeued and retried until its
    /// entry appears — or until the claim goes *stale* (older than
    /// `stale_after_secs`, or held by a dead same-host process), in which
    /// case it is taken over and computed here. Claims divide work; they
    /// never gate correctness — entry writes stay atomic and deterministic,
    /// so the worst case of any takeover race is a duplicated computation
    /// of identical bytes.
    ///
    /// Claim races back off instead of spinning: a cell whose claim is held
    /// by a live worker is requeued with a bounded exponential delay
    /// ([`claim_backoff`]), and transient claim-machinery errors are retried
    /// a few times before coordination degrades to duplicate work. Chaos
    /// tests can kill a worker *while it holds a claim* through the
    /// [`FAULT_CLAIM_CRASH`] fault site, which is exactly the `kill -9` the
    /// stale/dead-owner takeover exists for.
    ///
    /// Without a writable store there is nothing to coordinate through:
    /// the plan falls back to a plain [`ExperimentPlan::run_grid`] and the
    /// report only counts computed cells.
    pub fn run_grid_claimed(
        &self,
        stale_after_secs: u64,
    ) -> (Vec<ExperimentResult>, ClaimedRunReport) {
        assert!(!self.schemes.is_empty(), "plan declares no schemes");
        assert!(!self.workloads.is_empty(), "plan declares no workloads");
        assert!(!self.configs.is_empty(), "plan declares no configs");
        assert!(!self.seeds.is_empty(), "plan declares no seeds");
        let store = match self.resolve_store() {
            Some(store) if !store.is_read_only() => store,
            _ => {
                let results = self.run_grid();
                let computed = results.iter().map(|r| r.cells.len()).sum();
                return (results, ClaimedRunReport { computed, ..Default::default() });
            }
        };
        let n_workloads = self.workloads.len();
        let n_schemes = self.schemes.len();
        let n_seeds = self.seeds.len();
        let cells_per_config = n_workloads * n_schemes * n_seeds;
        let cell_count = self.configs.len() * cells_per_config;
        let max_intensity = self.max_intensity();
        let keys = self.cell_keys(cell_count, max_intensity);

        let plan_keys: Vec<Option<PlanKey>> = if self.resolve_plan_cache() {
            (0..self.configs.len()).map(|config| self.plan_key(config, &keys)).collect()
        } else {
            (0..self.configs.len()).map(|_| None).collect()
        };
        let plan_hits: Vec<Option<ExperimentResult>> = plan_keys
            .iter()
            .map(|key| key.as_ref().and_then(|key| cache::load_plan(&store, key)))
            .collect();
        let mut report = ClaimedRunReport {
            plan_hits: plan_hits.iter().filter(|hit| hit.is_some()).count(),
            ..Default::default()
        };
        if plan_hits.iter().all(Option::is_some) {
            let results = plan_hits.into_iter().map(|hit| hit.expect("checked all hits")).collect();
            return (results, report);
        }

        // Each queue item carries its retry count so requeued cells (claim
        // held elsewhere) back off progressively instead of spinning.
        let pending: Mutex<VecDeque<(usize, u32)>> = Mutex::new(
            (0..cell_count)
                .filter(|&cell| plan_hits[cell / cells_per_config].is_none())
                .map(|cell| (cell, 0))
                .collect(),
        );
        let slots: Mutex<Vec<Option<SchemeStats>>> =
            Mutex::new((0..cell_count).map(|_| None).collect());
        let computed = AtomicUsize::new(0);
        let loaded = AtomicUsize::new(0);
        let taken_over = AtomicUsize::new(0);

        let worker = || {
            let _worker_span = wlcrc_obs::span("engine.worker");
            loop {
                let Some((cell, attempts)) =
                    pending.lock().expect("queue mutex poisoned").pop_front()
                else {
                    break;
                };
                let Some(key) = &keys[cell] else {
                    // Uncacheable cell: the store cannot carry it between
                    // processes, so every process computes it locally.
                    let stats = self.compute_cell(cell, max_intensity);
                    slots.lock().expect("slot mutex poisoned")[cell] = Some(stats);
                    computed.fetch_add(1, Ordering::Relaxed);
                    grid_metrics().computed.inc();
                    continue;
                };
                // Serve-first: a finished cell always wins over any claim
                // state (the claimant writes the entry before releasing).
                if let Some(stats) = cache::load_cell(&store, key) {
                    slots.lock().expect("slot mutex poisoned")[cell] = Some(stats);
                    loaded.fetch_add(1, Ordering::Relaxed);
                    grid_metrics().served.inc();
                    continue;
                }
                let fp = Fingerprint::of_value(&key.to_value());
                // Transient claim-machinery errors get a short bounded
                // retry before coordination degrades to duplicate work —
                // an NFS hiccup should not turn a fleet into N full runs.
                let claim = {
                    let _span = wlcrc_obs::span_with("engine.claim", || fp.to_hex());
                    let mut claim = store.try_claim(fp);
                    for retry in 0..CLAIM_RETRY_ATTEMPTS {
                        if claim.is_ok() {
                            break;
                        }
                        std::thread::sleep(claim_backoff(retry));
                        claim = store.try_claim(fp);
                    }
                    claim
                };
                let took_over = match claim {
                    Ok(ClaimOutcome::Acquired) => false,
                    Ok(ClaimOutcome::Held(holder)) => {
                        let stale = match &holder {
                            Some(info) => claim_is_stale(info, stale_after_secs),
                            // Unreadable marker: judge by its file age so a
                            // claimant that died mid-create still ages out.
                            None => marker_age_secs(&store.claim_path(fp))
                                .is_some_and(|age| age > stale_after_secs),
                        };
                        if !stale || store.takeover_claim(fp).is_err() {
                            // Someone live is computing this cell: requeue
                            // with a progressively longer backoff and let
                            // the loop serve it from the store once the
                            // holder's entry lands.
                            pending
                                .lock()
                                .expect("queue mutex poisoned")
                                .push_back((cell, attempts.saturating_add(1)));
                            std::thread::sleep(claim_backoff(attempts));
                            continue;
                        }
                        true
                    }
                    // Claim machinery unavailable after retries (e.g.
                    // claims dir not creatable): coordination degrades to
                    // duplicate work, never to a missing result.
                    Err(_) => false,
                };
                // Chaos hook: die *while holding the claim* — the injected
                // equivalent of `kill -9` mid-compute. The marker is left
                // behind for surviving or later workers to judge stale
                // (dead same-host pid) and take over. Inert without an
                // explicit WLCRC_FAULTS plan.
                if wlcrc_faults::should_fire(FAULT_CLAIM_CRASH) {
                    eprintln!(
                        "wlcrc_faults: injected worker crash holding claim {} (cell {cell})",
                        fp.to_hex()
                    );
                    std::process::exit(CLAIM_CRASH_EXIT_CODE);
                }
                // Double-check under the claim: the previous holder may have
                // finished (entry written, claim released) between our lookup
                // above and the claim acquisition, and its entry must win.
                if let Some(stats) = cache::load_cell(&store, key) {
                    let _ = store.release_claim(fp);
                    slots.lock().expect("slot mutex poisoned")[cell] = Some(stats);
                    loaded.fetch_add(1, Ordering::Relaxed);
                    grid_metrics().served.inc();
                    continue;
                }
                let stats = self.compute_cell(cell, max_intensity);
                cache::save_cell(&store, key, &stats);
                let _ = store.release_claim(fp);
                slots.lock().expect("slot mutex poisoned")[cell] = Some(stats);
                computed.fetch_add(1, Ordering::Relaxed);
                grid_metrics().computed.inc();
                if took_over {
                    taken_over.fetch_add(1, Ordering::Relaxed);
                    grid_metrics().stolen.inc();
                }
            }
        };
        let workers = self.worker_count().clamp(1, cell_count.max(1));
        if workers == 1 {
            worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(worker);
                }
            });
        }

        report.computed = computed.into_inner();
        report.loaded = loaded.into_inner();
        report.taken_over = taken_over.into_inner();
        let cells = slots.into_inner().expect("slot mutex poisoned");
        let results = self.merge_grid(&cells, &plan_hits, &plan_keys, Some(&store));
        (results, report)
    }

    /// Simulates one whole grid cell (single shard) — the claimed runner's
    /// unit of work, byte-identical to the sharded path by the engine's
    /// determinism rules.
    fn compute_cell(&self, cell: usize, max_intensity: f64) -> SchemeStats {
        let n_seeds = self.seeds.len();
        let n_schemes = self.schemes.len();
        let n_workloads = self.workloads.len();
        let seed = cell % n_seeds;
        let scheme = (cell / n_seeds) % n_schemes;
        let workload = (cell / (n_seeds * n_schemes)) % n_workloads;
        let config = cell / (n_seeds * n_schemes * n_workloads);
        let lanes = self.run_cell_shard(config, scheme, workload, seed, 0, 1, max_intensity, None);
        merge_bank_stats(
            &self.schemes[scheme].0,
            self.workloads[workload].name(),
            self.configs[config].total_banks(),
            lanes,
        )
    }

    /// Resolves plan-level caching: explicit override, otherwise on.
    fn resolve_plan_cache(&self) -> bool {
        self.plan_cache.unwrap_or(true)
    }

    /// Derives config `config`'s plan key from the full grid's cell keys;
    /// `None` when any cell in the config is uncacheable.
    fn plan_key(&self, config: usize, keys: &[Option<CellKey>]) -> Option<PlanKey> {
        let cells_per_config = self.workloads.len() * self.schemes.len() * self.seeds.len();
        let slice = &keys[config * cells_per_config..(config + 1) * cells_per_config];
        let cells: Option<Vec<Fingerprint>> = slice
            .iter()
            .map(|key| key.as_ref().map(|key| Fingerprint::of_value(&key.to_value())))
            .collect();
        Some(PlanKey {
            salt: self.store_salt.clone().unwrap_or_else(cache::effective_salt),
            config_index: config as u64,
            seeds: self.seeds.clone(),
            lines_per_workload: self.lines_per_workload as u64,
            workloads: self.workloads.len() as u64,
            schemes: self.schemes.len() as u64,
            cells: cells?,
        })
    }

    /// The plan-level store fingerprint of every config on the axis (`None`
    /// for configs containing uncacheable cells). Exposed so tests — and
    /// operators debugging cache behaviour — can check two plans will share
    /// plan entries without running either: worker, shard and materialise
    /// knobs must never move these, while salt, scheme, workload, seed and
    /// config edits must.
    pub fn plan_fingerprints(&self) -> Vec<Option<Fingerprint>> {
        let cell_count =
            self.configs.len() * self.workloads.len() * self.schemes.len() * self.seeds.len();
        let keys = self.cell_keys(cell_count, self.max_intensity());
        (0..self.configs.len())
            .map(|config| self.plan_key(config, &keys).map(|key| key.fingerprint()))
            .collect()
    }

    /// The per-cell store fingerprints behind each config's plan key, in
    /// recorded order (`None` for configs containing uncacheable cells).
    /// This is the list a plan *entry* records under its `cells` field, so
    /// diffing it against a stored entry names exactly which cells moved —
    /// the `storectl why` plan-cache-miss post-mortem.
    pub fn plan_cell_fingerprints(&self) -> Vec<Option<Vec<Fingerprint>>> {
        let cell_count =
            self.configs.len() * self.workloads.len() * self.schemes.len() * self.seeds.len();
        let keys = self.cell_keys(cell_count, self.max_intensity());
        (0..self.configs.len())
            .map(|config| self.plan_key(config, &keys).map(|key| key.cells))
            .collect()
    }

    /// Human-readable labels for one config's cell positions, in the same
    /// order as a plan key's recorded `cells` list (workload-major, then
    /// scheme, then seed — the grid order everywhere in the engine).
    pub fn cell_labels(&self) -> Vec<String> {
        let mut out =
            Vec::with_capacity(self.workloads.len() * self.schemes.len() * self.seeds.len());
        for workload in &self.workloads {
            for (label, _) in &self.schemes {
                for seed in &self.seeds {
                    out.push(format!("{} / {} / seed {}", workload.name(), label, seed));
                }
            }
        }
        out
    }

    /// Runs one intra-trace shard of one grid cell, returning the per-bank
    /// partial statistics of the banks this shard owns.
    #[allow(clippy::too_many_arguments)]
    fn run_cell_shard(
        &self,
        config_index: usize,
        scheme_index: usize,
        workload_index: usize,
        seed_index: usize,
        shard: usize,
        shards: usize,
        max_intensity: f64,
        shared: Option<&[Option<Arc<Trace>>]>,
    ) -> Vec<BankStats> {
        let (label, codec_source) = &self.schemes[scheme_index];
        let workload = &self.workloads[workload_index];
        let base_seed = self.seeds[seed_index];
        let _span = wlcrc_obs::span_with("engine.cell", || {
            let mut cell_label = format!("{label}×{}×seed{base_seed}", workload.name());
            if shards > 1 {
                cell_label.push_str(&format!("×shard{shard}/{shards}"));
            }
            cell_label
        });
        let simulator = Simulator::with_config(self.configs[config_index].clone()).with_options(
            SimulationOptions {
                seed: cell_seed(base_seed, config_index, label, workload.name()),
                verify_integrity: self.verify_integrity,
                sample_disturbance: true,
            },
        );
        codec_source.with_codec(|codec| {
            let run = |source: Box<dyn TraceSource + Send + '_>| {
                if self.isolated {
                    simulator.run_isolated_shard(codec, source, shard, shards)
                } else {
                    simulator.run_shard(codec, source, shard, shards)
                }
            };
            match shared {
                Some(traces) => {
                    let trace = traces[workload_index * self.seeds.len() + seed_index]
                        .as_ref()
                        .expect("trace materialised for every missed cell");
                    run(Box::new(trace.source()))
                }
                None => run(self.make_source(workload, base_seed, max_intensity)),
            }
        })
    }

    /// Resolves the intra-trace shard count: explicit override, then
    /// `WLCRC_INTRA_SHARDS`, then spare-worker policy (idle workers divided
    /// over the grid's cells, 1 when the grid alone fills the pool). Always
    /// clamped to the largest bank count on the config axis — a shard that
    /// owns no bank would replay its stream only to discard every record.
    fn resolve_intra_shards(&self, cell_count: usize) -> usize {
        let max_banks = self.configs.iter().map(PcmConfig::total_banks).max().unwrap_or(1).max(1);
        if let Some(shards) = self.intra_shards {
            return shards.clamp(1, max_banks);
        }
        if let Some(shards) =
            std::env::var(INTRA_SHARDS_ENV).ok().as_deref().and_then(parse_thread_count)
        {
            return shards.min(max_banks);
        }
        if cell_count == 0 {
            return 1;
        }
        (self.worker_count() / cell_count).clamp(1, max_banks)
    }

    /// Resolves the materialisation mode: explicit override, then
    /// `WLCRC_MATERIALISE`, then streaming (off).
    fn resolve_materialise(&self) -> bool {
        if let Some(materialise) = self.materialise {
            return materialise;
        }
        std::env::var(MATERIALISE_ENV).is_ok_and(|value| {
            let value = value.trim();
            ["1", "true", "yes", "on"].iter().any(|accepted| value.eq_ignore_ascii_case(accepted))
        })
    }
}

/// What a [`ExperimentPlan::run_grid_claimed`] worker process ended up
/// doing: its share of the division of labour, for logs and tests.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ClaimedRunReport {
    /// Cells this process simulated (claim acquired, taken over, or
    /// uncacheable).
    pub computed: usize,
    /// Cells served from the store — computed in an earlier run or by
    /// another worker process.
    pub loaded: usize,
    /// Of the computed cells, how many came from stale-claim takeovers.
    pub taken_over: usize,
    /// Configs served whole from plan-level entries.
    pub plan_hits: usize,
}

/// Claimed-grid-runner counters, published through the process-global
/// `wlcrc_obs` registry as the `wlcrc_grid_*` families.
///
/// [`ExperimentPlan::run_grid_claimed`] bumps these as its workers make
/// progress, so a long run can be watched live — `wlcrc-gridrun` prints a
/// periodic stderr progress report from them — and a scrape in the same
/// process sees the totals.
pub struct GridMetrics {
    /// Cells this process simulated (claim acquired, taken over, or
    /// uncacheable).
    pub computed: &'static wlcrc_obs::Counter,
    /// Cells served from the store (computed earlier or by another worker).
    pub served: &'static wlcrc_obs::Counter,
    /// Stale claims taken over from crashed workers ("stolen" cells).
    pub stolen: &'static wlcrc_obs::Counter,
}

/// The claimed runner's metric handles (find-or-create on first call).
pub fn grid_metrics() -> &'static GridMetrics {
    static METRICS: std::sync::LazyLock<GridMetrics> = std::sync::LazyLock::new(|| {
        let registry = wlcrc_obs::registry();
        GridMetrics {
            computed: registry.counter("wlcrc_grid_cells_computed_total"),
            served: registry.counter("wlcrc_grid_cells_served_total"),
            stolen: registry.counter("wlcrc_grid_claims_stolen_total"),
        }
    });
    &METRICS
}

/// Fault site: a claimed-grid worker dies while still holding a claim
/// marker — the injected equivalent of `kill -9` mid-compute. Exercises the
/// stale/dead-owner takeover in [`ExperimentPlan::run_grid_claimed`]. See
/// [`wlcrc_faults`] for how sites are toggled.
pub const FAULT_CLAIM_CRASH: &str = "grid.claim.crash";

/// Exit code of a worker killed through [`FAULT_CLAIM_CRASH`], so chaos
/// harnesses can tell an injected crash from a genuine failure.
pub const CLAIM_CRASH_EXIT_CODE: i32 = 86;

/// How many times the claim-create call itself is retried on I/O errors
/// before coordination degrades to duplicate work.
const CLAIM_RETRY_ATTEMPTS: u32 = 3;

/// Bounded exponential claim backoff: 2 ms doubling per attempt, capped at
/// 128 ms. The cap keeps a worker responsive to the holder's entry landing;
/// the growth keeps a long wait from spinning the filesystem.
fn claim_backoff(attempt: u32) -> Duration {
    Duration::from_millis((2u64 << attempt.min(6)).min(128))
}

/// Age in seconds of a claim-marker file, from its mtime; `None` when the
/// marker vanished or the filesystem cannot say.
fn marker_age_secs(path: &std::path::Path) -> Option<u64> {
    let modified = std::fs::metadata(path).ok()?.modified().ok()?;
    Some(modified.elapsed().unwrap_or_default().as_secs())
}

/// Resolves the worker count: explicit override, then `WLCRC_THREADS`, then
/// the machine's available parallelism (1 if unknown).
pub fn resolve_worker_count(explicit: Option<usize>) -> usize {
    if let Some(workers) = explicit {
        return workers.max(1);
    }
    if let Some(workers) = std::env::var(THREADS_ENV).ok().as_deref().and_then(parse_thread_count) {
        return workers;
    }
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Parses a `WLCRC_THREADS`-style value; zero, empty and garbage are rejected
/// so the caller falls back to auto-detection.
fn parse_thread_count(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|workers| *workers >= 1)
}

/// Runs `count` independent tasks on `workers` scoped threads and returns the
/// results in task order. Workers claim task indices from a shared atomic
/// counter (work stealing), but each result lands in its own slot, so output
/// order — and therefore any later floating-point merge — is deterministic.
fn parallel_tasks<T, F>(count: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, count);
    if workers == 1 {
        return (0..count).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(count).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let value = task(index);
                slots.lock().expect("result mutex poisoned")[index] = Some(value);
            });
        }
    });
    slots
        .into_inner()
        .expect("result mutex poisoned")
        .into_iter()
        .map(|slot| slot.expect("every claimed task stores a result"))
        .collect()
}

/// FNV-style hash of a workload name, used to give every workload its own
/// trace-generation seed. (Kept identical to the historical sequential
/// harness so migrated callers reproduce the same traces.)
pub(crate) fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |acc, b| {
        (acc ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// The stream seed a profile workload generates its trace from, given the
/// plan's base seed — `base ^ FNV(workload name)`, the derivation every grid
/// cell uses. Public so external replayers (the serve layer's `serve-replay`,
/// soak harnesses) can reproduce a plan's exact record streams.
pub fn workload_stream_seed(base_seed: u64, workload: &str) -> u64 {
    base_seed ^ hash_name(workload)
}

/// The scaled trace length of a profile workload within a grid whose highest
/// profile write intensity is `max_intensity` (1.0 minimum) — the paper's
/// relative-intensity scaling, shared with external replayers.
pub fn scaled_workload_lines(
    lines_per_workload: usize,
    profile: &WorkloadProfile,
    max_intensity: f64,
) -> usize {
    let max_intensity = max_intensity.max(1.0);
    ((lines_per_workload as f64) * profile.write_intensity / max_intensity).ceil().max(1.0) as usize
}

/// Derives a cell's disturbance-sampling seed from the grid coordinates only
/// — never from worker identity — so parallelism cannot change any figure.
/// Public so a long-lived session replaying one grid cell (the serve layer)
/// can be seeded byte-identically to the batch engine.
pub fn cell_seed(base: u64, config_index: usize, scheme: &str, workload: &str) -> u64 {
    let mut h = 0x517c_c1b7_2722_0a95u64
        ^ base.rotate_left(17)
        ^ (config_index as u64).wrapping_mul(0xa24b_aed4_963e_e407);
    for b in scheme.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    h = h.rotate_left(29) ^ 0xff;
    for b in workload.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    // SplitMix64 finaliser for avalanche.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlcrc_pcm::codec::RawCodec;
    use wlcrc_pcm::energy::EnergyModel;
    use wlcrc_pcm::line::MemoryLine;
    use wlcrc_trace::{from_fn, Benchmark, TraceGenerator, WriteRecord};

    /// The shared test grid. `store_enabled(false)` keeps every non-store
    /// test hermetic: a developer's `WLCRC_STORE` must neither serve these
    /// cells nor be polluted by them. Store tests override with
    /// `.store(path)`.
    fn small_plan() -> ExperimentPlan {
        ExperimentPlan::new()
            .store_enabled(false)
            .seed(3)
            .lines_per_workload(40)
            .workload(Benchmark::Gcc.profile())
            .workload(Benchmark::Mcf.profile())
            .workload(Benchmark::Omnetpp.profile())
            .scheme("Baseline", || Box::new(RawCodec::new()))
            .scheme_boxed("Shared", Box::new(RawCodec::new()))
    }

    #[test]
    fn results_are_identical_for_one_and_four_workers() {
        let sequential = small_plan().threads(1).run();
        let parallel = small_plan().threads(4).run();
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.cells.len(), 6);
    }

    #[test]
    fn results_are_identical_for_one_and_four_intra_trace_shards() {
        let unsharded = small_plan().threads(2).intra_trace_shards(1).run();
        let sharded = small_plan().threads(2).intra_trace_shards(4).run();
        assert_eq!(unsharded, sharded);
    }

    #[test]
    fn streamed_and_materialised_pipelines_are_byte_identical() {
        // All twelve standard workloads, streamed vs materialised, sharded
        // and not: four executions of the same grid, one result.
        let plan = || {
            ExperimentPlan::new()
                .store_enabled(false)
                .seed(5)
                .lines_per_workload(30)
                .workloads(Benchmark::ALL.iter().map(|b| b.profile()))
                .scheme("Baseline", || Box::new(RawCodec::new()))
        };
        let streamed = plan().materialise_traces(false).run();
        let materialised = plan().materialise_traces(true).run();
        let streamed_sharded = plan().materialise_traces(false).intra_trace_shards(4).run();
        let materialised_sharded = plan().materialise_traces(true).intra_trace_shards(4).run();
        assert_eq!(streamed, materialised);
        assert_eq!(streamed, streamed_sharded);
        assert_eq!(streamed, materialised_sharded);
        assert_eq!(streamed.cells.len(), 12);
    }

    #[test]
    fn bounded_memory_source_streams_long_traces() {
        // A custom bounded-memory source: every record is computed from its
        // index, so peak memory stays O(working-set) however long the trace.
        // (At 64 lines the working set spans every bank of the Table II
        // organisation.)
        let count = 20_000u64;
        let source_factory = |seed: u64| {
            Arc::new(move |_base: u64| {
                Box::new(from_fn("endless", count, move |i| {
                    let address = (i % 64) * 64;
                    let old = MemoryLine::from_words([i ^ seed; 8]);
                    let new = MemoryLine::from_words([(i + 1) ^ seed; 8]);
                    WriteRecord::new(address, old, new)
                })) as Box<dyn TraceSource + Send>
            }) as TraceSourceFactory
        };
        let plan = || {
            ExperimentPlan::new()
                .store_enabled(false)
                .seed(1)
                .verify_integrity(false)
                .source_factory("endless", source_factory(9))
                .scheme("Baseline", || Box::new(RawCodec::new()))
                .threads(2)
        };
        let sharded = plan().intra_trace_shards(4).run();
        let stats = &sharded.cells[0];
        assert_eq!(stats.writes, count);
        assert_eq!(stats.workload, "endless");
        assert_eq!(stats.bank_writes.iter().sum::<u64>(), count);
        assert_eq!(stats.banks_touched(), 64, "64-line stride touches every bank");
        assert_eq!(sharded, plan().intra_trace_shards(1).run());
    }

    #[test]
    fn cells_are_ordered_workload_major() {
        let result = small_plan().threads(2).run();
        let keys: Vec<(&str, &str)> =
            result.cells.iter().map(|c| (c.workload.as_str(), c.scheme.as_str())).collect();
        assert_eq!(
            keys,
            vec![
                ("gcc", "Baseline"),
                ("gcc", "Shared"),
                ("mcf", "Baseline"),
                ("mcf", "Shared"),
                ("omne", "Baseline"),
                ("omne", "Shared"),
            ]
        );
    }

    #[test]
    fn traces_are_shared_across_schemes() {
        // Two instances of the same codec must see the same trace: identical
        // writes and identical (deterministic) energy.
        let result = small_plan().threads(3).run();
        for workload in result.workloads() {
            let a = result.get("Baseline", &workload).unwrap();
            let b = result.get("Shared", &workload).unwrap();
            assert_eq!(a.writes, b.writes);
            assert_eq!(a.data_energy_pj, b.data_energy_pj);
        }
    }

    #[test]
    fn seed_axis_merges_replicates() {
        let single = small_plan().run();
        let double = small_plan().seeds([3, 4]).run();
        assert_eq!(double.cells.len(), single.cells.len());
        let one = single.get("Baseline", "gcc").unwrap();
        let two = double.get("Baseline", "gcc").unwrap();
        assert_eq!(two.writes, 2 * one.writes);
        assert_eq!(double.meta.seeds, vec![3, 4]);
    }

    #[test]
    fn run_grid_returns_one_result_per_config() {
        let mut cheap = PcmConfig::table_ii();
        cheap.energy = EnergyModel::figure14_configurations().last().unwrap().clone();
        let results = small_plan().configs([PcmConfig::table_ii(), cheap]).run_grid();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].meta.config_index, 0);
        assert_eq!(results[1].meta.config_index, 1);
        let default_energy = results[0].get("Baseline", "gcc").unwrap().total_energy_pj();
        let cheap_energy = results[1].get("Baseline", "gcc").unwrap().total_energy_pj();
        assert!(cheap_energy < default_energy, "{cheap_energy} vs {default_energy}");
    }

    #[test]
    #[should_panic(expected = "use run_grid()")]
    fn run_rejects_config_axes() {
        small_plan().configs([PcmConfig::table_ii(), PcmConfig::table_ii()]).run();
    }

    #[test]
    fn isolated_mode_skips_address_tracking() {
        let trace = {
            let mut generator = TraceGenerator::new(Benchmark::Gcc.profile(), 5);
            Arc::new(generator.generate(30))
        };
        let plan = ExperimentPlan::new()
            .store_enabled(false)
            .seed(5)
            .trace(Arc::clone(&trace))
            .scheme("Baseline", || Box::new(RawCodec::new()))
            .isolated(true);
        let result = plan.run();
        assert_eq!(result.cells[0].writes, 30);
        assert_eq!(result.cells[0].workload, "gcc");
    }

    #[test]
    fn thread_count_parsing_rejects_garbage() {
        assert_eq!(parse_thread_count("4"), Some(4));
        assert_eq!(parse_thread_count(" 16 "), Some(16));
        assert_eq!(parse_thread_count("0"), None);
        assert_eq!(parse_thread_count(""), None);
        assert_eq!(parse_thread_count("many"), None);
        assert_eq!(resolve_worker_count(Some(0)), 1);
        assert_eq!(resolve_worker_count(Some(8)), 8);
    }

    #[test]
    fn intra_shard_policy_uses_spare_workers() {
        // 6 cells on a 1-worker pool: no spare parallelism, 1 shard.
        assert_eq!(small_plan().threads(1).intra_shard_count(), 1);
        // 6 cells on a 24-worker pool: 4 shards per cell soak up the slack.
        assert_eq!(small_plan().threads(24).intra_shard_count(), 4);
        // Explicit override wins; zero clamps to 1.
        assert_eq!(small_plan().threads(24).intra_trace_shards(2).intra_shard_count(), 2);
        assert_eq!(small_plan().intra_trace_shards(0).intra_shard_count(), 1);
    }

    #[test]
    fn parallel_tasks_preserve_task_order() {
        let out = parallel_tasks(100, 7, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert!(parallel_tasks(0, 4, |i| i).is_empty());
    }

    /// A per-test scratch store directory removed on drop.
    struct Scratch(std::path::PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            let path = std::env::temp_dir().join(format!(
                "wlcrc-engine-test-{}-{}-{}",
                std::process::id(),
                tag,
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&path);
            Scratch(path)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// A raw codec with a shuffled symbol mapping: same label as
    /// `RawCodec::new`, different behaviour — the aliasing case the codec
    /// fingerprint must separate.
    fn remapped_raw() -> Box<dyn LineCodec> {
        use wlcrc_pcm::mapping::SymbolMapping;
        use wlcrc_pcm::state::CellState;
        Box::new(wlcrc_pcm::codec::RawCodec::with_mapping(SymbolMapping::from_states([
            CellState::S4,
            CellState::S3,
            CellState::S2,
            CellState::S1,
        ])))
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_store_disabled_matches_store_enabled_false() {
        // The legacy spelling must stay byte-equivalent until it is removed.
        assert_eq!(small_plan().run(), small_plan().store_disabled().run());
    }

    #[test]
    fn store_disabled_cold_and_warm_runs_are_byte_identical() {
        let scratch = Scratch::new("cold-warm");
        let plan = || small_plan().seeds([3, 4]).threads(2);
        let disabled = plan().store_enabled(false).run();
        let cold = plan().store(&scratch.0).store_readonly(false).run();
        let warm = plan().store(&scratch.0).store_readonly(false).run();
        let warm_parallel = plan().store(&scratch.0).store_readonly(false).threads(4).run();
        let warm_sharded =
            plan().store(&scratch.0).store_readonly(false).intra_trace_shards(4).run();
        assert_eq!(disabled, cold);
        assert_eq!(disabled, warm);
        assert_eq!(disabled, warm_parallel);
        assert_eq!(disabled, warm_sharded);
        // 3 workloads × 2 schemes × 2 seeds cells were recorded once, plus
        // the config's plan-level entry.
        let store = ResultStore::open_read_only(&scratch.0);
        assert_eq!(store.entries().len(), 13);
        // Each warm run was served by exactly one plan-level hit — no
        // per-cell entry was touched.
        assert_eq!(store.hit_count(), 3);
    }

    #[test]
    fn plan_level_hits_bypass_per_cell_entries() {
        let scratch = Scratch::new("plan-hit");
        let plan = || small_plan().store(&scratch.0).store_readonly(false);
        let cold = plan().run();
        let store = ResultStore::open_read_only(&scratch.0);
        assert_eq!(store.entries().len(), 7, "6 cells + 1 plan entry");
        assert_eq!(store.hit_count(), 0);
        let plan_fp = plan().plan_fingerprints()[0].expect("fully cacheable grid");
        let warm = plan().run();
        assert_eq!(cold, warm);
        // The journal proves the warm run touched exactly one entry: the
        // plan's.
        assert_eq!(store.hit_count(), 1);
        let uses = store.last_uses();
        assert_eq!(uses.len(), 1);
        assert!(uses.contains_key(&plan_fp), "the one journaled hit is the plan entry");
    }

    #[test]
    fn plan_cache_off_restores_per_cell_hits() {
        let scratch = Scratch::new("plan-off");
        let plan = || small_plan().store(&scratch.0).store_readonly(false).plan_cache(false);
        let cold = plan().run();
        let store = ResultStore::open_read_only(&scratch.0);
        assert_eq!(store.entries().len(), 6, "no plan entry without the plan cache");
        let warm = plan().run();
        assert_eq!(cold, warm);
        assert_eq!(store.hit_count(), 6, "every cell served individually");
        // A plan-cached run over the per-cell-warm store hits all six cells,
        // writes the plan entry, and the next run is a single plan hit.
        let adopted = small_plan().store(&scratch.0).store_readonly(false).run();
        assert_eq!(cold, adopted);
        assert_eq!(store.entries().len(), 7);
        let replayed = small_plan().store(&scratch.0).store_readonly(false).run();
        assert_eq!(cold, replayed);
        assert_eq!(store.hit_count(), 13, "6 + 6 cell hits, then 1 plan hit");
    }

    #[test]
    fn corrupt_plan_entries_fall_back_to_per_cell_hits() {
        let scratch = Scratch::new("plan-corrupt");
        let plan = || small_plan().store(&scratch.0).store_readonly(false);
        let cold = plan().run();
        let plan_fp = plan().plan_fingerprints()[0].expect("fully cacheable grid");
        let store = ResultStore::open(&scratch.0).unwrap();
        std::fs::write(store.entry_path(plan_fp), b"garbage").unwrap();
        let rewarmed = plan().run();
        assert_eq!(cold, rewarmed);
        // The damaged plan entry was recomputed from per-cell hits and
        // atomically rewritten.
        let report = store.verify();
        assert_eq!(report.corrupt.len(), 0, "{:?}", report.corrupt);
        assert_eq!(report.valid.len(), 7);
        assert_eq!(store.hit_count(), 6, "the six cell hits that rebuilt the merge");
    }

    #[test]
    fn plan_fingerprints_ignore_execution_knobs_but_track_identity() {
        let base = small_plan().plan_fingerprints();
        assert_eq!(base.len(), 1);
        assert!(base[0].is_some());
        // Execution knobs must not move the plan key (they cannot change
        // results, so they must not fragment the cache).
        assert_eq!(base, small_plan().threads(7).plan_fingerprints());
        assert_eq!(base, small_plan().intra_trace_shards(4).plan_fingerprints());
        assert_eq!(base, small_plan().materialise_traces(true).plan_fingerprints());
        // Identity edits must move it.
        assert_ne!(base, small_plan().seed(4).plan_fingerprints());
        assert_ne!(base, small_plan().lines_per_workload(41).plan_fingerprints());
        assert_ne!(base, small_plan().store_version_salt("bumped").plan_fingerprints());
        assert_ne!(base, small_plan().workload(Benchmark::Lbm.profile()).plan_fingerprints());
        assert_ne!(
            base,
            small_plan().scheme("Extra", || Box::new(RawCodec::new())).plan_fingerprints()
        );
        // An opaque workload poisons the whole config's plan key.
        let opaque = small_plan()
            .source("opaque", |_seed| {
                Box::new(from_fn("opaque", 1, |_| {
                    WriteRecord::new(0, MemoryLine::ZERO, MemoryLine::ZERO)
                })) as Box<dyn TraceSource + Send>
            })
            .plan_fingerprints();
        assert_eq!(opaque, vec![None]);
    }

    #[test]
    fn partially_warm_grids_are_byte_identical() {
        let scratch = Scratch::new("mixed");
        // Populate with a two-workload subset...
        let subset = ExperimentPlan::new()
            .seed(3)
            .lines_per_workload(40)
            .workload(Benchmark::Gcc.profile())
            .workload(Benchmark::Mcf.profile())
            .scheme("Baseline", || Box::new(RawCodec::new()))
            .scheme_boxed("Shared", Box::new(RawCodec::new()))
            .store(&scratch.0)
            .store_readonly(false)
            .run();
        // ...then run the full grid: gcc/mcf cells hit, omnetpp cells miss.
        let mixed = small_plan().store(&scratch.0).store_readonly(false).run();
        let disabled = small_plan().store_enabled(false).run();
        assert_eq!(mixed, disabled);
        for cell in &subset.cells {
            assert_eq!(Some(cell), mixed.get(&cell.scheme, &cell.workload));
        }
        // 4 subset cells + subset plan entry, then 2 omnetpp cells + the
        // full grid's own plan entry (the subset's plan key differs).
        assert_eq!(ResultStore::open_read_only(&scratch.0).entries().len(), 8);
    }

    #[test]
    fn salt_bump_forces_recomputation() {
        let scratch = Scratch::new("salt");
        let plan = || small_plan().store(&scratch.0).store_readonly(false);
        let v1 = plan().store_version_salt("wlcrc-sim-test-v1").run();
        let store = ResultStore::open_read_only(&scratch.0);
        let after_v1 = store.entries().len();
        assert_eq!(after_v1, 7, "6 cells + 1 plan entry");
        let v2 = plan().store_version_salt("wlcrc-sim-test-v2").run();
        // Same simulation, so same results — but nothing was served from the
        // v1 entries: every cell recomputed and landed at a fresh address.
        assert_eq!(v1, v2);
        assert_eq!(store.entries().len(), 2 * after_v1);
        assert_eq!(store.hit_count(), 0);
    }

    #[test]
    fn same_label_different_codec_does_not_alias() {
        let scratch = Scratch::new("codec-fp");
        let default_plan = || {
            ExperimentPlan::new()
                .seed(3)
                .lines_per_workload(40)
                .workload(Benchmark::Gcc.profile())
                .scheme("Baseline", || Box::new(RawCodec::new()))
                .store(&scratch.0)
                .store_readonly(false)
        };
        let remapped_plan = || {
            ExperimentPlan::new()
                .seed(3)
                .lines_per_workload(40)
                .workload(Benchmark::Gcc.profile())
                .scheme("Baseline", remapped_raw)
                .store(&scratch.0)
                .store_readonly(false)
        };
        let default_run = default_plan().run();
        // The remapped codec shares the "Baseline" label; a label-keyed
        // cache would wrongly serve it the default codec's stats.
        let remapped_run = remapped_plan().run();
        let remapped_disabled = remapped_plan().store_enabled(false).run();
        assert_eq!(remapped_run, remapped_disabled);
        assert_ne!(
            default_run.cells[0].data_energy_pj, remapped_run.cells[0].data_energy_pj,
            "the remapped codec must actually behave differently for this test to bite"
        );
        // One cell + one plan entry per codec: the plan keys separate too,
        // because they cover the codec fingerprints.
        assert_eq!(ResultStore::open_read_only(&scratch.0).entries().len(), 4);
    }

    #[test]
    fn corrupt_entries_are_recomputed_and_rewritten() {
        let scratch = Scratch::new("corrupt");
        // Plan cache off: this test exercises *per-cell* corruption
        // recovery, which a plan-level hit would otherwise short-circuit
        // (see `corrupt_plan_entries_fall_back_to_per_cell_hits` for that
        // layer).
        let plan = || small_plan().store(&scratch.0).store_readonly(false).plan_cache(false);
        let cold = plan().run();
        let store = ResultStore::open_read_only(&scratch.0);
        let entries = store.entries();
        assert_eq!(entries.len(), 6);
        // Truncate one entry and garble another.
        let bytes = std::fs::read(&entries[0].path).unwrap();
        std::fs::write(&entries[0].path, &bytes[..bytes.len() / 2]).unwrap();
        std::fs::write(&entries[1].path, b"not a store entry").unwrap();
        let rewarmed = plan().run();
        assert_eq!(cold, rewarmed);
        // Both damaged entries were recomputed and atomically rewritten.
        let report = store.verify();
        assert_eq!(report.corrupt.len(), 0, "{:?}", report.corrupt);
        assert_eq!(report.valid.len(), 6);
    }

    #[test]
    fn readonly_stores_serve_hits_but_never_write() {
        let scratch = Scratch::new("readonly");
        // A read-only store over a missing directory: every cell misses and
        // nothing is created.
        let cold = small_plan().store(&scratch.0).store_readonly(true).run();
        assert!(!scratch.0.exists());
        // Populate writable, then re-run read-only: hits, no new journal.
        let writable = small_plan().store(&scratch.0).store_readonly(false).run();
        let store = ResultStore::open_read_only(&scratch.0);
        let hits_before = store.hit_count();
        let warm = small_plan().store(&scratch.0).store_readonly(true).run();
        assert_eq!(cold, writable);
        assert_eq!(cold, warm);
        assert_eq!(store.hit_count(), hits_before, "read-only hits are not journaled");
    }

    #[test]
    fn opaque_stream_workloads_bypass_the_store() {
        let scratch = Scratch::new("opaque");
        let count = 50u64;
        let plan = || {
            ExperimentPlan::new()
                .seed(1)
                .verify_integrity(false)
                .source("opaque", move |_seed| {
                    Box::new(from_fn("opaque", count, move |i| {
                        let address = (i % 16) * 64;
                        WriteRecord::new(
                            address,
                            MemoryLine::from_words([i; 8]),
                            MemoryLine::from_words([i + 1; 8]),
                        )
                    })) as Box<dyn TraceSource + Send>
                })
                .scheme("Baseline", || Box::new(RawCodec::new()))
                .store(&scratch.0)
                .store_readonly(false)
        };
        let first = plan().run();
        let second = plan().run();
        assert_eq!(first, second);
        let store = ResultStore::open_read_only(&scratch.0);
        assert!(store.entries().is_empty(), "closure workloads must not be cached");
        assert_eq!(store.hit_count(), 0);
    }

    #[test]
    fn materialised_trace_workloads_cache_by_content_digest() {
        let scratch = Scratch::new("trace-digest");
        let trace = {
            let mut generator = TraceGenerator::new(Benchmark::Gcc.profile(), 5);
            Arc::new(generator.generate(30))
        };
        let plan = |t: &Arc<Trace>| {
            ExperimentPlan::new()
                .seed(5)
                .trace(Arc::clone(t))
                .scheme("Baseline", || Box::new(RawCodec::new()))
                .store(&scratch.0)
                .store_readonly(false)
        };
        let cold = plan(&trace).run();
        let warm = plan(&trace).run();
        assert_eq!(cold, warm);
        let store = ResultStore::open_read_only(&scratch.0);
        assert_eq!(store.entries().len(), 2, "the cell and its plan entry");
        assert_eq!(store.hit_count(), 1, "the warm run was one plan-level hit");
        // A trace with one different record must miss.
        let mut records: Vec<WriteRecord> = trace.iter().copied().collect();
        records[7] =
            WriteRecord::new(records[7].address, records[7].old, records[7].new.complement());
        let edited = Arc::new(Trace::from_records("gcc", records));
        let _ = plan(&edited).run();
        assert_eq!(store.entries().len(), 4, "edited trace is a different cell and plan");
    }

    #[test]
    fn claimed_runs_match_run_grid_and_divide_work() {
        let scratch = Scratch::new("claimed");
        let plan = || small_plan().seeds([3, 4]).threads(2).store(&scratch.0);
        let direct = plan().store_enabled(false).run_grid();
        // Cold claimed run: every cell claimed, computed and written back.
        let (cold, cold_report) = plan().run_grid_claimed(60);
        assert_eq!(direct, cold);
        assert_eq!(cold_report.computed, 12);
        assert_eq!(cold_report.loaded, 0);
        assert_eq!(cold_report.taken_over, 0);
        let store = ResultStore::open_read_only(&scratch.0);
        assert!(store.claims().is_empty(), "all claims released after compute");
        assert_eq!(store.entries().len(), 13, "12 cells + 1 plan entry");
        // Warm claimed run: one plan-level hit, nothing claimed or computed.
        let (warm, warm_report) = plan().run_grid_claimed(60);
        assert_eq!(direct, warm);
        assert_eq!(
            warm_report,
            ClaimedRunReport { computed: 0, loaded: 0, taken_over: 0, plan_hits: 1 }
        );
        // Per-cell-warm (plan cache off): every cell served from the store.
        let (served, served_report) = plan().plan_cache(false).run_grid_claimed(60);
        assert_eq!(direct, served);
        assert_eq!(served_report.computed, 0);
        assert_eq!(served_report.loaded, 12);
    }

    #[test]
    fn claimed_runs_take_over_stale_claims() {
        let scratch = Scratch::new("stale-claim");
        let plan = || {
            ExperimentPlan::new()
                .seed(3)
                .lines_per_workload(40)
                .workload(Benchmark::Gcc.profile())
                .scheme("Baseline", || Box::new(RawCodec::new()))
                .threads(1)
                .store(&scratch.0)
        };
        // Plant an aged foreign claim on the grid's one cell.
        let store = ResultStore::open(&scratch.0).unwrap();
        let keys = plan().cell_keys(1, plan().max_intensity());
        let fp = Fingerprint::of_value(&keys[0].as_ref().unwrap().to_value());
        let path = store.claim_path(fp);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"999999@elsewhere.invalid 5\n").unwrap();
        // stale_after 0 with a claim from unix time 5: immediately stale.
        let (claimed, report) = plan().run_grid_claimed(0);
        assert_eq!(claimed, plan().store_enabled(false).run_grid());
        assert_eq!(report.computed, 1);
        assert_eq!(report.taken_over, 1);
        assert!(store.claims().is_empty(), "the taken-over claim was released");
    }

    #[test]
    fn claimed_runs_without_a_store_fall_back_to_run_grid() {
        let (results, report) = small_plan().run_grid_claimed(60);
        assert_eq!(results, small_plan().run_grid());
        assert_eq!(report.computed, results[0].cells.len());
        assert_eq!(report.loaded, 0);
    }

    #[test]
    fn cell_seeds_separate_grid_coordinates() {
        let base = cell_seed(1, 0, "A", "w");
        assert_ne!(base, cell_seed(2, 0, "A", "w"), "base seed must matter");
        assert_ne!(base, cell_seed(1, 1, "A", "w"), "config must matter");
        assert_ne!(base, cell_seed(1, 0, "B", "w"), "scheme must matter");
        assert_ne!(base, cell_seed(1, 0, "A", "x"), "workload must matter");
        // Concatenation ambiguity: ("AB", "C") vs ("A", "BC").
        assert_ne!(cell_seed(1, 0, "AB", "C"), cell_seed(1, 0, "A", "BC"));
    }
}
