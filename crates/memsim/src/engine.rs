//! The parallel sharded experiment engine.
//!
//! [`ExperimentPlan`] declares a grid of experiment cells — every combination
//! of *scheme × workload × config × seed* — and executes them on a pool of
//! scoped worker threads. The paper's evaluation (and every figure binary in
//! this workspace) is exactly this shape: a large set of mutually independent
//! simulations followed by a deterministic merge.
//!
//! # Streaming pipeline
//!
//! Workloads are consumed as [`TraceSource`] streams: profile workloads are
//! generated lazily (O(working-set) memory, never O(trace-length)), and
//! custom bounded-memory streams plug in through
//! [`ExperimentPlan::source`]. The historical materialise-then-run pipeline
//! survives as an opt-in ([`ExperimentPlan::materialise_traces`], or the
//! `WLCRC_MATERIALISE` environment variable) and produces byte-identical
//! results — the CI smoke step diffs the two modes.
//!
//! # Intra-trace (per-bank) sharding
//!
//! Besides sharding the grid across cells, the engine shards *within* each
//! trace: records partition by [`MemoryOrganization::bank_index`] (writes to
//! different banks are independent in the cost model), each bank-partition
//! shard replays the stream and simulates only the banks with
//! `bank % shards == shard`, and the per-bank statistics merge in ascending
//! bank order. The shard count comes from
//! [`ExperimentPlan::intra_trace_shards`], the `WLCRC_INTRA_SHARDS`
//! environment variable, or a policy that uses spare workers when the grid
//! has fewer cells than the pool — and never affects any result, so a single
//! huge workload can use the whole machine.
//!
//! [`MemoryOrganization::bank_index`]: crate::memory::MemoryOrganization::bank_index
//!
//! # Determinism guarantee
//!
//! Results are **bit-identical for any worker count, shard count and
//! materialisation mode**. Three rules make that hold:
//!
//! 1. every cell derives its disturbance-sampling seed purely from
//!    `(base seed, config index, scheme label, workload name)`, and every
//!    bank lane derives its RNG stream from `(cell seed, bank index)` —
//!    never from thread identity, scheduling order or shard count;
//! 2. trace streams are deterministic: a cell's stream derives only from the
//!    base seed and the workload, so every scheme and every shard replays
//!    the identical record sequence (comparisons stay paired, exactly as in
//!    the paper);
//! 3. per-bank partials merge in ascending bank order, cell results land in
//!    slots indexed by their grid position and merge in grid order, so
//!    floating-point accumulation order never depends on which worker
//!    finished first.
//!
//! # Worker count
//!
//! The pool size is taken from, in order: an explicit
//! [`ExperimentPlan::threads`] override, the `WLCRC_THREADS` environment
//! variable, and finally [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! use wlcrc_memsim::ExperimentPlan;
//! use wlcrc_pcm::codec::RawCodec;
//! use wlcrc_trace::Benchmark;
//!
//! let result = ExperimentPlan::new()
//!     .seed(7)
//!     .lines_per_workload(50)
//!     .workload(Benchmark::Gcc.profile())
//!     .workload(Benchmark::Mcf.profile())
//!     .scheme("Baseline", || Box::new(RawCodec::new()))
//!     .run();
//! assert_eq!(result.cells.len(), 2);
//! ```

use crate::experiment::{ExperimentResult, RunMetadata};
use crate::simulator::{merge_bank_stats, BankStats, SimulationOptions, Simulator};
use crate::stats::SchemeStats;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use wlcrc_pcm::codec::LineCodec;
use wlcrc_pcm::config::PcmConfig;
use wlcrc_trace::{Trace, TraceSource, TraceStream, WorkloadProfile};

/// Environment variable overriding the worker-pool size (a positive integer).
pub const THREADS_ENV: &str = "WLCRC_THREADS";

/// Environment variable overriding the intra-trace (per-bank) shard count
/// per cell (a positive integer). Results are byte-identical for any value.
pub const INTRA_SHARDS_ENV: &str = "WLCRC_INTRA_SHARDS";

/// Environment variable forcing the opt-in materialise-then-run pipeline
/// (`1`/`true`). Results are byte-identical to streaming; peak memory is not.
pub const MATERIALISE_ENV: &str = "WLCRC_MATERIALISE";

type CodecFactoryFn = Arc<dyn Fn() -> Box<dyn LineCodec> + Send + Sync>;

/// A factory building one replayable [`TraceSource`] per invocation; the
/// argument is the plan's base seed for the cell. Must be deterministic —
/// the engine replays the stream once per bank-partition shard.
pub type TraceSourceFactory = Arc<dyn Fn(u64) -> Box<dyn TraceSource + Send> + Send + Sync>;

/// How a worker obtains the codec for a cell: either it builds a private
/// instance through a factory, or it borrows a pre-built shared instance
/// (possible because [`LineCodec`] is `Send + Sync`).
enum CodecSource {
    Factory(CodecFactoryFn),
    Shared(Arc<dyn LineCodec>),
}

impl CodecSource {
    /// Runs `f` with a codec reference for this cell.
    fn with_codec<T>(&self, f: impl FnOnce(&dyn LineCodec) -> T) -> T {
        match self {
            CodecSource::Factory(factory) => f(factory().as_ref()),
            CodecSource::Shared(codec) => f(codec.as_ref()),
        }
    }
}

/// A workload axis entry: a profile the plan streams lazily (scaled by write
/// intensity, like the paper's `Ave.` weighting), a caller-provided
/// materialised trace replayed verbatim, or a custom stream factory.
enum WorkloadSource {
    Profile(WorkloadProfile),
    Trace(Arc<Trace>),
    Stream { name: String, factory: TraceSourceFactory },
}

impl WorkloadSource {
    /// The workload name used for result labels and cell-seed derivation.
    fn name(&self) -> &str {
        match self {
            WorkloadSource::Profile(profile) => &profile.name,
            WorkloadSource::Trace(trace) => &trace.workload,
            WorkloadSource::Stream { name, .. } => name,
        }
    }
}

/// Declarative description of an experiment grid, executed by a worker pool.
///
/// See the [module documentation](self) for the determinism rules. Build a
/// plan with the chained setters, then call [`ExperimentPlan::run`] (single
/// config) or [`ExperimentPlan::run_grid`] (one [`ExperimentResult`] per
/// config).
pub struct ExperimentPlan {
    schemes: Vec<(String, CodecSource)>,
    workloads: Vec<WorkloadSource>,
    configs: Vec<PcmConfig>,
    seeds: Vec<u64>,
    lines_per_workload: usize,
    verify_integrity: bool,
    isolated: bool,
    threads: Option<usize>,
    intra_shards: Option<usize>,
    materialise: Option<bool>,
}

impl Default for ExperimentPlan {
    fn default() -> ExperimentPlan {
        ExperimentPlan::new()
    }
}

impl ExperimentPlan {
    /// Creates an empty plan: Table II config, seed 0, 1000 lines per
    /// workload, integrity verification on, streaming pipeline.
    pub fn new() -> ExperimentPlan {
        ExperimentPlan {
            schemes: Vec::new(),
            workloads: Vec::new(),
            configs: vec![PcmConfig::table_ii()],
            seeds: vec![0],
            lines_per_workload: 1000,
            verify_integrity: true,
            isolated: false,
            threads: None,
            intra_shards: None,
            materialise: None,
        }
    }

    /// Adds a scheme built per worker by `factory` (each worker owns its
    /// codec; construction must be cheap and deterministic).
    pub fn scheme<F>(mut self, label: impl Into<String>, factory: F) -> ExperimentPlan
    where
        F: Fn() -> Box<dyn LineCodec> + Send + Sync + 'static,
    {
        self.schemes.push((label.into(), CodecSource::Factory(Arc::new(factory))));
        self
    }

    /// Adds a scheme built per worker by an already-shared factory, e.g. a
    /// `CodecFactory` from `wlcrc::schemes::standard_factories` — no
    /// re-wrapping closure needed.
    pub fn scheme_factory(
        mut self,
        label: impl Into<String>,
        factory: Arc<dyn Fn() -> Box<dyn LineCodec> + Send + Sync>,
    ) -> ExperimentPlan {
        self.schemes.push((label.into(), CodecSource::Factory(factory)));
        self
    }

    /// Adds a pre-built codec, shared read-only by all workers.
    pub fn scheme_boxed(
        mut self,
        label: impl Into<String>,
        codec: Box<dyn LineCodec>,
    ) -> ExperimentPlan {
        self.schemes.push((label.into(), CodecSource::Shared(Arc::from(codec))));
        self
    }

    /// Adds a workload profile; the plan streams its trace lazily (scaled by
    /// relative write intensity like the paper's grids).
    pub fn workload(mut self, profile: WorkloadProfile) -> ExperimentPlan {
        self.workloads.push(WorkloadSource::Profile(profile));
        self
    }

    /// Adds several workload profiles.
    pub fn workloads(
        mut self,
        profiles: impl IntoIterator<Item = WorkloadProfile>,
    ) -> ExperimentPlan {
        for profile in profiles {
            self.workloads.push(WorkloadSource::Profile(profile));
        }
        self
    }

    /// Adds a pre-generated trace, replayed verbatim (no intensity scaling).
    pub fn trace(mut self, trace: Arc<Trace>) -> ExperimentPlan {
        self.workloads.push(WorkloadSource::Trace(trace));
        self
    }

    /// Adds several pre-generated traces.
    pub fn traces(mut self, traces: impl IntoIterator<Item = Arc<Trace>>) -> ExperimentPlan {
        for trace in traces {
            self.workloads.push(WorkloadSource::Trace(trace));
        }
        self
    }

    /// Adds a custom streaming workload: `factory` builds one replayable
    /// [`TraceSource`] per invocation from the plan's base seed (no intensity
    /// scaling). `name` labels the results and feeds cell-seed derivation;
    /// the factory must be deterministic because the stream is replayed once
    /// per bank-partition shard.
    pub fn source<F>(self, name: impl Into<String>, factory: F) -> ExperimentPlan
    where
        F: Fn(u64) -> Box<dyn TraceSource + Send> + Send + Sync + 'static,
    {
        self.source_factory(name, Arc::new(factory))
    }

    /// Adds a custom streaming workload from an already-shared factory.
    pub fn source_factory(
        mut self,
        name: impl Into<String>,
        factory: TraceSourceFactory,
    ) -> ExperimentPlan {
        self.workloads.push(WorkloadSource::Stream { name: name.into(), factory });
        self
    }

    /// Adds several named streaming workloads.
    pub fn sources(
        mut self,
        sources: impl IntoIterator<Item = (String, TraceSourceFactory)>,
    ) -> ExperimentPlan {
        for (name, factory) in sources {
            self.workloads.push(WorkloadSource::Stream { name, factory });
        }
        self
    }

    /// Sets the single PCM configuration of the grid.
    pub fn config(mut self, config: PcmConfig) -> ExperimentPlan {
        self.configs = vec![config];
        self
    }

    /// Sets the configuration axis of the grid (one [`ExperimentResult`] per
    /// entry; use [`ExperimentPlan::run_grid`]).
    pub fn configs(mut self, configs: impl IntoIterator<Item = PcmConfig>) -> ExperimentPlan {
        self.configs = configs.into_iter().collect();
        self
    }

    /// Sets the single base seed of the grid.
    pub fn seed(mut self, seed: u64) -> ExperimentPlan {
        self.seeds = vec![seed];
        self
    }

    /// Sets the seed axis of the grid; per-cell statistics are merged across
    /// seeds in seed order, so the result shape stays scheme × workload.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> ExperimentPlan {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the unscaled trace length per profile workload.
    pub fn lines_per_workload(mut self, lines: usize) -> ExperimentPlan {
        self.lines_per_workload = lines;
        self
    }

    /// Enables or disables decode-vs-original integrity verification.
    pub fn verify_integrity(mut self, verify: bool) -> ExperimentPlan {
        self.verify_integrity = verify;
        self
    }

    /// When `true`, records are simulated without address tracking (each
    /// write is differenced against its record's encoded old value), like the
    /// random-data studies of Figures 1 and 2.
    pub fn isolated(mut self, isolated: bool) -> ExperimentPlan {
        self.isolated = isolated;
        self
    }

    /// Overrides the worker count (otherwise `WLCRC_THREADS`, otherwise
    /// [`std::thread::available_parallelism`]).
    pub fn threads(mut self, workers: usize) -> ExperimentPlan {
        self.threads = Some(workers);
        self
    }

    /// Overrides the intra-trace (per-bank) shard count per cell (otherwise
    /// `WLCRC_INTRA_SHARDS`, otherwise spare-worker policy). Results are
    /// byte-identical for any value; more shards let one huge trace use more
    /// cores at the cost of replaying its stream once per shard.
    pub fn intra_trace_shards(mut self, shards: usize) -> ExperimentPlan {
        self.intra_shards = Some(shards);
        self
    }

    /// Opts in or out of the historical materialise-then-run pipeline
    /// (otherwise `WLCRC_MATERIALISE`, otherwise streaming). Materialising
    /// builds each (workload, seed) trace once and shares it across schemes
    /// and shards — byte-identical results, O(trace-length) peak memory.
    pub fn materialise_traces(mut self, materialise: bool) -> ExperimentPlan {
        self.materialise = Some(materialise);
        self
    }

    /// The worker count this plan will run with.
    pub fn worker_count(&self) -> usize {
        resolve_worker_count(self.threads)
    }

    /// The intra-trace shard count this plan will run with.
    pub fn intra_shard_count(&self) -> usize {
        let cells =
            self.configs.len() * self.workloads.len() * self.schemes.len() * self.seeds.len();
        self.resolve_intra_shards(cells)
    }

    /// Executes a single-config plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no schemes or workloads, or if more than one
    /// config was set (use [`ExperimentPlan::run_grid`] for a config axis).
    pub fn run(&self) -> ExperimentResult {
        assert_eq!(
            self.configs.len(),
            1,
            "plan has {} configs; use run_grid() for a config axis",
            self.configs.len()
        );
        self.run_grid().remove(0)
    }

    /// Executes the full grid and returns one [`ExperimentResult`] per
    /// config, each holding one merged cell per (workload, scheme) pair in
    /// declaration order (workload-major, matching the sequential layout).
    ///
    /// # Panics
    ///
    /// Panics if the plan has no schemes, workloads, configs or seeds.
    pub fn run_grid(&self) -> Vec<ExperimentResult> {
        assert!(!self.schemes.is_empty(), "plan declares no schemes");
        assert!(!self.workloads.is_empty(), "plan declares no workloads");
        assert!(!self.configs.is_empty(), "plan declares no configs");
        assert!(!self.seeds.is_empty(), "plan declares no seeds");
        let workers = self.worker_count();
        let n_workloads = self.workloads.len();
        let n_schemes = self.schemes.len();
        let n_seeds = self.seeds.len();
        let cell_count = self.configs.len() * n_workloads * n_schemes * n_seeds;
        let shards = self.resolve_intra_shards(cell_count);
        let max_intensity = self.max_intensity();

        // Optional phase 0 (opt-in): materialise every (workload, seed) trace
        // exactly once and share it behind an Arc — the historical pipeline,
        // byte-identical to streaming but O(trace-length) in memory.
        let shared: Option<Vec<Arc<Trace>>> = self.resolve_materialise().then(|| {
            parallel_tasks(n_workloads * n_seeds, workers, |task| {
                let (workload, seed) = (task / n_seeds, task % n_seeds);
                let source =
                    self.make_source(&self.workloads[workload], self.seeds[seed], max_intensity);
                Arc::new(source.collect_trace())
            })
        });

        // Phase 1: simulate every (cell, intra-trace shard) task. Each shard
        // replays the cell's stream and simulates only its banks; the slot
        // index fixes the merge order regardless of which worker runs what.
        let partials: Vec<Vec<BankStats>> = parallel_tasks(cell_count * shards, workers, |index| {
            let shard = index % shards;
            let cell = index / shards;
            let seed = cell % n_seeds;
            let scheme = (cell / n_seeds) % n_schemes;
            let workload = (cell / (n_seeds * n_schemes)) % n_workloads;
            let config = cell / (n_seeds * n_schemes * n_workloads);
            self.run_cell_shard(
                config,
                scheme,
                workload,
                seed,
                shard,
                shards,
                max_intensity,
                shared.as_deref(),
            )
        });

        // Phase 2: merge each cell's bank partials in ascending bank order —
        // the one canonical order, whatever the shard count.
        let cells: Vec<SchemeStats> = (0..cell_count)
            .map(|cell| {
                let scheme = (cell / n_seeds) % n_schemes;
                let workload = (cell / (n_seeds * n_schemes)) % n_workloads;
                let config = cell / (n_seeds * n_schemes * n_workloads);
                let lanes = partials[cell * shards..(cell + 1) * shards].iter().flatten().cloned();
                merge_bank_stats(
                    &self.schemes[scheme].0,
                    self.workloads[workload].name(),
                    self.configs[config].total_banks(),
                    lanes,
                )
            })
            .collect();

        // Phase 3: deterministic merge, seed-minor so replicate order is
        // fixed by the plan, not by scheduling.
        let mut results = Vec::with_capacity(self.configs.len());
        for config in 0..self.configs.len() {
            let mut result = ExperimentResult {
                meta: RunMetadata {
                    seeds: self.seeds.clone(),
                    lines_per_workload: self.lines_per_workload,
                    config_index: config,
                    grid_cells: n_workloads * n_schemes * n_seeds,
                },
                ..ExperimentResult::default()
            };
            for workload in 0..n_workloads {
                for scheme in 0..n_schemes {
                    let base = ((config * n_workloads + workload) * n_schemes + scheme) * n_seeds;
                    let mut merged = cells[base].clone();
                    for replicate in &cells[base + 1..base + n_seeds] {
                        merged.merge(replicate);
                    }
                    result.cells.push(merged);
                }
            }
            results.push(result);
        }
        results
    }

    /// Highest write intensity among the profile workloads (1.0 minimum,
    /// matching the sequential harness's scaling rule).
    fn max_intensity(&self) -> f64 {
        self.workloads
            .iter()
            .filter_map(|w| match w {
                WorkloadSource::Profile(profile) => Some(profile.write_intensity),
                _ => None,
            })
            .fold(1.0, f64::max)
    }

    /// Builds a fresh replayable stream for one workload at one base seed.
    /// Deterministic: the stream derives only from the plan and `seed`, so
    /// every scheme and every shard sees the identical record sequence.
    fn make_source<'a>(
        &'a self,
        source: &'a WorkloadSource,
        seed: u64,
        max_intensity: f64,
    ) -> Box<dyn TraceSource + Send + 'a> {
        match source {
            WorkloadSource::Trace(trace) => Box::new(trace.source()),
            WorkloadSource::Stream { factory, .. } => factory(seed),
            WorkloadSource::Profile(profile) => {
                let scaled = ((self.lines_per_workload as f64) * profile.write_intensity
                    / max_intensity)
                    .ceil()
                    .max(1.0) as usize;
                Box::new(TraceStream::new(profile.clone(), seed ^ hash_name(&profile.name), scaled))
            }
        }
    }

    /// Runs one intra-trace shard of one grid cell, returning the per-bank
    /// partial statistics of the banks this shard owns.
    #[allow(clippy::too_many_arguments)]
    fn run_cell_shard(
        &self,
        config_index: usize,
        scheme_index: usize,
        workload_index: usize,
        seed_index: usize,
        shard: usize,
        shards: usize,
        max_intensity: f64,
        shared: Option<&[Arc<Trace>]>,
    ) -> Vec<BankStats> {
        let (label, codec_source) = &self.schemes[scheme_index];
        let workload = &self.workloads[workload_index];
        let base_seed = self.seeds[seed_index];
        let simulator = Simulator::with_config(self.configs[config_index].clone()).with_options(
            SimulationOptions {
                seed: derive_cell_seed(base_seed, config_index, label, workload.name()),
                verify_integrity: self.verify_integrity,
            },
        );
        codec_source.with_codec(|codec| {
            let run = |source: Box<dyn TraceSource + Send + '_>| {
                if self.isolated {
                    simulator.run_isolated_shard(codec, source, shard, shards)
                } else {
                    simulator.run_shard(codec, source, shard, shards)
                }
            };
            match shared {
                Some(traces) => {
                    let trace = &traces[workload_index * self.seeds.len() + seed_index];
                    run(Box::new(trace.source()))
                }
                None => run(self.make_source(workload, base_seed, max_intensity)),
            }
        })
    }

    /// Resolves the intra-trace shard count: explicit override, then
    /// `WLCRC_INTRA_SHARDS`, then spare-worker policy (idle workers divided
    /// over the grid's cells, 1 when the grid alone fills the pool). Always
    /// clamped to the largest bank count on the config axis — a shard that
    /// owns no bank would replay its stream only to discard every record.
    fn resolve_intra_shards(&self, cell_count: usize) -> usize {
        let max_banks = self.configs.iter().map(PcmConfig::total_banks).max().unwrap_or(1).max(1);
        if let Some(shards) = self.intra_shards {
            return shards.clamp(1, max_banks);
        }
        if let Some(shards) =
            std::env::var(INTRA_SHARDS_ENV).ok().as_deref().and_then(parse_thread_count)
        {
            return shards.min(max_banks);
        }
        if cell_count == 0 {
            return 1;
        }
        (self.worker_count() / cell_count).clamp(1, max_banks)
    }

    /// Resolves the materialisation mode: explicit override, then
    /// `WLCRC_MATERIALISE`, then streaming (off).
    fn resolve_materialise(&self) -> bool {
        if let Some(materialise) = self.materialise {
            return materialise;
        }
        std::env::var(MATERIALISE_ENV).is_ok_and(|value| {
            let value = value.trim();
            ["1", "true", "yes", "on"].iter().any(|accepted| value.eq_ignore_ascii_case(accepted))
        })
    }
}

/// Resolves the worker count: explicit override, then `WLCRC_THREADS`, then
/// the machine's available parallelism (1 if unknown).
pub fn resolve_worker_count(explicit: Option<usize>) -> usize {
    if let Some(workers) = explicit {
        return workers.max(1);
    }
    if let Some(workers) = std::env::var(THREADS_ENV).ok().as_deref().and_then(parse_thread_count) {
        return workers;
    }
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Parses a `WLCRC_THREADS`-style value; zero, empty and garbage are rejected
/// so the caller falls back to auto-detection.
fn parse_thread_count(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|workers| *workers >= 1)
}

/// Runs `count` independent tasks on `workers` scoped threads and returns the
/// results in task order. Workers claim task indices from a shared atomic
/// counter (work stealing), but each result lands in its own slot, so output
/// order — and therefore any later floating-point merge — is deterministic.
fn parallel_tasks<T, F>(count: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, count);
    if workers == 1 {
        return (0..count).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(count).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let value = task(index);
                slots.lock().expect("result mutex poisoned")[index] = Some(value);
            });
        }
    });
    slots
        .into_inner()
        .expect("result mutex poisoned")
        .into_iter()
        .map(|slot| slot.expect("every claimed task stores a result"))
        .collect()
}

/// FNV-style hash of a workload name, used to give every workload its own
/// trace-generation seed. (Kept identical to the historical sequential
/// harness so migrated callers reproduce the same traces.)
pub(crate) fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |acc, b| {
        (acc ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Derives a cell's disturbance-sampling seed from the grid coordinates only
/// — never from worker identity — so parallelism cannot change any figure.
fn derive_cell_seed(base: u64, config_index: usize, scheme: &str, workload: &str) -> u64 {
    let mut h = 0x517c_c1b7_2722_0a95u64
        ^ base.rotate_left(17)
        ^ (config_index as u64).wrapping_mul(0xa24b_aed4_963e_e407);
    for b in scheme.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    h = h.rotate_left(29) ^ 0xff;
    for b in workload.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    // SplitMix64 finaliser for avalanche.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlcrc_pcm::codec::RawCodec;
    use wlcrc_pcm::energy::EnergyModel;
    use wlcrc_pcm::line::MemoryLine;
    use wlcrc_trace::{from_fn, Benchmark, TraceGenerator, WriteRecord};

    fn small_plan() -> ExperimentPlan {
        ExperimentPlan::new()
            .seed(3)
            .lines_per_workload(40)
            .workload(Benchmark::Gcc.profile())
            .workload(Benchmark::Mcf.profile())
            .workload(Benchmark::Omnetpp.profile())
            .scheme("Baseline", || Box::new(RawCodec::new()))
            .scheme_boxed("Shared", Box::new(RawCodec::new()))
    }

    #[test]
    fn results_are_identical_for_one_and_four_workers() {
        let sequential = small_plan().threads(1).run();
        let parallel = small_plan().threads(4).run();
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.cells.len(), 6);
    }

    #[test]
    fn results_are_identical_for_one_and_four_intra_trace_shards() {
        let unsharded = small_plan().threads(2).intra_trace_shards(1).run();
        let sharded = small_plan().threads(2).intra_trace_shards(4).run();
        assert_eq!(unsharded, sharded);
    }

    #[test]
    fn streamed_and_materialised_pipelines_are_byte_identical() {
        // All twelve standard workloads, streamed vs materialised, sharded
        // and not: four executions of the same grid, one result.
        let plan = || {
            ExperimentPlan::new()
                .seed(5)
                .lines_per_workload(30)
                .workloads(Benchmark::ALL.iter().map(|b| b.profile()))
                .scheme("Baseline", || Box::new(RawCodec::new()))
        };
        let streamed = plan().materialise_traces(false).run();
        let materialised = plan().materialise_traces(true).run();
        let streamed_sharded = plan().materialise_traces(false).intra_trace_shards(4).run();
        let materialised_sharded = plan().materialise_traces(true).intra_trace_shards(4).run();
        assert_eq!(streamed, materialised);
        assert_eq!(streamed, streamed_sharded);
        assert_eq!(streamed, materialised_sharded);
        assert_eq!(streamed.cells.len(), 12);
    }

    #[test]
    fn bounded_memory_source_streams_long_traces() {
        // A custom bounded-memory source: every record is computed from its
        // index, so peak memory stays O(working-set) however long the trace.
        // (At 64 lines the working set spans every bank of the Table II
        // organisation.)
        let count = 20_000u64;
        let source_factory = |seed: u64| {
            Arc::new(move |_base: u64| {
                Box::new(from_fn("endless", count, move |i| {
                    let address = (i % 64) * 64;
                    let old = MemoryLine::from_words([i ^ seed; 8]);
                    let new = MemoryLine::from_words([(i + 1) ^ seed; 8]);
                    WriteRecord::new(address, old, new)
                })) as Box<dyn TraceSource + Send>
            }) as TraceSourceFactory
        };
        let plan = || {
            ExperimentPlan::new()
                .seed(1)
                .verify_integrity(false)
                .source_factory("endless", source_factory(9))
                .scheme("Baseline", || Box::new(RawCodec::new()))
                .threads(2)
        };
        let sharded = plan().intra_trace_shards(4).run();
        let stats = &sharded.cells[0];
        assert_eq!(stats.writes, count);
        assert_eq!(stats.workload, "endless");
        assert_eq!(stats.bank_writes.iter().sum::<u64>(), count);
        assert_eq!(stats.banks_touched(), 64, "64-line stride touches every bank");
        assert_eq!(sharded, plan().intra_trace_shards(1).run());
    }

    #[test]
    fn cells_are_ordered_workload_major() {
        let result = small_plan().threads(2).run();
        let keys: Vec<(&str, &str)> =
            result.cells.iter().map(|c| (c.workload.as_str(), c.scheme.as_str())).collect();
        assert_eq!(
            keys,
            vec![
                ("gcc", "Baseline"),
                ("gcc", "Shared"),
                ("mcf", "Baseline"),
                ("mcf", "Shared"),
                ("omne", "Baseline"),
                ("omne", "Shared"),
            ]
        );
    }

    #[test]
    fn traces_are_shared_across_schemes() {
        // Two instances of the same codec must see the same trace: identical
        // writes and identical (deterministic) energy.
        let result = small_plan().threads(3).run();
        for workload in result.workloads() {
            let a = result.get("Baseline", &workload).unwrap();
            let b = result.get("Shared", &workload).unwrap();
            assert_eq!(a.writes, b.writes);
            assert_eq!(a.data_energy_pj, b.data_energy_pj);
        }
    }

    #[test]
    fn seed_axis_merges_replicates() {
        let single = small_plan().run();
        let double = small_plan().seeds([3, 4]).run();
        assert_eq!(double.cells.len(), single.cells.len());
        let one = single.get("Baseline", "gcc").unwrap();
        let two = double.get("Baseline", "gcc").unwrap();
        assert_eq!(two.writes, 2 * one.writes);
        assert_eq!(double.meta.seeds, vec![3, 4]);
    }

    #[test]
    fn run_grid_returns_one_result_per_config() {
        let mut cheap = PcmConfig::table_ii();
        cheap.energy = EnergyModel::figure14_configurations().last().unwrap().clone();
        let results = small_plan().configs([PcmConfig::table_ii(), cheap]).run_grid();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].meta.config_index, 0);
        assert_eq!(results[1].meta.config_index, 1);
        let default_energy = results[0].get("Baseline", "gcc").unwrap().total_energy_pj();
        let cheap_energy = results[1].get("Baseline", "gcc").unwrap().total_energy_pj();
        assert!(cheap_energy < default_energy, "{cheap_energy} vs {default_energy}");
    }

    #[test]
    #[should_panic(expected = "use run_grid()")]
    fn run_rejects_config_axes() {
        small_plan().configs([PcmConfig::table_ii(), PcmConfig::table_ii()]).run();
    }

    #[test]
    fn isolated_mode_skips_address_tracking() {
        let trace = {
            let mut generator = TraceGenerator::new(Benchmark::Gcc.profile(), 5);
            Arc::new(generator.generate(30))
        };
        let plan = ExperimentPlan::new()
            .seed(5)
            .trace(Arc::clone(&trace))
            .scheme("Baseline", || Box::new(RawCodec::new()))
            .isolated(true);
        let result = plan.run();
        assert_eq!(result.cells[0].writes, 30);
        assert_eq!(result.cells[0].workload, "gcc");
    }

    #[test]
    fn thread_count_parsing_rejects_garbage() {
        assert_eq!(parse_thread_count("4"), Some(4));
        assert_eq!(parse_thread_count(" 16 "), Some(16));
        assert_eq!(parse_thread_count("0"), None);
        assert_eq!(parse_thread_count(""), None);
        assert_eq!(parse_thread_count("many"), None);
        assert_eq!(resolve_worker_count(Some(0)), 1);
        assert_eq!(resolve_worker_count(Some(8)), 8);
    }

    #[test]
    fn intra_shard_policy_uses_spare_workers() {
        // 6 cells on a 1-worker pool: no spare parallelism, 1 shard.
        assert_eq!(small_plan().threads(1).intra_shard_count(), 1);
        // 6 cells on a 24-worker pool: 4 shards per cell soak up the slack.
        assert_eq!(small_plan().threads(24).intra_shard_count(), 4);
        // Explicit override wins; zero clamps to 1.
        assert_eq!(small_plan().threads(24).intra_trace_shards(2).intra_shard_count(), 2);
        assert_eq!(small_plan().intra_trace_shards(0).intra_shard_count(), 1);
    }

    #[test]
    fn parallel_tasks_preserve_task_order() {
        let out = parallel_tasks(100, 7, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert!(parallel_tasks(0, 4, |i| i).is_empty());
    }

    #[test]
    fn cell_seeds_separate_grid_coordinates() {
        let base = derive_cell_seed(1, 0, "A", "w");
        assert_ne!(base, derive_cell_seed(2, 0, "A", "w"), "base seed must matter");
        assert_ne!(base, derive_cell_seed(1, 1, "A", "w"), "config must matter");
        assert_ne!(base, derive_cell_seed(1, 0, "B", "w"), "scheme must matter");
        assert_ne!(base, derive_cell_seed(1, 0, "A", "x"), "workload must matter");
        // Concatenation ambiguity: ("AB", "C") vs ("A", "BC").
        assert_ne!(derive_cell_seed(1, 0, "AB", "C"), derive_cell_seed(1, 0, "A", "BC"));
    }
}
