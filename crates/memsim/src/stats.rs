//! Per-scheme, per-workload result aggregation.

use serde::{Deserialize, Serialize};
use wlcrc_pcm::disturb::DisturbanceOutcome;
use wlcrc_pcm::write::WriteOutcome;

/// Aggregated statistics of running one encoding scheme over one trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SchemeStats {
    /// Scheme name (e.g. "WLCRC-16").
    pub scheme: String,
    /// Workload name (e.g. "lesl").
    pub workload: String,
    /// Number of line writes simulated.
    pub writes: u64,
    /// Total data-cell write energy (pJ).
    pub data_energy_pj: f64,
    /// Total auxiliary-cell write energy (pJ).
    pub aux_energy_pj: f64,
    /// Total number of data cells programmed.
    pub data_cells_updated: u64,
    /// Total number of auxiliary cells programmed.
    pub aux_cells_updated: u64,
    /// Total sampled write-disturbance errors on data cells.
    pub data_disturb_errors: u64,
    /// Total sampled write-disturbance errors on auxiliary cells.
    pub aux_disturb_errors: u64,
    /// Total expected write-disturbance errors (sum of probabilities).
    pub expected_disturb_errors: f64,
    /// Maximum sampled disturbance errors observed in a single write.
    pub max_disturb_errors_per_write: u64,
    /// Number of lines the scheme stored in its compressed/encoded format
    /// (equal to `writes` for schemes without a compression gate).
    pub encoded_lines: u64,
    /// Number of decode-vs-original mismatches (must stay zero).
    pub integrity_failures: u64,
    /// Writes per memory bank (flat bank index), filled in by the streaming
    /// simulator; empty for hand-built accumulators. Exposes how evenly the
    /// trace spreads over banks — and therefore over intra-trace shard
    /// workers — via [`SchemeStats::write_imbalance`].
    pub bank_writes: Vec<u64>,
}

impl SchemeStats {
    /// Creates an empty accumulator for a scheme/workload pair.
    pub fn new(scheme: impl Into<String>, workload: impl Into<String>) -> SchemeStats {
        SchemeStats { scheme: scheme.into(), workload: workload.into(), ..SchemeStats::default() }
    }

    /// Records the outcome of one line write.
    pub fn record(
        &mut self,
        write: WriteOutcome,
        disturbance: DisturbanceOutcome,
        encoded: bool,
        integrity_ok: bool,
    ) {
        self.writes += 1;
        self.data_energy_pj += write.data_energy_pj;
        self.aux_energy_pj += write.aux_energy_pj;
        self.data_cells_updated += write.data_cells_updated as u64;
        self.aux_cells_updated += write.aux_cells_updated as u64;
        self.data_disturb_errors += disturbance.data_errors as u64;
        self.aux_disturb_errors += disturbance.aux_errors as u64;
        self.expected_disturb_errors += disturbance.expected_total_errors();
        self.max_disturb_errors_per_write =
            self.max_disturb_errors_per_write.max(disturbance.total_errors() as u64);
        if encoded {
            self.encoded_lines += 1;
        }
        if !integrity_ok {
            self.integrity_failures += 1;
        }
    }

    /// Total write energy (pJ).
    pub fn total_energy_pj(&self) -> f64 {
        self.data_energy_pj + self.aux_energy_pj
    }

    /// Mean write energy per line write (pJ).
    pub fn mean_energy_pj(&self) -> f64 {
        self.per_write(self.total_energy_pj())
    }

    /// Mean data-cell energy per write (pJ).
    pub fn mean_data_energy_pj(&self) -> f64 {
        self.per_write(self.data_energy_pj)
    }

    /// Mean auxiliary-cell energy per write (pJ).
    pub fn mean_aux_energy_pj(&self) -> f64 {
        self.per_write(self.aux_energy_pj)
    }

    /// Mean number of updated cells per write (data + aux), the paper's
    /// endurance metric.
    pub fn mean_updated_cells(&self) -> f64 {
        self.per_write((self.data_cells_updated + self.aux_cells_updated) as f64)
    }

    /// Mean number of updated data cells per write.
    pub fn mean_updated_data_cells(&self) -> f64 {
        self.per_write(self.data_cells_updated as f64)
    }

    /// Mean number of updated auxiliary cells per write.
    pub fn mean_updated_aux_cells(&self) -> f64 {
        self.per_write(self.aux_cells_updated as f64)
    }

    /// Mean sampled write-disturbance errors per write.
    pub fn mean_disturb_errors(&self) -> f64 {
        self.per_write((self.data_disturb_errors + self.aux_disturb_errors) as f64)
    }

    /// Mean expected write-disturbance errors per write.
    pub fn mean_expected_disturb_errors(&self) -> f64 {
        self.per_write(self.expected_disturb_errors)
    }

    /// Fraction of lines stored in the scheme's encoded format.
    pub fn encoded_fraction(&self) -> f64 {
        self.per_write(self.encoded_lines as f64)
    }

    /// Max/min ratio over [`SchemeStats::bank_writes`] (1.0 = perfectly
    /// balanced, infinity = some bank untouched, 1.0 when no per-bank data
    /// was collected). High values mean intra-trace bank-sharding will load
    /// workers unevenly.
    pub fn write_imbalance(&self) -> f64 {
        crate::memory::imbalance_of(&self.bank_writes)
    }

    /// Number of banks that received at least one write.
    pub fn banks_touched(&self) -> usize {
        self.bank_writes.iter().filter(|&&w| w > 0).count()
    }

    fn per_write(&self, total: f64) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            total / self.writes as f64
        }
    }

    /// Merges another accumulator (same scheme) into this one; used to build
    /// cross-workload averages.
    pub fn merge(&mut self, other: &SchemeStats) {
        self.writes += other.writes;
        self.data_energy_pj += other.data_energy_pj;
        self.aux_energy_pj += other.aux_energy_pj;
        self.data_cells_updated += other.data_cells_updated;
        self.aux_cells_updated += other.aux_cells_updated;
        self.data_disturb_errors += other.data_disturb_errors;
        self.aux_disturb_errors += other.aux_disturb_errors;
        self.expected_disturb_errors += other.expected_disturb_errors;
        self.max_disturb_errors_per_write =
            self.max_disturb_errors_per_write.max(other.max_disturb_errors_per_write);
        self.encoded_lines += other.encoded_lines;
        self.integrity_failures += other.integrity_failures;
        if self.bank_writes.len() < other.bank_writes.len() {
            self.bank_writes.resize(other.bank_writes.len(), 0);
        }
        for (mine, theirs) in self.bank_writes.iter_mut().zip(&other.bank_writes) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(data: f64, aux: f64, dc: usize, ac: usize) -> WriteOutcome {
        WriteOutcome {
            data_energy_pj: data,
            aux_energy_pj: aux,
            data_cells_updated: dc,
            aux_cells_updated: ac,
        }
    }

    #[test]
    fn record_and_means() {
        let mut stats = SchemeStats::new("X", "w");
        stats.record(outcome(100.0, 10.0, 5, 1), DisturbanceOutcome::default(), true, true);
        stats.record(outcome(200.0, 30.0, 7, 3), DisturbanceOutcome::default(), false, true);
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.total_energy_pj(), 340.0);
        assert_eq!(stats.mean_energy_pj(), 170.0);
        assert_eq!(stats.mean_updated_cells(), 8.0);
        assert_eq!(stats.encoded_fraction(), 0.5);
        assert_eq!(stats.integrity_failures, 0);
    }

    #[test]
    fn empty_stats_have_zero_means() {
        let stats = SchemeStats::new("X", "w");
        assert_eq!(stats.mean_energy_pj(), 0.0);
        assert_eq!(stats.mean_disturb_errors(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SchemeStats::new("X", "w1");
        a.record(outcome(100.0, 0.0, 2, 0), DisturbanceOutcome::default(), true, true);
        let mut b = SchemeStats::new("X", "w2");
        b.record(outcome(300.0, 0.0, 6, 0), DisturbanceOutcome::default(), true, false);
        a.merge(&b);
        assert_eq!(a.writes, 2);
        assert_eq!(a.mean_energy_pj(), 200.0);
        assert_eq!(a.integrity_failures, 1);
    }

    #[test]
    fn merge_is_associative_and_order_independent() {
        // The parallel engine merges per-cell stats in grid order; this pins
        // down that merge is associative so sharding cannot change a result.
        // Integer-valued energies are exactly representable as f64, so the
        // floating-point sums below are exact and the comparison is strict.
        let cell = |energy: f64, cells: usize, enc: bool| {
            let mut s = SchemeStats::new("X", "w");
            s.record(outcome(energy, energy / 2.0, cells, cells / 2), d_errors(cells), enc, true);
            s
        };
        let (a, b, c) = (cell(128.0, 6, true), cell(512.0, 3, false), cell(64.0, 9, true));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c); // (a ⊕ b) ⊕ c

        let mut right_tail = b.clone();
        right_tail.merge(&c);
        let mut right = a.clone();
        right.merge(&right_tail); // a ⊕ (b ⊕ c)

        assert_eq!(left, right);
        assert_eq!(left.writes, 3);
        assert_eq!(left.total_energy_pj(), (128.0 + 512.0 + 64.0) * 1.5);
        assert_eq!(left.max_disturb_errors_per_write, 9);
    }

    fn d_errors(n: usize) -> DisturbanceOutcome {
        DisturbanceOutcome { data_errors: n, aux_errors: 0, ..Default::default() }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = SchemeStats::new("X", "w");
        a.record(outcome(100.0, 10.0, 5, 1), DisturbanceOutcome::default(), true, true);
        let before = a.clone();
        a.merge(&SchemeStats::new("X", "w2"));
        assert_eq!(a, before);
    }

    #[test]
    fn bank_writes_merge_elementwise_and_drive_imbalance() {
        let mut a = SchemeStats::new("X", "w");
        a.bank_writes = vec![2, 0, 4];
        let mut b = SchemeStats::new("X", "w");
        b.bank_writes = vec![2, 4, 0, 8];
        a.merge(&b);
        assert_eq!(a.bank_writes, vec![4, 4, 4, 8]);
        assert_eq!(a.write_imbalance(), 2.0);
        assert_eq!(a.banks_touched(), 4);
        // No per-bank data at all reads as perfectly balanced.
        assert_eq!(SchemeStats::new("X", "w").write_imbalance(), 1.0);
        // An untouched bank next to a touched one is infinitely imbalanced.
        let mut c = SchemeStats::new("X", "w");
        c.bank_writes = vec![3, 0];
        assert_eq!(c.write_imbalance(), f64::INFINITY);
        assert_eq!(c.banks_touched(), 1);
    }

    #[test]
    fn imbalance_and_banks_touched_edge_cases() {
        // Zero writes, no per-bank data: balanced, nothing touched, and
        // every per-write mean is 0 — never NaN — so a cached empty cell can
        // be merged and reported safely.
        let empty = SchemeStats::new("X", "w");
        assert_eq!(empty.write_imbalance(), 1.0);
        assert_eq!(empty.banks_touched(), 0);
        assert_eq!(empty.mean_energy_pj(), 0.0);
        assert!(!empty.mean_updated_cells().is_nan());
        // A zero-filled bank vector (a config's banks, none written) is
        // "balanced": max == min == 0 must not divide.
        let mut zeros = SchemeStats::new("X", "w");
        zeros.bank_writes = vec![0; 64];
        assert_eq!(zeros.write_imbalance(), 1.0);
        assert_eq!(zeros.banks_touched(), 0);
        // A single bank holding all writes is perfectly balanced with
        // itself.
        let mut single = SchemeStats::new("X", "w");
        single.bank_writes = vec![17];
        assert_eq!(single.write_imbalance(), 1.0);
        assert_eq!(single.banks_touched(), 1);
    }

    #[test]
    fn cached_then_merged_stats_divide_safely() {
        use serde::{Deserialize, Serialize};
        // The store round-trips a cell, then the engine merges it across
        // seeds/workloads; none of the derived metrics may NaN or panic,
        // whatever mix of empty and populated cells is merged.
        let mut cell = SchemeStats::new("X", "w");
        cell.writes = 4;
        cell.data_energy_pj = 100.0;
        cell.bank_writes = vec![4, 0, 0];
        let cached = SchemeStats::from_value(&cell.to_value()).unwrap();
        assert_eq!(cached, cell);

        let mut merged = SchemeStats::from_value(&SchemeStats::new("X", "w2").to_value()).unwrap();
        merged.merge(&cached);
        merged.merge(&SchemeStats::new("X", "w3")); // empty: identity
        assert_eq!(merged.writes, 4);
        assert_eq!(merged.mean_energy_pj(), 25.0);
        assert_eq!(merged.write_imbalance(), f64::INFINITY, "untouched bank next to a hot one");
        assert_eq!(merged.banks_touched(), 1);
        assert!(!merged.mean_disturb_errors().is_nan());
    }

    #[test]
    fn disturbance_maximum_is_tracked() {
        let mut stats = SchemeStats::new("X", "w");
        let d1 = DisturbanceOutcome { data_errors: 3, aux_errors: 1, ..Default::default() };
        let d2 = DisturbanceOutcome { data_errors: 1, aux_errors: 0, ..Default::default() };
        stats.record(outcome(0.0, 0.0, 0, 0), d1, true, true);
        stats.record(outcome(0.0, 0.0, 0, 0), d2, true, true);
        assert_eq!(stats.max_disturb_errors_per_write, 4);
        assert_eq!(stats.mean_disturb_errors(), 2.5);
    }
}
