//! Memory organisation and address mapping (Table II).

use serde::{Deserialize, Serialize};
use wlcrc_pcm::config::PcmConfig;

/// Location of a line within the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BankAddress {
    /// Channel index.
    pub channel: usize,
    /// DIMM index within the channel.
    pub dimm: usize,
    /// Bank index within the DIMM.
    pub bank: usize,
    /// Row (line) index within the bank.
    pub row: u64,
}

/// The channel/DIMM/bank organisation of the PCM main memory.
///
/// Lines are interleaved across channels, then DIMMs, then banks, which is
/// the standard mapping for spreading consecutive lines over all banks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryOrganization {
    channels: usize,
    dimms_per_channel: usize,
    banks_per_dimm: usize,
    line_bytes: usize,
    writes_per_bank: Vec<u64>,
}

impl MemoryOrganization {
    /// Creates the organisation described by `config`.
    pub fn new(config: &PcmConfig) -> MemoryOrganization {
        let total = config.total_banks();
        MemoryOrganization {
            channels: config.channels,
            dimms_per_channel: config.dimms_per_channel,
            banks_per_dimm: config.banks_per_dimm,
            line_bytes: config.line_bytes,
            writes_per_bank: vec![0; total],
        }
    }

    /// Total number of banks.
    pub fn total_banks(&self) -> usize {
        self.channels * self.dimms_per_channel * self.banks_per_dimm
    }

    /// Maps a byte address to its bank location.
    pub fn locate(&self, address: u64) -> BankAddress {
        let line = address / self.line_bytes as u64;
        let channel = (line as usize) % self.channels;
        let dimm = (line as usize / self.channels) % self.dimms_per_channel;
        let bank = (line as usize / (self.channels * self.dimms_per_channel)) % self.banks_per_dimm;
        let row = line / (self.total_banks() as u64);
        BankAddress { channel, dimm, bank, row }
    }

    /// Flat index of the bank holding `address`.
    pub fn bank_index(&self, address: u64) -> usize {
        let loc = self.locate(address);
        (loc.channel * self.dimms_per_channel + loc.dimm) * self.banks_per_dimm + loc.bank
    }

    /// Records one write to the bank holding `address`.
    pub fn record_write(&mut self, address: u64) {
        let idx = self.bank_index(address);
        self.writes_per_bank[idx] += 1;
    }

    /// Per-bank write counts, indexed by flat bank index.
    pub fn writes_per_bank(&self) -> &[u64] {
        &self.writes_per_bank
    }

    /// The ratio between the most- and least-written banks (1.0 = perfectly
    /// balanced); a quick check that address interleaving spreads the load.
    pub fn write_imbalance(&self) -> f64 {
        imbalance_of(&self.writes_per_bank)
    }
}

/// Max/min ratio of a per-bank write-count vector: 1.0 means perfectly
/// balanced, infinity means at least one bank saw writes while another saw
/// none. Shared by [`MemoryOrganization::write_imbalance`] and the per-cell
/// [`SchemeStats::write_imbalance`](crate::stats::SchemeStats::write_imbalance)
/// the experiment engine surfaces for shard-count tuning.
pub fn imbalance_of(writes_per_bank: &[u64]) -> f64 {
    let max = writes_per_bank.iter().copied().max().unwrap_or(0);
    let min = writes_per_bank.iter().copied().min().unwrap_or(0);
    if min == 0 {
        if max == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        max as f64 / min as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_has_64_banks() {
        let org = MemoryOrganization::new(&PcmConfig::table_ii());
        assert_eq!(org.total_banks(), 64);
    }

    #[test]
    fn consecutive_lines_interleave_across_channels() {
        let org = MemoryOrganization::new(&PcmConfig::table_ii());
        let a = org.locate(0);
        let b = org.locate(64);
        assert_ne!(a.channel, b.channel);
    }

    #[test]
    fn bank_index_is_stable_and_bounded() {
        let org = MemoryOrganization::new(&PcmConfig::table_ii());
        for line in 0..1000u64 {
            let idx = org.bank_index(line * 64);
            assert!(idx < org.total_banks());
            assert_eq!(idx, org.bank_index(line * 64));
        }
    }

    #[test]
    fn sequential_writes_balance_across_banks() {
        let mut org = MemoryOrganization::new(&PcmConfig::table_ii());
        for line in 0..6400u64 {
            org.record_write(line * 64);
        }
        assert!(org.write_imbalance() <= 1.01);
    }

    #[test]
    fn same_bank_rows_differ() {
        let org = MemoryOrganization::new(&PcmConfig::table_ii());
        let banks = org.total_banks() as u64;
        let a = org.locate(0);
        let b = org.locate(banks * 64);
        assert_eq!(org.bank_index(0), org.bank_index(banks * 64));
        assert_ne!(a.row, b.row);
    }
}
